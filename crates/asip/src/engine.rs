//! [`FftEngine`] adapter over the cycle-accurate ASIP ISS: the
//! simulated hardware as just another backend in the registry.
//!
//! [`AsipEngine::execute_into`](afft_core::FftEngine::execute_into)
//! quantises the `f64` input into the Q15 wire format (auto-scaled to
//! 50% of full scale at the input peak) in an engine-owned staging
//! buffer — reused across runs, so the adapter adds no per-transform
//! heap work of its own — runs the generated Algorithm-1 program on
//! the simulator, and rescales the output back to the
//! unnormalised-DFT contract of the trait. Execution statistics of the
//! most recent run (cycles, instruction classes, cache counters) are
//! retained and exposed through [`AsipEngine::last_stats`];
//! [`AsipEngine::traffic`] reports the measured `LDIN`/`STOUT` point
//! traffic once a run has happened and the closed-form prediction
//! (`2N` points each way) before.
//!
//! # Examples
//!
//! ```
//! use afft_asip::engine::AsipEngine;
//! use afft_core::{Direction, FftEngine};
//! use afft_num::Complex;
//!
//! let mut engine = AsipEngine::new(64)?;
//! let x = vec![Complex::new(1.0, 0.0); 64];
//! let spectrum = engine.execute(&x, Direction::Forward)?;
//! assert!((spectrum[0].re - 64.0).abs() < 0.5);
//! assert!(engine.last_stats().expect("ran").cycles > 0);
//! # Ok::<(), afft_core::FftError>(())
//! ```

use crate::runner::{run_array_fft, AsipConfig, AsipError};
use afft_core::cached::MemTraffic;
use afft_core::engine::{check_io, EngineRegistry, FftEngine};
use afft_core::{Direction, FftError, Split};
use afft_num::{Complex, C64, Q15};
use afft_sim::Stats;

/// Fraction of Q15 full scale the input peak is normalised to before
/// quantisation: headroom against the intermediate growth the per-stage
/// halving does not fully absorb.
const QUANT_AMPLITUDE: f64 = 0.5;

/// The cycle-accurate ASIP ISS behind the [`FftEngine`] interface.
pub struct AsipEngine {
    n: usize,
    cfg: AsipConfig,
    last_stats: Option<Stats>,
    // Reusable Q15 quantisation staging for the wire-format input.
    quant_scratch: Vec<Complex<Q15>>,
    /// Modeled cycle counts of every run — always recorded (the
    /// simulator's own cost dwarfs two histogram adds), so per-run
    /// variation (e.g. across cache configurations) is inspectable
    /// instead of only the last value.
    cycle_hist: afft_obs::Histogram,
}

impl AsipEngine {
    /// Plans an ASIP run of size `n` (power of two, `>= 64`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Self::with_config(n, AsipConfig::default())
    }

    /// Plans with explicit run configuration (timing model, program
    /// options, cycle budget).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] for unsupported sizes.
    pub fn with_config(n: usize, cfg: AsipConfig) -> Result<Self, FftError> {
        Split::for_size(n)?;
        Ok(AsipEngine {
            n,
            cfg,
            last_stats: None,
            quant_scratch: Vec::new(),
            cycle_hist: afft_obs::Histogram::new(),
        })
    }

    /// Execution statistics of the most recent transform, or `None`
    /// before the first run.
    pub fn last_stats(&self) -> Option<Stats> {
        self.last_stats
    }

    /// Cycle count of the most recent run, or `None` before the first.
    pub fn last_cycles(&self) -> Option<u64> {
        self.last_stats().map(|s| s.cycles)
    }

    /// Distribution of modeled cycle counts over every run this engine
    /// instance has executed (empty before the first).
    pub fn cycle_histogram(&self) -> &afft_obs::Histogram {
        &self.cycle_hist
    }
}

impl core::fmt::Debug for AsipEngine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AsipEngine")
            .field("n", &self.n)
            .field("last_cycles", &self.last_cycles())
            .finish()
    }
}

impl FftEngine for AsipEngine {
    fn name(&self) -> &str {
        "asip_iss"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        check_io(self.n, input, output)?;
        // Normalise the peak component to QUANT_AMPLITUDE of full scale
        // so arbitrary-magnitude inputs survive quantisation.
        let peak = input.iter().map(|c| c.re.abs().max(c.im.abs())).fold(0.0, f64::max);
        let scale = if peak > 0.0 { QUANT_AMPLITUDE / peak } else { 1.0 };
        self.quant_scratch.resize(self.n, Complex::zero());
        for (slot, &c) in self.quant_scratch.iter_mut().zip(input) {
            *slot = Complex::from_c64(c * scale);
        }

        let run = run_array_fft(&self.quant_scratch, dir, &self.cfg).map_err(|e| match e {
            AsipError::Fft(e) => e,
            other => FftError::Backend { engine: "asip_iss".into(), reason: other.to_string() },
        })?;
        self.last_stats = Some(run.stats);
        self.cycle_hist.record(run.stats.cycles);

        // The datapath scales by 1/N; undo that and the input scaling
        // to meet the unnormalised-DFT contract.
        let restore = self.n as f64 / scale;
        for (slot, q) in output.iter_mut().zip(&run.output) {
            *slot = q.to_c64() * restore;
        }
        Ok(())
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // Each LDIN/STOUT beat moves two complex points.
        match self.last_stats() {
            Some(s) => {
                Some(MemTraffic { loads: 2 * s.ldin as usize, stores: 2 * s.stout as usize })
            }
            // Closed form before any run: N/2 beats per epoch, two
            // epochs, two points per beat, each way.
            None => Some(MemTraffic { loads: 2 * self.n, stores: 2 * self.n }),
        }
    }

    fn tolerance(&self) -> f64 {
        // 16-bit datapath with per-stage rounding: a few percent of the
        // spectrum peak in the worst case.
        0.08
    }

    fn cycles(&self) -> Option<u64> {
        self.last_cycles()
    }
}

/// [`EngineRegistry::standard`] plus the cycle-accurate ASIP backend
/// (for sizes the array structure supports; other sizes — composite,
/// prime, arbitrary — pass through with the software registry only,
/// since the array structure is power-of-two by construction).
///
/// # Errors
///
/// Returns [`FftError::InvalidSize`] unless `EngineRegistry::supports`
/// holds for `n` (any `n >= 2`).
///
/// # Examples
///
/// ```
/// let registry = afft_asip::engine::registry_with_asip(1024)?;
/// assert!(registry.get("asip_iss").is_some());
/// assert!(registry.len() >= 5);
/// # Ok::<(), afft_core::FftError>(())
/// ```
pub fn registry_with_asip(n: usize) -> Result<EngineRegistry, FftError> {
    let mut registry = EngineRegistry::standard(n)?;
    if Split::for_size(n).is_ok() {
        registry.register(Box::new(AsipEngine::new(n)?));
    }
    Ok(registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_core::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn asip_engine_matches_naive_dft_within_tolerance() {
        let n = 128;
        let mut engine = AsipEngine::new(n).unwrap();
        let x = random_signal(n, 1);
        let got = engine.execute(&x, Direction::Forward).unwrap();
        let want = dft_naive(&x, Direction::Forward).unwrap();
        let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
        let err = max_error(&got, &want) / peak;
        assert!(err < engine.tolerance(), "relative error {err}");
    }

    #[test]
    fn stats_and_traffic_reflect_the_run() {
        let n = 256;
        let mut engine = AsipEngine::new(n).unwrap();
        // Before the run: the closed-form prediction.
        assert_eq!(engine.traffic().unwrap().total(), 4 * n);
        assert!(engine.last_stats().is_none());
        assert!(engine.cycle_histogram().is_empty());
        engine.execute(&random_signal(n, 2), Direction::Forward).unwrap();
        let stats = engine.last_stats().expect("stats retained");
        assert_eq!(stats.ldin, n as u64);
        assert_eq!(stats.stout, n as u64);
        assert!(stats.cycles > 0);
        // Every run lands in the cycle distribution; the canonical
        // program is deterministic, so both runs cost the same bucket.
        engine.execute(&random_signal(n, 4), Direction::Forward).unwrap();
        let hist = engine.cycle_histogram();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.p50(), hist.p99(), "deterministic program, one bucket");
        // Measured traffic equals the prediction for the canonical
        // program: each beat moves two points.
        assert_eq!(engine.traffic().unwrap().total(), 4 * n);
    }

    #[test]
    fn arbitrary_magnitude_inputs_are_normalised() {
        let n = 64;
        let mut engine = AsipEngine::new(n).unwrap();
        // Values far outside [-1, 1): naive quantisation would saturate.
        let x: Vec<C64> = random_signal(n, 3).iter().map(|&c| c * 1000.0).collect();
        let got = engine.execute(&x, Direction::Forward).unwrap();
        let want = dft_naive(&x, Direction::Forward).unwrap();
        let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
        assert!(max_error(&got, &want) / peak < engine.tolerance());
    }

    #[test]
    fn rejects_unsupported_sizes_and_lengths() {
        assert!(AsipEngine::new(32).is_err());
        assert!(AsipEngine::new(96).is_err());
        let mut engine = AsipEngine::new(64).unwrap();
        assert!(matches!(
            engine.execute(&random_signal(32, 1), Direction::Forward),
            Err(FftError::LengthMismatch { expected: 64, got: 32 })
        ));
    }

    #[test]
    fn registry_with_asip_gates_on_size() {
        let small = registry_with_asip(16).unwrap();
        assert!(small.get("asip_iss").is_none());
        let full = registry_with_asip(64).unwrap();
        assert_eq!(full.names().last().copied(), Some("asip_iss"));
        assert!(full.len() >= 6);
    }
}
