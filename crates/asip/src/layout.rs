//! Memory map shared by the generated FFT programs.
//!
//! ```text
//! 0x0000_0000 .. : scratch / stack (grows down from stack_top)
//! in_base        : N fixed-point points (4 B each), natural order
//! mid_base       : N points, the inter-epoch Z' buffer
//! out_base       : N points, hardware (transposed) output order
//! table_base     : N/8 + 1 pre-rotation coefficients (4 B each)
//! float_base     : 2 * N f32 words for the soft-float baseline's data
//! ftw_base       : N/2 complex f32 twiddles for the baseline
//! ```

/// Byte addresses of every region a generated program touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Transform size.
    pub n: usize,
    /// Fixed-point input vector (natural order).
    pub in_base: u32,
    /// Inter-epoch buffer.
    pub mid_base: u32,
    /// Output vector (hardware transposed order).
    pub out_base: u32,
    /// Compressed pre-rotation table.
    pub table_base: u32,
    /// Float data region for the software-FFT baseline (8 B per point).
    pub float_base: u32,
    /// Float twiddle table for the baseline (8 B per entry, N/2 entries).
    pub ftw_base: u32,
    /// Initial stack pointer for generated code that needs a stack.
    pub stack_top: u32,
    /// Total data-memory size this layout requires.
    pub mem_bytes: usize,
}

impl Layout {
    /// Builds the canonical layout for an `N`-point run.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two `>= 8`.
    pub fn for_size(n: usize) -> Layout {
        assert!(n.is_power_of_two() && n >= 8, "Layout: invalid n {n}");
        let align = |x: u32| (x + 63) & !63;
        let stack_top = 0x1000;
        let in_base = stack_top;
        let mid_base = align(in_base + 4 * n as u32);
        let out_base = align(mid_base + 4 * n as u32);
        let table_base = align(out_base + 4 * n as u32);
        let float_base = align(table_base + 4 * (n as u32 / 8 + 1));
        let ftw_base = align(float_base + 8 * n as u32);
        let end = align(ftw_base + 8 * (n as u32 / 2));
        Layout {
            n,
            in_base,
            mid_base,
            out_base,
            table_base,
            float_base,
            ftw_base,
            stack_top,
            mem_bytes: end as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        for n in [64usize, 128, 1024, 4096] {
            let l = Layout::for_size(n);
            let regions = [
                (l.in_base, 4 * n as u32),
                (l.mid_base, 4 * n as u32),
                (l.out_base, 4 * n as u32),
                (l.table_base, 4 * (n as u32 / 8 + 1)),
                (l.float_base, 8 * n as u32),
                (l.ftw_base, 4 * n as u32),
            ];
            for (i, &(base, len)) in regions.iter().enumerate() {
                assert_eq!(base % 8, 0, "n={n}: region {i} alignment");
                for &(b2, _) in &regions[i + 1..] {
                    assert!(base + len <= b2, "n={n}: regions overlap");
                }
            }
            assert!(l.mem_bytes >= (l.ftw_base + 4 * n as u32) as usize);
        }
    }

    #[test]
    #[should_panic(expected = "invalid n")]
    fn rejects_non_pow2() {
        let _ = Layout::for_size(100);
    }
}
