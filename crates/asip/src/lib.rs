//! Program generators and run drivers for the array-FFT ASIP: the glue
//! between the algorithm ([`afft_core`]), the ISA ([`afft_isa`]) and
//! the simulator ([`afft_sim`]).
//!
//! * [`program`] — the custom FFT program of the paper's Algorithm 1;
//! * [`softfloat`] — an IEEE-754 single-precision subroutine library in
//!   the base ISA (the dominant cost of the paper's Imple 1 baseline);
//! * [`swfft`] — the standard software radix-2 FFT compiled against the
//!   soft-float library (Imple 1 itself);
//! * [`runner`] — stage-inputs/run/collect drivers used by examples,
//!   integration tests and the benchmark harness;
//! * [`engine`] — the [`afft_core::engine::FftEngine`] adapter that
//!   registers the cycle-accurate ISS alongside the software backends.
//!
//! # Examples
//!
//! ```
//! use afft_asip::runner::{quantize_input, run_array_fft, AsipConfig};
//! use afft_core::Direction;
//! use afft_num::Complex;
//!
//! let input = quantize_input(&vec![Complex::new(1.0, 0.0); 64], 0.5);
//! let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default())?;
//! // DC bin = mean of inputs (the datapath scales by 1/N).
//! assert!((run.output[0].re.to_f64() - 0.5).abs() < 0.01);
//! # Ok::<(), afft_asip::runner::AsipError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod layout;
pub mod pipeline;
pub mod program;
pub mod runner;
pub mod softfloat;
pub mod swfft;
pub mod swfft_fixed;

pub use engine::{registry_with_asip, AsipEngine};
pub use layout::Layout;
pub use runner::{golden_array_fft, quantize_input, run_array_fft, AsipConfig, AsipError, AsipRun};
