//! Symbol-stream pipelining: running OFDM symbols back-to-back on one
//! persistent machine.
//!
//! An OFDM receiver does not run one FFT — it runs one FFT per symbol,
//! forever. Keeping the machine (and its cache and generated program)
//! alive between symbols amortises setup and warms the pre-rotation
//! table, which is how the real ASIP reaches its steady-state
//! throughput. [`FftPipeline`] owns a configured machine and processes
//! a stream of symbols, reporting cold-vs-steady-state cost.

use crate::layout::Layout;
use crate::program::{generate_array_fft, ProgramOptions};
use crate::runner::AsipError;
use afft_core::address::transposed_to_natural_bin;
use afft_core::Split;
use afft_num::{twiddle_q15, Complex, Q15};
use afft_sim::{Machine, MachineConfig, Stats, Timing};

/// A persistent FFT engine processing a stream of equal-size symbols.
#[derive(Debug)]
pub struct FftPipeline {
    machine: Machine,
    program: afft_isa::Program,
    split: Split,
    layout: Layout,
    symbols: u64,
    first_cycles: Option<u64>,
    total_cycles: u64,
}

impl FftPipeline {
    /// Builds a pipeline for `n`-point forward transforms.
    ///
    /// # Errors
    ///
    /// Returns [`AsipError`] for invalid sizes or generation failures.
    pub fn new(n: usize, timing: Timing) -> Result<Self, AsipError> {
        let split = Split::for_size(n)?;
        let layout = Layout::for_size(n);
        let program = generate_array_fft(&split, &layout, ProgramOptions::default())?;
        let mut machine = Machine::new(MachineConfig {
            mem_bytes: layout.mem_bytes,
            timing,
            crf_capacity: split.p_size,
            ..MachineConfig::default()
        });
        // Stage the pre-rotation table once; it persists across symbols.
        for k in 0..=n / 8 {
            machine.mem_mut().write_complex(layout.table_base + 4 * k as u32, twiddle_q15(n, k))?;
        }
        Ok(FftPipeline {
            machine,
            program,
            split,
            layout,
            symbols: 0,
            first_cycles: None,
            total_cycles: 0,
        })
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.split.n
    }

    /// Pipelines are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Symbols processed so far.
    pub fn symbols(&self) -> u64 {
        self.symbols
    }

    /// Processes one symbol; returns the natural-order spectrum and the
    /// cycles this symbol took.
    ///
    /// # Errors
    ///
    /// Propagates simulator traps.
    pub fn process(
        &mut self,
        input: &[Complex<Q15>],
    ) -> Result<(Vec<Complex<Q15>>, u64), AsipError> {
        if input.len() != self.split.n {
            return Err(AsipError::Fft(afft_core::FftError::LengthMismatch {
                expected: self.split.n,
                got: input.len(),
            }));
        }
        self.machine.mem_mut().write_complex_slice(self.layout.in_base, input)?;
        self.machine.load_program(self.program.clone());
        let before = self.machine.stats().cycles;
        self.machine.run(u64::MAX)?;
        let cycles = self.machine.stats().cycles - before;

        let transposed =
            self.machine.mem().read_complex_slice(self.layout.out_base, self.split.n)?;
        let mut output = vec![Complex::zero(); self.split.n];
        for (addr, &v) in transposed.iter().enumerate() {
            output[transposed_to_natural_bin(&self.split, addr)] = v;
        }
        self.symbols += 1;
        self.total_cycles += cycles;
        if self.first_cycles.is_none() {
            self.first_cycles = Some(cycles);
        }
        Ok((output, cycles))
    }

    /// Cumulative statistics of the underlying machine.
    pub fn stats(&self) -> Stats {
        self.machine.stats()
    }

    /// Cold-start cycles of the first symbol (None before any symbol).
    pub fn first_symbol_cycles(&self) -> Option<u64> {
        self.first_cycles
    }

    /// Mean cycles per symbol *excluding* the first (steady state);
    /// falls back to the overall mean with fewer than two symbols.
    pub fn steady_state_cycles(&self) -> f64 {
        match (self.first_cycles, self.symbols) {
            (Some(first), s) if s >= 2 => (self.total_cycles - first) as f64 / (s - 1) as f64,
            (_, s) if s > 0 => self.total_cycles as f64 / s as f64,
            _ => 0.0,
        }
    }

    /// Steady-state sample throughput in Msamples/s at `clock_mhz`.
    pub fn steady_state_msps(&self, clock_mhz: f64) -> f64 {
        let c = self.steady_state_cycles();
        if c == 0.0 {
            0.0
        } else {
            self.split.n as f64 * clock_mhz / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{golden_array_fft, quantize_input};
    use afft_core::Direction;
    use afft_num::C64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn symbol(n: usize, seed: u64) -> Vec<Complex<Q15>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig: Vec<C64> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        quantize_input(&sig, 0.9)
    }

    #[test]
    fn every_symbol_is_bit_exact_vs_golden() {
        let mut p = FftPipeline::new(64, Timing::default()).unwrap();
        for seed in 0..4 {
            let x = symbol(64, seed);
            let (got, cycles) = p.process(&x).unwrap();
            let want = golden_array_fft(&x, Direction::Forward).unwrap();
            assert_eq!(got, want, "symbol {seed}");
            assert!(cycles > 0);
        }
        assert_eq!(p.symbols(), 4);
    }

    #[test]
    fn steady_state_is_no_slower_than_cold_start() {
        let mut p = FftPipeline::new(256, Timing::default()).unwrap();
        for seed in 0..5 {
            p.process(&symbol(256, seed)).unwrap();
        }
        let first = p.first_symbol_cycles().expect("processed symbols") as f64;
        let steady = p.steady_state_cycles();
        assert!(steady <= first, "steady {steady} vs cold {first}");
        assert!(p.steady_state_msps(300.0) > 0.0);
    }

    #[test]
    fn rejects_wrong_symbol_length() {
        let mut p = FftPipeline::new(64, Timing::default()).unwrap();
        assert!(p.process(&symbol(128, 0)).is_err());
        assert_eq!(p.len(), 64);
        assert!(!p.is_empty());
    }
}
