//! The custom FFT program of the paper's Algorithm 1, generated for any
//! transform size.
//!
//! The generator emits straight-line `LDIN`/`BUT4`/`STOUT` bodies per
//! group (the paper recompiles per FFT size, so full in-group unrolling
//! is faithful) inside a software group loop per epoch. All butterfly
//! addressing happens in the AC hardware: the only integer work in the
//! loop is advancing two base addresses and the group counter —
//! exactly the "removes all the address calculation instructions"
//! property the paper claims.

use crate::layout::Layout;
use afft_core::Split;
use afft_isa::{Asm, AsmError, FftCfg, Instr, Program, Reg};

/// Registers holding the constants 1..=8 used as `BUT4` operands.
const CONST_REGS: [Reg; 8] =
    [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::T6, Reg::T7];

/// Register assignment of the generated program (documented for tests
/// and the `asm_playground` example).
pub mod regs {
    use afft_isa::Reg;
    /// Group counter.
    pub const GROUP: Reg = Reg::A0;
    /// Group-count bound of the current epoch.
    pub const BOUND: Reg = Reg::A1;
    /// `LDIN` base address.
    pub const LD_BASE: Reg = Reg::S0;
    /// `STOUT` base address.
    pub const ST_BASE: Reg = Reg::S1;
    /// Scratch for `MTFFT` immediates.
    pub const SCRATCH: Reg = Reg::V0;
}

/// Code-generation style for the per-epoch group walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnrollStyle {
    /// Fully straight-line groups: the whole epoch is emitted with
    /// immediate offsets and no loop control (what the paper's
    /// "reprogrammed and recompiled for different FFT sizes" produces;
    /// matches Table I's near-zero overhead). Falls back to
    /// [`UnrollStyle::GroupLoop`] when immediate offsets cannot reach
    /// (N > 4096).
    #[default]
    Auto,
    /// Force straight-line generation (errors if offsets overflow).
    StraightLine,
    /// A software loop over groups (smaller code, a few cycles per
    /// group of loop control) — the ablation's comparison point.
    GroupLoop,
}

/// Options controlling generation (ablation experiments vary these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramOptions {
    /// Run the transform in the inverse direction.
    pub inverse: bool,
    /// Disable the multiply-on-store pre-rotation (the transform is
    /// then *wrong* across epochs — used only by the ablation that
    /// measures the pre-rotation's cost).
    pub skip_prerot: bool,
    /// Group-walk code-generation style.
    pub unroll: UnrollStyle,
}

/// Generates the array-FFT ASIP program for `split` over `layout`.
///
/// The program assumes the input vector at `layout.in_base` (natural
/// order), the compressed pre-rotation table at `layout.table_base`,
/// and leaves the spectrum at `layout.out_base` in the hardware
/// (`AO1 = [AL][AH]`) order.
///
/// # Errors
///
/// Returns [`AsmError`] only on internal generator bugs (labels are
/// generated uniquely); surfaced rather than unwrapped so callers can
/// report context.
pub fn generate_array_fft(
    split: &Split,
    layout: &Layout,
    opts: ProgramOptions,
) -> Result<Program, AsmError> {
    let straight = match opts.unroll {
        UnrollStyle::StraightLine => true,
        UnrollStyle::GroupLoop => false,
        UnrollStyle::Auto => straight_line_fits(split),
    };
    let mut a = Asm::new();
    emit_setup(&mut a, split, layout, opts);
    if straight {
        emit_epoch_straight(&mut a, split, layout, opts, 0);
        emit_epoch_straight(&mut a, split, layout, opts, 1);
    } else {
        emit_epoch(&mut a, split, layout, opts, 0);
        emit_epoch(&mut a, split, layout, opts, 1);
    }
    a.emit(Instr::Halt);
    a.assemble()
}

/// Whether every straight-line immediate offset (up to `4N` bytes from
/// the epoch base register) fits the 16-bit signed field.
fn straight_line_fits(split: &Split) -> bool {
    4 * split.n <= i16::MAX as usize
}

fn emit_epoch_straight(
    a: &mut Asm,
    split: &Split,
    layout: &Layout,
    opts: ProgramOptions,
    epoch: u32,
) {
    let (groups, g_size, g_stages, stride, ld_base, st_base) = if epoch == 0 {
        (split.q_size, split.p_size, split.p_stages, split.q_size, layout.in_base, layout.mid_base)
    } else {
        (split.p_size, split.q_size, split.q_stages, split.p_size, layout.mid_base, layout.out_base)
    };
    let prerot = epoch == 0 && !opts.skip_prerot;
    mtfft_imm(a, FftCfg::GroupSizeLog2, g_stages as i32);
    mtfft_imm(a, FftCfg::LoadStride, stride as i32);
    mtfft_imm(a, FftCfg::PrerotEnable, i32::from(prerot));
    a.li(regs::LD_BASE, ld_base as i32);
    a.li(regs::ST_BASE, st_base as i32);
    for g in 0..groups {
        if prerot {
            if g == 0 {
                a.emit(Instr::Mtfft { rs: Reg::ZERO, sel: FftCfg::GroupId });
            } else {
                a.li(regs::GROUP, g as i32);
                a.emit(Instr::Mtfft { rs: regs::GROUP, sel: FftCfg::GroupId });
            }
        }
        // LDIN beats: group gather base is ld_base + 4g (epoch 0 walks
        // residues; epoch 1 walks output bins) — all immediate.
        for k in 0..g_size / 2 {
            let off = 4 * g + 8 * stride * k;
            a.emit(Instr::Ldin {
                base: regs::LD_BASE,
                offset: i16::try_from(off).expect("straight-line LDIN offset fits"),
            });
        }
        emit_stage_grid(a, g_stages, g_size);
        let block = 4 * g_size * g;
        for k in 0..g_size / 2 {
            let off = block + 8 * k;
            a.emit(Instr::Stout {
                base: regs::ST_BASE,
                offset: i16::try_from(off).expect("straight-line STOUT offset fits"),
            });
        }
    }
}

/// The fully unrolled BUT4 grid of one group.
fn emit_stage_grid(a: &mut Asm, g_stages: u32, g_size: usize) {
    let modules = g_size / 8;
    for j in 1..=g_stages {
        if modules <= CONST_REGS.len() {
            for i in 1..=modules {
                a.emit(Instr::But4 {
                    stage: CONST_REGS[j as usize - 1],
                    module: CONST_REGS[i - 1],
                });
            }
        } else {
            a.li(Reg::A2, 1);
            for _ in 0..modules {
                a.emit(Instr::But4 { stage: CONST_REGS[j as usize - 1], module: Reg::A2 });
                a.emit(Instr::Addi { rt: Reg::A2, rs: Reg::A2, imm: 1 });
            }
        }
    }
}

fn mtfft_imm(a: &mut Asm, sel: FftCfg, value: i32) {
    a.li(regs::SCRATCH, value);
    a.emit(Instr::Mtfft { rs: regs::SCRATCH, sel });
}

fn emit_setup(a: &mut Asm, split: &Split, layout: &Layout, opts: ProgramOptions) {
    // Constant registers 1..=max(stage, module) for BUT4 operands; the
    // generator emits only the constants this size actually uses.
    let needed = (split.p_stages as usize).max((split.p_size / 8).min(CONST_REGS.len()));
    for (k, &r) in CONST_REGS.iter().enumerate().take(needed) {
        a.li(r, k as i32 + 1);
    }
    mtfft_imm(a, FftCfg::NLog2, split.log2_n as i32);
    mtfft_imm(a, FftCfg::PrerotBase, layout.table_base as i32);
    if opts.inverse {
        mtfft_imm(a, FftCfg::InverseEnable, 1);
    }
}

fn emit_epoch(a: &mut Asm, split: &Split, layout: &Layout, opts: ProgramOptions, epoch: u32) {
    // Epoch geometry: epoch 0 runs Q groups of P points gathered with
    // stride Q from the input; epoch 1 runs P groups of Q points
    // gathered with stride P from the mid buffer.
    let (groups, g_size, g_stages, stride, ld_base, st_base, st_block) = if epoch == 0 {
        (
            split.q_size,
            split.p_size,
            split.p_stages,
            split.q_size,
            layout.in_base,
            layout.mid_base,
            4 * split.p_size as u32,
        )
    } else {
        (
            split.p_size,
            split.q_size,
            split.q_stages,
            split.p_size,
            layout.mid_base,
            layout.out_base,
            4 * split.q_size as u32,
        )
    };
    let prerot = epoch == 0 && !opts.skip_prerot;

    mtfft_imm(a, FftCfg::GroupSizeLog2, g_stages as i32);
    mtfft_imm(a, FftCfg::LoadStride, stride as i32);
    mtfft_imm(a, FftCfg::PrerotEnable, i32::from(prerot));
    a.li(regs::GROUP, 0);
    a.li(regs::BOUND, groups as i32);
    a.li(regs::LD_BASE, ld_base as i32);
    a.li(regs::ST_BASE, st_base as i32);

    let loop_label = format!("epoch{epoch}_group");
    a.label(&loop_label);
    if prerot {
        a.emit(Instr::Mtfft { rs: regs::GROUP, sel: FftCfg::GroupId });
    }
    // LDIN phase: g_size/2 beats; beat k reads points 2k, 2k+1 of the
    // gather, i.e. bytes 8*stride*k from the group base.
    for k in 0..g_size / 2 {
        let off = 8 * stride * k;
        a.emit(Instr::Ldin {
            base: regs::LD_BASE,
            offset: i16::try_from(off).expect("LDIN offset fits i16 for supported N"),
        });
    }
    // Stage phase: fully unrolled BUT4 grid (up to 8 modules straight
    // from constant registers, 1 instruction per BUT4; beyond that a
    // branch-free counter register, 2 per BUT4).
    emit_stage_grid(a, g_stages, g_size);
    // STOUT phase: contiguous beats into the group's output block.
    for k in 0..g_size / 2 {
        a.emit(Instr::Stout {
            base: regs::ST_BASE,
            offset: i16::try_from(8 * k).expect("STOUT offset fits i16"),
        });
    }
    // Advance group: gather base moves one point; store base one block.
    a.emit(Instr::Addi { rt: regs::LD_BASE, rs: regs::LD_BASE, imm: 4 });
    a.emit(Instr::Addi {
        rt: regs::ST_BASE,
        rs: regs::ST_BASE,
        imm: i16::try_from(st_block).expect("block stride fits i16"),
    });
    a.emit(Instr::Addi { rt: regs::GROUP, rs: regs::GROUP, imm: 1 });
    a.bne_to(regs::GROUP, regs::BOUND, &loop_label);
}

/// Predicted dynamic instruction counts of the generated program — the
/// analytical form of Algorithm 1's cost, used by tests to pin the
/// generator and by EXPERIMENTS.md to explain Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrBudget {
    /// `LDIN` count (`N/2` per epoch).
    pub ldin: usize,
    /// `STOUT` count (`N/2` per epoch).
    pub stout: usize,
    /// `BUT4` count (`N * log2 N / 8`).
    pub but4: usize,
    /// Everything else (setup + loop control + `MTFFT`).
    pub overhead: usize,
}

impl InstrBudget {
    /// Computes the budget for a split.
    pub fn for_split(split: &Split) -> InstrBudget {
        let ldin = split.n;
        let stout = split.n;
        let but4 = split.total_bu_ops();
        // Setup: 8 constants + 2/3 mtfft pairs; per epoch: 4 mtfft pairs
        // (8 instrs) + 4 li + per group (mtfft-group for epoch 0 only +
        // 3 addi + 1 bne).
        let e0_groups = split.q_size;
        let e1_groups = split.p_size;
        let setup = 8 + 4 + 1; // consts + nlog2/prerotbase pairs + halt
        let per_epoch = 6 + 8;
        let overhead = setup + 2 * per_epoch + e0_groups * 5 + e1_groups * 4;
        InstrBudget { ldin, stout, but4, overhead }
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> usize {
        self.ldin + self.stout + self.but4 + self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_for_all_paper_sizes() {
        for n in [64usize, 128, 256, 512, 1024, 2048, 4096] {
            let split = Split::for_size(n).unwrap();
            let layout = Layout::for_size(n);
            let p = generate_array_fft(&split, &layout, ProgramOptions::default()).unwrap();
            assert!(!p.is_empty(), "n={n}");
            // Static structure: straight-line code emits every dynamic
            // LDIN (N/2 per epoch).
            let listing = p.disassemble();
            let ldin_static = listing.matches("ldin").count();
            assert_eq!(ldin_static, n, "n={n}");
        }
    }

    #[test]
    fn offsets_fit_immediates_up_to_16k() {
        // The generator's i16 offsets hold up to N = 16384 (stride
        // 8*Q*k maxes at (P/2-1)*8*Q = 4N - 8Q < 32768 for N <= 8192).
        for n in [4096usize, 8192] {
            let split = Split::for_size(n).unwrap();
            let layout = Layout::for_size(n);
            assert!(generate_array_fft(&split, &layout, ProgramOptions::default()).is_ok());
        }
    }

    #[test]
    fn budget_matches_paper_counts() {
        let split = Split::for_size(1024).unwrap();
        let b = InstrBudget::for_split(&split);
        assert_eq!(b.ldin, 1024);
        assert_eq!(b.stout, 1024);
        assert_eq!(b.but4, 1280);
        // Total lands in the regime of the paper's 4168 cycles.
        assert!(b.total() > 3300 && b.total() < 4500, "total {}", b.total());
    }
}
