//! High-level drivers: stage inputs, run a generated program on the
//! ISS, collect outputs and statistics.

use crate::layout::Layout;
use crate::program::{generate_array_fft, ProgramOptions};
use afft_core::address::transposed_to_natural_bin;
use afft_core::{ArrayFft, Direction, FftError, Scaling, Split};
use afft_isa::AsmError;
use afft_num::{twiddle_q15, Complex, C64, Q15};
use afft_sim::{Machine, MachineConfig, SimError, Stats, Timing};
use core::fmt;

/// Error from a high-level ASIP run.
#[derive(Debug)]
#[non_exhaustive]
pub enum AsipError {
    /// Planning/validation failure.
    Fft(FftError),
    /// Program generation failure.
    Asm(AsmError),
    /// Simulator trap.
    Sim(SimError),
}

impl fmt::Display for AsipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsipError::Fft(e) => write!(f, "fft: {e}"),
            AsipError::Asm(e) => write!(f, "asm: {e}"),
            AsipError::Sim(e) => write!(f, "sim: {e}"),
        }
    }
}

impl std::error::Error for AsipError {}

impl From<FftError> for AsipError {
    fn from(e: FftError) -> Self {
        AsipError::Fft(e)
    }
}
impl From<AsmError> for AsipError {
    fn from(e: AsmError) -> Self {
        AsipError::Asm(e)
    }
}
impl From<SimError> for AsipError {
    fn from(e: SimError) -> Self {
        AsipError::Sim(e)
    }
}

/// Result of one simulated transform.
#[derive(Debug, Clone)]
pub struct AsipRun {
    /// The spectrum in natural bin order (scaled by `1/N` by the
    /// per-stage datapath scaling).
    pub output: Vec<Complex<Q15>>,
    /// The raw hardware-order output as it sits in memory.
    pub output_transposed: Vec<Complex<Q15>>,
    /// Execution statistics (cycles, instruction classes, cache).
    pub stats: Stats,
}

/// Configuration of an ASIP run.
#[derive(Debug, Clone, Copy)]
pub struct AsipConfig {
    /// Latency model (shared with the baselines for fair comparison).
    pub timing: Timing,
    /// Program-generation options.
    pub options: ProgramOptions,
    /// Cycle budget before declaring a hang.
    pub max_cycles: u64,
}

impl Default for AsipConfig {
    fn default() -> Self {
        AsipConfig {
            timing: Timing::default(),
            options: ProgramOptions::default(),
            max_cycles: 500_000_000,
        }
    }
}

/// Quantises an `f64` signal into the ASIP's Q15 wire format, scaling
/// by `amplitude` to stay inside `[-1, 1)`.
pub fn quantize_input(input: &[C64], amplitude: f64) -> Vec<Complex<Q15>> {
    input.iter().map(|&c| Complex::from_c64(c * amplitude)).collect()
}

/// Runs the array-FFT ASIP program for `input` (already quantised).
///
/// Stages the input vector and the compressed pre-rotation table, runs
/// the generated Algorithm-1 program to `HALT`, and gathers the output.
///
/// # Errors
///
/// Returns [`AsipError`] for invalid sizes, generation failures or
/// simulator traps.
pub fn run_array_fft(
    input: &[Complex<Q15>],
    dir: Direction,
    cfg: &AsipConfig,
) -> Result<AsipRun, AsipError> {
    run_array_fft_with_machine_config(input, dir, cfg, &MachineConfig::default())
}

/// [`run_array_fft`] with explicit machine parameters (cache geometry,
/// streaming-port ablation flag, ...). Memory size and CRF capacity are
/// still derived from the transform size.
///
/// # Errors
///
/// As for [`run_array_fft`].
pub fn run_array_fft_with_machine_config(
    input: &[Complex<Q15>],
    dir: Direction,
    cfg: &AsipConfig,
    machine_cfg: &MachineConfig,
) -> Result<AsipRun, AsipError> {
    let n = input.len();
    let split = Split::for_size(n)?;
    let layout = Layout::for_size(n);
    let mut options = cfg.options;
    options.inverse = matches!(dir, Direction::Inverse);
    let program = generate_array_fft(&split, &layout, options)?;

    let mut machine = Machine::new(MachineConfig {
        mem_bytes: layout.mem_bytes.max(machine_cfg.mem_bytes),
        timing: cfg.timing,
        crf_capacity: split.p_size,
        ..*machine_cfg
    });
    machine.mem_mut().write_complex_slice(layout.in_base, input)?;
    stage_prerot_table(&mut machine, &layout)?;
    machine.load_program(program);
    machine.reset_stats();
    let stats = machine.run(cfg.max_cycles)?;

    let transposed = machine.mem().read_complex_slice(layout.out_base, n)?;
    let mut output = vec![Complex::zero(); n];
    for (addr, &v) in transposed.iter().enumerate() {
        output[transposed_to_natural_bin(&split, addr)] = v;
    }
    Ok(AsipRun { output, output_transposed: transposed, stats })
}

/// Writes the `N/8 + 1` compressed pre-rotation coefficients to the
/// table region, exactly as the host runtime of the real system would.
fn stage_prerot_table(machine: &mut Machine, layout: &Layout) -> Result<(), SimError> {
    for k in 0..=layout.n / 8 {
        machine
            .mem_mut()
            .write_complex(layout.table_base + 4 * k as u32, twiddle_q15(layout.n, k))?;
    }
    Ok(())
}

/// The golden prediction for [`run_array_fft`]: the `afft-core`
/// software model with the same fixed-point datapath. The ISS result
/// must match this **bit-exactly** (asserted by integration tests).
///
/// # Errors
///
/// Propagates planning errors.
pub fn golden_array_fft(
    input: &[Complex<Q15>],
    dir: Direction,
) -> Result<Vec<Complex<Q15>>, FftError> {
    let fft: ArrayFft<Q15> = ArrayFft::with_scaling(input.len(), Scaling::HalfPerStage)?;
    fft.process(input, dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_core::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_input(n: usize, seed: u64) -> Vec<Complex<Q15>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Complex::new(
                    Q15::from_f64(rng.gen_range(-0.9..0.9)),
                    Q15::from_f64(rng.gen_range(-0.9..0.9)),
                )
            })
            .collect()
    }

    #[test]
    fn iss_matches_golden_bit_exactly_64() {
        let input = random_input(64, 1);
        let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default()).unwrap();
        let golden = golden_array_fft(&input, Direction::Forward).unwrap();
        assert_eq!(run.output, golden, "ISS and software model disagree");
    }

    #[test]
    fn iss_matches_golden_bit_exactly_256() {
        let input = random_input(256, 2);
        let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default()).unwrap();
        let golden = golden_array_fft(&input, Direction::Forward).unwrap();
        assert_eq!(run.output, golden);
    }

    #[test]
    fn iss_output_approximates_true_dft() {
        let n = 128;
        let input = random_input(n, 3);
        let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default()).unwrap();
        let exact_in: Vec<C64> = input.iter().map(|c| c.to_c64()).collect();
        let want = dft_naive(&exact_in, Direction::Forward).unwrap();
        let got: Vec<C64> = run.output.iter().map(|c| c.to_c64() * n as f64).collect();
        let scale = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
        assert!(max_error(&got, &want) / scale < 0.03);
    }

    #[test]
    fn instruction_counts_match_algorithm_1() {
        let n = 1024;
        let input = random_input(n, 4);
        let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default()).unwrap();
        assert_eq!(run.stats.ldin, 1024);
        assert_eq!(run.stats.stout, 1024);
        assert_eq!(run.stats.but4, 1280);
        // Non-trivial pre-rotations only: (P-1)(Q-1) = 31*31.
        assert_eq!(run.stats.coef_fetches, 961);
        // Table-II-style counts: loads ~ N, stores ~ N.
        assert_eq!(run.stats.table_loads(), 1024);
        assert_eq!(run.stats.table_stores(), 1024);
    }

    #[test]
    fn inverse_round_trips() {
        let n = 64;
        let input = random_input(n, 5);
        let fwd = run_array_fft(&input, Direction::Forward, &AsipConfig::default()).unwrap();
        let back = run_array_fft(&fwd.output, Direction::Inverse, &AsipConfig::default()).unwrap();
        // Forward scales by 1/N, inverse by 1/N, and IDFT needs 1/N:
        // net output = input / N. Compare rescaled. Rescaling by N
        // amplifies the Q15 LSB to N/32768 per rounding step, and two
        // cascaded transforms stack those errors, so the worst-case
        // deviation sits near 0.1 for unlucky signals.
        let got: Vec<C64> = back.output.iter().map(|c| c.to_c64() * n as f64).collect();
        let want: Vec<C64> = input.iter().map(|c| c.to_c64()).collect();
        assert!(max_error(&got, &want) < 0.1);
    }
}
