//! IEEE-754 single-precision soft-float subroutines in the base ISA.
//!
//! The paper's Imple 1 baseline — "the standard pure software
//! implementation on the base PISA core" — spends almost all of its
//! 3.6 M cycles in compiler-supplied floating-point emulation. This
//! module generates that emulation: `__mulsf3`, `__addsf3` and
//! `__subsf3` routines implementing round-to-nearest-even with
//! flush-to-zero of subnormals, mirroring [`afft_num::ieee754`]
//! operation-for-operation (and therefore bit-exact against the host
//! FPU for normal values — asserted by tests that execute the routines
//! on the ISS).
//!
//! Calling convention: arguments in `a0`/`a1`, result in `v0`; the
//! routines are leaves clobbering `t0..t9`, `v1` and `at` only.

use afft_isa::{Asm, Instr, Reg};

/// Label of the multiply routine.
pub const MULSF: &str = "__mulsf3";
/// Label of the add routine.
pub const ADDSF: &str = "__addsf3";
/// Label of the subtract routine (negates `a1`, falls into add).
pub const SUBSF: &str = "__subsf3";

const A0: Reg = Reg::A0;
const A1: Reg = Reg::A1;
const V0: Reg = Reg::V0;
const V1: Reg = Reg::V1;
const T0: Reg = Reg::T0;
const T1: Reg = Reg::T1;
const T2: Reg = Reg::T2;
const T3: Reg = Reg::T3;
const T4: Reg = Reg::T4;
const T5: Reg = Reg::T5;
const T6: Reg = Reg::T6;
const T7: Reg = Reg::T7;
const T8: Reg = Reg::T8;
const T9: Reg = Reg::T9;

/// Emits all three routines at the current position. Call once per
/// program; the labels [`MULSF`], [`ADDSF`], [`SUBSF`] become `jal`
/// targets.
pub fn emit_softfloat_lib(a: &mut Asm) {
    emit_mulsf(a);
    emit_subsf_addsf(a);
}

/// Emits `__mulsf3`.
fn emit_mulsf(a: &mut Asm) {
    use Instr::*;
    a.label(MULSF);
    // Sign of the result.
    a.emit(Xor { rd: V1, rs: A0, rt: A1 });
    a.emit(Lui { rt: T9, imm: 0x8000 });
    a.emit(And { rd: V1, rs: V1, rt: T9 });
    // Exponents.
    a.emit(Srl { rd: T0, rt: A0, shamt: 23 });
    a.emit(Andi { rt: T0, rs: T0, imm: 0xff });
    a.emit(Srl { rd: T1, rt: A1, shamt: 23 });
    a.emit(Andi { rt: T1, rs: T1, imm: 0xff });
    // Zero / subnormal operands flush the product to signed zero.
    a.beq_to(T0, Reg::ZERO, "mul_ret_zero");
    a.beq_to(T1, Reg::ZERO, "mul_ret_zero");
    // Mantissas with the implicit one.
    a.emit(Lui { rt: T8, imm: 0x007f });
    a.emit(Ori { rt: T8, rs: T8, imm: 0xffff }); // 0x007f_ffff
    a.emit(Lui { rt: T7, imm: 0x0080 }); // implicit one
    a.emit(And { rd: T2, rs: A0, rt: T8 });
    a.emit(Or { rd: T2, rs: T2, rt: T7 });
    a.emit(And { rd: T3, rs: A1, rt: T8 });
    a.emit(Or { rd: T3, rs: T3, rt: T7 });
    // Biased exponent of the product.
    a.emit(Add { rd: T0, rs: T0, rt: T1 });
    a.emit(Addi { rt: T0, rs: T0, imm: -127 });
    // 48-bit product hi:lo.
    a.emit(Mul { rd: T4, rs: T2, rt: T3 });
    a.emit(Mulhu { rd: T5, rs: T2, rt: T3 });
    // man = prod >> 20 (27-or-28-bit), sticky from the dropped bits.
    a.emit(Sll { rd: T6, rt: T5, shamt: 12 });
    a.emit(Srl { rd: T1, rt: T4, shamt: 20 });
    a.emit(Or { rd: T6, rs: T6, rt: T1 });
    a.emit(Lui { rt: T1, imm: 0x000f });
    a.emit(Ori { rt: T1, rs: T1, imm: 0xffff }); // 0x000f_ffff
    a.emit(And { rd: T1, rs: T4, rt: T1 });
    a.beq_to(T1, Reg::ZERO, "mul_pack");
    a.emit(Ori { rt: T6, rs: T6, imm: 1 });
    a.label("mul_pack");
    emit_pack_round(a, "mul");
    a.emit(Jr { rs: Reg::RA });
    a.label("mul_ret_zero");
    a.mv(V0, V1);
    a.emit(Jr { rs: Reg::RA });
}

/// Emits `__subsf3` falling into `__addsf3`.
fn emit_subsf_addsf(a: &mut Asm) {
    use Instr::*;
    a.label(SUBSF);
    a.emit(Lui { rt: T9, imm: 0x8000 });
    a.emit(Xor { rd: A1, rs: A1, rt: T9 });
    a.label(ADDSF);
    a.emit(Lui { rt: T9, imm: 0x8000 });
    // Exponents; flush subnormal operands to signed zero.
    a.emit(Srl { rd: T0, rt: A0, shamt: 23 });
    a.emit(Andi { rt: T0, rs: T0, imm: 0xff });
    a.emit(Srl { rd: T1, rt: A1, shamt: 23 });
    a.emit(Andi { rt: T1, rs: T1, imm: 0xff });
    a.bne_to(T0, Reg::ZERO, "add_a_ok");
    a.emit(And { rd: A0, rs: A0, rt: T9 });
    a.label("add_a_ok");
    a.bne_to(T1, Reg::ZERO, "add_b_ok");
    a.emit(And { rd: A1, rs: A1, rt: T9 });
    a.label("add_b_ok");
    // Zero operands.
    a.emit(Sll { rd: T2, rt: A0, shamt: 1 });
    a.bne_to(T2, Reg::ZERO, "add_a_nonzero");
    a.emit(Sll { rd: T3, rt: A1, shamt: 1 });
    a.bne_to(T3, Reg::ZERO, "add_ret_b");
    a.emit(And { rd: V0, rs: A0, rt: A1 }); // +0 unless both -0
    a.emit(Jr { rs: Reg::RA });
    a.label("add_ret_b");
    a.mv(V0, A1);
    a.emit(Jr { rs: Reg::RA });
    a.label("add_a_nonzero");
    a.emit(Sll { rd: T3, rt: A1, shamt: 1 });
    a.bne_to(T3, Reg::ZERO, "add_both");
    a.mv(V0, A0);
    a.emit(Jr { rs: Reg::RA });
    a.label("add_both");
    // Order so |a0| >= |a1| (compare magnitudes via logical-shifted
    // bit patterns; swap operands and exponents if needed).
    a.emit(Sltu { rd: T4, rs: T2, rt: T3 });
    a.beq_to(T4, Reg::ZERO, "add_ordered");
    a.emit(Xor { rd: A0, rs: A0, rt: A1 });
    a.emit(Xor { rd: A1, rs: A0, rt: A1 });
    a.emit(Xor { rd: A0, rs: A0, rt: A1 });
    a.emit(Xor { rd: T0, rs: T0, rt: T1 });
    a.emit(Xor { rd: T1, rs: T0, rt: T1 });
    a.emit(Xor { rd: T0, rs: T0, rt: T1 });
    a.label("add_ordered");
    // Mantissas with implicit one, pre-shifted by the 3 guard bits.
    a.emit(Lui { rt: T8, imm: 0x007f });
    a.emit(Ori { rt: T8, rs: T8, imm: 0xffff });
    a.emit(Lui { rt: T7, imm: 0x0080 });
    a.emit(And { rd: T5, rs: A0, rt: T8 });
    a.emit(Or { rd: T5, rs: T5, rt: T7 });
    a.emit(Sll { rd: T5, rt: T5, shamt: 3 });
    a.emit(And { rd: T6, rs: A1, rt: T8 });
    a.emit(Or { rd: T6, rs: T6, rt: T7 });
    a.emit(Sll { rd: T6, rt: T6, shamt: 3 });
    // Alignment shift, clamped to 31.
    a.emit(Sub { rd: T2, rs: T0, rt: T1 });
    a.emit(Slti { rt: T3, rs: T2, imm: 32 });
    a.bne_to(T3, Reg::ZERO, "add_noclamp");
    a.li(T2, 31);
    a.label("add_noclamp");
    // Sticky-collecting right shift of the smaller mantissa.
    a.li(T4, 1);
    a.emit(Sllv { rd: T4, rt: T4, rs: T2 });
    a.emit(Addi { rt: T4, rs: T4, imm: -1 });
    a.emit(And { rd: T4, rs: T6, rt: T4 });
    a.emit(Srlv { rd: T6, rt: T6, rs: T2 });
    a.beq_to(T4, Reg::ZERO, "add_shifted");
    a.emit(Ori { rt: T6, rs: T6, imm: 1 });
    a.label("add_shifted");
    // Result sign = sign of the larger operand.
    a.emit(And { rd: V1, rs: A0, rt: T9 });
    a.emit(Xor { rd: T3, rs: A0, rt: A1 });
    a.emit(And { rd: T3, rs: T3, rt: T9 });
    a.beq_to(T3, Reg::ZERO, "add_same_sign");
    a.emit(Sub { rd: T6, rs: T5, rt: T6 });
    a.bne_to(T6, Reg::ZERO, "add_pack");
    a.li(V0, 0); // exact cancellation -> +0
    a.emit(Jr { rs: Reg::RA });
    a.label("add_same_sign");
    a.emit(Add { rd: T6, rs: T5, rt: T6 });
    a.label("add_pack");
    emit_pack_round(a, "add");
    a.emit(Jr { rs: Reg::RA });
}

/// Emits the shared normalise/round/pack tail. Inputs: mantissa with 3
/// guard bits in `t6` (non-zero), biased exponent in `t0`, sign bit in
/// `v1`. Output in `v0`. Clobbers `t1..t3`.
fn emit_pack_round(a: &mut Asm, prefix: &str) {
    use Instr::*;
    let l = |s: &str| format!("{prefix}_{s}");
    // Normalise down: while man >= 2^27, sticky-shift right.
    a.label(&l("norm_dn"));
    a.emit(Lui { rt: T1, imm: 0x0800 }); // 2^27
    a.emit(Sltu { rd: T2, rs: T6, rt: T1 });
    a.bne_to(T2, Reg::ZERO, &l("norm_up"));
    a.emit(Andi { rt: T3, rs: T6, imm: 1 });
    a.emit(Srl { rd: T6, rt: T6, shamt: 1 });
    a.emit(Or { rd: T6, rs: T6, rt: T3 });
    a.emit(Addi { rt: T0, rs: T0, imm: 1 });
    a.j_to(&l("norm_dn"));
    // Normalise up: while man < 2^26, shift left.
    a.label(&l("norm_up"));
    a.emit(Lui { rt: T1, imm: 0x0400 }); // 2^26
    a.emit(Sltu { rd: T2, rs: T6, rt: T1 });
    a.beq_to(T2, Reg::ZERO, &l("round"));
    a.emit(Sll { rd: T6, rt: T6, shamt: 1 });
    a.emit(Addi { rt: T0, rs: T0, imm: -1 });
    a.j_to(&l("norm_up"));
    // Round to nearest even on the 3 guard bits.
    a.label(&l("round"));
    a.emit(Andi { rt: T1, rs: T6, imm: 4 }); // guard
    a.emit(Srl { rd: T3, rt: T6, shamt: 3 }); // 24-bit mantissa
    a.beq_to(T1, Reg::ZERO, &l("rounded"));
    a.emit(Andi { rt: T2, rs: T6, imm: 3 }); // round|sticky
    a.bne_to(T2, Reg::ZERO, &l("inc"));
    a.emit(Andi { rt: T2, rs: T3, imm: 1 }); // lsb (ties-to-even)
    a.beq_to(T2, Reg::ZERO, &l("rounded"));
    a.label(&l("inc"));
    a.emit(Addi { rt: T3, rs: T3, imm: 1 });
    a.emit(Lui { rt: T1, imm: 0x0100 }); // 2^24
    a.bne_to(T3, T1, &l("rounded"));
    a.emit(Srl { rd: T3, rt: T3, shamt: 1 });
    a.emit(Addi { rt: T0, rs: T0, imm: 1 });
    a.label(&l("rounded"));
    // Flush / overflow / pack.
    a.blez_to(T0, &l("zero"));
    a.emit(Slti { rt: T1, rs: T0, imm: 255 });
    a.beq_to(T1, Reg::ZERO, &l("inf"));
    a.emit(Sll { rd: T0, rt: T0, shamt: 23 });
    a.emit(Lui { rt: T1, imm: 0x007f });
    a.emit(Ori { rt: T1, rs: T1, imm: 0xffff });
    a.emit(And { rd: T3, rs: T3, rt: T1 });
    a.emit(Or { rd: V0, rs: V1, rt: T0 });
    a.emit(Or { rd: V0, rs: V0, rt: T3 });
    a.j_to(&l("done"));
    a.label(&l("zero"));
    a.mv(V0, V1);
    a.j_to(&l("done"));
    a.label(&l("inf"));
    a.emit(Lui { rt: T1, imm: 0x7f80 });
    a.emit(Or { rd: V0, rs: V1, rt: T1 });
    a.label(&l("done"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_num::ieee754;
    use afft_sim::{Machine, MachineConfig};

    /// Runs one soft-float operation on the ISS.
    fn run_op(entry: &str, x: u32, y: u32) -> u32 {
        let mut a = Asm::new();
        // Load operands (full 32-bit constants), call, halt.
        a.emit(Instr::Lui { rt: A0, imm: (x >> 16) as u16 });
        a.emit(Instr::Ori { rt: A0, rs: A0, imm: x as u16 });
        a.emit(Instr::Lui { rt: A1, imm: (y >> 16) as u16 });
        a.emit(Instr::Ori { rt: A1, rs: A1, imm: y as u16 });
        a.jal_to(entry);
        a.emit(Instr::Halt);
        emit_softfloat_lib(&mut a);
        let mut m = Machine::new(MachineConfig::default());
        m.load_program(a.assemble().expect("softfloat lib assembles"));
        m.run(100_000).expect("softfloat op runs");
        m.reg(V0)
    }

    fn grid() -> Vec<f32> {
        let mut v = vec![0.0f32, 1.0, -1.0, 0.5, -0.5, 1.5, 3.25, -7.875, 0.1, -0.2, 100.25];
        for e in [-10, -3, 3, 10] {
            v.push(1.7f32 * 2f32.powi(e));
            v.push(-0.9f32 * 2f32.powi(e));
        }
        v
    }

    #[test]
    fn mul_matches_spec_on_grid() {
        for &x in &grid() {
            for &y in &grid() {
                let want = ieee754::mul(x.to_bits(), y.to_bits());
                let got = run_op(MULSF, x.to_bits(), y.to_bits());
                assert_eq!(got, want, "mul({x}, {y}): got {got:#010x} want {want:#010x}");
            }
        }
    }

    #[test]
    fn add_matches_spec_on_grid() {
        for &x in &grid() {
            for &y in &grid() {
                let want = ieee754::add(x.to_bits(), y.to_bits());
                let got = run_op(ADDSF, x.to_bits(), y.to_bits());
                assert_eq!(got, want, "add({x}, {y}): got {got:#010x} want {want:#010x}");
            }
        }
    }

    #[test]
    fn sub_matches_spec_on_sample() {
        for (x, y) in [(1.5f32, 0.25f32), (-3.0, 7.5), (0.1, 0.1), (1e-4, 2e-4)] {
            let want = ieee754::sub(x.to_bits(), y.to_bits());
            let got = run_op(SUBSF, x.to_bits(), y.to_bits());
            assert_eq!(got, want, "sub({x}, {y})");
        }
    }

    #[test]
    fn routines_cost_realistic_cycles() {
        // The -O0 soft-float regime of the paper's Imple 1: tens of
        // cycles per operation.
        let mut a = Asm::new();
        a.emit(Instr::Lui { rt: A0, imm: 0x3fc0 }); // 1.5
        a.emit(Instr::Lui { rt: A1, imm: 0x4010 }); // 2.25
        a.jal_to(MULSF);
        a.emit(Instr::Halt);
        emit_softfloat_lib(&mut a);
        let mut m = Machine::new(MachineConfig::default());
        m.load_program(a.assemble().unwrap());
        let s = m.run(10_000).unwrap();
        assert!(s.cycles > 30 && s.cycles < 200, "cycles {}", s.cycles);
    }
}
