//! Imple 1: the standard software radix-2 FFT on the base core, in
//! single-precision float, against the soft-float library — the
//! paper's "Standard SW FFT" baseline of Table II.
//!
//! The generator mirrors what an unoptimising compiler produces from
//! the textbook triple loop: every butterfly operand lives in a stack
//! slot, every float operation is a `jal` to `__addsf3`/`__subsf3`/
//! `__mulsf3`, and a bit-reversal permutation pass runs first. The
//! resulting dynamic profile (hundreds of cycles and ~25 loads per
//! butterfly) is the regime that makes the paper's Imple 1 ~870x
//! slower than the ASIP.

use crate::layout::Layout;
use crate::runner::AsipError;
use crate::softfloat::{emit_softfloat_lib, ADDSF, MULSF, SUBSF};
use afft_core::{Direction, FftError};
use afft_isa::{Asm, Instr, Program, Reg};
use afft_num::{Complex, C64};
use afft_sim::{Machine, MachineConfig, Stats, Timing};

const GP: Reg = Reg::GP; // float data base
const K0: Reg = Reg::K0; // twiddle table base
const K1: Reg = Reg::K1; // N
const FP: Reg = Reg::FP;

// Stack-frame slots (offsets from fp), -O0 style.
const WR: i16 = 0;
const WI: i16 = 4;
const AR: i16 = 8;
const AI: i16 = 12;
const BR: i16 = 16;
const BI: i16 = 20;
const TR: i16 = 24;
const TI: i16 = 28;
const TMP: i16 = 32;

/// Generates the Imple-1 program for an `n`-point float FFT.
///
/// Expects float data at `layout.float_base` (8 bytes per point,
/// natural order; transformed in place) and the `N/2`-entry complex
/// float twiddle table at `layout.ftw_base`.
///
/// # Errors
///
/// Returns [`FftError::InvalidSize`] unless `n` is a power of two
/// `>= 4`.
pub fn generate_software_fft(layout: &Layout) -> Result<Program, FftError> {
    let n = layout.n;
    if !n.is_power_of_two() || n < 4 {
        return Err(FftError::InvalidSize {
            n,
            reason: "software FFT needs a power of two >= 4",
            factor: None,
        });
    }
    let log2n = n.trailing_zeros();
    let mut a = Asm::new();
    use Instr::*;
    let (s0, s1, s2, s3, s4, s5, s6, s7) =
        (Reg::S0, Reg::S1, Reg::S2, Reg::S3, Reg::S4, Reg::S5, Reg::S6, Reg::S7);
    let (t0, t1, t2, t3, t4, t5, t6, t7, t8, t9) =
        (Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::T6, Reg::T7, Reg::T8, Reg::T9);

    // Prologue: bases and frame pointer.
    a.li(GP, layout.float_base as i32);
    a.li(K0, layout.ftw_base as i32);
    a.li(K1, n as i32);
    a.li(FP, layout.stack_top as i32 - 64);

    // ---- Bit-reversal permutation pass ----
    a.li(s0, 0);
    a.label("rev_i");
    a.mv(t0, s0);
    a.li(t2, 0);
    a.li(t1, log2n as i32);
    a.label("rev_bit");
    a.emit(Sll { rd: t2, rt: t2, shamt: 1 });
    a.emit(Andi { rt: t3, rs: t0, imm: 1 });
    a.emit(Or { rd: t2, rs: t2, rt: t3 });
    a.emit(Srl { rd: t0, rt: t0, shamt: 1 });
    a.emit(Addi { rt: t1, rs: t1, imm: -1 });
    a.bgtz_to(t1, "rev_bit");
    a.emit(Slt { rd: t3, rs: s0, rt: t2 });
    a.beq_to(t3, Reg::ZERO, "rev_next");
    a.emit(Sll { rd: t4, rt: s0, shamt: 3 });
    a.emit(Add { rd: t4, rs: t4, rt: GP });
    a.emit(Sll { rd: t5, rt: t2, shamt: 3 });
    a.emit(Add { rd: t5, rs: t5, rt: GP });
    a.emit(Lw { rt: t6, base: t4, offset: 0 });
    a.emit(Lw { rt: t7, base: t4, offset: 4 });
    a.emit(Lw { rt: t8, base: t5, offset: 0 });
    a.emit(Lw { rt: t9, base: t5, offset: 4 });
    a.emit(Sw { rt: t8, base: t4, offset: 0 });
    a.emit(Sw { rt: t9, base: t4, offset: 4 });
    a.emit(Sw { rt: t6, base: t5, offset: 0 });
    a.emit(Sw { rt: t7, base: t5, offset: 4 });
    a.label("rev_next");
    a.emit(Addi { rt: s0, rs: s0, imm: 1 });
    a.bne_to(s0, K1, "rev_i");

    // ---- Triple loop ----
    a.li(s0, 2); // len
    a.emit(Srl { rd: s7, rt: K1, shamt: 1 }); // tw stride = N/2
    a.label("len_loop");
    a.emit(Srl { rd: s1, rt: s0, shamt: 1 }); // half
    a.li(s2, 0); // start
    a.label("start_loop");
    a.emit(Sll { rd: s4, rt: s2, shamt: 3 });
    a.emit(Add { rd: s4, rs: s4, rt: GP }); // addr_a
    a.emit(Sll { rd: t0, rt: s1, shamt: 3 });
    a.emit(Add { rd: s5, rs: s4, rt: t0 }); // addr_b
    a.mv(s6, K0); // twiddle address
    a.li(s3, 0); // k
    a.label("k_loop");
    emit_butterfly(&mut a);
    a.emit(Addi { rt: s4, rs: s4, imm: 8 });
    a.emit(Addi { rt: s5, rs: s5, imm: 8 });
    a.emit(Sll { rd: t0, rt: s7, shamt: 3 });
    a.emit(Add { rd: s6, rs: s6, rt: t0 });
    a.emit(Addi { rt: s3, rs: s3, imm: 1 });
    a.bne_to(s3, s1, "k_loop");
    a.emit(Add { rd: s2, rs: s2, rt: s0 });
    a.bne_to(s2, K1, "start_loop");
    a.emit(Sll { rd: s0, rt: s0, shamt: 1 });
    a.emit(Srl { rd: s7, rt: s7, shamt: 1 });
    a.emit(Slt { rd: t0, rs: K1, rt: s0 }); // N < len -> done
    a.beq_to(t0, Reg::ZERO, "len_loop");
    a.emit(Halt);

    emit_softfloat_lib(&mut a);
    a.assemble().map_err(|e| FftError::InvalidDecomposition {
        reason: format!("software FFT program generation failed: {e}"),
    })
}

/// One -O0-style butterfly: spill everything to the frame, call the
/// soft-float routines for the 4 multiplies and 6 add/subs.
fn emit_butterfly(a: &mut Asm) {
    use Instr::*;
    let t0 = Reg::T0;
    // Spill the six inputs into the frame.
    for (slot, base, off) in [
        (WR, Reg::S6, 0i16),
        (WI, Reg::S6, 4),
        (AR, Reg::S4, 0),
        (AI, Reg::S4, 4),
        (BR, Reg::S5, 0),
        (BI, Reg::S5, 4),
    ] {
        a.emit(Lw { rt: t0, base, offset: off });
        a.emit(Sw { rt: t0, base: FP, offset: slot });
    }
    let call = |a: &mut Asm, op: &str, x: i16, y: i16| {
        a.emit(Lw { rt: Reg::A0, base: FP, offset: x });
        a.emit(Lw { rt: Reg::A1, base: FP, offset: y });
        a.jal_to(op);
    };
    // tr = br*wr - bi*wi
    call(a, MULSF, BR, WR);
    a.emit(Sw { rt: Reg::V0, base: FP, offset: TR });
    call(a, MULSF, BI, WI);
    a.emit(Sw { rt: Reg::V0, base: FP, offset: TMP });
    call(a, SUBSF, TR, TMP);
    a.emit(Sw { rt: Reg::V0, base: FP, offset: TR });
    // ti = br*wi + bi*wr
    call(a, MULSF, BR, WI);
    a.emit(Sw { rt: Reg::V0, base: FP, offset: TI });
    call(a, MULSF, BI, WR);
    a.emit(Sw { rt: Reg::V0, base: FP, offset: TMP });
    call(a, ADDSF, TI, TMP);
    a.emit(Sw { rt: Reg::V0, base: FP, offset: TI });
    // a' = a + t (stored straight back to the array)
    call(a, ADDSF, AR, TR);
    a.emit(Sw { rt: Reg::V0, base: Reg::S4, offset: 0 });
    call(a, ADDSF, AI, TI);
    a.emit(Sw { rt: Reg::V0, base: Reg::S4, offset: 4 });
    // b' = a - t
    call(a, SUBSF, AR, TR);
    a.emit(Sw { rt: Reg::V0, base: Reg::S5, offset: 0 });
    call(a, SUBSF, AI, TI);
    a.emit(Sw { rt: Reg::V0, base: Reg::S5, offset: 4 });
}

/// Result of an Imple-1 run.
#[derive(Debug, Clone)]
pub struct SwFftRun {
    /// Spectrum in natural order (converted from the f32 memory image).
    pub output: Vec<C64>,
    /// Execution statistics.
    pub stats: Stats,
}

/// Stages data + twiddles, runs the Imple-1 program, reads back the
/// spectrum.
///
/// # Errors
///
/// Returns [`AsipError`] for invalid sizes or simulator traps.
pub fn run_software_fft(
    input: &[C64],
    dir: Direction,
    timing: Timing,
    max_cycles: u64,
) -> Result<SwFftRun, AsipError> {
    let n = input.len();
    let layout = Layout::for_size(n);
    let program = generate_software_fft(&layout)?;
    let mut m = Machine::new(MachineConfig {
        mem_bytes: layout.mem_bytes,
        timing,
        ..MachineConfig::default()
    });
    for (i, &c) in input.iter().enumerate() {
        let base = layout.float_base + 8 * i as u32;
        m.mem_mut().write_u32(base, (c.re as f32).to_bits())?;
        m.mem_mut().write_u32(base + 4, (c.im as f32).to_bits())?;
    }
    for k in 0..n / 2 {
        let w = dir.twiddle(n, k);
        let base = layout.ftw_base + 8 * k as u32;
        m.mem_mut().write_u32(base, (w.re as f32).to_bits())?;
        m.mem_mut().write_u32(base + 4, (w.im as f32).to_bits())?;
    }
    m.load_program(program);
    m.reset_stats();
    let stats = m.run(max_cycles)?;
    let mut output = Vec::with_capacity(n);
    for i in 0..n {
        let base = layout.float_base + 8 * i as u32;
        let re = f32::from_bits(m.mem().read_u32(base)?);
        let im = f32::from_bits(m.mem().read_u32(base + 4)?);
        output.push(Complex::new(f64::from(re), f64::from(im)));
    }
    Ok(SwFftRun { output, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_core::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn software_fft_matches_reference_16() {
        let x = random_signal(16, 1);
        let run = run_software_fft(&x, Direction::Forward, Timing::default(), 50_000_000).unwrap();
        let want = dft_naive(&x, Direction::Forward).unwrap();
        assert!(max_error(&run.output, &want) < 1e-3, "f32 FFT deviates");
    }

    #[test]
    fn software_fft_matches_reference_64() {
        let x = random_signal(64, 2);
        let run = run_software_fft(&x, Direction::Forward, Timing::default(), 50_000_000).unwrap();
        let want = dft_naive(&x, Direction::Forward).unwrap();
        assert!(max_error(&run.output, &want) < 1e-2);
    }

    #[test]
    fn cycle_profile_is_soft_float_dominated() {
        let x = random_signal(64, 3);
        let run = run_software_fft(&x, Direction::Forward, Timing::default(), 50_000_000).unwrap();
        let butterflies = 64 / 2 * 6; // N/2 log2 N
        let per_bfly = run.stats.cycles as f64 / butterflies as f64;
        // The paper's Imple-1 regime: hundreds of cycles per butterfly.
        assert!(per_bfly > 300.0 && per_bfly < 1500.0, "cycles/butterfly = {per_bfly}");
        // And memory-heavy: > 15 loads per butterfly.
        assert!(run.stats.loads as f64 / butterflies as f64 > 15.0);
    }

    #[test]
    fn inverse_twiddles_give_inverse_transform() {
        let n = 16;
        let x = random_signal(n, 4);
        let fwd = run_software_fft(&x, Direction::Forward, Timing::default(), 50_000_000).unwrap();
        let inv = run_software_fft(&fwd.output, Direction::Inverse, Timing::default(), 50_000_000)
            .unwrap();
        let got: Vec<C64> = inv.output.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&got, &x) < 1e-2);
    }
}
