//! An *optimised* fixed-point software FFT on the base core — the
//! strongest software baseline the PISA core can field.
//!
//! The paper's Imple 1 is a float FFT paying ~700 cycles per butterfly
//! in soft-float emulation. A fair question is how much of the 866x
//! speedup is merely "don't use soft-float". This generator answers
//! it: a register-allocated Q15 FFT using the native multiplier,
//! halfword loads/stores on the packed wire format, per-stage
//! arithmetic scaling — essentially what `-O2` would produce from
//! good fixed-point C. It runs ~50 cycles per butterfly, and the ASIP
//! still beats it by an order of magnitude (see the `ablation` and
//! `baseline_scaling` experiments).

use crate::layout::Layout;
use crate::runner::AsipError;
use afft_core::{Direction, FftError};
use afft_isa::{Asm, Instr, Program, Reg};
use afft_num::{twiddle_q15, Complex, Q15};
use afft_sim::{Machine, MachineConfig, Stats, Timing};

/// Generates the optimised fixed-point FFT program.
///
/// Data: packed Q15 complex points (4 bytes) at `layout.in_base`,
/// transformed in place with per-stage `>> 1` scaling (output =
/// `DFT / N`); Q15 twiddles at `layout.table_base` (reusing the
/// pre-rotation region, `N/2` entries staged by the runner).
///
/// # Errors
///
/// Returns [`FftError::InvalidSize`] unless `n` is a power of two
/// `>= 4`.
pub fn generate_fixed_fft(layout: &Layout) -> Result<Program, FftError> {
    let n = layout.n;
    if !n.is_power_of_two() || n < 4 {
        return Err(FftError::InvalidSize {
            n,
            reason: "fixed FFT needs a power of two >= 4",
            factor: None,
        });
    }
    let log2n = n.trailing_zeros();
    let mut a = Asm::new();
    use Instr::*;
    let (s0, s1, s2, s3, s4, s5, s6, s7) =
        (Reg::S0, Reg::S1, Reg::S2, Reg::S3, Reg::S4, Reg::S5, Reg::S6, Reg::S7);
    let (t0, t1, t2, t3, t4, t5, t6, t7, t8, t9) =
        (Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::T6, Reg::T7, Reg::T8, Reg::T9);
    let (a0, a1, a2, a3) = (Reg::A0, Reg::A1, Reg::A2, Reg::A3);

    a.li(Reg::GP, layout.in_base as i32);
    a.li(Reg::K0, layout.table_base as i32);
    a.li(Reg::K1, n as i32);

    // Bit-reversal permutation (packed 32-bit words, lw/sw).
    a.li(s0, 0);
    a.label("rev_i");
    a.mv(t0, s0);
    a.li(t2, 0);
    a.li(t1, log2n as i32);
    a.label("rev_bit");
    a.emit(Sll { rd: t2, rt: t2, shamt: 1 });
    a.emit(Andi { rt: t3, rs: t0, imm: 1 });
    a.emit(Or { rd: t2, rs: t2, rt: t3 });
    a.emit(Srl { rd: t0, rt: t0, shamt: 1 });
    a.emit(Addi { rt: t1, rs: t1, imm: -1 });
    a.bgtz_to(t1, "rev_bit");
    a.emit(Slt { rd: t3, rs: s0, rt: t2 });
    a.beq_to(t3, Reg::ZERO, "rev_next");
    a.emit(Sll { rd: t4, rt: s0, shamt: 2 });
    a.emit(Add { rd: t4, rs: t4, rt: Reg::GP });
    a.emit(Sll { rd: t5, rt: t2, shamt: 2 });
    a.emit(Add { rd: t5, rs: t5, rt: Reg::GP });
    a.emit(Lw { rt: t6, base: t4, offset: 0 });
    a.emit(Lw { rt: t7, base: t5, offset: 0 });
    a.emit(Sw { rt: t7, base: t4, offset: 0 });
    a.emit(Sw { rt: t6, base: t5, offset: 0 });
    a.label("rev_next");
    a.emit(Addi { rt: s0, rs: s0, imm: 1 });
    a.bne_to(s0, Reg::K1, "rev_i");

    // Triple loop, fully register-allocated.
    a.li(s0, 2); // len
    a.emit(Srl { rd: s7, rt: Reg::K1, shamt: 1 }); // tw stride
    a.label("len_loop");
    a.emit(Srl { rd: s1, rt: s0, shamt: 1 }); // half
    a.li(s2, 0); // start
    a.label("start_loop");
    a.emit(Sll { rd: s4, rt: s2, shamt: 2 });
    a.emit(Add { rd: s4, rs: s4, rt: Reg::GP }); // addr a
    a.emit(Sll { rd: t0, rt: s1, shamt: 2 });
    a.emit(Add { rd: s5, rs: s4, rt: t0 }); // addr b
    a.mv(s6, Reg::K0); // twiddle addr
    a.li(s3, 0); // k
    a.label("k_loop");
    // Load operands as sign-extended halfwords.
    a.emit(Lh { rt: a0, base: s4, offset: 0 }); // ar
    a.emit(Lh { rt: a1, base: s4, offset: 2 }); // ai
    a.emit(Lh { rt: a2, base: s5, offset: 0 }); // br
    a.emit(Lh { rt: a3, base: s5, offset: 2 }); // bi
    a.emit(Lh { rt: t8, base: s6, offset: 0 }); // wr
    a.emit(Lh { rt: t9, base: s6, offset: 2 }); // wi
                                                // t = b * w in Q15: tr = (br wr - bi wi) >> 15.
    a.emit(Mul { rd: t0, rs: a2, rt: t8 });
    a.emit(Mul { rd: t1, rs: a3, rt: t9 });
    a.emit(Sub { rd: t0, rs: t0, rt: t1 });
    a.emit(Sra { rd: t0, rt: t0, shamt: 15 }); // tr
    a.emit(Mul { rd: t1, rs: a2, rt: t9 });
    a.emit(Mul { rd: t2, rs: a3, rt: t8 });
    a.emit(Add { rd: t1, rs: t1, rt: t2 });
    a.emit(Sra { rd: t1, rt: t1, shamt: 15 }); // ti
                                               // a' = (a + t) >> 1 ; b' = (a - t) >> 1 (per-stage scaling).
    a.emit(Add { rd: t2, rs: a0, rt: t0 });
    a.emit(Sra { rd: t2, rt: t2, shamt: 1 });
    a.emit(Add { rd: t3, rs: a1, rt: t1 });
    a.emit(Sra { rd: t3, rt: t3, shamt: 1 });
    a.emit(Sub { rd: t4, rs: a0, rt: t0 });
    a.emit(Sra { rd: t4, rt: t4, shamt: 1 });
    a.emit(Sub { rd: t5, rs: a1, rt: t1 });
    a.emit(Sra { rd: t5, rt: t5, shamt: 1 });
    a.emit(Sh { rt: t2, base: s4, offset: 0 });
    a.emit(Sh { rt: t3, base: s4, offset: 2 });
    a.emit(Sh { rt: t4, base: s5, offset: 0 });
    a.emit(Sh { rt: t5, base: s5, offset: 2 });
    // Advance.
    a.emit(Addi { rt: s4, rs: s4, imm: 4 });
    a.emit(Addi { rt: s5, rs: s5, imm: 4 });
    a.emit(Sll { rd: t0, rt: s7, shamt: 2 });
    a.emit(Add { rd: s6, rs: s6, rt: t0 });
    a.emit(Addi { rt: s3, rs: s3, imm: 1 });
    a.bne_to(s3, s1, "k_loop");
    a.emit(Add { rd: s2, rs: s2, rt: s0 });
    a.bne_to(s2, Reg::K1, "start_loop");
    a.emit(Sll { rd: s0, rt: s0, shamt: 1 });
    a.emit(Srl { rd: s7, rt: s7, shamt: 1 });
    a.emit(Slt { rd: t0, rs: Reg::K1, rt: s0 });
    a.beq_to(t0, Reg::ZERO, "len_loop");
    a.emit(Halt);

    a.assemble().map_err(|e| FftError::InvalidDecomposition {
        reason: format!("fixed FFT program generation failed: {e}"),
    })
}

/// Result of an optimised fixed-point software run.
#[derive(Debug, Clone)]
pub struct FixedFftRun {
    /// Spectrum in natural order, scaled by `1/N` (per-stage halving).
    pub output: Vec<Complex<Q15>>,
    /// Execution statistics.
    pub stats: Stats,
}

/// Stages data + twiddles, runs the optimised fixed-point FFT.
///
/// # Errors
///
/// Returns [`AsipError`] for invalid sizes or simulator traps.
pub fn run_fixed_fft(
    input: &[Complex<Q15>],
    dir: Direction,
    timing: Timing,
    max_cycles: u64,
) -> Result<FixedFftRun, AsipError> {
    let n = input.len();
    let layout = Layout::for_size(n);
    let program = generate_fixed_fft(&layout)?;
    let mut m = Machine::new(MachineConfig {
        mem_bytes: layout.mem_bytes,
        timing,
        ..MachineConfig::default()
    });
    m.mem_mut().write_complex_slice(layout.in_base, input)?;
    for k in 0..n / 2 {
        let mut w = twiddle_q15(n, k);
        if matches!(dir, Direction::Inverse) {
            w = w.conj();
        }
        m.mem_mut().write_complex(layout.table_base + 4 * k as u32, w)?;
    }
    m.load_program(program);
    m.reset_stats();
    let stats = m.run(max_cycles)?;
    let output = m.mem().read_complex_slice(layout.in_base, n)?;
    Ok(FixedFftRun { output, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_core::reference::{dft_naive, max_error};
    use afft_num::C64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn signal(n: usize, seed: u64) -> Vec<Complex<Q15>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Complex::new(
                    Q15::from_f64(rng.gen_range(-0.9..0.9)),
                    Q15::from_f64(rng.gen_range(-0.9..0.9)),
                )
            })
            .collect()
    }

    #[test]
    fn fixed_fft_matches_reference() {
        for n in [64usize, 256] {
            let x = signal(n, n as u64);
            let run = run_fixed_fft(&x, Direction::Forward, Timing::default(), 50_000_000).unwrap();
            let exact_in: Vec<C64> = x.iter().map(|c| c.to_c64()).collect();
            let want = dft_naive(&exact_in, Direction::Forward).unwrap();
            let got: Vec<C64> = run.output.iter().map(|c| c.to_c64() * n as f64).collect();
            let scale = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
            assert!(
                max_error(&got, &want) / scale < 0.03,
                "n={n}: rel err {}",
                max_error(&got, &want) / scale
            );
        }
    }

    #[test]
    fn sits_between_soft_float_and_the_asip() {
        use crate::runner::{run_array_fft, AsipConfig};
        let n = 256;
        let x = signal(n, 1);
        let fixed = run_fixed_fft(&x, Direction::Forward, Timing::default(), 50_000_000).unwrap();
        let asip = run_array_fft(&x, Direction::Forward, &AsipConfig::default()).unwrap();
        let butterflies = (n / 2) as u64 * 8;
        let per_bfly = fixed.stats.cycles as f64 / butterflies as f64;
        // Optimised software regime: tens of cycles per butterfly.
        assert!(per_bfly > 25.0 && per_bfly < 90.0, "cycles/butterfly {per_bfly}");
        // The ASIP still wins by an order of magnitude.
        let factor = fixed.stats.cycles as f64 / asip.stats.cycles as f64;
        assert!(factor > 8.0, "ASIP factor over optimised software: {factor}");
    }

    #[test]
    fn inverse_round_trip() {
        let n = 64;
        let x = signal(n, 2);
        let fwd = run_fixed_fft(&x, Direction::Forward, Timing::default(), 50_000_000).unwrap();
        let inv =
            run_fixed_fft(&fwd.output, Direction::Inverse, Timing::default(), 50_000_000).unwrap();
        let got: Vec<C64> = inv.output.iter().map(|c| c.to_c64() * n as f64).collect();
        let want: Vec<C64> = x.iter().map(|c| c.to_c64()).collect();
        assert!(max_error(&got, &want) < 0.06);
    }
}
