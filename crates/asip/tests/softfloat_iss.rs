//! Batch validation of the soft-float library *as executed by the
//! ISS*: one program loops over an operand table in memory, applies
//! add/sub/mul to every pair, and stores the results; the harness then
//! compares every word against the `afft_num::ieee754` specification
//! (itself host-FPU-exact for normals).

use afft_asip::softfloat::{emit_softfloat_lib, ADDSF, MULSF, SUBSF};
use afft_isa::{Asm, Instr, Reg};
use afft_num::ieee754;
use afft_sim::{Machine, MachineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a program that reads pairs from `pairs_base`, applies the
/// routine at `entry`, and writes results to `out_base`.
fn batch_program(entry: &str, count: usize, pairs_base: u32, out_base: u32) -> afft_isa::Program {
    let mut a = Asm::new();
    a.li(Reg::S0, pairs_base as i32);
    a.li(Reg::S1, out_base as i32);
    a.li(Reg::S2, count as i32);
    a.label("loop");
    a.emit(Instr::Lw { rt: Reg::A0, base: Reg::S0, offset: 0 });
    a.emit(Instr::Lw { rt: Reg::A1, base: Reg::S0, offset: 4 });
    a.jal_to(entry);
    a.emit(Instr::Sw { rt: Reg::V0, base: Reg::S1, offset: 0 });
    a.emit(Instr::Addi { rt: Reg::S0, rs: Reg::S0, imm: 8 });
    a.emit(Instr::Addi { rt: Reg::S1, rs: Reg::S1, imm: 4 });
    a.emit(Instr::Addi { rt: Reg::S2, rs: Reg::S2, imm: -1 });
    a.bgtz_to(Reg::S2, "loop");
    a.emit(Instr::Halt);
    emit_softfloat_lib(&mut a);
    a.assemble().expect("batch program assembles")
}

fn random_normals(count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = |rng: &mut StdRng| -> u32 {
        // Random sign/mantissa with a biased exponent kept in a wide
        // normal band so products/sums stay normal.
        let sign = u32::from(rng.gen_bool(0.5)) << 31;
        let exp = rng.gen_range(90u32..165) << 23;
        let man = rng.gen_range(0u32..(1 << 23));
        sign | exp | man
    };
    (0..count).map(|_| (gen(&mut rng), gen(&mut rng))).collect()
}

fn run_batch(entry: &str, pairs: &[(u32, u32)], spec: fn(u32, u32) -> u32) {
    let pairs_base = 0x2000u32;
    let out_base = 0x8000u32;
    let mut m = Machine::new(MachineConfig::default());
    for (i, &(x, y)) in pairs.iter().enumerate() {
        m.mem_mut().write_u32(pairs_base + 8 * i as u32, x).unwrap();
        m.mem_mut().write_u32(pairs_base + 8 * i as u32 + 4, y).unwrap();
    }
    m.load_program(batch_program(entry, pairs.len(), pairs_base, out_base));
    m.run(100_000_000).expect("batch run completes");
    for (i, &(x, y)) in pairs.iter().enumerate() {
        let got = m.mem().read_u32(out_base + 4 * i as u32).unwrap();
        let want = spec(x, y);
        assert_eq!(
            got,
            want,
            "pair {i}: op({}, {}) = {:#010x}, want {:#010x}",
            f32::from_bits(x),
            f32::from_bits(y),
            got,
            want
        );
    }
}

#[test]
fn iss_mul_matches_spec_on_500_random_pairs() {
    run_batch(MULSF, &random_normals(500, 1), ieee754::mul);
}

#[test]
fn iss_add_matches_spec_on_500_random_pairs() {
    run_batch(ADDSF, &random_normals(500, 2), ieee754::add);
}

#[test]
fn iss_sub_matches_spec_on_500_random_pairs() {
    run_batch(SUBSF, &random_normals(500, 3), ieee754::sub);
}

#[test]
fn iss_handles_near_cancellation_pairs() {
    // Pairs that differ only in the last mantissa bits: the hard
    // renormalisation path of the subtractor.
    let mut pairs = Vec::new();
    for m in 0..64u32 {
        let a = (127u32 << 23) | (m << 3);
        let b = (1u32 << 31) | (127u32 << 23) | (m << 3) | 1;
        pairs.push((a, b));
        pairs.push((b, a));
    }
    run_batch(ADDSF, &pairs, ieee754::add);
}

#[test]
fn iss_handles_extreme_alignment_pairs() {
    // Exponent gaps beyond the 24-bit mantissa: the sticky path.
    let mut pairs = Vec::new();
    for gap in [1u32, 23, 24, 25, 30, 60, 120] {
        let a = (150u32 << 23) | 0x2aaaaa;
        let b = ((150 - gap.min(120)) << 23) | 0x155555;
        pairs.push((a, b));
        pairs.push((b, a));
        pairs.push((a | (1 << 31), b));
    }
    run_batch(ADDSF, &pairs, ieee754::add);
}
