//! Comparison baselines for Table II: trace-driven models of the two
//! commercial platforms the paper measures against.
//!
//! Neither platform's full ISA is reproduced (nor is it needed): both
//! models execute the *actual memory-reference trace* of the FFT
//! algorithm each platform runs through a real cache simulator, and
//! apply the documented issue/overlap rules of the machine:
//!
//! * [`ti`] — TMS320C6713-style 8-issue VLIW: ~4 cycles per radix-2
//!   butterfly after software pipelining (the paper's own
//!   characterisation), small L1D, overlapped miss handling;
//! * [`xtensa`] — Xtensa + TIE FFT ASIP: butterfly computation fully
//!   hidden behind the load/store stream (the paper: "the bottleneck of
//!   their FFT algorithm is the load and store operations"), vector
//!   2-point memory operations.
//!
//! DESIGN.md §3 records why these substitutions preserve the paper's
//! observables (cycles, loads, stores, D-cache misses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ti;
pub mod xtensa;

use afft_sim::CacheStats;

/// The Table-II observables produced by a baseline model run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineRun {
    /// Total execution cycles.
    pub cycles: u64,
    /// Load instructions issued.
    pub loads: u64,
    /// Store instructions issued.
    pub stores: u64,
    /// Data-cache statistics.
    pub cache: CacheStats,
}

impl BaselineRun {
    /// Data-cache misses (the paper's fourth row).
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_run_accessors() {
        let r = BaselineRun {
            cycles: 100,
            loads: 10,
            stores: 5,
            cache: CacheStats { accesses: 15, misses: 3, ..CacheStats::default() },
        };
        assert_eq!(r.cache_misses(), 3);
    }
}
