//! Imple 2: the TI TMS320C6713 VLIW model.
//!
//! The C6713 is an 8-issue VLIW (2 LD/ST, 2 multiply, 4 ALU/branch
//! slots) running a hand-pipelined single-precision FFT. The paper
//! characterises it as "about 4 cycles per butterfly after software
//! pipelining"; the limiting resources are the two LD/ST slots (5
//! memory operations per butterfly: 2 data loads, 1 twiddle load, 2
//! stores => ceil(5/2) issue groups) and the small on-chip L1D that the
//! 8-byte float points thrash.
//!
//! The model replays the butterfly-ordered address trace (float data +
//! float twiddle table) through the L1D and issues butterflies at the
//! software-pipelined rate, with cache misses stalling at an overlapped
//! (pipelined-L2) cost.

use crate::BaselineRun;
use afft_sim::{Cache, CacheConfig};

/// Parameters of the C6713 model.
#[derive(Debug, Clone, Copy)]
pub struct TiConfig {
    /// L1 data cache (4 KB 2-way on the C671x family).
    pub cache: CacheConfig,
    /// Steady-state issue cycles per butterfly after pipelining.
    pub cycles_per_butterfly: u64,
    /// Effective stall per miss; L2 hits are pipelined so consecutive
    /// misses overlap (expressed in tenths of a cycle).
    pub miss_stall_tenths: u64,
    /// Pipeline fill/drain + loop setup per stage.
    pub stage_overhead: u64,
}

impl Default for TiConfig {
    fn default() -> Self {
        TiConfig {
            cache: CacheConfig::ti_4k(),
            cycles_per_butterfly: 4,
            miss_stall_tenths: 5,
            stage_overhead: 30,
        }
    }
}

/// Runs the Imple-2 model for an `n`-point single-precision FFT.
///
/// # Panics
///
/// Panics unless `n` is a power of two `>= 4`.
pub fn run_ti_fft(n: usize, cfg: &TiConfig) -> BaselineRun {
    assert!(n.is_power_of_two() && n >= 4, "ti model: invalid n {n}");
    let stages = n.trailing_zeros();
    let mut cache = Cache::new(cfg.cache);
    let data_base = 0x0u32;
    let tw_base = (8 * n) as u32; // float twiddles right after the data
    let point = 8u32; // complex float
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut cycles = 0u64;
    let mut stall_tenths = 0u64;

    for j in 1..=stages {
        let dist = 1usize << (stages - j);
        let block = dist * 2;
        cycles += cfg.stage_overhead;
        for start in (0..n).step_by(block) {
            for k in 0..dist {
                let a_addr = data_base + point * (start + k) as u32;
                let b_addr = data_base + point * (start + k + dist) as u32;
                let e = (k % dist) << (j - 1);
                let w_addr = tw_base + point * e as u32;
                for (addr, write) in [
                    (a_addr, false),
                    (b_addr, false),
                    (w_addr, false),
                    (a_addr, true),
                    (b_addr, true),
                ] {
                    if write {
                        stores += 1;
                    } else {
                        loads += 1;
                    }
                    if !cache.access(addr, write).hit {
                        stall_tenths += cfg.miss_stall_tenths;
                    }
                }
                cycles += cfg.cycles_per_butterfly;
            }
        }
    }
    cycles += stall_tenths / 10;
    BaselineRun { cycles, loads, stores, cache: cache.stats() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_rate_dominates() {
        let n = 1024u64;
        let r = run_ti_fft(n as usize, &TiConfig::default());
        let butterflies = n / 2 * 10;
        assert!(r.cycles >= butterflies * 4);
        // Paper: 24976 cycles for 1024 points.
        assert!((20_000..35_000).contains(&r.cycles), "cycles {}", r.cycles);
    }

    #[test]
    fn small_cache_thrashes() {
        // 8 KB of data + 8 KB of twiddles through a 4 KB L1D: the miss
        // count must be in the paper's thousands-regime (9944).
        let r = run_ti_fft(1024, &TiConfig::default());
        assert!(r.cache_misses() > 3_000, "misses {}", r.cache_misses());
        assert!(r.cache_misses() < 20_000, "misses {}", r.cache_misses());
    }

    #[test]
    fn op_counts_are_five_per_butterfly() {
        let n = 256;
        let r = run_ti_fft(n, &TiConfig::default());
        let b = (n as u64 / 2) * 8;
        assert_eq!(r.loads, 3 * b);
        assert_eq!(r.stores, 2 * b);
    }

    #[test]
    fn bigger_cache_removes_thrashing() {
        let cfg = TiConfig { cache: CacheConfig::pisa_32k(), ..TiConfig::default() };
        let small = run_ti_fft(1024, &TiConfig::default());
        let big = run_ti_fft(1024, &cfg);
        assert!(big.cache_misses() * 4 < small.cache_misses());
        assert!(big.cycles < small.cycles);
    }
}
