//! Imple 3: the Xtensa FFT ASIP model.
//!
//! Tensilica's application note parallelises the radix-2 butterfly with
//! TIE vector load/store instructions: while one pair computes, the
//! next pair streams through the load/store unit, so throughput is set
//! by the memory stream, not the datapath. We replay the exact address
//! trace of that schedule:
//!
//! * stages with butterfly distance `>= 2` process two neighbouring
//!   butterflies per iteration — two 2-point vector loads (the `a` pair
//!   and the `b` pair) and two vector stores;
//! * the final stage (distance 1) loads/stores one butterfly per
//!   vector operation;
//! * the butterfly itself is hidden: one cycle per memory operation on
//!   a hit, plus miss stalls, plus a small per-stage loop overhead.
//!
//! This reproduces the paper's Imple-3 regime (~5.5 K loads, ~5.3 K
//! stores, cycles tracking loads+stores) without modelling the Xtensa
//! ISA itself.

use crate::BaselineRun;
use afft_sim::{Cache, CacheConfig};

/// Parameters of the Xtensa model.
#[derive(Debug, Clone, Copy)]
pub struct XtensaConfig {
    /// L1 data cache (the paper's comparison used the same 32 KB class
    /// of cache as the PISA core).
    pub cache: CacheConfig,
    /// Stall cycles per cache miss.
    pub miss_penalty: u64,
    /// Loop/setup overhead per stage.
    pub stage_overhead: u64,
    /// Bytes per complex point (16-bit fixed-point pairs).
    pub point_bytes: u32,
}

impl Default for XtensaConfig {
    fn default() -> Self {
        XtensaConfig {
            cache: CacheConfig::pisa_32k(),
            miss_penalty: 6,
            stage_overhead: 12,
            point_bytes: 8,
        }
    }
}

/// Runs the Imple-3 model for an `n`-point FFT.
///
/// # Panics
///
/// Panics unless `n` is a power of two `>= 4`.
pub fn run_xtensa_fft(n: usize, cfg: &XtensaConfig) -> BaselineRun {
    assert!(n.is_power_of_two() && n >= 4, "xtensa model: invalid n {n}");
    let stages = n.trailing_zeros();
    let mut cache = Cache::new(cfg.cache);
    let pb = cfg.point_bytes;
    let base = 0x1000u32;
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut cycles = 0u64;
    let mem_op = |cache: &mut Cache, addr: u32, write: bool, cycles: &mut u64| {
        let a = cache.access(addr, write);
        *cycles += 1;
        if !a.hit {
            *cycles += cfg.miss_penalty;
        }
    };

    // In-place DIF stage walk (address trace only: the model carries no
    // data — the datapath is fully overlapped and bit-identical results
    // are already provided by the ASIP path and golden model).
    for j in 1..=stages {
        let dist = 1usize << (stages - j);
        cycles += cfg.stage_overhead;
        if dist >= 2 {
            // Two butterflies per iteration: vector pairs (a,a+1), (b,b+1).
            let block = dist * 2;
            for start in (0..n).step_by(block) {
                for k in (0..dist).step_by(2) {
                    let a_addr = base + pb * (start + k) as u32;
                    let b_addr = base + pb * (start + k + dist) as u32;
                    mem_op(&mut cache, a_addr, false, &mut cycles);
                    loads += 1;
                    mem_op(&mut cache, b_addr, false, &mut cycles);
                    loads += 1;
                    mem_op(&mut cache, a_addr, true, &mut cycles);
                    stores += 1;
                    mem_op(&mut cache, b_addr, true, &mut cycles);
                    stores += 1;
                }
            }
        } else {
            // Distance-1 stage: each butterfly is one adjacent pair.
            for k in (0..n).step_by(2) {
                let addr = base + pb * k as u32;
                mem_op(&mut cache, addr, false, &mut cycles);
                loads += 1;
                mem_op(&mut cache, addr, true, &mut cycles);
                stores += 1;
            }
        }
    }
    BaselineRun { cycles, loads, stores, cache: cache.stats() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_match_schedule_formula() {
        // Stages with dist >= 2: N/4 iterations x 2 loads; last stage:
        // N/2 loads. Total loads = (log2N - 1) * N/2 + N/2 = N/2 log2N.
        let n = 1024;
        let r = run_xtensa_fft(n, &XtensaConfig::default());
        assert_eq!(r.loads, (n as u64 / 2) * 10);
        assert_eq!(r.stores, (n as u64 / 2) * 10);
    }

    #[test]
    fn lands_in_the_paper_regime_for_1024() {
        let r = run_xtensa_fft(1024, &XtensaConfig::default());
        // Paper: 9705 cycles, 5494 loads, 5301 stores, 284 misses.
        assert!((4000..8000).contains(&r.loads), "loads {}", r.loads);
        assert!((4000..8000).contains(&r.stores), "stores {}", r.stores);
        assert!((8000..16000).contains(&r.cycles), "cycles {}", r.cycles);
        assert!(r.cache_misses() < 1000, "misses {}", r.cache_misses());
    }

    #[test]
    fn cycles_track_memory_stream() {
        let r = run_xtensa_fft(256, &XtensaConfig::default());
        // Memory-bound: cycles within 2x of loads+stores.
        assert!(r.cycles >= r.loads + r.stores);
        assert!(r.cycles < 2 * (r.loads + r.stores));
    }

    #[test]
    #[should_panic(expected = "invalid n")]
    fn rejects_non_pow2() {
        let _ = run_xtensa_fft(100, &XtensaConfig::default());
    }
}
