//! Scaling behaviour of the baseline models across transform sizes:
//! the regularities Table II's single column implies.

use afft_baselines::{ti, xtensa};

#[test]
fn ti_cycles_scale_with_n_log_n() {
    let cfg = ti::TiConfig::default();
    let mut prev_per_bfly = f64::INFINITY;
    for n in [128usize, 512, 2048] {
        let r = ti::run_ti_fft(n, &cfg);
        let butterflies = (n / 2) as f64 * (n.trailing_zeros() as f64);
        let per = r.cycles as f64 / butterflies;
        // Per-butterfly cost stays in the pipelined band (4..8 cycles
        // once miss stalls are folded in) and does not blow up with N.
        assert!((4.0..8.0).contains(&per), "n={n}: {per} cycles/butterfly");
        // And the amortised cost is non-increasing +/- noise.
        assert!(per < prev_per_bfly * 1.3, "n={n}");
        prev_per_bfly = per;
    }
}

#[test]
fn xtensa_is_memory_bound_at_every_size() {
    let cfg = xtensa::XtensaConfig::default();
    for n in [64usize, 256, 1024, 4096] {
        let r = xtensa::run_xtensa_fft(n, &cfg);
        let mem_ops = r.loads + r.stores;
        assert!(r.cycles >= mem_ops, "n={n}: compute leaked past the LSU");
        assert!(r.cycles < mem_ops + mem_ops / 2, "n={n}: too much non-memory time");
    }
}

#[test]
fn op_count_closed_forms_hold_across_sizes() {
    for n in [64usize, 128, 1024, 4096] {
        let log2n = n.trailing_zeros() as u64;
        let xt = xtensa::run_xtensa_fft(n, &xtensa::XtensaConfig::default());
        assert_eq!(xt.loads, (n as u64 / 2) * log2n, "xtensa loads n={n}");
        assert_eq!(xt.stores, (n as u64 / 2) * log2n, "xtensa stores n={n}");
        let t = ti::run_ti_fft(n, &ti::TiConfig::default());
        assert_eq!(t.loads, 3 * (n as u64 / 2) * log2n, "ti loads n={n}");
        assert_eq!(t.stores, 2 * (n as u64 / 2) * log2n, "ti stores n={n}");
    }
}

#[test]
fn ti_misses_grow_once_the_l1d_overflows() {
    let cfg = ti::TiConfig::default();
    // 256-point float data (2 KB data + 1 KB twiddles) fits the 4 KB
    // L1D: only compulsory misses. 1024-point (8 KB + 4 KB) thrashes.
    let small = ti::run_ti_fft(256, &cfg);
    let big = ti::run_ti_fft(1024, &cfg);
    let small_rate = small.cache_misses() as f64 / small.cache.accesses as f64;
    let big_rate = big.cache_misses() as f64 / big.cache.accesses as f64;
    assert!(big_rate > 5.0 * small_rate, "thrashing must show: {small_rate} -> {big_rate}");
}
