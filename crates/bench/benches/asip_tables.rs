//! Criterion benches behind the paper's tables, driven through the
//! engine registry: each bench measures the *simulation* of one table
//! cell, so `cargo bench` regenerates the cycle observables (printed
//! once per bench) alongside host-side timings.
//!
//! * `table1/<N>` — the array-ASIP run of Table I per size, through
//!   the `asip_iss` engine;
//! * `table2/<impl>` — the four Table II implementations at 1024
//!   points. The FFT-executing backends go through the registry; the
//!   TI and Xtensa columns are trace-driven *cycle models* (they carry
//!   no sample data, so they live outside the `FftEngine` interface),
//!   and Imple 1 is benched at 256 points to keep iteration time sane.

use afft_asip::engine::registry_with_asip;
use afft_asip::swfft::run_software_fft;
use afft_baselines::{ti, xtensa};
use afft_bench::workload::random_signal;
use afft_core::Direction;
use afft_sim::Timing;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_asip_cycles");
    g.sample_size(10);
    for n in [64usize, 128, 256, 512, 1024] {
        let mut registry = registry_with_asip(n).expect("registry");
        let engine = registry.get_mut("asip_iss").expect("asip engine");
        let input = random_signal(n, n as u64);
        let mut out = vec![afft_num::Complex::zero(); n];
        // Print the observable once so bench logs double as the table.
        engine.execute_into(&input, &mut out, Direction::Forward).expect("run");
        let cycles = engine.cycles().expect("cycle-accurate backend");
        println!(
            "[table1] N={n}: {} cycles, {:.1} Mbps@300MHz",
            cycles,
            afft_sim::throughput_mbps(n, cycles, 300.0)
        );
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                engine.execute_into(black_box(&input), &mut out, Direction::Forward).expect("run")
            });
        });
    }
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_implementations");
    g.sample_size(10);

    let n = 1024usize;
    let mut registry = registry_with_asip(n).expect("registry");
    let input = random_signal(n, 1);
    let imple4 = registry.get_mut("asip_iss").expect("asip engine");
    let mut out = vec![afft_num::Complex::zero(); n];
    g.bench_function("imple4_array_asip_1024", |b| {
        b.iter(|| {
            imple4.execute_into(black_box(&input), &mut out, Direction::Forward).expect("run")
        });
    });
    g.bench_function("imple3_xtensa_1024", |b| {
        b.iter(|| xtensa::run_xtensa_fft(black_box(n), &xtensa::XtensaConfig::default()));
    });
    g.bench_function("imple2_ti_1024", |b| {
        b.iter(|| ti::run_ti_fft(black_box(n), &ti::TiConfig::default()));
    });
    let small = random_signal(256, 2);
    g.bench_function("imple1_soft_float_256", |b| {
        b.iter(|| {
            run_software_fft(black_box(&small), Direction::Forward, Timing::default(), 50_000_000)
                .expect("run")
        });
    });
    g.finish();
}

criterion_group!(benches, bench_table1, bench_table2);
criterion_main!(benches);
