//! Criterion benches of the software FFT kernels (host-side
//! performance of the library itself: golden model, reference FFTs,
//! cached FFT, address generation).

use afft_bench::workload::random_signal;
use afft_core::address::stage_butterflies;
use afft_core::cached::cached_fft;
use afft_core::reference::{fft_radix2_dit_f64, Direction};
use afft_core::rom::PrerotTable;
use afft_core::ArrayFft;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_array_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("array_fft_f64");
    for n in [64usize, 256, 1024, 4096] {
        let fft: ArrayFft<f64> = ArrayFft::new(n).expect("plan");
        let x = random_signal(n, n as u64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fft.process(black_box(&x), Direction::Forward).expect("process"));
        });
    }
    g.finish();
}

fn bench_radix2(c: &mut Criterion) {
    let mut g = c.benchmark_group("radix2_dit_f64");
    for n in [64usize, 1024, 4096] {
        let x = random_signal(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = x.clone();
                fft_radix2_dit_f64(&mut d, Direction::Forward).expect("fft");
                black_box(d)
            });
        });
    }
    g.finish();
}

fn bench_cached_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("cached_fft_baas");
    for n in [256usize, 1024] {
        let x = random_signal(n, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| cached_fft(black_box(&x), Direction::Forward).expect("fft"));
        });
    }
    g.finish();
}

fn bench_address_generation(c: &mut Criterion) {
    // The AC closed forms: per-stage address generation cost.
    c.bench_function("ac_stage_butterflies_p6", |b| {
        b.iter(|| {
            for j in 1..=6 {
                black_box(stage_butterflies(6, j));
            }
        });
    });
    let table: PrerotTable<f64> = PrerotTable::new(1024).expect("table");
    c.bench_function("prerot_resolve_1024", |b| {
        b.iter(|| {
            for e in 0..1024usize {
                black_box(table.resolve(e));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_array_fft,
    bench_radix2,
    bench_cached_fft,
    bench_address_generation
);
criterion_main!(benches);
