//! Criterion benches of the software FFT kernels, driven through the
//! [`EngineRegistry`]: every registered backend is benched on the
//! zero-allocation `execute_into` path (plus the allocating `execute`
//! wrapper on `array_fft`, to keep the cost of the convenience path
//! visible), plus the address-generation closed forms.

use afft_bench::workload::random_signal;
use afft_core::address::stage_butterflies;
use afft_core::engine::EngineRegistry;
use afft_core::rom::PrerotTable;
use afft_core::Direction;
use afft_num::Complex;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    for n in [64usize, 256, 1024, 4096] {
        let mut registry = EngineRegistry::standard(n).expect("registry");
        let x = random_signal(n, n as u64);
        let mut out = vec![Complex::zero(); n];
        let mut g = c.benchmark_group(&format!("engines_{n}"));
        for engine in registry.engines_mut() {
            // The O(N^2) reference dominates wall-clock at large sizes;
            // bench it where it is still the same order as the FFTs.
            if engine.name() == "dft_naive" && n > 1024 {
                continue;
            }
            g.bench_with_input(BenchmarkId::new(engine.name(), n), &x, |b, x| {
                b.iter(|| {
                    engine
                        .execute_into(black_box(x), &mut out, Direction::Forward)
                        .expect("execute_into")
                });
            });
            if engine.name() == "array_fft" {
                // The `execute` wrapper (one output allocation over the
                // same fast path) — named to match the throughput bin's
                // `wrap/s` arm, not its fully-allocating `alloc/s` arm.
                g.bench_with_input(BenchmarkId::new("array_fft_wrap", n), &x, |b, x| {
                    b.iter(|| engine.execute(black_box(x), Direction::Forward).expect("execute"));
                });
            }
        }
        g.finish();
    }
}

fn bench_address_generation(c: &mut Criterion) {
    // The AC closed forms: per-stage address generation cost.
    c.bench_function("ac_stage_butterflies_p6", |b| {
        b.iter(|| {
            for j in 1..=6 {
                black_box(stage_butterflies(6, j));
            }
        });
    });
    let table: PrerotTable<f64> = PrerotTable::new(1024).expect("table");
    c.bench_function("prerot_resolve_1024", |b| {
        b.iter(|| {
            for e in 0..1024usize {
                black_box(table.resolve(e));
            }
        });
    });
}

criterion_group!(benches, bench_engines, bench_address_generation);
criterion_main!(benches);
