//! Experiment E6 — ablations of the design choices DESIGN.md calls out,
//! all at 1024 points:
//!
//! 1. **CRF streaming port vs cached custom ops** — what the custom
//!    register file buys over routing `LDIN`/`STOUT` through the
//!    D-cache;
//! 2. **straight-line vs looped group code** — the paper's per-size
//!    recompilation against generic loop control;
//! 3. **multiply-on-store pre-rotation vs none** — the cycle cost of
//!    the inter-epoch rotation (run with rotation disabled computes a
//!    different transform; only the cost is compared);
//! 4. **memory-traffic comparison** — array/cached/MCFFT/plain FFT
//!    loads+stores (the paper's Section II motivation).

use afft_asip::program::{ProgramOptions, UnrollStyle};
use afft_asip::runner::{run_array_fft, AsipConfig};
use afft_bench::workload::random_signal_q15;
use afft_core::cached::{cached_fft, plain_fft_traffic};
use afft_core::mcfft::Epochs;
use afft_core::Direction;
use afft_sim::{MachineConfig, Timing};

fn run_with(
    input: &[afft_num::CQ15],
    options: ProgramOptions,
    custom_ops_cached: bool,
) -> afft_sim::Stats {
    // Reuse the runner but with a tweaked machine: easiest through the
    // public API knobs.
    let cfg = AsipConfig { timing: Timing::default(), options, max_cycles: 500_000_000 };
    if custom_ops_cached {
        afft_asip::runner::run_array_fft_with_machine_config(
            input,
            Direction::Forward,
            &cfg,
            &MachineConfig { custom_ops_cached: true, ..MachineConfig::default() },
        )
        .expect("ablation run")
        .stats
    } else {
        run_array_fft(input, Direction::Forward, &cfg).expect("ablation run").stats
    }
}

fn main() {
    let n = 1024usize;
    let input = random_signal_q15(n, 42);
    println!("Ablations at N = {n}");
    println!();

    let base = run_with(&input, ProgramOptions::default(), false);
    println!("baseline (streaming port, straight-line, pre-rotation on):");
    println!("  cycles {}  misses {}", base.cycles, base.cache_misses());
    println!();

    let cached = run_with(&input, ProgramOptions::default(), true);
    println!("1. LDIN/STOUT through the D-cache instead of the streaming port:");
    println!(
        "  cycles {} ({:+.1}%)  misses {} (baseline {})",
        cached.cycles,
        100.0 * (cached.cycles as f64 / base.cycles as f64 - 1.0),
        cached.cache_misses(),
        base.cache_misses(),
    );
    println!();

    let looped = run_with(
        &input,
        ProgramOptions { unroll: UnrollStyle::GroupLoop, ..ProgramOptions::default() },
        false,
    );
    println!("2. software group loop instead of straight-line code:");
    println!(
        "  cycles {} ({:+.1}%)  extra branch instructions {}",
        looped.cycles,
        100.0 * (looped.cycles as f64 / base.cycles as f64 - 1.0),
        looped.branches,
    );
    println!();

    let noprerot =
        run_with(&input, ProgramOptions { skip_prerot: true, ..ProgramOptions::default() }, false);
    println!("3. pre-rotation disabled (transform intentionally wrong; cost only):");
    println!(
        "  cycles {}  =>  multiply-on-store costs {} cycles ({:.1}% of the run)",
        noprerot.cycles,
        base.cycles - noprerot.cycles,
        100.0 * (base.cycles - noprerot.cycles) as f64 / base.cycles as f64,
    );
    println!();

    let fixed_sw = afft_asip::swfft_fixed::run_fixed_fft(
        &input,
        Direction::Forward,
        Timing::default(),
        100_000_000,
    )
    .expect("fixed software FFT");
    println!("4. optimised fixed-point *software* FFT on the same base core:");
    println!(
        "  cycles {}  =>  the custom hardware is still worth {:.1}X beyond dropping soft-float",
        fixed_sw.stats.cycles,
        fixed_sw.stats.cycles as f64 / base.cycles as f64,
    );
    println!();

    println!("5. main-memory traffic (complex points moved), N = {n}:");
    let x = afft_bench::workload::random_signal(n, 7);
    let cached_run = cached_fft(&x, Direction::Forward).expect("cached fft");
    let plain = plain_fft_traffic(n);
    let mc3 = Epochs::new(n, &[16, 8, 8]).expect("valid epochs");
    println!("  plain in-place FFT : {:>6} (N log2 N per direction)", plain.total());
    println!("  cached FFT (Baas)  : {:>6}", cached_run.traffic.total());
    println!("  MCFFT 3 epochs     : {:>6}", mc3.traffic().total());
    println!(
        "  array ASIP         : {:>6} (LDIN+STOUT beats x 2 points)",
        2 * (base.ldin + base.stout)
    );
}
