//! Extension experiment — Table II across sizes: how the four
//! implementations' cycle counts scale from 64 to 4096 points (the
//! paper reports 1024 only; this shows the crossover-free dominance of
//! the array ASIP over the whole WiMAX/UWB range).

use afft_asip::runner::{run_array_fft, AsipConfig};
use afft_asip::swfft::run_software_fft;
use afft_baselines::{ti, xtensa};
use afft_bench::row;
use afft_bench::workload::{random_signal, random_signal_q15};
use afft_core::Direction;
use afft_sim::Timing;

fn main() {
    println!("cycles across sizes (Imple1 capped at 1024 for runtime)");
    println!();
    let widths = [6usize, 12, 12, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "N".into(),
                "Imple1 SW".into(),
                "Imple2 TI".into(),
                "Imple3 Xt".into(),
                "Imple4 ours".into(),
                "best/ours".into(),
            ],
            &widths
        )
    );
    for n in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let ours =
            run_array_fft(&random_signal_q15(n, 1), Direction::Forward, &AsipConfig::default())
                .expect("asip")
                .stats
                .cycles;
        let ti_c = ti::run_ti_fft(n, &ti::TiConfig::default()).cycles;
        let xt_c = xtensa::run_xtensa_fft(n, &xtensa::XtensaConfig::default()).cycles;
        let sw_c = if n <= 1024 {
            Some(
                run_software_fft(
                    &random_signal(n, 1),
                    Direction::Forward,
                    Timing::default(),
                    100_000_000,
                )
                .expect("sw")
                .stats
                .cycles,
            )
        } else {
            None
        };
        let best_other = ti_c.min(xt_c);
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    sw_c.map_or("-".into(), |c| c.to_string()),
                    ti_c.to_string(),
                    xt_c.to_string(),
                    ours.to_string(),
                    format!("{:.2}X", best_other as f64 / ours as f64),
                ],
                &widths
            )
        );
        assert!(ours < xt_c && ours < ti_c, "the array ASIP must win at N={n}");
    }
    println!();
    println!("no crossover: the array ASIP wins at every size (paper's scalability claim)");
}
