//! Experiment E8 — the backend survey: every registered
//! [`FftEngine`](afft_core::engine::FftEngine) (software models plus
//! the cycle-accurate ASIP ISS) on one signal per size, with deviation
//! from the golden DFT, modelled memory traffic and cycle counts.
//!
//! This is the registry in one screen: the Table II memory-traffic
//! story (plain FFT moves `N log2 N` points each way, the epoch
//! structures `2N`) and the ASIP's cycle counts, with no
//! backend-specific call sites anywhere in the harness.

use afft_bench::paper::{render_survey, survey};

fn main() {
    for n in [64usize, 256, 1024, 4096] {
        println!("== backend survey at N = {n} ==");
        match survey(n, n as u64) {
            Ok(reports) => {
                print!("{}", render_survey(&reports));
                let ok = reports.iter().all(|r| r.within_tolerance());
                println!("all {} backends within tolerance: {}", reports.len(), ok);
                assert!(ok, "a backend deviated beyond its declared tolerance");
            }
            Err(e) => println!("survey failed: {e}"),
        }
        println!();
    }
}
