//! Experiment E3 — regenerates the paper's **Section IV synthesis
//! numbers**: gate counts, power and critical path of the custom
//! hardware, plus a P-scaling sweep extension.

use afft_bench::paper::hw;
use afft_bench::row;
use afft_hwmodel::{asip_cost, TechLibrary, PISA_CORE_GATES};

fn main() {
    let lib = TechLibrary::tsmc018();
    let c = asip_cost(&lib, 32);
    println!("Section IV hardware cost (P = 32, 1024-point configuration)");
    println!();
    let widths = [26usize, 12, 12];
    println!("{}", row(&["metric".into(), "model".into(), "paper".into()], &widths));
    println!(
        "{}",
        row(
            &["BU+AC gates".into(), format!("{:.0}", c.bu_ac_gates), hw::BU_AC_GATES.to_string()],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "CRF+ROM gates".into(),
                format!("{:.0}", c.crf_rom_gates),
                hw::CRF_ROM_GATES.to_string()
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "total extra gates".into(),
                c.total_gates().to_string(),
                (hw::BU_AC_GATES + hw::CRF_ROM_GATES).to_string()
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "BU+AC power @300MHz (mW)".into(),
                format!("{:.2}", c.bu_ac_power_mw),
                format!("{:.2}", hw::BU_AC_POWER_MW)
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "BU critical path (ns)".into(),
                format!("{:.2}", c.critical_path_ns),
                format!("{:.2}", hw::BU_CRITICAL_NS)
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "PISA base core gates".into(),
                PISA_CORE_GATES.to_string(),
                hw::PISA_GATES.to_string()
            ],
            &widths
        )
    );
    println!();
    println!(
        "area overhead vs base core: {:.1}%  (paper: 33K / 106K = 31.1%)",
        100.0 * c.overhead_vs_pisa()
    );
    println!(
        "max clock from critical path: {:.0} MHz (paper: \"up to 300 MHz\")",
        c.max_clock_mhz()
    );

    println!();
    {
        use afft_asip::runner::{run_array_fft, AsipConfig};
        use afft_bench::workload::random_signal_q15;
        use afft_core::Direction;
        use afft_hwmodel::energy_per_transform_nj;
        let run =
            run_array_fft(&random_signal_q15(1024, 1), Direction::Forward, &AsipConfig::default())
                .expect("ASIP run");
        println!(
            "energy per 1024-point FFT (custom hardware, 300 MHz): {:.0} nJ ({} cycles)",
            energy_per_transform_nj(&c, run.stats.cycles, 300.0),
            run.stats.cycles
        );
    }

    println!();
    println!("extension: scaling of the custom hardware with CRF size P");
    let widths = [6usize, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &["P".into(), "BU+AC".into(), "CRF+ROM".into(), "total".into(), "overhead%".into()],
            &widths
        )
    );
    for p in [8usize, 16, 32, 64, 128] {
        let c = asip_cost(&lib, p);
        println!(
            "{}",
            row(
                &[
                    p.to_string(),
                    format!("{:.0}", c.bu_ac_gates),
                    format!("{:.0}", c.crf_rom_gates),
                    c.total_gates().to_string(),
                    format!("{:.1}", 100.0 * c.overhead_vs_pisa()),
                ],
                &widths
            )
        );
    }
}
