//! Experiment E5 — numerically verifies the paper's **Fig. 3 matrix
//! identity** `P_{j+1} B_j = L_j A P_j` (and the conjugation form
//! `B_j = S_j^{-1} M_j S_j`) for every stage of every supported group
//! size, and checks that the composed stages equal the DFT matrix.

use afft_core::matrix::{
    check_conjugation_identity, check_paper_identity, stage_operator, CMatrix,
};
use afft_core::reference::Direction;

fn main() {
    println!("Fig. 3 matrix identities (max |entry| deviation; 0 = identity holds)");
    println!();
    println!("{:>4} {:>6} {:>24} {:>24}", "P", "stage", "B = S^-1 M S", "S' B = L M S");
    let mut worst: f64 = 0.0;
    for p in 3..=7u32 {
        for j in 1..=p {
            let d1 = check_conjugation_identity(p, j);
            let d2 = if j < p { check_paper_identity(p, j) } else { f64::NAN };
            worst = worst.max(d1).max(if d2.is_nan() { 0.0 } else { d2 });
            let d2s = if d2.is_nan() { "-".to_string() } else { format!("{d2:.3e}") };
            println!("{:>4} {:>6} {:>24.3e} {:>24}", 1 << p, j, d1, d2s);
        }
    }
    println!();
    println!("worst deviation over all cases: {worst:.3e}");

    // Composition check: product of all stage operators equals R * DFT.
    for p in [3u32, 4, 5] {
        let n = 1usize << p;
        let mut acc = CMatrix::identity(n);
        for j in 1..=p {
            acc = stage_operator(p, j, Direction::Forward).matmul(&acc);
        }
        let mut want = CMatrix::zeros(n);
        for a in 0..n {
            let s = afft_core::bits::bit_reverse(a, p);
            for m in 0..n {
                want[(a, m)] = afft_num::twiddle(n, (s * m) % n);
            }
        }
        println!(
            "stage composition == bit-reversed {n}-point DFT matrix: deviation {:.3e}",
            acc.max_diff(&want)
        );
    }
}
