//! Experiment E12 — the price of the wire: the `afft_net` TCP serving
//! path versus direct pipeline submission, on the WiMAX-256 modulation
//! channel both run:
//!
//! * `direct` — symbols into a [`StreamPipeline`] from the same
//!   process: submit/recv with recycled buffers, no sockets anywhere;
//! * `tcp` — the same symbols through a loopback `afft_net` server:
//!   framed over a real socket, parsed by a handler thread, submitted
//!   to an identical pipeline, routed back as result frames. Runs a
//!   16-frame client window so the wire and the workers overlap.
//!
//! A third sub-run floods a deliberately shallow server (1 worker,
//! 2-deep budget, `dft_naive`) to demonstrate protocol-level load
//! shedding: the client must observe `RETRY_AFTER` refusals, and the
//! ledger — results + sheds = frames sent, results = frames the
//! pipeline accepted — must balance exactly. That balance is asserted
//! on every run, smoke included; the throughput ratio is reported but
//! carries no acceptance bar (a loopback hop has no business being as
//! fast as a function call).
//!
//! ```text
//! cargo run -p afft-bench --release --bin net            # full run
//! cargo run -p afft-bench --release --bin net -- --smoke # CI subset
//! ```
//!
//! Every run (smoke included) writes `BENCH_net.json`: both arms'
//! frames/sec, the flood ledger, and the server's own admin stats
//! document embedded verbatim — the same JSON a live `STATS` frame
//! returns, schema-checked by CI.

use afft_core::engine::EngineRegistry;
use afft_core::Direction;
use afft_net::{NetClient, NetEvent, NetServer};
use afft_num::{Complex, C64};
use afft_obs::json;
use afft_stream::{ChannelOp, ChannelSpec, StreamPipeline};
use std::time::Instant;

const N: usize = 256;
const CP: usize = 64;
/// Client-side submission window for the TCP arm: enough in flight to
/// overlap the wire with the workers without running into the server's
/// per-connection outstanding cap.
const WINDOW: u64 = 16;

fn qpsk_subcarriers(n: usize, seed: u64) -> Vec<C64> {
    (0..n)
        .map(|i| {
            let h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i as u64);
            let re = if h & 1 == 0 { 1.0 } else { -1.0 };
            let im = if h & 2 == 0 { 1.0 } else { -1.0 };
            Complex::new(re, im) * std::f64::consts::FRAC_1_SQRT_2
        })
        .collect()
}

/// Direct arm: one pass of `frames` symbols through a plain pipeline,
/// returning frames/sec.
fn direct_pass(
    pipeline: &StreamPipeline,
    ch: afft_stream::ChannelId,
    frames: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut input = qpsk_subcarriers(N, 1);
    let mut output = vec![Complex::zero(); N + CP];
    let start = Instant::now();
    for _ in 0..frames {
        pipeline.submit(ch, input, output).map_err(|e| e.to_string())?;
        let done = pipeline.recv(ch).expect("symbol completes");
        assert!(done.error.is_none());
        input = done.input;
        output = done.output;
    }
    Ok(frames as f64 / start.elapsed().as_secs_f64())
}

/// TCP arm: one pass of `frames` symbols through the loopback server
/// with a [`WINDOW`]-frame client window, returning frames/sec.
fn tcp_pass(
    client: &mut NetClient,
    ch: u16,
    frames: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let subcarriers = qpsk_subcarriers(N, 1);
    let mut received = 0u64;
    let start = Instant::now();
    for seq in 0..frames {
        client.submit(ch, seq, &subcarriers)?;
        if seq >= WINDOW {
            match client.recv_event()? {
                NetEvent::Result { samples, .. } => {
                    assert_eq!(samples.len(), N + CP);
                    received += 1;
                }
                other => return Err(format!("tcp arm: unexpected {other:?}").into()),
            }
        }
    }
    while received < frames {
        match client.recv_event()? {
            NetEvent::Result { .. } => received += 1,
            other => return Err(format!("tcp arm: unexpected {other:?}").into()),
        }
    }
    Ok(frames as f64 / start.elapsed().as_secs_f64())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // `--stamp <secs>` pins the artifact's timestamp; a malformed pin
    // is a hard error, never a silent clock fallback.
    let stamp = afft_bench::parse_stamp(&args).map_err(std::io::Error::other)?;
    let frames: u64 = if smoke { 64 } else { 1024 };
    let reps: u64 = if smoke { 1 } else { 3 };
    let workers =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(4);
    println!("== serving overhead at N = {N}+{CP}: {frames} modulated frames per pass ==");
    println!("({workers} worker(s), window {WINDOW}, best of {reps} reps per arm)\n");

    // Direct arm: the pipeline alone.
    let mut builder =
        StreamPipeline::builder(EngineRegistry::standard).workers(workers).queue_depth(64);
    let direct_ch = builder.channel(ChannelSpec {
        n: N,
        engine: "split_radix".to_string(),
        op: ChannelOp::Modulate { cp: CP },
    });
    let direct = builder.build()?;
    let mut direct_tps = 0.0f64;
    for _ in 0..reps {
        direct_tps = direct_tps.max(direct_pass(&direct, direct_ch, frames)?);
    }
    let (direct_stats, leftover) = direct.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(direct_stats.delivered, reps * frames);

    // TCP arm: an identical channel behind the loopback server.
    let mut builder = NetServer::builder(EngineRegistry::standard).workers(workers).queue_depth(64);
    let tcp_ch = builder.channel(ChannelSpec {
        n: N,
        engine: "split_radix".to_string(),
        op: ChannelOp::Modulate { cp: CP },
    });
    let server = builder.serve("127.0.0.1:0")?;
    let mut client = NetClient::connect(server.local_addr()).map_err(|e| e.to_string())?;
    let mut tcp_tps = 0.0f64;
    for _ in 0..reps {
        tcp_tps = tcp_tps.max(tcp_pass(&mut client, tcp_ch, frames)?);
    }
    // The admin stats document, captured while the server is live —
    // this exact string is embedded in the artifact below.
    client.request_stats(u64::MAX).map_err(|e| e.to_string())?;
    let admin = match client.recv_event().map_err(|e| e.to_string())? {
        NetEvent::Stats { json } => json,
        other => return Err(format!("expected Stats, got {other:?}").into()),
    };
    drop(client);
    let tcp_stats = server.shutdown();
    assert_eq!(tcp_stats.delivered, tcp_stats.submitted, "serving drain loses nothing");
    assert_eq!(tcp_stats.delivered, reps * frames);

    // Flood sub-run: a shallow slow server must shed, and the ledger
    // must balance. Same shape as the crate's loopback tests, but
    // counted into the artifact.
    let mut builder =
        NetServer::builder(EngineRegistry::standard).workers(1).queue_depth(2).retry_after_ms(5);
    let flood_ch = builder.channel(ChannelSpec::transform(512, "dft_naive", Direction::Forward));
    let flood_server = builder.serve("127.0.0.1:0")?;
    let flood_client = NetClient::connect(flood_server.local_addr()).map_err(|e| e.to_string())?;
    let (mut ftx, mut frx) = flood_client.split();
    let flood_frames = if smoke { 16u64 } else { 64 };
    let mut impulse = vec![Complex::zero(); 512];
    impulse[0] = Complex::new(1.0, 0.0);
    let writer = std::thread::spawn(move || {
        for seq in 0..flood_frames {
            ftx.submit(flood_ch, seq, &impulse).expect("flood submit");
        }
    });
    let (mut accepted, mut shed) = (0u64, 0u64);
    for _ in 0..flood_frames {
        match frx.recv_event().map_err(|e| e.to_string())? {
            NetEvent::Result { .. } => accepted += 1,
            NetEvent::RetryAfter { .. } => shed += 1,
            other => return Err(format!("flood: unexpected {other:?}").into()),
        }
    }
    writer.join().expect("flood writer");
    drop(frx);
    let flood_stats = flood_server.shutdown();
    assert!(shed >= 1, "a {flood_frames}-frame flood over a 2-deep queue must shed");
    assert_eq!(accepted + shed, flood_frames, "every flood frame gets exactly one answer");
    assert_eq!(flood_stats.submitted, accepted, "no accepted frame was lost");
    assert_eq!(flood_stats.delivered, accepted);

    let ratio = tcp_tps / direct_tps;
    println!("direct:  {direct_tps:>10.0} frames/s");
    println!("tcp:     {tcp_tps:>10.0} frames/s  ({ratio:.2}x of direct)");
    println!("flood:   {accepted} accepted + {shed} shed = {flood_frames} (ledger balanced)");

    // Machine-readable artifact, smoke included — CI schema-checks it.
    let doc = json::Obj::new()
        .str("bench", "net")
        .num("stamp_unix", stamp as f64)
        .bool("smoke", smoke)
        .num("n", N as f64)
        .num("cp", CP as f64)
        .num("frames", frames as f64)
        .num("reps", reps as f64)
        .num("workers", workers as f64)
        .num("window", WINDOW as f64)
        .raw(
            "arms",
            json::Obj::new().num("direct_tps", direct_tps).num("tcp_tps", tcp_tps).finish(),
        )
        .num("tcp_vs_direct", ratio)
        .raw(
            "flood",
            json::Obj::new()
                .num("frames", flood_frames as f64)
                .num("accepted", accepted as f64)
                .num("shed", shed as f64)
                .num("retry_after_ms", 5.0)
                .finish(),
        )
        .raw("admin", admin)
        .finish();
    std::fs::write("BENCH_net.json", doc + "\n")?;
    println!("wrote BENCH_net.json");
    Ok(())
}
