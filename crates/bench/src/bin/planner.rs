//! Experiment E9 — the autotuning planner over the full registry
//! (software models plus the cycle-accurate ASIP ISS): for every WiMAX
//! size, rank all backends by the Estimate heuristics and by Measure
//! calibration, print both rankings side by side, and persist the
//! measurements as wisdom so the tuning cost is paid once per machine.
//!
//! ```text
//! cargo run -p afft-bench --release --bin planner            # full sweep, N = 16..1024
//! cargo run -p afft-bench --release --bin planner -- --smoke # CI subset
//! ```
//!
//! The wisdom file defaults to the per-user `~/.afft-wisdom.txt`
//! (system temp directory when `HOME` is unset); set `AFFT_WISDOM` to
//! relocate it.

use afft_asip::engine::registry_with_asip;
use afft_bench::row;
use afft_planner::{Plan, Planner, Strategy, Wisdom};

/// 1-based position of `name` in a plan's ranking, for the agreement
/// column.
fn position(plan: &Plan, name: &str) -> String {
    plan.ranking
        .iter()
        .position(|r| r.name == name)
        .map_or("-".to_string(), |i| format!("#{}", i + 1))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The grid mixes powers of two with composite 5-smooth sizes (the
    // LTE-style bins only `mixed_radix` serves) and the prime bin 97,
    // where the convolution engines (rader, bluestein) do the serving:
    // 60 and 97 ride in the smoke subset so composite and prime
    // planning both stay exercised in CI.
    let sizes: &[usize] =
        if smoke { &[16, 60, 64, 97] } else { &[16, 32, 60, 64, 97, 128, 256, 512, 1024, 1200] };

    let path = Wisdom::default_path();
    let mut planner = Planner::with_factory(registry_with_asip)
        .with_wisdom(Wisdom::load(&path)?)
        .with_measure_reps(if smoke { 1 } else { 3 });

    let widths = [12usize, 10, 12, 12, 10, 10];
    for &n in sizes {
        let estimate = planner.plan(n, Strategy::Estimate)?;
        let measure = planner.plan(n, Strategy::Measure)?;
        println!(
            "== planner at N = {n} ({} backends{}) ==",
            measure.ranking.len(),
            if measure.from_wisdom { ", measured ranking replayed from wisdom" } else { "" },
        );
        println!(
            "{}",
            row(
                &[
                    "engine".into(),
                    "meas rank".into(),
                    "score ns".into(),
                    "wall ns".into(),
                    "cycles".into(),
                    "est rank".into(),
                ],
                &widths
            )
        );
        for (i, r) in measure.ranking.iter().enumerate() {
            println!(
                "{}",
                row(
                    &[
                        r.name.clone(),
                        format!("#{}", i + 1),
                        format!("{:.0}", r.score_ns),
                        r.wall_ns.map_or("-".into(), |w| format!("{w:.0}")),
                        r.modeled_cycles.map_or("-".into(), |c| c.to_string()),
                        position(&estimate, &r.name),
                    ],
                    &widths
                )
            );
        }
        let agree = estimate.best().name == measure.best().name;
        println!(
            "winner: {} measured, {} estimated ({})",
            measure.best().name,
            estimate.best().name,
            if agree { "strategies agree" } else { "strategies disagree" }
        );
        println!();

        // Smoke invariants: every backend ranked, scores sorted.
        // Non-power-of-two sizes carry the naive reference plus at
        // least one of {mixed_radix, rader} and always bluestein;
        // powers of two carry the full family.
        let floor = if n.is_power_of_two() { 4 } else { 3 };
        assert!(measure.ranking.len() >= floor, "registry too small at N={n}");
        assert_eq!(measure.ranking.len(), estimate.ranking.len());
        assert!(measure.ranking.windows(2).all(|p| p[0].score_ns <= p[1].score_ns));
    }

    // The calibration distributions Measure kept (one series per
    // `(n, direction, engine)`): the spread behind each wall-ns score.
    // Empty when metrics are off (AFFT_OBS=0) or every plan replayed
    // from wisdom without re-measuring.
    let calibration = planner.calibration_snapshot();
    if calibration.is_empty() {
        println!("calibration distributions: none (metrics off or all plans from wisdom)");
    } else {
        println!("== calibration distributions (Measure reps per engine) ==");
        print!("{calibration}");
    }
    println!();

    planner.wisdom().store(&path)?;
    println!("wisdom: {} plans cached at {}", planner.wisdom().len(), path.display());
    Ok(())
}
