//! Extension experiment — cycle attribution of the Table-I program:
//! where do the 1024-point ASIP's cycles actually go?
//!
//! Uses the simulator's per-PC profiler over the generated Algorithm-1
//! program, then folds the hot spots into phases (LDIN / BUT4 / STOUT /
//! control).

use afft_asip::layout::Layout;
use afft_asip::program::{generate_array_fft, ProgramOptions};
use afft_bench::workload::random_signal_q15;
use afft_core::Split;
use afft_num::twiddle_q15;
use afft_sim::profile::profile_run;
use afft_sim::{Machine, MachineConfig};

fn main() {
    let n = 1024usize;
    let split = Split::for_size(n).expect("valid size");
    let layout = Layout::for_size(n);
    let program = generate_array_fft(&split, &layout, ProgramOptions::default()).expect("generate");

    let mut machine = Machine::new(MachineConfig {
        mem_bytes: layout.mem_bytes,
        crf_capacity: split.p_size,
        ..MachineConfig::default()
    });
    machine
        .mem_mut()
        .write_complex_slice(layout.in_base, &random_signal_q15(n, 1))
        .expect("stage input");
    for k in 0..=n / 8 {
        machine
            .mem_mut()
            .write_complex(layout.table_base + 4 * k as u32, twiddle_q15(n, k))
            .expect("stage table");
    }
    machine.load_program(program.clone());
    let (stats, profile) = profile_run(&mut machine, 100_000_000).expect("profiled run");

    println!("1024-point ASIP run: {} cycles, {} instructions", stats.cycles, stats.instrs);
    println!();

    // Phase breakdown from the instruction-class counters.
    let t = afft_sim::Timing::default();
    let but4 = stats.but4 * t.but4;
    let ldin = stats.ldin * t.custom_mem; // + second-beat charges folded below
    let stout = stats.stout * t.custom_mem;
    let prerot = stats.coef_fetches * t.coef_fetch;
    let control = stats.alu * t.alu
        + stats.branches * t.branch
        + stats.branches_taken * t.taken_extra
        + stats.mtfft * t.mtfft;
    let accounted = but4 + ldin + stout + prerot + control;
    println!("phase breakdown (issue cycles):");
    for (name, c) in [
        ("BUT4 (butterflies)", but4),
        ("LDIN (loads)", ldin),
        ("STOUT (stores)", stout),
        ("pre-rotation fetch+multiply", prerot),
        ("control (li/mtfft/branches)", control),
        ("memory stalls & misc", stats.cycles - accounted),
    ] {
        println!("  {:<30} {:>8}  ({:>4.1}%)", name, c, 100.0 * c as f64 / stats.cycles as f64);
    }
    println!();
    println!("hottest instructions:");
    print!("{}", profile.report(&program, 10));
}
