//! Extension experiment — quantisation quality of the 16-bit datapath:
//! SNR of the fixed per-stage scaling (the paper's hardware) vs block
//! floating point, across sizes and input levels.
//!
//! This quantifies the cost of the paper's simple `HalfPerStage`
//! datapath and what the BFP extension would buy.

use afft_bench::row;
use afft_bench::workload::random_signal;
use afft_core::bfp::bfp_array_fft;
use afft_core::reference::dft_naive;
use afft_core::snr::{effective_bits, snr_db};
use afft_core::{ArrayFft, Direction, Scaling};
use afft_num::{Complex, C64, Q15};

fn main() {
    println!("16-bit datapath quality: fixed per-stage scaling vs block floating point");
    println!();
    let widths = [6usize, 10, 14, 14, 12];
    println!(
        "{}",
        row(
            &[
                "N".into(),
                "level".into(),
                "fixed SNR dB".into(),
                "BFP SNR dB".into(),
                "BFP bits".into(),
            ],
            &widths
        )
    );
    for n in [64usize, 256, 1024] {
        for level in [0.9, 0.1, 0.01] {
            let sig = random_signal(n, n as u64 + (level * 1000.0) as u64);
            let xq: Vec<Complex<Q15>> = sig.iter().map(|&c| Complex::from_c64(c * level)).collect();
            let exact_in: Vec<C64> = xq.iter().map(|c| c.to_c64()).collect();
            let want = dft_naive(&exact_in, Direction::Forward).expect("reference");

            let fixed: ArrayFft<Q15> =
                ArrayFft::with_scaling(n, Scaling::HalfPerStage).expect("plan");
            let fx = fixed.process(&xq, Direction::Forward).expect("fixed");
            let fx_f: Vec<C64> = fx.iter().map(|c| c.to_c64() * n as f64).collect();
            let fixed_snr = snr_db(&want, &fx_f);

            let bfp = bfp_array_fft(&xq, Direction::Forward).expect("bfp");
            let scale = (bfp.exponent as f64).exp2();
            let bfp_f: Vec<C64> = bfp.data.iter().map(|c| c.to_c64() * scale).collect();
            let bfp_snr = snr_db(&want, &bfp_f);

            println!(
                "{}",
                row(
                    &[
                        n.to_string(),
                        format!("{level}"),
                        format!("{fixed_snr:.1}"),
                        format!("{bfp_snr:.1}"),
                        format!("{:.1}", effective_bits(bfp_snr)),
                    ],
                    &widths
                )
            );
        }
    }
    println!();
    println!("fixed scaling loses ~1 bit per stage on small inputs; BFP holds SNR flat");
}
