//! Experiment E7 — the paper's scalability claim, extended: one ASIP
//! program per WiMAX/UWB transform size from 128 to 4096 points
//! (the paper's introduction motivates 128..2048 for WiMAX channel
//! bandwidth scaling), including the non-square sizes, plus the
//! non-canonical split sweep on the golden model.

use afft_asip::runner::{run_array_fft, AsipConfig};
use afft_bench::row;
use afft_bench::workload::{random_signal, random_signal_q15};
use afft_core::reference::{dft_naive, max_error};
use afft_core::{ArrayFft, Direction, Scaling, Split};

fn main() {
    println!("Scalability sweep: one recompiled program per size (paper Section IV)");
    println!();
    let widths = [6usize, 6, 6, 12, 10, 12, 12];
    println!(
        "{}",
        row(
            &[
                "N".into(),
                "P".into(),
                "Q".into(),
                "cycles".into(),
                "CPI".into(),
                "Mbps@300".into(),
                "us@300MHz".into(),
            ],
            &widths
        )
    );
    for n in [128usize, 256, 512, 1024, 2048, 4096] {
        let split = Split::for_size(n).expect("valid size");
        let input = random_signal_q15(n, n as u64);
        let run =
            run_array_fft(&input, Direction::Forward, &AsipConfig::default()).expect("ASIP run");
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    split.p_size.to_string(),
                    split.q_size.to_string(),
                    run.stats.cycles.to_string(),
                    format!("{:.2}", run.stats.cpi()),
                    format!("{:.1}", run.stats.throughput_mbps(n, 300.0)),
                    format!("{:.2}", run.stats.cycles as f64 / 300.0),
                ],
                &widths
            )
        );
    }

    println!();
    println!("non-canonical splits of 1024 on the golden model (max error vs naive DFT):");
    for (p, q) in [(32usize, 32usize), (64, 16), (128, 8)] {
        let split = Split::with_factors(1024, p, q).expect("valid factors");
        let fft: ArrayFft<f64> = ArrayFft::with_split(split, Scaling::None).expect("plan");
        let x = random_signal(1024, 9);
        let got = fft.process(&x, Direction::Forward).expect("process");
        let want = dft_naive(&x, Direction::Forward).expect("reference");
        println!("  P={p:<4} Q={q:<4} max error {:.3e}", max_error(&got, &want));
    }

    println!();
    println!("UWB requirement check (802.15.3a: FFT every OFDM symbol):");
    let input = random_signal_q15(128, 3);
    let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default()).expect("run");
    let symbol_ns = 312.5; // UWB OFDM symbol period in ns
    let fft_us = run.stats.cycles as f64 / 300.0;
    println!(
        "  128-point FFT in {:.2} us at 300 MHz ({} cycles); symbol period {:.4} us",
        fft_us,
        run.stats.cycles,
        symbol_ns / 1000.0
    );
    println!("  sample throughput: {:.1} Msamples/s", 128.0 * 300.0 / run.stats.cycles as f64);
}
