//! Experiment E11 — sustained streaming throughput: the persistent
//! [`StreamPipeline`] worker pool versus the two execution shapes the
//! workspace already had, on a continuous symbol stream:
//!
//! * `sequential` — one planned engine,
//!   [`BatchExecutor::execute_into`](afft_planner::BatchExecutor::execute_into)
//!   over the whole stream on the calling thread;
//! * `threaded/call` — per-call scoped threads:
//!   [`BatchExecutor::execute_threaded_into`](afft_planner::BatchExecutor::execute_threaded_into)
//!   on each arriving chunk, re-spawning the pool (and re-building one
//!   registry per worker) every call — the shape PR 2 built for
//!   one-shot frames;
//! * `stream` — the persistent pipeline: the pool and the per-worker
//!   engines outlive the whole stream, symbols flow through the
//!   bounded queue, and the payload buffers recycle through the
//!   completions (zero allocation per symbol in steady state).
//!
//! ```text
//! cargo run -p afft-bench --release --bin stream            # 4096-symbol stream
//! cargo run -p afft-bench --release --bin stream -- --smoke # CI subset
//! ```
//!
//! The full run enforces the PR acceptance bar: the persistent
//! pipeline must sustain at least **1.2x** the per-call scoped-thread
//! throughput at N = 256 (skipped for `--smoke` and debug builds,
//! where the timings are noise).

use afft_bench::row;
use afft_bench::workload::qpsk_symbol;
use afft_core::engine::EngineRegistry;
use afft_core::Direction;
use afft_num::{Complex, C64};
use afft_planner::{Planner, Strategy};
use afft_stream::{ChannelSpec, StreamPipeline};
use std::time::Instant;

const N: usize = 256;
/// Workers the per-call arm asks for on every call — the fixed request
/// a PR-2-style caller hardcodes, whatever the host looks like.
const WORKERS: usize = 4;
/// Symbols per `execute_threaded_into` call in the per-call arm — the
/// "frame" a streaming caller would have buffered up before paying for
/// a scoped-thread spawn. At N = 256 this is ~100 us of math per call,
/// a realistic latency budget for a symbol stream — and far too little
/// work to amortise four spawns plus four registry constructions.
const CHUNK: usize = 32;

/// The persistent pipeline sizes its pool to the machine once, at
/// build time — one of the things a long-lived executor can do that a
/// per-call spawn cannot (a single-core host gets one worker instead
/// of four threads time-slicing each other).
fn pool_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(WORKERS)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let symbols: usize = if smoke { 256 } else { 4096 };
    let reps = if smoke { 1 } else { 5 };

    // Plan once; every arm runs the same winning engine.
    let mut planner = Planner::new();
    let plan = planner.plan(N, Strategy::Estimate)?;
    let engine = plan.best().name.clone();
    let pool = pool_workers();
    println!("== streaming throughput at N = {N}: {symbols}-symbol stream on `{engine}` ==");
    println!(
        "(pipeline pool = {pool} worker(s) sized to the host, per-call arm spawns {WORKERS}, \
         chunk = {CHUNK}, best of {reps} reps per arm)\n"
    );

    let stream_in: Vec<Vec<C64>> = (0..symbols).map(|s| qpsk_symbol(N, s as u64)).collect();

    // Reference spectra + the sequential arm share one executor.
    let mut executor = planner.executor(&plan)?;
    let mut reference = executor.alloc_output(symbols);
    let mut seq_tps = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        executor.execute_into(&stream_in, &mut reference, Direction::Forward)?;
        seq_tps = seq_tps.max(symbols as f64 / start.elapsed().as_secs_f64());
    }

    // Per-call scoped threads: every CHUNK symbols pays thread spawns
    // plus one registry construction per worker — the cost a persistent
    // pool exists to amortise.
    let mut chunk_out = executor.alloc_output(symbols);
    let mut call_tps = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        for (shard_in, shard_out) in stream_in.chunks(CHUNK).zip(chunk_out.chunks_mut(CHUNK)) {
            executor.execute_threaded_into(shard_in, shard_out, Direction::Forward, WORKERS)?;
        }
        call_tps = call_tps.max(symbols as f64 / start.elapsed().as_secs_f64());
    }
    assert_eq!(chunk_out, reference, "threaded per-call arm must match sequential");

    // The persistent pipeline: built once, measured over whole-stream
    // passes with the payload buffers recycling through completions.
    let mut builder =
        StreamPipeline::builder(EngineRegistry::standard).workers(pool).queue_depth(2 * CHUNK);
    let ch = builder.channel(ChannelSpec::from_plan(
        &plan,
        afft_stream::ChannelOp::Transform(Direction::Forward),
    ));
    let pipeline = builder.build()?;
    let mut inputs = stream_in.clone();
    let mut outputs: Vec<Vec<C64>> = vec![vec![Complex::zero(); N]; symbols];
    let mut stream_tps = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let mut returned_in: Vec<Vec<C64>> = Vec::with_capacity(symbols);
        let mut returned_out: Vec<Vec<C64>> = Vec::with_capacity(symbols);
        for (s, (input, output)) in inputs.drain(..).zip(outputs.drain(..)).enumerate() {
            // Blocking submit: the bounded queue is the backpressure.
            pipeline.submit(ch, input, output).expect("pipeline accepts while open");
            // Drain ready completions periodically so parked results
            // don't pile up behind the submission loop (every symbol
            // would cost a lock round-trip per symbol for nothing).
            if s % CHUNK == CHUNK - 1 {
                while let Some(done) = pipeline.try_recv(ch) {
                    returned_in.push(done.input);
                    returned_out.push(done.output);
                }
            }
        }
        while let Some(done) = pipeline.recv(ch) {
            returned_in.push(done.input);
            returned_out.push(done.output);
        }
        inputs = returned_in;
        outputs = returned_out;
        stream_tps = stream_tps.max(symbols as f64 / start.elapsed().as_secs_f64());
    }
    // In-order delivery means the recycled buffers line up 1:1 with the
    // submissions: the final pass must reproduce the reference exactly.
    assert_eq!(outputs, reference, "stream pipeline must be bit-identical to sequential");
    let stats = pipeline.stats();

    let widths = [14usize, 14, 16];
    println!("{}", row(&["arm".into(), "symbols/s".into(), "vs threaded/call".into()], &widths));
    for (name, tps) in
        [("sequential", seq_tps), ("threaded/call", call_tps), ("stream", stream_tps)]
    {
        println!(
            "{}",
            row(&[name.into(), format!("{tps:.0}"), format!("{:.2}x", tps / call_tps)], &widths)
        );
    }
    println!("\npipeline after {} passes: {stats}", stats.submitted as usize / symbols.max(1));
    let (final_stats, leftover) = pipeline.shutdown();
    assert!(leftover.is_empty(), "every completion was delivered");
    assert_eq!(final_stats.submitted, (reps * symbols) as u64);

    let speedup = stream_tps / call_tps;
    println!(
        "\nstream vs per-call scoped threads: {speedup:.2}x sustained on a {symbols}-symbol stream"
    );
    // The PR acceptance bar, gated like the throughput bin: only where
    // the timing means something (full run, optimized build).
    if !smoke && !cfg!(debug_assertions) && speedup < 1.2 {
        eprintln!(
            "FAIL: the persistent pipeline must sustain >= 1.2x the per-call \
             scoped-thread path at N = {N}, got {speedup:.2}x"
        );
        std::process::exit(1);
    }
    Ok(())
}
