//! Experiment E11 — sustained streaming throughput: the persistent
//! [`StreamPipeline`] worker pool versus the two execution shapes the
//! workspace already had, on a continuous symbol stream:
//!
//! * `sequential` — one planned engine,
//!   [`BatchExecutor::execute_into`](afft_planner::BatchExecutor::execute_into)
//!   over the whole stream on the calling thread;
//! * `threaded/call` — per-call scoped threads:
//!   [`BatchExecutor::execute_threaded_into`](afft_planner::BatchExecutor::execute_threaded_into)
//!   on each arriving chunk, re-spawning the pool (and re-building one
//!   registry per worker) every call — the shape PR 2 built for
//!   one-shot frames. Sized to the host with `available_parallelism`
//!   exactly like the pipeline arm, so the comparison prices the
//!   *shape* (per-call spawns vs a persistent pool), not a thread-count
//!   mismatch;
//! * `stream` — the persistent pipeline: the pool and the per-worker
//!   engines outlive the whole stream, symbols flow through the sharded
//!   work-stealing scheduler, and the payload buffers recycle through
//!   the completions (zero allocation per symbol in steady state). Run
//!   twice — metrics off, then metrics on — so the observability layer
//!   prices itself on every report;
//! * `stream/mc` — the multi-worker contention arm: a forced 4-worker
//!   pool serving 4 channels round-robin, submissions racing the
//!   workers on every shard. Exists to exercise (and publish counters
//!   for) the sharded scheduler — steals, local-hit ratio, per-shard
//!   queue high-water — under real cross-worker traffic even on a
//!   1-core host, where its absolute throughput is time-slice noise and
//!   carries no acceptance bar.
//!
//! ```text
//! cargo run -p afft-bench --release --bin stream            # 4096-symbol stream
//! cargo run -p afft-bench --release --bin stream -- --smoke # CI subset
//! ```
//!
//! Every run (smoke included) writes `BENCH_stream.json`: per-arm
//! throughput plus the metrics-on pipeline's per-channel latency
//! histograms with the queue-wait / transform / reorder-park
//! breakdown (at the default 1-in-8 stage sampling — the shipped
//! configuration is what gets priced). Full optimized runs on a
//! multi-core host enforce two acceptance bars: the persistent
//! pipeline must sustain at least **1.2x** the per-call scoped-thread
//! throughput at N = 256, and enabling metrics must cost it less than
//! **5%** of that throughput. Both are skipped for `--smoke`, debug
//! builds, and single-core hosts — wherever the timings are noise: on
//! one core both pipeline arms are priced by the kernel time-slicing
//! the caller against the worker (~10% run-to-run swing), and the
//! host-sized per-call arm degenerates to sequential execution, which
//! a cross-thread pipeline structurally cannot beat.

use afft_bench::row;
use afft_bench::workload::qpsk_symbol;
use afft_core::engine::EngineRegistry;
use afft_core::Direction;
use afft_num::{Complex, C64};
use afft_obs::json;
use afft_planner::{Plan, Planner, Strategy};
use afft_stream::{ChannelSpec, StreamPipeline, StreamStats};
use std::time::Instant;

const N: usize = 256;
/// Cap on the pool size either arm asks for — enough to show the
/// shapes apart without oversubscribing small CI hosts.
const WORKERS: usize = 4;
/// Channels (and forced workers) in the multi-worker contention arm.
const MC_CHANNELS: usize = 4;
/// Symbols per `execute_threaded_into` call in the per-call arm — the
/// "frame" a streaming caller would have buffered up before paying for
/// a scoped-thread spawn. At N = 256 this is ~100 us of math per call,
/// a realistic latency budget for a symbol stream — and far too little
/// work to amortise four spawns plus four registry constructions.
const CHUNK: usize = 32;

/// Both arms size their pool to the machine (capped at [`WORKERS`]): a
/// single-core host gets one worker instead of four threads
/// time-slicing each other. The per-call arm used to hardcode 4
/// whatever the host looked like, which inflated the stream-vs-call
/// ratio on small hosts; now the two arms differ only in *shape*.
fn pool_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(WORKERS)
}

/// One stream arm: a pipeline built with metrics explicitly on or off,
/// plus the recycling payload buffers its whole-stream passes thread
/// through the completions. The metrics-on and -off arms run their
/// passes *interleaved* so slow-host noise (a background burst during
/// one arm's turn) cannot masquerade as metrics overhead.
struct StreamArm {
    pipeline: StreamPipeline,
    ch: afft_stream::ChannelId,
    inputs: Vec<Vec<C64>>,
    outputs: Vec<Vec<C64>>,
    passes: usize,
}

impl StreamArm {
    fn build(
        plan: &Plan,
        pool: usize,
        observability: bool,
        stream_in: &[Vec<C64>],
    ) -> Result<StreamArm, Box<dyn std::error::Error>> {
        let mut builder = StreamPipeline::builder(EngineRegistry::standard)
            .workers(pool)
            .queue_depth(2 * CHUNK)
            .observability(observability);
        let ch = builder.channel(ChannelSpec::from_plan(
            plan,
            afft_stream::ChannelOp::Transform(Direction::Forward),
        ));
        let pipeline = builder.build()?;
        assert_eq!(pipeline.observability_enabled(), observability);
        Ok(StreamArm {
            pipeline,
            ch,
            inputs: stream_in.to_vec(),
            outputs: vec![vec![Complex::zero(); N]; stream_in.len()],
            passes: 0,
        })
    }

    /// Pushes the whole stream through once and returns symbols/sec.
    fn pass(&mut self) -> f64 {
        let symbols = self.inputs.len();
        let start = Instant::now();
        let mut returned_in: Vec<Vec<C64>> = Vec::with_capacity(symbols);
        let mut returned_out: Vec<Vec<C64>> = Vec::with_capacity(symbols);
        for (s, (input, output)) in self.inputs.drain(..).zip(self.outputs.drain(..)).enumerate() {
            // Blocking submit: the bounded queue is the backpressure.
            self.pipeline.submit(self.ch, input, output).expect("pipeline accepts while open");
            // Drain ready completions periodically so parked results
            // don't pile up behind the submission loop (every symbol
            // would cost a lock round-trip per symbol for nothing).
            if s % CHUNK == CHUNK - 1 {
                while let Some(done) = self.pipeline.try_recv(self.ch) {
                    returned_in.push(done.input);
                    returned_out.push(done.output);
                }
            }
        }
        while let Some(done) = self.pipeline.recv(self.ch) {
            returned_in.push(done.input);
            returned_out.push(done.output);
        }
        self.inputs = returned_in;
        self.outputs = returned_out;
        self.passes += 1;
        symbols as f64 / start.elapsed().as_secs_f64()
    }

    /// Checks bit-identity against the sequential reference and shuts
    /// the pipeline down, returning the final stats.
    fn finish(self, reference: &[Vec<C64>]) -> StreamStats {
        // In-order delivery means the recycled buffers line up 1:1 with
        // the submissions: the final pass reproduces the reference.
        assert_eq!(self.outputs, reference, "stream pipeline must be bit-identical to sequential");
        let (stats, leftover) = self.pipeline.shutdown();
        assert!(leftover.is_empty(), "every completion was delivered");
        assert_eq!(stats.submitted, (self.passes * reference.len()) as u64);
        stats
    }
}

/// The multi-worker contention arm: [`MC_CHANNELS`] channels homed
/// round-robin across a forced [`MC_CHANNELS`]-worker pool, fed
/// round-robin so every shard sees submissions racing its worker.
/// Symbol `s` of the stream goes to channel `s % MC_CHANNELS`, so the
/// per-channel in-order deliveries reassemble into the sequential
/// reference for verification.
struct McArm {
    pipeline: StreamPipeline,
    chs: Vec<afft_stream::ChannelId>,
    /// Per-channel payload pools (channel-major), recycled through the
    /// completions like the single-channel arm.
    inputs: Vec<Vec<Vec<C64>>>,
    outputs: Vec<Vec<Vec<C64>>>,
}

impl McArm {
    fn build(plan: &Plan, stream_in: &[Vec<C64>]) -> Result<McArm, Box<dyn std::error::Error>> {
        let mut builder = StreamPipeline::builder(EngineRegistry::standard)
            .workers(MC_CHANNELS)
            .queue_depth(2 * CHUNK)
            .observability(false);
        let chs: Vec<_> = (0..MC_CHANNELS)
            .map(|_| {
                builder.channel(ChannelSpec::from_plan(
                    plan,
                    afft_stream::ChannelOp::Transform(Direction::Forward),
                ))
            })
            .collect();
        let pipeline = builder.build()?;
        let mut inputs: Vec<Vec<Vec<C64>>> = vec![Vec::new(); MC_CHANNELS];
        for (s, sym) in stream_in.iter().enumerate() {
            inputs[s % MC_CHANNELS].push(sym.clone());
        }
        let outputs =
            inputs.iter().map(|chan| vec![vec![Complex::zero(); N]; chan.len()]).collect();
        Ok(McArm { pipeline, chs, inputs, outputs })
    }

    /// Pushes the whole stream through once, round-robin over the
    /// channels, and returns symbols/sec.
    fn pass(&mut self) -> f64 {
        let rounds = self.inputs[0].len();
        let symbols: usize = self.inputs.iter().map(Vec::len).sum();
        let mut returned_in: Vec<Vec<Vec<C64>>> = vec![Vec::new(); MC_CHANNELS];
        let mut returned_out: Vec<Vec<Vec<C64>>> = vec![Vec::new(); MC_CHANNELS];
        let start = Instant::now();
        for r in 0..rounds {
            for ch in 0..MC_CHANNELS {
                let (Some(input), Some(output)) = (self.inputs[ch].pop(), self.outputs[ch].pop())
                else {
                    continue;
                };
                self.pipeline.submit(self.chs[ch], input, output).expect("pipeline open");
            }
            if r % CHUNK == CHUNK - 1 {
                for ch in 0..MC_CHANNELS {
                    while let Some(done) = self.pipeline.try_recv(self.chs[ch]) {
                        returned_in[ch].push(done.input);
                        returned_out[ch].push(done.output);
                    }
                }
            }
        }
        for ch in 0..MC_CHANNELS {
            while let Some(done) = self.pipeline.recv(self.chs[ch]) {
                returned_in[ch].push(done.input);
                returned_out[ch].push(done.output);
            }
        }
        let tps = symbols as f64 / start.elapsed().as_secs_f64();
        // pop() drained the pools back-to-front; deliveries came back
        // in submission order, so reverse to restore channel order for
        // the next pass (and the final verification).
        for ch in 0..MC_CHANNELS {
            returned_in[ch].reverse();
            returned_out[ch].reverse();
        }
        self.inputs = returned_in;
        self.outputs = returned_out;
        tps
    }

    /// Verifies against the sequential reference (de-interleaving by
    /// channel) and returns the final stats with the scheduler
    /// counters.
    fn finish(self, reference: &[Vec<C64>]) -> StreamStats {
        for (ch, outputs) in self.outputs.iter().enumerate() {
            let expected: Vec<&Vec<C64>> = reference.iter().skip(ch).step_by(MC_CHANNELS).collect();
            assert_eq!(outputs.len(), expected.len());
            for (got, want) in outputs.iter().zip(expected) {
                assert_eq!(got, want, "mc arm channel {ch} must be bit-identical to sequential");
            }
        }
        let (stats, leftover) = self.pipeline.shutdown();
        assert!(leftover.is_empty(), "every mc completion was delivered");
        stats
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // `--stamp <secs>` pins the artifact's timestamp (reproducible CI
    // artifacts); otherwise the system clock stamps the run. A
    // malformed pin is a hard error, never a silent clock fallback.
    let stamp = afft_bench::parse_stamp(&args).map_err(std::io::Error::other)?;
    let symbols: usize = if smoke { 256 } else { 4096 };
    let reps = if smoke { 1 } else { 5 };

    // Plan once; every arm runs the same winning engine.
    let mut planner = Planner::new();
    let plan = planner.plan(N, Strategy::Estimate)?;
    let engine = plan.best().name.clone();
    let pool = pool_workers();
    println!("== streaming throughput at N = {N}: {symbols}-symbol stream on `{engine}` ==");
    println!(
        "(both arms pool = {pool} worker(s) sized to the host, contention arm forces \
         {MC_CHANNELS}, chunk = {CHUNK}, best of {reps} reps per arm)\n"
    );

    let stream_in: Vec<Vec<C64>> = (0..symbols).map(|s| qpsk_symbol(N, s as u64)).collect();

    // Reference spectra + the sequential arm share one executor.
    let mut executor = planner.executor(&plan)?;
    let mut reference = executor.alloc_output(symbols);
    let mut seq_tps = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        executor.execute_into(&stream_in, &mut reference, Direction::Forward)?;
        seq_tps = seq_tps.max(symbols as f64 / start.elapsed().as_secs_f64());
    }

    // Per-call scoped threads: every CHUNK symbols pays thread spawns
    // plus one registry construction per worker — the cost a persistent
    // pool exists to amortise.
    let mut chunk_out = executor.alloc_output(symbols);
    let mut call_tps = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        for (shard_in, shard_out) in stream_in.chunks(CHUNK).zip(chunk_out.chunks_mut(CHUNK)) {
            executor.execute_threaded_into(shard_in, shard_out, Direction::Forward, pool)?;
        }
        call_tps = call_tps.max(symbols as f64 / start.elapsed().as_secs_f64());
    }
    assert_eq!(chunk_out, reference, "threaded per-call arm must match sequential");

    // The persistent pipeline, twice over the same stream: metrics off
    // (the raw-speed arm the cross-shape comparison uses) and metrics
    // on (sampled stage timing, pricing the observability layer).
    // Passes alternate between the arms so host noise averages out of
    // the overhead ratio instead of landing on one side of it.
    let mut arm_off = StreamArm::build(&plan, pool, false, &stream_in)?;
    let mut arm_on = StreamArm::build(&plan, pool, true, &stream_in)?;
    let mut stream_tps = 0.0f64;
    let mut obs_tps = 0.0f64;
    for _ in 0..reps {
        stream_tps = stream_tps.max(arm_off.pass());
        obs_tps = obs_tps.max(arm_on.pass());
    }
    let off_stats = arm_off.finish(&reference);
    let on_stats = arm_on.finish(&reference);

    // The contention arm: a forced multi-worker pool under round-robin
    // cross-channel traffic, run for its scheduler counters (steals,
    // local-hit ratio, shard high-water) rather than for a throughput
    // bar — on a small host its pool oversubscribes the cores by design.
    let mut arm_mc = McArm::build(&plan, &stream_in)?;
    let mc_workers = arm_mc.pipeline.worker_count();
    let mut mc_tps = 0.0f64;
    for _ in 0..reps {
        mc_tps = mc_tps.max(arm_mc.pass());
    }
    let mc_stats = arm_mc.finish(&reference);

    let widths = [16usize, 14, 16];
    println!("{}", row(&["arm".into(), "symbols/s".into(), "vs threaded/call".into()], &widths));
    for (name, tps) in [
        ("sequential", seq_tps),
        ("threaded/call", call_tps),
        ("stream", stream_tps),
        ("stream+metrics", obs_tps),
        ("stream/mc", mc_tps),
    ] {
        println!(
            "{}",
            row(&[name.into(), format!("{tps:.0}"), format!("{:.2}x", tps / call_tps)], &widths)
        );
    }
    println!("\nmetrics-off pipeline after {reps} passes: {off_stats}");
    println!("metrics-on  pipeline after {reps} passes: {on_stats}");
    println!(
        "contention arm ({mc_workers} workers, {MC_CHANNELS} channels): {} steals, \
         {:.0}% local-hit, shard hwm {:?}",
        mc_stats.steals(),
        mc_stats.local_hit_ratio() * 100.0,
        mc_stats.shard_high_water,
    );
    let obs = on_stats.obs.as_ref().expect("metrics-on arm records histograms");
    println!("\nper-channel latency (metrics-on arm):\n{obs}");

    let speedup = stream_tps / call_tps;
    let overhead_ratio = obs_tps / stream_tps;
    println!(
        "stream vs per-call scoped threads: {speedup:.2}x sustained on a {symbols}-symbol stream"
    );
    println!(
        "metrics overhead: {obs_tps:.0} vs {stream_tps:.0} symbols/s ({:.1}% {})",
        (overhead_ratio - 1.0).abs() * 100.0,
        if overhead_ratio < 1.0 { "slower" } else { "faster" },
    );

    // Machine-readable artifact, smoke included — CI schema-checks it.
    let doc = json::Obj::new()
        .str("bench", "stream")
        .num("stamp_unix", stamp as f64)
        .bool("smoke", smoke)
        .num("n", N as f64)
        .num("symbols", symbols as f64)
        .num("reps", reps as f64)
        .num("workers", pool as f64)
        .num("call_workers", pool as f64)
        .num("sample_every", afft_stream::DEFAULT_SAMPLE_EVERY as f64)
        .raw(
            "arms",
            json::Obj::new()
                .num("sequential_tps", seq_tps)
                .num("threaded_call_tps", call_tps)
                .num("stream_tps", stream_tps)
                .num("stream_metrics_tps", obs_tps)
                .num("stream_mc_tps", mc_tps)
                .finish(),
        )
        .num("stream_vs_call", speedup)
        .num("metrics_overhead_ratio", overhead_ratio)
        .raw(
            "queue",
            json::Obj::new()
                .num("capacity", on_stats.queue_capacity as f64)
                .num("high_water", on_stats.queue_high_water as f64)
                .finish(),
        )
        .raw(
            "scheduler",
            json::Obj::new()
                .num("workers", mc_workers as f64)
                .num("channels", MC_CHANNELS as f64)
                .num("steals", mc_stats.steals() as f64)
                .num("stolen_symbols", mc_stats.worker_stolen.iter().sum::<u64>() as f64)
                .num("local_symbols", mc_stats.worker_local.iter().sum::<u64>() as f64)
                .num("local_hit_ratio", mc_stats.local_hit_ratio())
                .raw(
                    "shard_high_water",
                    format!(
                        "[{}]",
                        mc_stats
                            .shard_high_water
                            .iter()
                            .map(usize::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                )
                .finish(),
        )
        .raw("channels", obs.to_json())
        .finish();
    std::fs::write("BENCH_stream.json", doc + "\n")?;
    println!("wrote BENCH_stream.json");

    // The PR acceptance bars, gated like the throughput bin: only
    // where the timing means something (full run, optimized build) AND
    // only where a pool exists. On a single-core host both pipeline
    // arms are priced by the kernel time-slicing the caller against
    // the worker — measured run-to-run swing is ~10%, swamping both
    // bars — and the per-call arm runs at sequential speed, so a
    // cross-thread pipeline structurally cannot reach 1.2x of it.
    let gate = !smoke && !cfg!(debug_assertions) && pool >= 2;
    if !gate {
        println!(
            "acceptance bars skipped ({}): numbers above are reported, not gated",
            if smoke {
                "smoke run"
            } else if cfg!(debug_assertions) {
                "debug build"
            } else {
                "single-core host, pool = 1"
            }
        );
    }
    if gate && speedup < 1.2 {
        eprintln!(
            "FAIL: the persistent pipeline must sustain >= 1.2x the per-call \
             scoped-thread path at N = {N}, got {speedup:.2}x"
        );
        std::process::exit(1);
    }
    // The observability layer's own bar: two relaxed atomics per stage
    // must stay under 5% of sustained stream throughput.
    if gate && overhead_ratio < 0.95 {
        eprintln!(
            "FAIL: metrics must cost < 5% of stream throughput, got {:.1}% \
             ({obs_tps:.0} vs {stream_tps:.0} symbols/s)",
            (1.0 - overhead_ratio) * 100.0
        );
        std::process::exit(1);
    }
    Ok(())
}
