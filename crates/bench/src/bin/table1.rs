//! Experiment E1 — regenerates the paper's **Table I**: cycle count and
//! data throughput of the array-FFT ASIP across FFT sizes, plus the
//! 2048/4096-point scalability extension rows.

use afft_asip::runner::{run_array_fft, AsipConfig};
use afft_bench::paper::TABLE1;
use afft_bench::{row, workload::random_signal_q15};
use afft_core::Direction;

fn main() {
    let widths = [6usize, 12, 12, 14, 12, 14];
    println!("Table I: data throughput for different FFT sizes (300 MHz clock)");
    println!(
        "{}",
        row(
            &[
                "N".into(),
                "cycles".into(),
                "Mbps".into(),
                "paper cycles".into(),
                "paper Mbps".into(),
                "cycle ratio".into(),
            ],
            &widths
        )
    );
    for n in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let input = random_signal_q15(n, n as u64);
        let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default())
            .expect("ASIP run failed");
        let cycles = run.stats.cycles;
        let mbps = run.stats.throughput_mbps(n, 300.0);
        let paper = TABLE1.iter().find(|r| r.n == n);
        let (pc, pm, ratio) = match paper {
            Some(p) => (
                p.cycles.to_string(),
                format!("{:.1}", p.throughput_mbps),
                format!("{:.2}", cycles as f64 / p.cycles as f64),
            ),
            None => ("-".into(), "-".into(), "(ext)".into()),
        };
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    cycles.to_string(),
                    format!("{mbps:.1}"),
                    pc,
                    pm,
                    ratio,
                ],
                &widths
            )
        );
    }
    println!();
    println!("shape check: throughput must decrease monotonically with N (paper Section IV)");
}
