//! Experiment E1 — regenerates the paper's **Table I**: cycle count and
//! data throughput of the array-FFT ASIP across FFT sizes, plus the
//! 2048/4096-point scalability extension rows. The ASIP is driven
//! through its [`FftEngine`] adapter.
//!
//! [`FftEngine`]: afft_core::engine::FftEngine

use afft_asip::engine::AsipEngine;
use afft_bench::paper::TABLE1;
use afft_bench::{row, workload::random_signal};
use afft_core::engine::FftEngine;
use afft_core::Direction;

fn main() {
    let widths = [6usize, 12, 12, 14, 12, 14];
    println!("Table I: data throughput for different FFT sizes (300 MHz clock)");
    println!(
        "{}",
        row(
            &[
                "N".into(),
                "cycles".into(),
                "Mbps".into(),
                "paper cycles".into(),
                "paper Mbps".into(),
                "cycle ratio".into(),
            ],
            &widths
        )
    );
    for n in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let mut engine = AsipEngine::new(n).expect("plan");
        engine.execute(&random_signal(n, n as u64), Direction::Forward).expect("ASIP run failed");
        let stats = engine.last_stats().expect("cycle-accurate run retains stats");
        let cycles = stats.cycles;
        let mbps = stats.throughput_mbps(n, 300.0);
        let paper = TABLE1.iter().find(|r| r.n == n);
        let (pc, pm, ratio) = match paper {
            Some(p) => (
                p.cycles.to_string(),
                format!("{:.1}", p.throughput_mbps),
                format!("{:.2}", cycles as f64 / p.cycles as f64),
            ),
            None => ("-".into(), "-".into(), "(ext)".into()),
        };
        println!(
            "{}",
            row(
                &[n.to_string(), cycles.to_string(), format!("{mbps:.1}"), pc, pm, ratio,],
                &widths
            )
        );
    }
    println!();
    println!("shape check: throughput must decrease monotonically with N (paper Section IV)");
}
