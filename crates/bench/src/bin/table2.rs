//! Experiment E2 — regenerates the paper's **Table II**: the four
//! implementations of a 1024-point FFT compared on cycles, loads,
//! stores and data-cache misses, with the improvement factors of the
//! array ASIP over each baseline.

use afft_asip::engine::AsipEngine;
use afft_asip::swfft::run_software_fft;
use afft_baselines::{ti, xtensa};
use afft_bench::paper::TABLE2;
use afft_bench::workload::random_signal;
use afft_bench::{factor, row};
use afft_core::engine::FftEngine;
use afft_core::Direction;
use afft_sim::Timing;

struct Row {
    name: &'static str,
    cycles: u64,
    loads: Option<u64>,
    stores: Option<u64>,
    misses: u64,
}

fn main() {
    let n = 1024usize;
    println!("Table II: comparison among different FFT implementations ({n}-point)");
    println!();

    // Imple 1: standard software (soft-float) FFT on the base core.
    let sw =
        run_software_fft(&random_signal(n, 1), Direction::Forward, Timing::default(), 50_000_000)
            .expect("software FFT run");
    // Imple 2: TI C6713 VLIW model.
    let ti_run = ti::run_ti_fft(n, &ti::TiConfig::default());
    // Imple 3: Xtensa FFT ASIP model.
    let xt = xtensa::run_xtensa_fft(n, &xtensa::XtensaConfig::default());
    // Imple 4: our array-FFT ASIP, through the engine adapter.
    let mut imple4 = AsipEngine::new(n).expect("plan");
    imple4.execute(&random_signal(n, 1), Direction::Forward).expect("ASIP run");
    let ours = imple4.last_stats().expect("cycle-accurate run retains stats");

    let rows = [
        Row {
            name: "Imple1 standard SW",
            cycles: sw.stats.cycles,
            loads: Some(sw.stats.loads),
            stores: Some(sw.stats.stores),
            misses: sw.stats.cache_misses(),
        },
        Row {
            name: "Imple2 TI DSP",
            cycles: ti_run.cycles,
            loads: None, // the paper reports '-' for the TI column
            stores: None,
            misses: ti_run.cache_misses(),
        },
        Row {
            name: "Imple3 Xtensa ASIP",
            cycles: xt.cycles,
            loads: Some(xt.loads),
            stores: Some(xt.stores),
            misses: xt.cache_misses(),
        },
        Row {
            name: "Imple4 array ASIP",
            cycles: ours.cycles,
            loads: Some(ours.table_loads()),
            stores: Some(ours.table_stores()),
            misses: ours.cache_misses(),
        },
    ];

    let widths = [20usize, 12, 10, 10, 10, 14, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "implementation".into(),
                "cycles".into(),
                "loads".into(),
                "stores".into(),
                "misses".into(),
                "paper cycles".into(),
                "paper ld".into(),
                "paper st".into(),
                "paper miss".into(),
            ],
            &widths
        )
    );
    let opt = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
    for (r, p) in rows.iter().zip(TABLE2.iter()) {
        println!(
            "{}",
            row(
                &[
                    r.name.into(),
                    r.cycles.to_string(),
                    opt(r.loads),
                    opt(r.stores),
                    r.misses.to_string(),
                    p.cycles.to_string(),
                    opt(p.loads),
                    opt(p.stores),
                    p.misses.to_string(),
                ],
                &widths
            )
        );
    }

    println!();
    let ours_cycles = rows[3].cycles as f64;
    println!("improvement of the array ASIP (cycles):");
    for (i, r) in rows.iter().take(3).enumerate() {
        let paper = TABLE2[i].cycles as f64 / TABLE2[3].cycles as f64;
        println!(
            "  over {:<22} measured {:>8}   paper {:>6.1}X",
            r.name,
            factor(ours_cycles, r.cycles as f64),
            paper
        );
    }
    if let (Some(l), Some(s)) = (rows[2].loads, rows[2].stores) {
        println!();
        println!(
            "load/store reduction vs Xtensa: {} loads, {} stores (paper: 5.2X, 4.4X)",
            factor(rows[3].loads.expect("ours has loads") as f64, l as f64),
            factor(rows[3].stores.expect("ours has stores") as f64, s as f64),
        );
    }
    println!(
        "cache-miss reduction vs Xtensa: {} (paper: 2.6X)",
        factor(rows[3].misses as f64, rows[2].misses as f64)
    );
}
