//! Experiment E10 — host-side throughput of the zero-allocation
//! execution path: transforms/sec for the **allocating** path versus
//! the **`execute_into`** path, per engine and size.
//!
//! Three arms per `(engine, N)`:
//!
//! * `alloc/s` — the per-call-allocation path the seed shipped (every
//!   intermediate and the output freshly heap-allocated per transform,
//!   via the public allocating entry points: `ArrayFft::process`,
//!   `cached_fft`, `mcfft`, `to_vec` + in-place radix-2);
//! * `wrap/s` — the provided [`execute`](afft_core::FftEngine::execute)
//!   convenience wrapper (one output allocation, engine-owned scratch
//!   reused);
//! * `into/s` — the
//!   [`execute_into`](afft_core::FftEngine::execute_into) primitive
//!   (caller output buffer reused, zero heap work per transform).
//!
//! ```text
//! cargo run -p afft-bench --release --bin throughput            # N = 64..1024
//! cargo run -p afft-bench --release --bin throughput -- --smoke # CI subset
//! ```
//!
//! The closing summary reports the best `into`-vs-`alloc` speedup on
//! `array_fft`, the engine the batch pipeline plans onto most often,
//! the mixed-radix family's edge over the radix-2 reference at
//! N = 1024 (`split_radix`/`radix4_dit` vs `radix2_dit`, all on the
//! `execute_into` path), and — on hosts with a vector unit — the SIMD
//! tier's edge over the best scalar engine at N = 1024.
//!
//! The size grid includes composite (non-power-of-two) bins — 1200 in
//! `--smoke`, 1536 in the full run — where only `mixed_radix` serves
//! the transform, so the LTE-style sizes stay on the hot-path radar,
//! plus the prime bin 97 in both runs, where the convolution engines
//! (`rader`, `bluestein`) carry the transform.
//!
//! A full (non-smoke) run additionally writes every arm to
//! `BENCH_throughput.json` — per-engine transforms/sec by size, the
//! host's detected SIMD level, and a unix timestamp (`--stamp <secs>`
//! to pin it; defaults to the system clock) — so dashboards and
//! regression tooling consume the run without screen-scraping the
//! table.

use afft_bench::workload::random_signal;
use afft_bench::{json, row};
use afft_core::cached::cached_fft;
use afft_core::engine::{EngineRegistry, McfftEngine};
use afft_core::mcfft::mcfft;
use afft_core::reference::{bit_reverse_permute, fft_radix2_dif_f64, fft_radix2_dit_f64};
use afft_core::{simd, ArrayFft, Direction};
use afft_num::Complex;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Calls `f` repeatedly for roughly `budget`, returning calls/sec.
fn tps(budget: Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm engine scratch and caches outside the timed region
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        for _ in 0..8 {
            f();
        }
        iters += 8;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// The seed's fully-allocating execution for engines that expose their
/// legacy entry point (`None` where the trait wrapper is the only
/// allocating path).
fn alloc_path_tps(name: &str, n: usize, x: &[Complex<f64>], budget: Duration) -> Option<f64> {
    let dir = Direction::Forward;
    match name {
        "radix2_dit" => Some(tps(budget, || {
            let mut d = x.to_vec();
            fft_radix2_dit_f64(&mut d, dir).expect("dit");
            black_box(&d);
        })),
        "radix2_dif" => Some(tps(budget, || {
            let mut d = x.to_vec();
            fft_radix2_dif_f64(&mut d, dir).expect("dif");
            bit_reverse_permute(&mut d);
            black_box(&d);
        })),
        "mcfft" => {
            let epochs = McfftEngine::new(n).expect("mcfft plan").epochs().clone();
            Some(tps(budget, || {
                black_box(mcfft(x, &epochs, dir).expect("mcfft"));
            }))
        }
        "array_fft" => {
            let plan: ArrayFft<f64> = ArrayFft::new(n).expect("array plan");
            Some(tps(budget, || {
                black_box(plan.process(x, dir).expect("process"));
            }))
        }
        "cached_fft" => Some(tps(budget, || {
            black_box(cached_fft(x, dir).expect("cached").bins);
        })),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // `--stamp <secs>` pins the artifact's timestamp (reproducible CI
    // artifacts); otherwise the system clock stamps the run. A
    // malformed pin is a hard error, never a silent clock fallback.
    let stamp = afft_bench::parse_stamp(&args).map_err(std::io::Error::other)?;
    let sizes: &[usize] =
        if smoke { &[64, 97, 256, 1200] } else { &[64, 97, 128, 256, 512, 1024, 1536] };
    let budget = Duration::from_millis(if smoke { 5 } else { 150 });

    let widths = [16usize, 12, 12, 12, 12];
    // Headline observables: array_fft's into-vs-alloc peak as
    // (speedup, n); for the mixed-radix acceptance gate the fastest of
    // split_radix/radix4_dit over radix2_dit at N = 1024 on the into
    // path, as (into/s, engine); for the SIMD gate the radix4_simd
    // into-rate versus the best scalar engine at N = 1024.
    let mut best_array = (0.0f64, 0usize);
    let mut radix2_1024 = 0.0f64;
    let mut best_mixed_family = (0.0f64, "");
    let mut best_scalar_1024 = (0.0f64, String::new());
    let mut radix4_simd_1024 = 0.0f64;
    // One flat record per (engine, n) arm set, for the JSON artifact.
    let mut records: Vec<String> = Vec::new();
    for &n in sizes {
        let mut registry = EngineRegistry::standard(n)?;
        let names: Vec<String> = registry.names().iter().map(|s| s.to_string()).collect();
        let x = random_signal(n, n as u64);
        println!("== throughput at N = {n} (budget {budget:?} per arm) ==");
        println!(
            "{}",
            row(
                &[
                    "engine".into(),
                    "alloc/s".into(),
                    "wrap/s".into(),
                    "into/s".into(),
                    "into/alloc".into(),
                ],
                &widths
            )
        );
        for name in names {
            // The O(N^2) reference would dwarf the budget for nothing:
            // its allocation fraction is negligible by construction.
            if name == "dft_naive" {
                continue;
            }
            let mut engine = registry.take(&name).expect("registered");
            let wrap_tps = tps(budget, || {
                black_box(engine.execute(&x, Direction::Forward).expect("execute"));
            });
            let mut out = vec![Complex::zero(); n];
            let into_tps = tps(budget, || {
                engine.execute_into(&x, &mut out, Direction::Forward).expect("execute_into");
                black_box(&out);
            });
            // Engines without a legacy entry point get no alloc arm:
            // report "-" rather than substituting the wrapper numbers.
            let alloc_tps = alloc_path_tps(&name, n, &x, budget);
            let speedup = alloc_tps.map(|a| into_tps / a);
            // The headline (and the acceptance gate below) counts only
            // the sizes the refactor targets, N >= 256.
            if let (true, true, Some(s)) = (name == "array_fft", n >= 256, speedup) {
                if s > best_array.0 {
                    best_array = (s, n);
                }
            }
            if n == 1024 {
                if name == "radix2_dit" {
                    radix2_1024 = into_tps;
                }
                if (name == "split_radix" || name == "radix4_dit") && into_tps > best_mixed_family.0
                {
                    best_mixed_family = (
                        into_tps,
                        if name == "split_radix" { "split_radix" } else { "radix4_dit" },
                    );
                }
                // The SIMD gate compares radix4_simd against the best
                // *scalar* engine (every non-SIMD N log N backend).
                if name == "radix4_simd" {
                    radix4_simd_1024 = into_tps;
                } else if !name.ends_with("_simd") && into_tps > best_scalar_1024.0 {
                    best_scalar_1024 = (into_tps, name.clone());
                }
            }
            records.push(
                json::Obj::new()
                    .num("n", n as f64)
                    .str("engine", &name)
                    .raw("alloc_tps", alloc_tps.map_or("null".into(), json::num))
                    .num("wrap_tps", wrap_tps)
                    .num("into_tps", into_tps)
                    .finish(),
            );
            println!(
                "{}",
                row(
                    &[
                        name.clone(),
                        alloc_tps.map_or("-".into(), |a| format!("{a:.0}")),
                        format!("{wrap_tps:.0}"),
                        format!("{into_tps:.0}"),
                        speedup.map_or("-".into(), |s| format!("{s:.2}x")),
                    ],
                    &widths
                )
            );
            assert!(into_tps > 0.0 && wrap_tps > 0.0, "{name} produced no iterations");
        }
        println!();
    }
    println!(
        "array_fft: execute_into peaks at {:.2}x the allocating path (N = {})",
        best_array.0, best_array.1
    );
    if radix2_1024 > 0.0 && best_mixed_family.0 > 0.0 {
        println!(
            "{}: {:.2}x radix2_dit at N = 1024 (into-path)",
            best_mixed_family.1,
            best_mixed_family.0 / radix2_1024
        );
    }
    let simd_level = simd::active_level();
    let simd_speedup = (radix4_simd_1024 > 0.0 && best_scalar_1024.0 > 0.0)
        .then(|| radix4_simd_1024 / best_scalar_1024.0);
    if let Some(s) = simd_speedup {
        println!(
            "radix4_simd [{}]: {:.2}x the best scalar engine ({}) at N = 1024 (into-path)",
            simd_level.as_str(),
            s,
            best_scalar_1024.1
        );
    }
    // The acceptance bar of the refactor, enforced after the full
    // report is printed (never mid-table), and only where the timing
    // is meaningful: a full run of an optimized build. The --smoke
    // budgets are too short to gate on a loaded CI runner, and debug
    // builds slow both arms until the allocation fraction vanishes.
    if !smoke && !cfg!(debug_assertions) && best_array.0 < 1.5 {
        eprintln!(
            "FAIL: execute_into must reach 1.5x the allocating path on array_fft \
             for some N >= 256, got {:.2}x",
            best_array.0
        );
        std::process::exit(1);
    }
    // The mixed-radix family's acceptance bar: the plan-time-twiddle
    // power-of-two kernels must beat the radix-2 reference by >= 1.2x
    // at N = 1024 (same caveats as above: full optimized runs only).
    if !smoke && !cfg!(debug_assertions) && best_mixed_family.0 < 1.2 * radix2_1024 {
        eprintln!(
            "FAIL: split_radix/radix4_dit must reach 1.2x radix2_dit at N = 1024, got {:.2}x",
            best_mixed_family.0 / radix2_1024
        );
        std::process::exit(1);
    }
    // The SIMD tier's acceptance bar: radix4_simd must reach 2x the
    // best scalar engine at N = 1024 — but only where the tier exists.
    // On hosts without a vector unit (or under AFFT_NO_SIMD) the gate
    // auto-skips with a logged notice rather than failing vacuously.
    if !smoke && !cfg!(debug_assertions) {
        match simd_speedup {
            Some(s) if s < 2.0 => {
                eprintln!(
                    "FAIL: radix4_simd must reach 2.0x the best scalar engine at N = 1024, \
                     got {s:.2}x over {}",
                    best_scalar_1024.1
                );
                std::process::exit(1);
            }
            Some(_) => {}
            None => {
                println!(
                    "SIMD gate skipped: no vector tier in the registry \
                     (detected level: {}, AFFT_NO_SIMD {})",
                    simd::detect_host().as_str(),
                    if simd::simd_suppressed() { "set" } else { "unset" }
                );
            }
        }
    }

    // Machine-readable artifact, full runs only (smoke budgets are too
    // noisy to be worth recording).
    if !smoke {
        let doc = json::Obj::new()
            .str("bench", "throughput")
            .num("stamp_unix", stamp as f64)
            .raw(
                "host",
                json::Obj::new()
                    .str("arch", std::env::consts::ARCH)
                    .str("simd_level", simd_level.as_str())
                    .num("simd_lanes", simd_level.lanes() as f64)
                    .bool("simd_suppressed", simd::simd_suppressed())
                    .finish(),
            )
            .num("budget_ms", budget.as_millis() as f64)
            .raw("sizes", json::arr(sizes.iter().map(|&n| json::num(n as f64))))
            .raw("results", json::arr(records))
            .raw(
                "summary",
                json::Obj::new()
                    .num("array_fft_best_into_vs_alloc", best_array.0)
                    .num("array_fft_best_n", best_array.1 as f64)
                    .raw(
                        "radix4_simd_vs_best_scalar_1024",
                        simd_speedup.map_or("null".into(), json::num),
                    )
                    .str("best_scalar_1024", &best_scalar_1024.1)
                    .finish(),
            )
            .finish();
        std::fs::write("BENCH_throughput.json", doc + "\n")?;
        println!("wrote BENCH_throughput.json");
    }
    Ok(())
}
