//! Experiment harnesses: one binary per paper artifact (Table I,
//! Table II, the Section IV hardware numbers, the Fig. 3 matrix proof)
//! plus ablation and scaling extensions, and criterion benches over the
//! same drivers.
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run -p afft-bench --release --bin table1
//! cargo run -p afft-bench --release --bin table2
//! cargo run -p afft-bench --release --bin hwcost
//! cargo run -p afft-bench --release --bin matrix_proof
//! cargo run -p afft-bench --release --bin ablation
//! cargo run -p afft-bench --release --bin scaling
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use afft_obs::json;
pub mod paper;
pub mod workload;

/// Resolves the artifact timestamp for a bench bin's `--stamp <secs>`
/// flag: the pinned value when given (reproducible CI artifacts), the
/// system clock when the flag is absent.
///
/// A `--stamp` with a missing or unparseable value is a **hard error**,
/// never a silent clock fallback — a CI invocation that misspells its
/// pin must fail loudly, not emit a nondeterministically-stamped
/// artifact that happens to pass the schema check.
///
/// # Errors
///
/// A human-readable message naming the bad value (or its absence) for
/// the bin to print before exiting nonzero.
pub fn parse_stamp(args: &[String]) -> Result<u64, String> {
    let Some(at) = args.iter().position(|a| a == "--stamp") else {
        return Ok(std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()));
    };
    match args.get(at + 1) {
        None => Err("--stamp requires a value (unix seconds)".to_string()),
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("--stamp value {v:?} is not a unix-seconds integer")),
    }
}

/// Formats a ratio as the paper's "X-factor" improvement strings.
pub fn factor(ours: f64, other: f64) -> String {
    if ours <= 0.0 {
        return "-".to_string();
    }
    format!("{:.1}X", other / ours)
}

/// Render one table row with fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{c:>w$}  ", w = w));
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_formats() {
        assert_eq!(factor(4168.0, 3_611_551.0), "866.5X");
        assert_eq!(factor(0.0, 10.0), "-");
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_stamp_pins_reads_clock_and_rejects_garbage() {
        // Pinned value wins verbatim.
        assert_eq!(parse_stamp(&argv(&["bin", "--stamp", "1234"])), Ok(1234));
        // No flag: the system clock (post-2020, sane).
        assert!(parse_stamp(&argv(&["bin", "--smoke"])).unwrap() > 1_577_836_800);
        // Malformed or missing values are hard errors, not clock
        // fallbacks — the regression this helper exists to prevent.
        assert!(parse_stamp(&argv(&["bin", "--stamp"])).is_err());
        assert!(parse_stamp(&argv(&["bin", "--stamp", "yesterday"])).is_err());
        assert!(parse_stamp(&argv(&["bin", "--stamp", "-5"])).is_err());
        assert!(parse_stamp(&argv(&["bin", "--stamp", "12.5"])).is_err());
    }
}
