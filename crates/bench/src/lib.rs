//! Experiment harnesses: one binary per paper artifact (Table I,
//! Table II, the Section IV hardware numbers, the Fig. 3 matrix proof)
//! plus ablation and scaling extensions, and criterion benches over the
//! same drivers.
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run -p afft-bench --release --bin table1
//! cargo run -p afft-bench --release --bin table2
//! cargo run -p afft-bench --release --bin hwcost
//! cargo run -p afft-bench --release --bin matrix_proof
//! cargo run -p afft-bench --release --bin ablation
//! cargo run -p afft-bench --release --bin scaling
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use afft_obs::json;
pub mod paper;
pub mod workload;

/// Formats a ratio as the paper's "X-factor" improvement strings.
pub fn factor(ours: f64, other: f64) -> String {
    if ours <= 0.0 {
        return "-".to_string();
    }
    format!("{:.1}X", other / ours)
}

/// Render one table row with fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{c:>w$}  ", w = w));
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_formats() {
        assert_eq!(factor(4168.0, 3_611_551.0), "866.5X");
        assert_eq!(factor(0.0, 10.0), "-");
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
