//! The paper's published numbers plus the registry-driven measurement
//! harness: every report is produced by iterating the
//! [`FftEngine`](afft_core::engine::FftEngine) registry — no
//! backend-specific call sites — and printed next to the paper's
//! figures.

use afft_asip::engine::registry_with_asip;
use afft_core::cached::MemTraffic;
use afft_core::reference::max_error;
use afft_core::{Direction, FftError};

use crate::workload::random_signal;

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// FFT size.
    pub n: usize,
    /// Total cycle count.
    pub cycles: u64,
    /// Data throughput in Mbps (6 bit/sample at 300 MHz; see
    /// EXPERIMENTS.md).
    pub throughput_mbps: f64,
}

/// The paper's Table I.
pub const TABLE1: [Table1Row; 5] = [
    Table1Row { n: 64, cycles: 197, throughput_mbps: 584.7 },
    Table1Row { n: 128, cycles: 402, throughput_mbps: 572.2 },
    Table1Row { n: 256, cycles: 851, throughput_mbps: 540.9 },
    Table1Row { n: 512, cycles: 1828, throughput_mbps: 502.2 },
    Table1Row { n: 1024, cycles: 4168, throughput_mbps: 440.6 },
];

/// One implementation column of the paper's Table II (1024 points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Col {
    /// Implementation name.
    pub name: &'static str,
    /// Total cycles.
    pub cycles: u64,
    /// Load instructions (`None` where the paper reports "-").
    pub loads: Option<u64>,
    /// Store instructions.
    pub stores: Option<u64>,
    /// Data-cache misses.
    pub misses: u64,
}

/// The paper's Table II.
pub const TABLE2: [Table2Col; 4] = [
    Table2Col {
        name: "Imple1 standard SW",
        cycles: 3_611_551,
        loads: Some(91_675),
        stores: Some(91_677),
        misses: 114_575,
    },
    Table2Col { name: "Imple2 TI DSP", cycles: 24_976, loads: None, stores: None, misses: 9_944 },
    Table2Col {
        name: "Imple3 Xtensa ASIP",
        cycles: 9_705,
        loads: Some(5_494),
        stores: Some(5_301),
        misses: 284,
    },
    Table2Col {
        name: "Imple4 array ASIP",
        cycles: 4_168,
        loads: Some(1_059),
        stores: Some(1_192),
        misses: 106,
    },
];

/// Section IV synthesis results.
pub mod hw {
    /// BU + AC gate count.
    pub const BU_AC_GATES: u64 = 17_324;
    /// CRF + coefficient ROM gate count.
    pub const CRF_ROM_GATES: u64 = 15_764;
    /// BU + AC power at 300 MHz, mW.
    pub const BU_AC_POWER_MW: f64 = 17.68;
    /// BU critical path, ns.
    pub const BU_CRITICAL_NS: f64 = 3.2;
    /// Base PISA core gates (with 32 KB cache).
    pub const PISA_GATES: u64 = 106_000;
}

/// One engine's measurement from a registry survey.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Engine name ([`FftEngine::name`](afft_core::engine::FftEngine::name)).
    pub name: String,
    /// Transform size surveyed.
    pub n: usize,
    /// Maximum deviation from the registry's golden reference,
    /// relative to the spectrum peak.
    pub relative_error: f64,
    /// The engine's declared tolerance for that deviation.
    pub tolerance: f64,
    /// Modelled main-memory traffic, where the backend reports it.
    pub traffic: Option<MemTraffic>,
    /// Cycle count, on cycle-accurate backends.
    pub cycles: Option<u64>,
}

impl EngineReport {
    /// Whether the measured deviation is inside the declared tolerance.
    pub fn within_tolerance(&self) -> bool {
        self.relative_error < self.tolerance
    }
}

/// Runs every registered backend (software models plus the
/// cycle-accurate ASIP ISS) on one random signal and reports each
/// engine's deviation, traffic and cycles.
///
/// The first registered engine — the naive DFT — is the golden
/// reference the others are measured against; everything is reached
/// through the [`FftEngine`](afft_core::engine::FftEngine) trait.
///
/// # Errors
///
/// Returns [`FftError`] for unsupported sizes or backend failures.
pub fn survey(n: usize, seed: u64) -> Result<Vec<EngineReport>, FftError> {
    let mut registry = registry_with_asip(n)?;
    let x = random_signal(n, seed);
    let golden = registry
        .get_mut("dft_naive")
        .expect("standard registry always carries the golden reference")
        .execute(&x, Direction::Forward)?;
    let peak = golden.iter().map(|c| c.abs()).fold(f64::MIN_POSITIVE, f64::max);

    // One reusable spectrum buffer for the whole survey: every engine
    // executes through the allocation-free `_into` path.
    let mut spectrum = vec![afft_num::Complex::zero(); n];
    let mut reports = Vec::with_capacity(registry.len());
    for engine in registry.engines_mut() {
        // The golden reference already ran; reuse it rather than pay
        // the O(N^2) naive DFT a second time per survey.
        if engine.name() == "dft_naive" {
            spectrum.copy_from_slice(&golden);
        } else {
            engine.execute_into(&x, &mut spectrum, Direction::Forward)?;
        }
        reports.push(EngineReport {
            name: engine.name().to_string(),
            n,
            relative_error: max_error(&spectrum, &golden) / peak,
            tolerance: engine.tolerance(),
            traffic: engine.traffic(),
            cycles: engine.cycles(),
        });
    }
    Ok(reports)
}

/// Renders a [`survey`] as an aligned text table.
pub fn render_survey(reports: &[EngineReport]) -> String {
    let widths = [12usize, 6, 12, 10, 10, 10];
    let mut out = crate::row(
        &[
            "engine".into(),
            "N".into(),
            "rel err".into(),
            "loads".into(),
            "stores".into(),
            "cycles".into(),
        ],
        &widths,
    );
    out.push('\n');
    let opt = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
    for r in reports {
        out.push_str(&crate::row(
            &[
                r.name.clone(),
                r.n.to_string(),
                format!("{:.2e}", r.relative_error),
                opt(r.traffic.map(|t| t.loads as u64)),
                opt(r.traffic.map(|t| t.stores as u64)),
                opt(r.cycles),
            ],
            &widths,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_factors_reproduce_paper_header() {
        // 866.5X, 5.9X, 2.3X over Imple 1..3.
        let ours = TABLE2[3].cycles as f64;
        assert!((TABLE2[0].cycles as f64 / ours - 866.5).abs() < 0.1);
        assert!((TABLE2[1].cycles as f64 / ours - 5.99).abs() < 0.1);
        assert!((TABLE2[2].cycles as f64 / ours - 2.33).abs() < 0.05);
    }

    #[test]
    fn table1_throughput_consistent_with_6bit_constant() {
        for r in TABLE1 {
            let implied = 6.0 * r.n as f64 * 300.0 / r.cycles as f64;
            let rel = (implied - r.throughput_mbps).abs() / r.throughput_mbps;
            assert!(rel < 0.01, "n={}: implied {implied} vs {}", r.n, r.throughput_mbps);
        }
    }

    #[test]
    fn survey_covers_all_backends_at_1024() {
        let reports = survey(1024, 7).expect("survey");
        assert!(reports.len() >= 5, "got {} backends", reports.len());
        assert!(reports.iter().all(EngineReport::within_tolerance));
        // The cycle-accurate backend reports cycles and traffic.
        let asip = reports.iter().find(|r| r.name == "asip_iss").expect("asip registered");
        assert!(asip.cycles.expect("cycles") > 0);
        assert_eq!(asip.traffic.expect("traffic").total(), 4 * 1024);
        let rendered = render_survey(&reports);
        assert!(rendered.contains("asip_iss") && rendered.contains("array_fft"));
    }

    #[test]
    fn survey_works_below_the_array_threshold() {
        let reports = survey(16, 1).expect("survey");
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        // The SIMD tier joins the survey exactly when the host detects
        // a vector unit, so assert on the always-present scalar set.
        let mut expected = vec!["dft_naive", "radix2_dit", "radix2_dif", "radix4_dit"];
        let simd = afft_core::simd::active_level().is_simd();
        if simd {
            expected.push("radix4_simd");
        }
        expected.push("split_radix");
        if simd {
            expected.push("split_radix_simd");
        }
        expected.extend(["mcfft", "mixed_radix", "bluestein"]);
        assert_eq!(names, expected);
        assert!(reports.iter().all(EngineReport::within_tolerance));
    }
}
