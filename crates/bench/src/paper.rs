//! The paper's published numbers, kept next to the harnesses so every
//! report prints paper-vs-measured side by side.

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// FFT size.
    pub n: usize,
    /// Total cycle count.
    pub cycles: u64,
    /// Data throughput in Mbps (6 bit/sample at 300 MHz; see
    /// EXPERIMENTS.md).
    pub throughput_mbps: f64,
}

/// The paper's Table I.
pub const TABLE1: [Table1Row; 5] = [
    Table1Row { n: 64, cycles: 197, throughput_mbps: 584.7 },
    Table1Row { n: 128, cycles: 402, throughput_mbps: 572.2 },
    Table1Row { n: 256, cycles: 851, throughput_mbps: 540.9 },
    Table1Row { n: 512, cycles: 1828, throughput_mbps: 502.2 },
    Table1Row { n: 1024, cycles: 4168, throughput_mbps: 440.6 },
];

/// One implementation column of the paper's Table II (1024 points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Col {
    /// Implementation name.
    pub name: &'static str,
    /// Total cycles.
    pub cycles: u64,
    /// Load instructions (`None` where the paper reports "-").
    pub loads: Option<u64>,
    /// Store instructions.
    pub stores: Option<u64>,
    /// Data-cache misses.
    pub misses: u64,
}

/// The paper's Table II.
pub const TABLE2: [Table2Col; 4] = [
    Table2Col {
        name: "Imple1 standard SW",
        cycles: 3_611_551,
        loads: Some(91_675),
        stores: Some(91_677),
        misses: 114_575,
    },
    Table2Col { name: "Imple2 TI DSP", cycles: 24_976, loads: None, stores: None, misses: 9_944 },
    Table2Col {
        name: "Imple3 Xtensa ASIP",
        cycles: 9_705,
        loads: Some(5_494),
        stores: Some(5_301),
        misses: 284,
    },
    Table2Col {
        name: "Imple4 array ASIP",
        cycles: 4_168,
        loads: Some(1_059),
        stores: Some(1_192),
        misses: 106,
    },
];

/// Section IV synthesis results.
pub mod hw {
    /// BU + AC gate count.
    pub const BU_AC_GATES: u64 = 17_324;
    /// CRF + coefficient ROM gate count.
    pub const CRF_ROM_GATES: u64 = 15_764;
    /// BU + AC power at 300 MHz, mW.
    pub const BU_AC_POWER_MW: f64 = 17.68;
    /// BU critical path, ns.
    pub const BU_CRITICAL_NS: f64 = 3.2;
    /// Base PISA core gates (with 32 KB cache).
    pub const PISA_GATES: u64 = 106_000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_factors_reproduce_paper_header() {
        // 866.5X, 5.9X, 2.3X over Imple 1..3.
        let ours = TABLE2[3].cycles as f64;
        assert!((TABLE2[0].cycles as f64 / ours - 866.5).abs() < 0.1);
        assert!((TABLE2[1].cycles as f64 / ours - 5.99).abs() < 0.1);
        assert!((TABLE2[2].cycles as f64 / ours - 2.33).abs() < 0.05);
    }

    #[test]
    fn table1_throughput_consistent_with_6bit_constant() {
        for r in TABLE1 {
            let implied = 6.0 * r.n as f64 * 300.0 / r.cycles as f64;
            let rel = (implied - r.throughput_mbps).abs() / r.throughput_mbps;
            assert!(rel < 0.01, "n={}: implied {implied} vs {}", r.n, r.throughput_mbps);
        }
    }
}
