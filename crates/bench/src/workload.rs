//! Workload generation shared by the experiment binaries and benches.

use afft_num::{Complex, C64, Q15};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible random complex signal in `[-1, 1)^2` per component.
pub fn random_signal(n: usize, seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

/// The same signal quantised for the fixed-point datapath at 90% of
/// full scale.
pub fn random_signal_q15(n: usize, seed: u64) -> Vec<Complex<Q15>> {
    random_signal(n, seed).iter().map(|&c| Complex::from_c64(c * 0.9)).collect()
}

/// A QPSK-modulated OFDM symbol in the frequency domain (the UWB
/// receiver workload the paper's introduction motivates): random bits
/// through the one constellation mapper the workspace has,
/// [`afft_core::ofdm::qpsk_map`].
pub fn qpsk_symbol(n: usize, seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bits: Vec<(bool, bool)> = (0..n).map(|_| (rng.gen_bool(0.5), rng.gen_bool(0.5))).collect();
    afft_core::ofdm::qpsk_map(&bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signals_are_reproducible() {
        assert_eq!(random_signal(16, 7), random_signal(16, 7));
        assert_ne!(random_signal(16, 7), random_signal(16, 8));
    }

    #[test]
    fn qpsk_has_unit_magnitude() {
        for c in qpsk_symbol(64, 1) {
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn q15_signal_in_range() {
        for c in random_signal_q15(64, 2) {
            assert!(c.re.to_f64().abs() <= 0.9 + 1e-4);
        }
    }
}
