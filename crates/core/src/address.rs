//! The address-changing (AC) algebra of Section II-B/II-C.
//!
//! The paper's central observation is that the *data never moves* inside
//! an epoch: every stage's butterfly outputs are written back to the CRF
//! addresses they were read from, and only the **read wiring** changes
//! between stages — by a single swap of two adjacent address bits. This
//! module implements:
//!
//! * [`sigma`] — the cumulative stage permutation (`def -> edf -> efd`
//!   walk of Fig. 2);
//! * [`local_swap`] — the inter-stage rule `L_j` (swap of the `(j-1)`-th
//!   and `j`-th leftmost bits);
//! * [`stage_butterflies`] — the closed-form AC enumeration that the
//!   hardware decoder implements: from `(module i, stage j)` alone it
//!   yields the 8 CRF addresses and 4 coefficient-ROM addresses of one
//!   `BUT4` operation;
//! * the epoch-boundary memory maps (`AI0`/`AO0`/`AI1`/`AO1` of the
//!   paper) tying group-local CRF addresses to main-memory addresses.

use crate::bits::{bit_reverse, BitPerm};
use crate::plan::Split;

/// Returns the cumulative read permutation `sigma_j` for stage `j`
/// (1-indexed) of a `2^p`-point group.
///
/// `sigma_1` is the identity; `sigma_j` is `sigma_{j-1}` with its
/// `(j-1)`-th and `j`-th leftmost output bits swapped. Reading the CRF
/// through `sigma_j` makes the fixed butterfly module (which always pairs
/// row `u` with row `u + P/2`) land on CRF addresses that differ exactly
/// in bit `p - j`: the correct radix-2 DIF pairs for stage `j`.
///
/// # Panics
///
/// Panics if `j` is outside `1..=p` or `p == 0`.
///
/// # Examples
///
/// ```
/// use afft_core::address::sigma;
/// // The paper's 8-point walk: def, edf, efd.
/// assert_eq!(sigma(3, 1).map(), &[0, 1, 2]);
/// assert_eq!(sigma(3, 2).map(), &[1, 0, 2]);
/// assert_eq!(sigma(3, 3).map(), &[1, 2, 0]);
/// ```
pub fn sigma(p: u32, j: u32) -> BitPerm {
    assert!(p >= 1, "sigma: p must be positive");
    assert!((1..=p).contains(&j), "sigma: stage {j} out of 1..={p}");
    let mut perm = BitPerm::identity(p);
    for s in 2..=j {
        perm = perm.swapped_left(s - 2, s - 1);
    }
    perm
}

/// The paper's local address-changing rule `L_j`: the single swap of the
/// `(j-1)`-th and `j`-th leftmost bits that turns `sigma_{j-1}` into
/// `sigma_j` (stages are 1-indexed; `j >= 2`).
///
/// # Panics
///
/// Panics if `j < 2` or `j > p`.
pub fn local_swap(p: u32, j: u32) -> BitPerm {
    assert!((2..=p).contains(&j), "local_swap: stage {j} out of 2..={p}");
    BitPerm::identity(p).swapped_left(j - 2, j - 1)
}

/// One radix-2 butterfly as the AC hardware emits it: two CRF addresses
/// and a coefficient-ROM address.
///
/// The butterfly computes, in DIF form,
/// `crf[addr_a], crf[addr_b] <- crf[addr_a] + crf[addr_b],
/// (crf[addr_a] - crf[addr_b]) * rom[rom_addr]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Butterfly {
    /// CRF address of the sum-path operand (pairing bit clear).
    pub addr_a: usize,
    /// CRF address of the difference-path operand (`addr_a | 2^(p-j)`).
    pub addr_b: usize,
    /// Coefficient-ROM address (twiddle exponent `e`: the coefficient is
    /// `W_P^e` with `e < P/2`).
    pub rom_addr: usize,
}

/// Enumerates the `P/2` butterflies of stage `j` (1-indexed) of a
/// `2^p`-point group in the AC hardware's order.
///
/// The hardware enumerates butterflies **coefficient-major**: the `c`-th
/// butterfly uses ROM address `floor(c / 2^(j-1)) * 2^(j-1)`, so each run
/// of `2^(j-1)` consecutive butterflies shares one coefficient — the
/// paper's rule "the address in Stage j starts from 0 and increases with
/// a stride of `P/2^j` for every `P/2^j` steps" (their stage index runs
/// opposite to ours: their `j` is our `p - j + 1`; see DESIGN.md §8).
///
/// The closed form per counter `c`:
///
/// ```text
/// t = c >> (j-1)          // coefficient index / low address bits
/// w = c & (2^(j-1) - 1)   // position within the coefficient run
/// addr_a = (w << (p-j+1)) | t
/// addr_b = addr_a | (1 << (p-j))
/// rom    = t << (j-1)
/// ```
///
/// # Panics
///
/// Panics if `j` is outside `1..=p` or `p == 0`.
pub fn stage_butterflies(p: u32, j: u32) -> Vec<Butterfly> {
    assert!(p >= 1, "stage_butterflies: p must be positive");
    assert!((1..=p).contains(&j), "stage_butterflies: stage {j} out of 1..={p}");
    let half = 1usize << (p - 1);
    (0..half).map(|c| butterfly_at(p, j, c)).collect()
}

/// The `c`-th butterfly of stage `j`; see [`stage_butterflies`].
///
/// # Panics
///
/// Panics if `c >= 2^(p-1)` or `j` is out of range.
#[inline]
pub fn butterfly_at(p: u32, j: u32, c: usize) -> Butterfly {
    assert!((1..=p).contains(&j), "butterfly_at: stage {j} out of 1..={p}");
    assert!(c < (1usize << (p - 1)), "butterfly_at: counter {c} out of range");
    let run = 1usize << (j - 1);
    let t = c >> (j - 1);
    let w = c & (run - 1);
    let addr_a = (w << (p - j + 1)) | t;
    Butterfly { addr_a, addr_b: addr_a | (1 << (p - j)), rom_addr: t << (j - 1) }
}

/// The four butterflies executed by `BUT4` module `i` (1-indexed, as in
/// the paper: `i = 1 ..= P/8`) in stage `j`.
///
/// # Panics
///
/// Panics if `i` is outside `1..=P/8` or `j` outside `1..=p`.
pub fn module_butterflies(p: u32, j: u32, i: usize) -> [Butterfly; 4] {
    assert!(p >= 3, "module_butterflies: group must have at least 8 points");
    let modules = 1usize << (p - 3);
    assert!((1..=modules).contains(&i), "module_butterflies: module {i} out of 1..={modules}");
    let base = (i - 1) * 4;
    [
        butterfly_at(p, j, base),
        butterfly_at(p, j, base + 1),
        butterfly_at(p, j, base + 2),
        butterfly_at(p, j, base + 3),
    ]
}

/// Reference enumeration of stage `j` through the cumulative permutation
/// [`sigma`]: row `u` of the fixed module reads CRF address
/// `sigma_j(u)`, paired with `sigma_j(u + P/2)`.
///
/// Produces the same *set* of butterflies as [`stage_butterflies`]
/// (possibly in a different order) — asserted by tests; this is the
/// paper's narrative form, kept as executable documentation.
pub fn stage_butterflies_via_sigma(p: u32, j: u32) -> Vec<Butterfly> {
    let s = sigma(p, j);
    let half = 1usize << (p - 1);
    let dist_bit = 1usize << (p - j);
    (0..half)
        .map(|u| {
            let a = s.apply(u);
            let b = s.apply(u + half);
            debug_assert_eq!(a ^ b, dist_bit, "sigma pairing must differ in bit p-j");
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let e = (lo % dist_bit) << (j - 1);
            Butterfly { addr_a: lo, addr_b: hi, rom_addr: e }
        })
        .collect()
}

/// The AC unit as the *counter machine* the decoder hardware
/// synthesises: per `BUT4` beat it advances a run counter and a
/// coefficient counter with adds and masks only — no multiplies, no
/// sorting — and emits the same butterflies as the closed form
/// [`butterfly_at`] (asserted equivalent by tests for every stage of
/// every supported size).
///
/// # Examples
///
/// ```
/// use afft_core::address::{AcCounter, stage_butterflies};
///
/// let by_counter: Vec<_> = AcCounter::new(5, 2).collect();
/// assert_eq!(by_counter, stage_butterflies(5, 2));
/// ```
#[derive(Debug, Clone)]
pub struct AcCounter {
    /// Pairing-bit value `2^(p-j)` (constant per stage).
    pair_bit: usize,
    /// Address step between butterflies of one coefficient run.
    addr_step: usize,
    /// Run length `2^(j-1)` (butterflies sharing one coefficient).
    run_len: usize,
    /// Coefficient increment per run.
    rom_step: usize,
    // Live counters.
    within_run: usize,
    addr_a: usize,
    run_base: usize,
    rom_addr: usize,
    remaining: usize,
}

impl AcCounter {
    /// Starts the counter machine for stage `j` of a `2^p`-point group.
    ///
    /// # Panics
    ///
    /// Panics if `j` is outside `1..=p` or `p == 0`.
    pub fn new(p: u32, j: u32) -> Self {
        assert!(p >= 1, "AcCounter: p must be positive");
        assert!((1..=p).contains(&j), "AcCounter: stage {j} out of 1..={p}");
        AcCounter {
            pair_bit: 1 << (p - j),
            addr_step: 1 << (p - j + 1),
            run_len: 1 << (j - 1),
            rom_step: 1 << (j - 1),
            within_run: 0,
            addr_a: 0,
            run_base: 0,
            rom_addr: 0,
            remaining: 1 << (p - 1),
        }
    }
}

impl Iterator for AcCounter {
    type Item = Butterfly;

    fn next(&mut self) -> Option<Butterfly> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let bf = Butterfly {
            addr_a: self.addr_a,
            addr_b: self.addr_a | self.pair_bit,
            rom_addr: self.rom_addr,
        };
        // Advance: walk the run with an address adder; at the end of a
        // run, bump the coefficient and restart the address walk one
        // column over.
        self.within_run += 1;
        if self.within_run == self.run_len {
            self.within_run = 0;
            self.run_base += 1;
            self.addr_a = self.run_base;
            self.rom_addr += self.rom_step;
        } else {
            self.addr_a += self.addr_step;
        }
        Some(bf)
    }
}

// ---------------------------------------------------------------------------
// Epoch-boundary memory maps (the paper's AI0 / AO0 / AI1 / AO1).
// ---------------------------------------------------------------------------

/// Main-memory address of the `m`-th point loaded by epoch-0 group `l`:
/// `l + Q*m` (the decimated gather of `Z(s+Pl) = sum_m X(l+Qm) W_P^{sm}`).
///
/// The point is written to CRF address `m`.
///
/// # Panics
///
/// Panics if `l >= Q` or `m >= P`.
#[inline]
pub fn epoch0_load_addr(split: &Split, l: usize, m: usize) -> usize {
    assert!(l < split.q_size && m < split.p_size, "epoch0_load_addr out of range");
    l + split.q_size * m
}

/// Main-memory address where epoch-0 group `l` stores output bin `s`
/// (after pre-rotation): `s + P*l`. The value comes from CRF address
/// `rev_p(s)` (the DIF output reversal `R` folded into the store path).
///
/// # Panics
///
/// Panics if `l >= Q` or `s >= P`.
#[inline]
pub fn epoch0_store_addr(split: &Split, l: usize, s: usize) -> usize {
    assert!(l < split.q_size && s < split.p_size, "epoch0_store_addr out of range");
    s + split.p_size * l
}

/// Main-memory address of the `l`-th point loaded by epoch-1 group `s`:
/// `s + P*l` (reads the epoch-0 output in place). Written to CRF
/// address `l`.
///
/// # Panics
///
/// Panics if `s >= P` or `l >= Q`.
#[inline]
pub fn epoch1_load_addr(split: &Split, s: usize, l: usize) -> usize {
    assert!(s < split.p_size && l < split.q_size, "epoch1_load_addr out of range");
    s + split.p_size * l
}

/// Main-memory address where epoch-1 group `s` stores output `t`:
/// `t + Q*s`. The stored value is FFT bin `X(s + P*t)`, read from CRF
/// address `rev_q(t)`.
///
/// This leaves the result in the paper's `AO1 = [AL][AH]` order: bin
/// `k = s + P*t` lands at address [`swap_halves`]`(k)`. Use
/// [`transposed_to_natural_bin`] to interpret the layout.
///
/// # Panics
///
/// Panics if `s >= P` or `t >= Q`.
#[inline]
pub fn epoch1_store_addr(split: &Split, s: usize, t: usize) -> usize {
    assert!(s < split.p_size && t < split.q_size, "epoch1_store_addr out of range");
    t + split.q_size * s
}

/// Swaps the high `q` bits and low `p` bits of an `n`-bit address:
/// the paper's `[AH][AL] -> [AL][AH]` transform relating `AO0`/`AI1`
/// and the natural/`AO1` orders.
///
/// # Panics
///
/// Panics if `addr >= N`.
#[inline]
pub fn swap_halves(split: &Split, addr: usize) -> usize {
    assert!(addr < split.n, "swap_halves: address out of range");
    let low_p = addr & (split.p_size - 1);
    let high_q = addr >> split.p_stages;
    (low_p << split.q_stages) | high_q
}

/// Given an address in the ASIP's transposed output layout, returns the
/// FFT bin number stored there.
///
/// # Panics
///
/// Panics if `addr >= N`.
#[inline]
pub fn transposed_to_natural_bin(split: &Split, addr: usize) -> usize {
    // Address = t + Q*s  holds bin  k = s + P*t.
    assert!(addr < split.n, "transposed_to_natural_bin: address out of range");
    let t = addr & (split.q_size - 1);
    let s = addr >> split.q_stages;
    s + split.p_size * t
}

/// Where FFT bin `k` lives in the transposed output layout (inverse of
/// [`transposed_to_natural_bin`]).
///
/// # Panics
///
/// Panics if `k >= N`.
#[inline]
pub fn natural_bin_to_transposed(split: &Split, k: usize) -> usize {
    assert!(k < split.n, "natural_bin_to_transposed: bin out of range");
    let s = k & (split.p_size - 1);
    let t = k >> split.p_stages;
    t + split.q_size * s
}

/// The paper's `AO0` view: reverse the low `p` bits of an address,
/// keeping the high `q` bits (the in-group DIF output reversal).
///
/// # Panics
///
/// Panics if `addr >= N`.
#[inline]
pub fn reverse_low_bits(split: &Split, addr: usize) -> usize {
    assert!(addr < split.n, "reverse_low_bits: address out of range");
    let low = addr & (split.p_size - 1);
    let high = addr >> split.p_stages;
    (high << split.p_stages) | bit_reverse(low, split.p_stages)
}

/// Exponent of the inter-epoch pre-rotation coefficient applied to
/// `Z(s + P*l)`: `W_N^{s*l}`.
#[inline]
pub fn prerot_exponent(split: &Split, l: usize, s: usize) -> usize {
    debug_assert!(l < split.q_size && s < split.p_size);
    (s * l) % split.n
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn sigma_matches_paper_walk() {
        assert_eq!(sigma(3, 1), BitPerm::identity(3));
        assert_eq!(sigma(3, 2).map(), &[1, 0, 2]);
        assert_eq!(sigma(3, 3).map(), &[1, 2, 0]);
    }

    #[test]
    fn sigma_pairs_differ_in_dif_bit() {
        for p in 3..=7u32 {
            for j in 1..=p {
                let s = sigma(p, j);
                let half = 1usize << (p - 1);
                for u in 0..half {
                    let a = s.apply(u);
                    let b = s.apply(u + half);
                    assert_eq!(a ^ b, 1usize << (p - j), "p={p} j={j} u={u}");
                }
            }
        }
    }

    #[test]
    fn local_swap_advances_sigma() {
        for p in 3..=7u32 {
            for j in 2..=p {
                let prev = sigma(p, j - 1);
                let step = local_swap(p, j);
                // sigma_j's map is sigma_{j-1}'s with positions j-2, j-1
                // swapped, which is exactly applying L_j to the output.
                let mut expect = prev.map().to_vec();
                expect.swap(j as usize - 2, j as usize - 1);
                assert_eq!(sigma(p, j).map(), &expect[..]);
                // And as address functions: sigma_j = L_j ∘ sigma_{j-1}
                // (the local swap relabels the *output* of the previous
                // wiring, exactly the paper's `edf -> efd` step).
                for x in 0..(1usize << p) {
                    assert_eq!(sigma(p, j).apply(x), step.apply(prev.apply(x)));
                }
            }
        }
    }

    #[test]
    fn closed_form_matches_sigma_enumeration_as_sets() {
        for p in 3..=7u32 {
            for j in 1..=p {
                let a: BTreeSet<Butterfly> = stage_butterflies(p, j).into_iter().collect();
                let b: BTreeSet<Butterfly> =
                    stage_butterflies_via_sigma(p, j).into_iter().collect();
                assert_eq!(a, b, "p={p} j={j}");
            }
        }
    }

    impl PartialOrd for Butterfly {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Butterfly {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.addr_a, self.addr_b, self.rom_addr).cmp(&(
                other.addr_a,
                other.addr_b,
                other.rom_addr,
            ))
        }
    }

    #[test]
    fn butterflies_cover_all_addresses_once() {
        for p in 3..=7u32 {
            for j in 1..=p {
                let mut seen = BTreeSet::new();
                for b in stage_butterflies(p, j) {
                    assert!(seen.insert(b.addr_a), "dup addr {}", b.addr_a);
                    assert!(seen.insert(b.addr_b), "dup addr {}", b.addr_b);
                    assert_eq!(b.addr_b, b.addr_a | (1 << (p - j)));
                    assert!(b.rom_addr < (1 << (p - 1)));
                }
                assert_eq!(seen.len(), 1 << p);
            }
        }
    }

    #[test]
    fn paper_32_point_coefficient_example() {
        // Paper Section II-C: 32-point FFT, "In Stage 2, the 16
        // coefficient addresses for module 1 through module 4 are
        // (0,0,0,0), (0,0,0,0), (8,8,8,8), (8,8,8,8)". The paper counts
        // stages from the coefficient-coarse end; ours runs DIF order,
        // so their stage 2 is our stage p-2+1 = 4.
        let p = 5;
        let ours = 4;
        let addrs: Vec<usize> = stage_butterflies(p, ours).iter().map(|b| b.rom_addr).collect();
        let want: Vec<usize> = std::iter::repeat_n(0, 8).chain(std::iter::repeat_n(8, 8)).collect();
        assert_eq!(addrs, want);
        // Their stage 1 (our stage 5): stride 16 every 16 steps => all 0.
        let addrs: Vec<usize> = stage_butterflies(p, 5).iter().map(|b| b.rom_addr).collect();
        assert!(addrs.iter().all(|&a| a == 0));
        // Their stage 5 (our stage 1): stride 1 => 0..16.
        let addrs: Vec<usize> = stage_butterflies(p, 1).iter().map(|b| b.rom_addr).collect();
        assert_eq!(addrs, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn module_butterflies_slice_the_stage() {
        let p = 5;
        for j in 1..=p {
            let all = stage_butterflies(p, j);
            for i in 1..=(1usize << (p - 3)) {
                let m = module_butterflies(p, j, i);
                assert_eq!(&all[(i - 1) * 4..i * 4], &m[..], "j={j} i={i}");
            }
        }
    }

    #[test]
    fn counter_machine_equals_closed_form_everywhere() {
        for p in 3..=8u32 {
            for j in 1..=p {
                let counted: Vec<Butterfly> = AcCounter::new(p, j).collect();
                assert_eq!(counted, stage_butterflies(p, j), "p={p} j={j}");
            }
        }
    }

    #[test]
    fn counter_machine_is_fused_iterator() {
        let mut c = AcCounter::new(3, 1);
        for _ in 0..4 {
            assert!(c.next().is_some());
        }
        assert!(c.next().is_none());
        assert!(c.next().is_none());
    }

    #[test]
    fn epoch_maps_partition_memory() {
        let split = Split::for_size(128).unwrap();
        // Epoch 0 loads: every memory address exactly once.
        let mut seen = BTreeSet::new();
        for l in 0..split.q_size {
            for m in 0..split.p_size {
                assert!(seen.insert(epoch0_load_addr(&split, l, m)));
            }
        }
        assert_eq!(seen.len(), 128);
        // Epoch 0 stores / epoch 1 loads agree and cover memory.
        let mut seen = BTreeSet::new();
        for l in 0..split.q_size {
            for s in 0..split.p_size {
                let a = epoch0_store_addr(&split, l, s);
                assert_eq!(a, epoch1_load_addr(&split, s, l));
                assert!(seen.insert(a));
            }
        }
        assert_eq!(seen.len(), 128);
        // Epoch 1 stores cover memory.
        let mut seen = BTreeSet::new();
        for s in 0..split.p_size {
            for t in 0..split.q_size {
                assert!(seen.insert(epoch1_store_addr(&split, s, t)));
            }
        }
        assert_eq!(seen.len(), 128);
    }

    #[test]
    fn transposed_layout_roundtrip_and_swap_halves() {
        for n in [64usize, 128, 1024] {
            let split = Split::for_size(n).unwrap();
            for k in 0..n {
                let addr = natural_bin_to_transposed(&split, k);
                assert_eq!(transposed_to_natural_bin(&split, addr), k);
                // The layout is exactly the paper's AO1 = [AL][AH].
                assert_eq!(addr, swap_halves(&split, k));
            }
        }
    }

    #[test]
    fn swap_halves_involution_for_square_n() {
        let split = Split::for_size(1024).unwrap(); // p == q
        for k in [0usize, 1, 33, 1000, 1023] {
            assert_eq!(swap_halves(&split, swap_halves(&split, k)), k);
        }
    }

    #[test]
    fn reverse_low_bits_matches_manual() {
        let split = Split::for_size(64).unwrap(); // p = 3
                                                  // addr = [hi=0b101][lo=0b011] -> lo reversed = 0b110.
        let addr = (0b101 << 3) | 0b011;
        assert_eq!(reverse_low_bits(&split, addr), (0b101 << 3) | 0b110);
    }

    #[test]
    fn prerot_exponent_basics() {
        let split = Split::for_size(64).unwrap();
        assert_eq!(prerot_exponent(&split, 0, 5), 0);
        assert_eq!(prerot_exponent(&split, 3, 0), 0);
        assert_eq!(prerot_exponent(&split, 3, 5), 15);
        assert_eq!(prerot_exponent(&split, 7, 7), 49);
    }
}
