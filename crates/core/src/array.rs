//! The array-structured FFT: the paper's primary contribution as a
//! software golden model.
//!
//! [`ArrayFft`] executes exactly the data flow of the ASIP — two epochs
//! of CRF-resident groups, the fixed BU module per stage, pre-rotation
//! on the epoch-0 store path, transposed output layout — in plain Rust.
//! The instruction-set simulator's FFT program is verified point-for-
//! point against this model.

use crate::address::{
    epoch0_load_addr, epoch0_store_addr, epoch1_load_addr, epoch1_store_addr, prerot_exponent,
    transposed_to_natural_bin,
};
use crate::bits::bit_reverse;
use crate::error::FftError;
use crate::plan::Split;
use crate::reference::Direction;
use crate::rom::{CoefRom, PrerotTable};
use crate::stage::{run_group, Scaling};
use afft_num::{Complex, Scalar};

/// A planned array-structured FFT of a fixed size `N`.
///
/// Construction precomputes the epoch split, the `P/2`-entry coefficient
/// ROM and the `N/8 + 1`-entry pre-rotation table; [`ArrayFft::process`]
/// then runs in `O(N log N)` with no allocation beyond the output and
/// one CRF-sized scratch buffer.
///
/// # Examples
///
/// ```
/// use afft_core::{ArrayFft, Direction};
/// use afft_num::Complex;
///
/// let fft: ArrayFft<f64> = ArrayFft::new(64)?;
/// let mut x = vec![Complex::zero(); 64];
/// x[0] = Complex::new(1.0, 0.0);
/// let y = fft.process(&x, Direction::Forward)?;
/// assert!(y.iter().all(|b| (b.re - 1.0).abs() < 1e-9)); // flat spectrum
/// # Ok::<(), afft_core::FftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArrayFft<T> {
    split: Split,
    rom: CoefRom<T>,
    prerot: PrerotTable<T>,
    scaling: Scaling,
}

impl<T: Scalar> ArrayFft<T> {
    /// Plans an `N`-point transform with no per-stage scaling (exact
    /// DFT amplitudes; the right choice for `f64`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `N` is a power of two
    /// `>= 64` (see [`Split::for_size`]).
    pub fn new(n: usize) -> Result<Self, FftError> {
        Self::with_scaling(n, Scaling::None)
    }

    /// Plans an `N`-point transform with explicit datapath scaling.
    ///
    /// Use [`Scaling::HalfPerStage`] for fixed-point element types: the
    /// output is then the DFT divided by `N`, and no stage can overflow.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `N` is a power of two
    /// `>= 64`.
    pub fn with_scaling(n: usize, scaling: Scaling) -> Result<Self, FftError> {
        let split = Split::for_size(n)?;
        Ok(ArrayFft {
            split,
            rom: CoefRom::new(split.p_size)?,
            prerot: PrerotTable::new(n)?,
            scaling,
        })
    }

    /// Plans with an explicit `N = P * Q` factorisation (used by the
    /// ablation experiments probing non-canonical splits).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidDecomposition`] for invalid factors.
    pub fn with_split(split: Split, scaling: Scaling) -> Result<Self, FftError> {
        Ok(ArrayFft {
            split,
            rom: CoefRom::new(split.p_size)?,
            prerot: PrerotTable::new(split.n)?,
            scaling,
        })
    }

    /// The epoch decomposition in use.
    pub fn split(&self) -> &Split {
        &self.split
    }

    /// The intra-epoch coefficient ROM.
    pub fn rom(&self) -> &CoefRom<T> {
        &self.rom
    }

    /// The inter-epoch pre-rotation table.
    pub fn prerot(&self) -> &PrerotTable<T> {
        &self.prerot
    }

    /// The configured datapath scaling.
    pub fn scaling(&self) -> Scaling {
        self.scaling
    }

    /// Transform size `N`.
    pub fn len(&self) -> usize {
        self.split.n
    }

    /// Never true for a planned transform; provided alongside
    /// [`ArrayFft::len`] for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Runs the transform, leaving the result in the **hardware layout**:
    /// FFT bin `s + P*t` at output address `t + Q*s` (the paper's
    /// `AO1 = [AL][AH]` order). This is bit-exact what the ASIP's memory
    /// holds after `STOUT` of epoch 1.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != N`.
    pub fn process_transposed(
        &self,
        input: &[Complex<T>],
        dir: Direction,
    ) -> Result<Vec<Complex<T>>, FftError> {
        let s = &self.split;
        if input.len() != s.n {
            return Err(FftError::LengthMismatch { expected: s.n, got: input.len() });
        }
        let mut mid = vec![Complex::zero(); s.n];
        let mut out = vec![Complex::zero(); s.n];
        let mut crf = vec![Complex::zero(); s.p_size];

        // Epoch 0: Q groups of P points.
        for l in 0..s.q_size {
            for m in 0..s.p_size {
                crf[m] = input[epoch0_load_addr(s, l, m)];
            }
            run_group(&mut crf, &self.rom, s.p_size, dir, self.scaling);
            for bin in 0..s.p_size {
                let v = crf[bit_reverse(bin, s.p_stages)];
                let w = self.prerot.coefficient_dir(prerot_exponent(s, l, bin), dir);
                mid[epoch0_store_addr(s, l, bin)] = v * w;
            }
        }

        // Epoch 1: P groups of Q points.
        for g in 0..s.p_size {
            for l in 0..s.q_size {
                crf[l] = mid[epoch1_load_addr(s, g, l)];
            }
            run_group(&mut crf, &self.rom, s.q_size, dir, self.scaling);
            for t in 0..s.q_size {
                out[epoch1_store_addr(s, g, t)] = crf[bit_reverse(t, s.q_stages)];
            }
        }
        Ok(out)
    }

    /// Runs the transform and gathers the result into **natural bin
    /// order** (`out[k] = X(k)`), the convenient library-level view.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != N`.
    pub fn process(
        &self,
        input: &[Complex<T>],
        dir: Direction,
    ) -> Result<Vec<Complex<T>>, FftError> {
        let transposed = self.process_transposed(input, dir)?;
        Ok(self.natural_from_transposed(&transposed))
    }

    /// Reorders a hardware-layout result into natural bin order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != N`.
    pub fn natural_from_transposed(&self, data: &[Complex<T>]) -> Vec<Complex<T>> {
        assert_eq!(data.len(), self.split.n, "natural_from_transposed: length mismatch");
        let mut out = vec![Complex::zero(); self.split.n];
        for (addr, &v) in data.iter().enumerate() {
            out[transposed_to_natural_bin(&self.split, addr)] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use afft_num::{C64, Q15};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn matches_reference_for_all_paper_sizes() {
        for n in [64usize, 128, 256, 512, 1024] {
            let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
            let x = random_signal(n, n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let got = fft.process(&x, Direction::Forward).unwrap();
            assert!(max_error(&got, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn matches_reference_for_extension_sizes() {
        for n in [2048usize, 4096] {
            let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
            let x = random_signal(n, n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let got = fft.process(&x, Direction::Forward).unwrap();
            assert!(max_error(&got, &want) < 1e-7 * n as f64, "n={n}");
        }
    }

    #[test]
    fn transposed_layout_is_the_documented_permutation() {
        let n = 128;
        let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
        let x = random_signal(n, 2);
        let nat = fft.process(&x, Direction::Forward).unwrap();
        let tr = fft.process_transposed(&x, Direction::Forward).unwrap();
        for (addr, &v) in tr.iter().enumerate() {
            let k = transposed_to_natural_bin(fft.split(), addr);
            assert!(v.dist(nat[k]) < 1e-12);
        }
    }

    #[test]
    fn inverse_round_trip() {
        let n = 256;
        let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
        let x = random_signal(n, 3);
        let y = fft.process(&x, Direction::Forward).unwrap();
        let z = fft.process(&y, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = z.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-9);
    }

    #[test]
    fn non_canonical_split_still_correct() {
        let split = Split::with_factors(1024, 128, 8).unwrap();
        let fft: ArrayFft<f64> = ArrayFft::with_split(split, Scaling::None).unwrap();
        let x = random_signal(1024, 4);
        let want = dft_naive(&x, Direction::Forward).unwrap();
        let got = fft.process(&x, Direction::Forward).unwrap();
        assert!(max_error(&got, &want) < 1e-7);
    }

    #[test]
    fn q15_fixed_point_accuracy() {
        let n = 256;
        let fft: ArrayFft<Q15> = ArrayFft::with_scaling(n, Scaling::HalfPerStage).unwrap();
        let xf = random_signal(n, 5);
        let xq: Vec<Complex<Q15>> = xf.iter().map(|&c| Complex::from_c64(c * 0.9)).collect();
        let exact_in: Vec<C64> = xq.iter().map(|q| q.to_c64()).collect();
        let want = dft_naive(&exact_in, Direction::Forward).unwrap();
        let got = fft.process(&xq, Direction::Forward).unwrap();
        // Output is DFT / N; rescale and compare with a tolerance
        // appropriate for a 16-bit datapath with per-stage rounding.
        let gotf: Vec<C64> = got.iter().map(|q| q.to_c64() * n as f64).collect();
        let err = max_error(&gotf, &want);
        let scale: f64 = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
        assert!(err / scale < 0.02, "relative error {}", err / scale);
    }

    #[test]
    fn rejects_wrong_length() {
        let fft: ArrayFft<f64> = ArrayFft::new(64).unwrap();
        let x = vec![Complex::zero(); 32];
        assert!(matches!(
            fft.process(&x, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 64, got: 32 })
        ));
    }

    #[test]
    fn accessors() {
        let fft: ArrayFft<f64> = ArrayFft::new(64).unwrap();
        assert_eq!(fft.len(), 64);
        assert!(!fft.is_empty());
        assert_eq!(fft.split().p_size, 8);
        assert_eq!(fft.rom().len(), 4);
        assert_eq!(fft.prerot().len(), 9);
        assert_eq!(fft.scaling(), Scaling::None);
    }

    #[test]
    fn single_tone_lands_in_right_bin() {
        let n = 64;
        let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
        for tone in [0usize, 1, 7, 31, 63] {
            let x: Vec<C64> = (0..n).map(|m| afft_num::twiddle(n, (tone * m) % n).conj()).collect();
            let y = fft.process(&x, Direction::Forward).unwrap();
            for (k, bin) in y.iter().enumerate() {
                let expect = if k == tone { n as f64 } else { 0.0 };
                assert!((bin.abs() - expect).abs() < 1e-7, "tone={tone} k={k}");
            }
        }
    }
}
