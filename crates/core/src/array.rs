//! The array-structured FFT: the paper's primary contribution as a
//! software golden model.
//!
//! [`ArrayFft`] executes exactly the data flow of the ASIP — two epochs
//! of CRF-resident groups, the fixed BU module per stage, pre-rotation
//! on the epoch-0 store path, transposed output layout — in plain Rust.
//! The instruction-set simulator's FFT program is verified point-for-
//! point against this model.

use crate::address::{
    epoch0_load_addr, epoch0_store_addr, epoch1_load_addr, epoch1_store_addr, module_butterflies,
    prerot_exponent, transposed_to_natural_bin, Butterfly,
};
use crate::bits::bit_reverse;
use crate::error::FftError;
use crate::plan::Split;
use crate::reference::Direction;
use crate::rom::{CoefRom, PrerotTable};
use crate::stage::{butterfly_dif, run_group, Scaling};
use afft_num::{Complex, Scalar};

/// A planned array-structured FFT of a fixed size `N`.
///
/// Construction precomputes the epoch split, the `P/2`-entry coefficient
/// ROM and the `N/8 + 1`-entry pre-rotation table; [`ArrayFft::process`]
/// then runs in `O(N log N)` with no allocation beyond the output and
/// one CRF-sized scratch buffer. For steady-state traffic the plan also
/// owns reusable scratch: [`ArrayFft::process_into`] writes into a
/// caller buffer and performs **zero heap allocation** per transform
/// after the first call.
///
/// # Examples
///
/// ```
/// use afft_core::{ArrayFft, Direction};
/// use afft_num::Complex;
///
/// let fft: ArrayFft<f64> = ArrayFft::new(64)?;
/// let mut x = vec![Complex::zero(); 64];
/// x[0] = Complex::new(1.0, 0.0);
/// let y = fft.process(&x, Direction::Forward)?;
/// assert!(y.iter().all(|b| (b.re - 1.0).abs() < 1e-9)); // flat spectrum
/// # Ok::<(), afft_core::FftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArrayFft<T> {
    split: Split,
    rom: CoefRom<T>,
    prerot: PrerotTable<T>,
    scaling: Scaling,
    // Reusable per-plan work buffers for the allocation-free path:
    // the inter-epoch staging array and the CRF group buffer. Lazily
    // sized on the first `process_into`, stable thereafter.
    mid_scratch: Vec<Complex<T>>,
    crf_scratch: Vec<Complex<T>>,
    // Compiled lazily on the first `process_into`, like the scratch:
    // symbolic-path-only consumers never pay for it.
    sched: Option<CompiledSchedule<T>>,
}

/// The plan-compiled hot-path schedule behind [`ArrayFft::process_into`]:
/// the AC unit's symbolic address algebra and the coefficient-ROM
/// octant reconstruction, evaluated once at plan time into flat tables.
/// The per-transform loops then run pure gathers, butterflies and
/// scatters — same operations in the same order as the symbolic path
/// (the transforms are bit-identical), with none of the per-point
/// address arithmetic. Forward coefficients are stored; the inverse
/// direction conjugates at use, exactly as the ROM read path does.
#[derive(Debug, Clone)]
struct CompiledSchedule<T> {
    /// Flattened stage-major butterfly list of the `P`-point group,
    /// each with its reconstructed forward twiddle.
    p_group: Vec<(Butterfly, Complex<T>)>,
    /// Likewise for the `Q`-point group of epoch 1.
    q_group: Vec<(Butterfly, Complex<T>)>,
    /// Forward pre-rotation coefficient per epoch-0 store, `[l][bin]`.
    prerot: Vec<Complex<T>>,
    /// `bit_reverse(bin, p_stages)` per output bin of a `P` group.
    rev_p: Vec<usize>,
    /// `bit_reverse(t, q_stages)` per output point of a `Q` group.
    rev_q: Vec<usize>,
}

impl<T: Scalar> CompiledSchedule<T> {
    fn new(split: &Split, rom: &CoefRom<T>, prerot: &PrerotTable<T>) -> Self {
        let group = |g_size: usize, stages: u32| -> Vec<(Butterfly, Complex<T>)> {
            let mut bfs = Vec::with_capacity((g_size / 2) * stages as usize);
            for j in 1..=stages {
                for i in 1..=(g_size / 8) {
                    for bf in module_butterflies(stages, j, i) {
                        bfs.push((bf, rom.group_twiddle(g_size, bf.rom_addr, Direction::Forward)));
                    }
                }
            }
            bfs
        };
        CompiledSchedule {
            p_group: group(split.p_size, split.p_stages),
            q_group: group(split.q_size, split.q_stages),
            prerot: (0..split.q_size)
                .flat_map(|l| (0..split.p_size).map(move |bin| prerot_exponent(split, l, bin)))
                .map(|e| prerot.coefficient(e))
                .collect(),
            rev_p: (0..split.p_size).map(|bin| bit_reverse(bin, split.p_stages)).collect(),
            rev_q: (0..split.q_size).map(|t| bit_reverse(t, split.q_stages)).collect(),
        }
    }
}

/// Runs a compiled group schedule in place: the same butterfly sequence
/// [`run_group`] walks symbolically, off the flat table.
fn run_group_compiled<T: Scalar>(
    crf: &mut [Complex<T>],
    bfs: &[(Butterfly, Complex<T>)],
    dir: Direction,
    scaling: Scaling,
) {
    match dir {
        Direction::Forward => {
            for &(bf, w) in bfs {
                butterfly_dif(crf, bf, w, scaling);
            }
        }
        Direction::Inverse => {
            for &(bf, w) in bfs {
                butterfly_dif(crf, bf, w.conj(), scaling);
            }
        }
    }
}

impl<T: Scalar> ArrayFft<T> {
    /// Plans an `N`-point transform with no per-stage scaling (exact
    /// DFT amplitudes; the right choice for `f64`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `N` is a power of two
    /// `>= 64` (see [`Split::for_size`]).
    pub fn new(n: usize) -> Result<Self, FftError> {
        Self::with_scaling(n, Scaling::None)
    }

    /// Plans an `N`-point transform with explicit datapath scaling.
    ///
    /// Use [`Scaling::HalfPerStage`] for fixed-point element types: the
    /// output is then the DFT divided by `N`, and no stage can overflow.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `N` is a power of two
    /// `>= 64`.
    pub fn with_scaling(n: usize, scaling: Scaling) -> Result<Self, FftError> {
        Self::with_split(Split::for_size(n)?, scaling)
    }

    /// Plans with an explicit `N = P * Q` factorisation (used by the
    /// ablation experiments probing non-canonical splits).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidDecomposition`] for invalid factors,
    /// including `Q > P` (the coefficient ROM is sized for `P`, the
    /// larger epoch-0 group, and cannot serve a wider epoch-1 group).
    pub fn with_split(split: Split, scaling: Scaling) -> Result<Self, FftError> {
        if split.q_size > split.p_size {
            return Err(FftError::InvalidDecomposition {
                reason: format!(
                    "epoch-1 group Q={} exceeds the ROM's group size P={}",
                    split.q_size, split.p_size
                ),
            });
        }
        Ok(ArrayFft {
            rom: CoefRom::new(split.p_size)?,
            prerot: PrerotTable::new(split.n)?,
            split,
            scaling,
            mid_scratch: Vec::new(),
            crf_scratch: Vec::new(),
            sched: None,
        })
    }

    /// The epoch decomposition in use.
    pub fn split(&self) -> &Split {
        &self.split
    }

    /// The intra-epoch coefficient ROM.
    pub fn rom(&self) -> &CoefRom<T> {
        &self.rom
    }

    /// The inter-epoch pre-rotation table.
    pub fn prerot(&self) -> &PrerotTable<T> {
        &self.prerot
    }

    /// The configured datapath scaling.
    pub fn scaling(&self) -> Scaling {
        self.scaling
    }

    /// Transform size `N`.
    pub fn len(&self) -> usize {
        self.split.n
    }

    /// Never true for a planned transform; provided alongside
    /// [`ArrayFft::len`] for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Runs the transform, leaving the result in the **hardware layout**:
    /// FFT bin `s + P*t` at output address `t + Q*s` (the paper's
    /// `AO1 = [AL][AH]` order). This is bit-exact what the ASIP's memory
    /// holds after `STOUT` of epoch 1.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != N`.
    pub fn process_transposed(
        &self,
        input: &[Complex<T>],
        dir: Direction,
    ) -> Result<Vec<Complex<T>>, FftError> {
        let s = &self.split;
        if input.len() != s.n {
            return Err(FftError::LengthMismatch { expected: s.n, got: input.len() });
        }
        let mut out = vec![Complex::zero(); s.n];
        let mut mid = vec![Complex::zero(); s.n];
        let mut crf = vec![Complex::zero(); s.p_size];
        run_epochs(
            s,
            &self.rom,
            &self.prerot,
            self.scaling,
            input,
            &mut out,
            &mut mid,
            &mut crf,
            dir,
            false,
        );
        Ok(out)
    }

    /// Runs the transform and gathers the result into **natural bin
    /// order** (`out[k] = X(k)`), the convenient library-level view.
    ///
    /// This is the allocating path: it builds the output and per-call
    /// work buffers on every invocation. Steady-state callers should
    /// prefer [`ArrayFft::process_into`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != N`.
    pub fn process(
        &self,
        input: &[Complex<T>],
        dir: Direction,
    ) -> Result<Vec<Complex<T>>, FftError> {
        let s = &self.split;
        if input.len() != s.n {
            return Err(FftError::LengthMismatch { expected: s.n, got: input.len() });
        }
        let mut out = vec![Complex::zero(); s.n];
        let mut mid = vec![Complex::zero(); s.n];
        let mut crf = vec![Complex::zero(); s.p_size];
        run_epochs(
            s,
            &self.rom,
            &self.prerot,
            self.scaling,
            input,
            &mut out,
            &mut mid,
            &mut crf,
            dir,
            true,
        );
        Ok(out)
    }

    /// Runs the transform into a caller-provided **natural-bin-order**
    /// buffer, reusing the plan's own scratch: after the first call the
    /// transform performs **no heap allocation**, and the epoch-1 store
    /// path scatters straight into `output` (the hardware-layout
    /// staging pass of [`ArrayFft::process`] is fused away).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != N` or
    /// `output.len() != N`.
    pub fn process_into(
        &mut self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        dir: Direction,
    ) -> Result<(), FftError> {
        let s = &self.split;
        if input.len() != s.n {
            return Err(FftError::LengthMismatch { expected: s.n, got: input.len() });
        }
        if output.len() != s.n {
            return Err(FftError::LengthMismatch { expected: s.n, got: output.len() });
        }
        self.mid_scratch.resize(s.n, Complex::zero());
        self.crf_scratch.resize(s.p_size, Complex::zero());
        if self.sched.is_none() {
            self.sched = Some(CompiledSchedule::new(&self.split, &self.rom, &self.prerot));
        }
        let (p, q) = (self.split.p_size, self.split.q_size);
        let mid = &mut self.mid_scratch[..];
        let crf = &mut self.crf_scratch[..];
        let sched = self.sched.as_ref().expect("compiled above");

        // Epoch 0: Q groups of P points, pre-rotated on the store path.
        for l in 0..q {
            for (m, slot) in crf.iter_mut().enumerate() {
                *slot = input[l + q * m];
            }
            run_group_compiled(crf, &sched.p_group, dir, self.scaling);
            let row = &sched.prerot[l * p..(l + 1) * p];
            let mid_row = &mut mid[l * p..(l + 1) * p];
            for (bin, slot) in mid_row.iter_mut().enumerate() {
                let v = crf[sched.rev_p[bin]];
                let w = match dir {
                    Direction::Forward => row[bin],
                    Direction::Inverse => row[bin].conj(),
                };
                *slot = v * w; // epoch0_store_addr(l, bin) = bin + P*l
            }
        }

        // Epoch 1: P groups of Q points, scattered straight into
        // natural bin order (store address t + Q*g holds bin g + P*t).
        for g in 0..p {
            for (l, slot) in crf.iter_mut().take(q).enumerate() {
                *slot = mid[g + p * l];
            }
            run_group_compiled(&mut crf[..q], &sched.q_group, dir, self.scaling);
            for t in 0..q {
                output[g + p * t] = crf[sched.rev_q[t]];
            }
        }
        Ok(())
    }

    /// Reorders a hardware-layout result into natural bin order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != N`.
    pub fn natural_from_transposed(&self, data: &[Complex<T>]) -> Vec<Complex<T>> {
        assert_eq!(data.len(), self.split.n, "natural_from_transposed: length mismatch");
        let mut out = vec![Complex::zero(); self.split.n];
        for (addr, &v) in data.iter().enumerate() {
            out[transposed_to_natural_bin(&self.split, addr)] = v;
        }
        out
    }
}

/// Both epochs of the array schedule over caller-provided buffers.
/// `natural_order` selects the epoch-1 store mapping: the raw hardware
/// layout (`AO1` addresses), or the fused scatter into natural bin
/// order (one store pass instead of store-then-reorder).
#[allow(clippy::too_many_arguments)]
fn run_epochs<T: Scalar>(
    s: &Split,
    rom: &CoefRom<T>,
    prerot: &PrerotTable<T>,
    scaling: Scaling,
    input: &[Complex<T>],
    out: &mut [Complex<T>],
    mid: &mut [Complex<T>],
    crf: &mut [Complex<T>],
    dir: Direction,
    natural_order: bool,
) {
    // Epoch 0: Q groups of P points.
    for l in 0..s.q_size {
        for m in 0..s.p_size {
            crf[m] = input[epoch0_load_addr(s, l, m)];
        }
        run_group(crf, rom, s.p_size, dir, scaling);
        for bin in 0..s.p_size {
            let v = crf[bit_reverse(bin, s.p_stages)];
            let w = prerot.coefficient_dir(prerot_exponent(s, l, bin), dir);
            mid[epoch0_store_addr(s, l, bin)] = v * w;
        }
    }

    // Epoch 1: P groups of Q points.
    for g in 0..s.p_size {
        for l in 0..s.q_size {
            crf[l] = mid[epoch1_load_addr(s, g, l)];
        }
        run_group(crf, rom, s.q_size, dir, scaling);
        for t in 0..s.q_size {
            let addr = epoch1_store_addr(s, g, t);
            let slot = if natural_order { transposed_to_natural_bin(s, addr) } else { addr };
            out[slot] = crf[bit_reverse(t, s.q_stages)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use afft_num::{C64, Q15};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn matches_reference_for_all_paper_sizes() {
        for n in [64usize, 128, 256, 512, 1024] {
            let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
            let x = random_signal(n, n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let got = fft.process(&x, Direction::Forward).unwrap();
            assert!(max_error(&got, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn matches_reference_for_extension_sizes() {
        for n in [2048usize, 4096] {
            let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
            let x = random_signal(n, n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let got = fft.process(&x, Direction::Forward).unwrap();
            assert!(max_error(&got, &want) < 1e-7 * n as f64, "n={n}");
        }
    }

    #[test]
    fn transposed_layout_is_the_documented_permutation() {
        let n = 128;
        let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
        let x = random_signal(n, 2);
        let nat = fft.process(&x, Direction::Forward).unwrap();
        let tr = fft.process_transposed(&x, Direction::Forward).unwrap();
        for (addr, &v) in tr.iter().enumerate() {
            let k = transposed_to_natural_bin(fft.split(), addr);
            assert!(v.dist(nat[k]) < 1e-12);
        }
    }

    #[test]
    fn process_into_is_bit_identical_to_process() {
        // The compiled hot-path schedule replays exactly the symbolic
        // address algebra: same butterflies, same coefficients, same
        // order — the outputs must match bit for bit, not just within
        // tolerance.
        for n in [64usize, 128, 512, 2048] {
            let mut fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
            let x = random_signal(n, 77 + n as u64);
            let mut out = vec![Complex::zero(); n];
            for dir in [Direction::Forward, Direction::Inverse] {
                let want = fft.process(&x, dir).unwrap();
                fft.process_into(&x, &mut out, dir).unwrap();
                assert_eq!(want, out, "n={n} {dir:?}");
            }
        }
        // Output length is checked like the input's.
        let mut fft: ArrayFft<f64> = ArrayFft::new(64).unwrap();
        let x = random_signal(64, 1);
        let mut short = vec![Complex::zero(); 32];
        assert!(matches!(
            fft.process_into(&x, &mut short, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 64, got: 32 })
        ));
    }

    #[test]
    fn inverse_round_trip() {
        let n = 256;
        let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
        let x = random_signal(n, 3);
        let y = fft.process(&x, Direction::Forward).unwrap();
        let z = fft.process(&y, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = z.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-9);
    }

    #[test]
    fn non_canonical_split_still_correct() {
        let split = Split::with_factors(1024, 128, 8).unwrap();
        let fft: ArrayFft<f64> = ArrayFft::with_split(split, Scaling::None).unwrap();
        let x = random_signal(1024, 4);
        let want = dft_naive(&x, Direction::Forward).unwrap();
        let got = fft.process(&x, Direction::Forward).unwrap();
        assert!(max_error(&got, &want) < 1e-7);
    }

    #[test]
    fn wide_epoch1_split_is_rejected_at_plan_time() {
        // Q > P passes Split::with_factors (both groups are legal
        // sizes) but the P-sized coefficient ROM cannot serve the
        // epoch-1 group: the plan must error, not panic later.
        let split = Split::with_factors(512, 8, 64).unwrap();
        assert!(matches!(
            ArrayFft::<f64>::with_split(split, Scaling::None),
            Err(FftError::InvalidDecomposition { .. })
        ));
    }

    #[test]
    fn q15_fixed_point_accuracy() {
        let n = 256;
        let fft: ArrayFft<Q15> = ArrayFft::with_scaling(n, Scaling::HalfPerStage).unwrap();
        let xf = random_signal(n, 5);
        let xq: Vec<Complex<Q15>> = xf.iter().map(|&c| Complex::from_c64(c * 0.9)).collect();
        let exact_in: Vec<C64> = xq.iter().map(|q| q.to_c64()).collect();
        let want = dft_naive(&exact_in, Direction::Forward).unwrap();
        let got = fft.process(&xq, Direction::Forward).unwrap();
        // Output is DFT / N; rescale and compare with a tolerance
        // appropriate for a 16-bit datapath with per-stage rounding.
        let gotf: Vec<C64> = got.iter().map(|q| q.to_c64() * n as f64).collect();
        let err = max_error(&gotf, &want);
        let scale: f64 = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
        assert!(err / scale < 0.02, "relative error {}", err / scale);
    }

    #[test]
    fn rejects_wrong_length() {
        let fft: ArrayFft<f64> = ArrayFft::new(64).unwrap();
        let x = vec![Complex::zero(); 32];
        assert!(matches!(
            fft.process(&x, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 64, got: 32 })
        ));
    }

    #[test]
    fn accessors() {
        let fft: ArrayFft<f64> = ArrayFft::new(64).unwrap();
        assert_eq!(fft.len(), 64);
        assert!(!fft.is_empty());
        assert_eq!(fft.split().p_size, 8);
        assert_eq!(fft.rom().len(), 4);
        assert_eq!(fft.prerot().len(), 9);
        assert_eq!(fft.scaling(), Scaling::None);
    }

    #[test]
    fn single_tone_lands_in_right_bin() {
        let n = 64;
        let fft: ArrayFft<f64> = ArrayFft::new(n).unwrap();
        for tone in [0usize, 1, 7, 31, 63] {
            let x: Vec<C64> = (0..n).map(|m| afft_num::twiddle(n, (tone * m) % n).conj()).collect();
            let y = fft.process(&x, Direction::Forward).unwrap();
            for (k, bin) in y.iter().enumerate() {
                let expect = if k == tone { n as f64 } else { 0.0 };
                assert!((bin.abs() - expect).abs() < 1e-7, "tone={tone} k={k}");
            }
        }
    }
}
