//! Block floating point (BFP): the dynamic-scaling extension of the
//! 16-bit datapath.
//!
//! The fixed [`Scaling::HalfPerStage`](crate::Scaling) policy divides
//! by two every stage whether the data needs it or not, costing one
//! bit of precision per stage on small signals. Real FFT engines
//! (including Baas's cached-FFT chip the paper builds on) instead track
//! a *block exponent*: each stage is scaled only when the block could
//! overflow, and the exponent records the total applied scale.
//!
//! This module implements BFP over the same array structure:
//!
//! * within a group, a stage is halved only when the group's infinity
//!   norm could overflow the stage's `x + y` / `(x - y) * W` growth;
//! * the pre-rotation multiply adds the `sqrt(2)` rotation guard;
//! * group exponents are equalised at each epoch boundary (groups are
//!   renormalised to the epoch's maximum exponent when loaded), so one
//!   exponent describes the whole output block.
//!
//! The result satisfies `spectrum = data * 2^exponent`, and for
//! small-amplitude inputs retains substantially more SNR than the
//! fixed policy (quantified by the `quantization` experiment binary
//! and asserted by the tests below).

use crate::address::{
    epoch0_load_addr, epoch0_store_addr, epoch1_load_addr, epoch1_store_addr, prerot_exponent,
};
use crate::bits::bit_reverse;
use crate::error::FftError;
use crate::plan::Split;
use crate::reference::Direction;
use crate::rom::{CoefRom, PrerotTable};
use crate::stage::{run_stage, Scaling};
use afft_num::{Complex, Q15};

/// Result of a BFP transform: `true_spectrum = data[k] * 2^exponent`
/// (times the usual DFT normalisation conventions of the direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfpOutput {
    /// Mantissa data in natural bin order.
    pub data: Vec<Complex<Q15>>,
    /// Block exponent: total powers of two scaled out of the data.
    pub exponent: i32,
}

/// Threshold above which a radix-2 stage (growth factor 2 in the
/// infinity norm) could overflow.
const STAGE_GUARD: f64 = 0.5;
/// Threshold above which the pre-rotation (growth factor sqrt(2))
/// could overflow.
const ROTATE_GUARD: f64 = std::f64::consts::FRAC_1_SQRT_2;

fn max_abs(data: &[Complex<Q15>]) -> f64 {
    data.iter()
        .map(|c| {
            let re = i32::from(c.re.to_bits()).unsigned_abs();
            let im = i32::from(c.im.to_bits()).unsigned_abs();
            re.max(im)
        })
        .max()
        .unwrap_or(0) as f64
        / 32768.0
}

fn halve_all(data: &mut [Complex<Q15>]) {
    for c in data.iter_mut() {
        *c = Complex::new(c.re.shr(1), c.im.shr(1));
    }
}

/// Runs one group's stages with per-stage conditional scaling,
/// returning the exponent accumulated by this group.
fn run_group_bfp(
    crf: &mut [Complex<Q15>],
    rom: &CoefRom<Q15>,
    g_size: usize,
    dir: Direction,
) -> i32 {
    let stages = g_size.trailing_zeros();
    let mut exp = 0;
    for j in 1..=stages {
        let scaling = if max_abs(&crf[..g_size]) >= STAGE_GUARD {
            exp += 1;
            Scaling::HalfPerStage
        } else {
            Scaling::None
        };
        run_stage(crf, rom, g_size, j, dir, scaling);
    }
    exp
}

/// Block-floating-point array FFT over the 16-bit datapath.
///
/// # Errors
///
/// Returns [`FftError`] for unsupported sizes or mismatched lengths
/// (same constraints as [`ArrayFft`](crate::ArrayFft)).
pub fn bfp_array_fft(input: &[Complex<Q15>], dir: Direction) -> Result<BfpOutput, FftError> {
    let split = Split::for_size(input.len())?;
    let s = &split;
    let rom: CoefRom<Q15> = CoefRom::new(s.p_size)?;
    let prerot: PrerotTable<Q15> = PrerotTable::new(s.n)?;

    let mut mid = vec![Complex::zero(); s.n];
    let mut mid_exp = vec![0i32; s.q_size];
    let mut crf = vec![Complex::zero(); s.p_size];

    // Epoch 0.
    for l in 0..s.q_size {
        for m in 0..s.p_size {
            crf[m] = input[epoch0_load_addr(s, l, m)];
        }
        let mut exp = run_group_bfp(&mut crf[..s.p_size], &rom, s.p_size, dir);
        // Pre-rotation guard: the rotation can grow by sqrt(2).
        if max_abs(&crf[..s.p_size]) >= ROTATE_GUARD {
            halve_all(&mut crf[..s.p_size]);
            exp += 1;
        }
        for bin in 0..s.p_size {
            let v = crf[bit_reverse(bin, s.p_stages)];
            let w = prerot.coefficient_dir(prerot_exponent(s, l, bin), dir);
            mid[epoch0_store_addr(s, l, bin)] = v * w;
        }
        mid_exp[l] = exp;
    }
    // Equalise the epoch-0 exponents.
    let e0 = *mid_exp.iter().max().expect("at least one group");

    // Epoch 1.
    let mut out = vec![Complex::zero(); s.n];
    let mut out_exp = vec![0i32; s.p_size];
    let mut raw = vec![Complex::zero(); s.n];
    for g in 0..s.p_size {
        for l in 0..s.q_size {
            let mut v = mid[epoch1_load_addr(s, g, l)];
            // Renormalise this point to the epoch's common exponent.
            let shift = e0 - mid_exp[l];
            for _ in 0..shift {
                v = Complex::new(v.re.shr(1), v.im.shr(1));
            }
            crf[l] = v;
        }
        out_exp[g] = run_group_bfp(&mut crf[..s.q_size], &rom, s.q_size, dir);
        for t in 0..s.q_size {
            raw[epoch1_store_addr(s, g, t)] = crf[bit_reverse(t, s.q_stages)];
        }
    }
    let e1 = *out_exp.iter().max().expect("at least one group");

    // Gather to natural order, renormalising epoch-1 groups.
    for g in 0..s.p_size {
        let shift = e1 - out_exp[g];
        for t in 0..s.q_size {
            let mut v = raw[epoch1_store_addr(s, g, t)];
            for _ in 0..shift {
                v = Complex::new(v.re.shr(1), v.im.shr(1));
            }
            out[g + s.p_size * t] = v;
        }
    }
    Ok(BfpOutput { data: out, exponent: e0 + e1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use afft_num::C64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn signal(n: usize, amplitude: f64, seed: u64) -> Vec<Complex<Q15>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Complex::new(
                    Q15::from_f64(rng.gen_range(-amplitude..amplitude)),
                    Q15::from_f64(rng.gen_range(-amplitude..amplitude)),
                )
            })
            .collect()
    }

    fn to_f64_scaled(out: &BfpOutput) -> Vec<C64> {
        let scale = (out.exponent as f64).exp2();
        out.data.iter().map(|c| c.to_c64() * scale).collect()
    }

    fn snr_db(reference: &[C64], measured: &[C64]) -> f64 {
        let sig: f64 = reference.iter().map(|c| c.norm_sqr()).sum();
        let err: f64 = reference.iter().zip(measured).map(|(a, b)| (*a - *b).norm_sqr()).sum();
        10.0 * (sig / err.max(1e-300)).log10()
    }

    #[test]
    fn bfp_matches_reference_dft() {
        for n in [64usize, 256, 1024] {
            let x = signal(n, 0.8, n as u64);
            let exact_in: Vec<C64> = x.iter().map(|c| c.to_c64()).collect();
            let want = dft_naive(&exact_in, Direction::Forward).unwrap();
            let got = bfp_array_fft(&x, Direction::Forward).unwrap();
            let gotf = to_f64_scaled(&got);
            let scale = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
            assert!(
                max_error(&gotf, &want) / scale < 0.01,
                "n={n}: rel err {}",
                max_error(&gotf, &want) / scale
            );
        }
    }

    #[test]
    fn bfp_exponent_tracks_signal_growth() {
        // Full-scale input: exponent must be near log2(N) (DFT grows N).
        let n = 256;
        let x = signal(n, 0.9, 1);
        let out = bfp_array_fft(&x, Direction::Forward).unwrap();
        assert!(out.exponent >= 4 && out.exponent <= 8, "exponent {}", out.exponent);
        // Tiny input: little or no scaling needed.
        let x = signal(n, 0.001, 2);
        let out = bfp_array_fft(&x, Direction::Forward).unwrap();
        assert!(out.exponent <= 2, "exponent {}", out.exponent);
    }

    #[test]
    fn bfp_beats_fixed_scaling_on_small_signals() {
        use crate::array::ArrayFft;
        let n = 256;
        let amplitude = 0.02; // 5.5 bits below full scale
        let x = signal(n, amplitude, 3);
        let exact_in: Vec<C64> = x.iter().map(|c| c.to_c64()).collect();
        let want = dft_naive(&exact_in, Direction::Forward).unwrap();

        let bfp = bfp_array_fft(&x, Direction::Forward).unwrap();
        let bfp_f = to_f64_scaled(&bfp);
        let bfp_snr = snr_db(&want, &bfp_f);

        let fixed: ArrayFft<Q15> = ArrayFft::with_scaling(n, Scaling::HalfPerStage).unwrap();
        let fx = fixed.process(&x, Direction::Forward).unwrap();
        let fx_f: Vec<C64> = fx.iter().map(|c| c.to_c64() * n as f64).collect();
        let fixed_snr = snr_db(&want, &fx_f);

        assert!(
            bfp_snr > fixed_snr + 10.0,
            "BFP {bfp_snr:.1} dB should beat fixed {fixed_snr:.1} dB by >10 dB"
        );
    }

    #[test]
    fn bfp_never_saturates() {
        // Adversarial full-scale square wave: every component at the
        // positive rail.
        let n = 64;
        let x: Vec<Complex<Q15>> = (0..n)
            .map(|m| {
                let v = if m % 2 == 0 { 0.99 } else { -0.99 };
                Complex::new(Q15::from_f64(v), Q15::from_f64(-v))
            })
            .collect();
        let exact_in: Vec<C64> = x.iter().map(|c| c.to_c64()).collect();
        let want = dft_naive(&exact_in, Direction::Forward).unwrap();
        let out = bfp_array_fft(&x, Direction::Forward).unwrap();
        let got = to_f64_scaled(&out);
        let scale = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
        assert!(max_error(&got, &want) / scale < 0.01, "saturation detected");
    }

    #[test]
    fn bfp_rejects_bad_sizes() {
        assert!(bfp_array_fft(&[Complex::zero(); 32], Direction::Forward).is_err());
    }
}
