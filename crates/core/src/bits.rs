//! Bit-manipulation primitives used by the address-changing (AC) logic.
//!
//! Everything the AC hardware does is a permutation of address *bits*:
//! bit reversal (the DIF output reorder `R`), single swaps of adjacent
//! bit positions (the local rule `L_j`), and their compositions. This
//! module provides those as pure functions plus the [`BitPerm`] value
//! type that represents an arbitrary permutation of bit positions.

/// Reverses the low `bits` bits of `x`.
///
/// This is the `R` transformation of the paper (Fig. 2): the in-place DIF
/// group leaves output `s` at CRF address `rev(s)`.
///
/// # Panics
///
/// Panics if `bits > usize::BITS as usize` or if `x >= 1 << bits`.
///
/// # Examples
///
/// ```
/// use afft_core::bits::bit_reverse;
/// assert_eq!(bit_reverse(0b001, 3), 0b100);
/// assert_eq!(bit_reverse(0b110, 3), 0b011);
/// assert_eq!(bit_reverse(0, 0), 0);
/// ```
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    assert!(bits <= usize::BITS, "bit_reverse: bits={bits} too large");
    if bits == 0 {
        assert_eq!(x, 0, "bit_reverse: x={x} out of range for 0 bits");
        return 0;
    }
    assert!(
        bits == usize::BITS || x < (1usize << bits),
        "bit_reverse: x={x} out of range for {bits} bits"
    );
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Swaps bit positions `i` and `j` (0 = least significant) of `x`.
///
/// # Examples
///
/// ```
/// use afft_core::bits::swap_bits;
/// assert_eq!(swap_bits(0b100, 2, 0), 0b001);
/// assert_eq!(swap_bits(0b101, 2, 0), 0b101);
/// ```
#[inline]
pub fn swap_bits(x: usize, i: u32, j: u32) -> usize {
    let bi = (x >> i) & 1;
    let bj = (x >> j) & 1;
    if bi == bj {
        x
    } else {
        x ^ (1 << i) ^ (1 << j)
    }
}

/// A permutation of the low `width` bit positions of an address.
///
/// `map[k]` gives, for output bit position `k` *counted from the leftmost
/// (most significant) bit*, the input bit position (same left-counted
/// convention) it is wired from. Left-counting matches the paper's
/// notation (`def -> edf` swaps the 1st and 2nd leftmost bits).
///
/// # Examples
///
/// ```
/// use afft_core::bits::BitPerm;
///
/// // `edf`: output bits (e, d, f) from input labelled (d, e, f).
/// let p = BitPerm::identity(3).swapped_left(0, 1);
/// assert_eq!(p.apply(0b100), 0b010); // d=1,e=0,f=0 -> e,d,f = 0,1,0
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitPerm {
    map: Vec<u32>,
}

impl BitPerm {
    /// The identity permutation on `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `width > 32`.
    pub fn identity(width: u32) -> Self {
        assert!(width > 0 && width <= 32, "BitPerm width {width} out of range");
        BitPerm { map: (0..width).collect() }
    }

    /// Builds a permutation from an explicit left-indexed map.
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a permutation of `0..map.len()`.
    pub fn from_map(map: Vec<u32>) -> Self {
        let width = map.len() as u32;
        assert!(width > 0 && width <= 32, "BitPerm width {width} out of range");
        let mut seen = vec![false; map.len()];
        for &m in &map {
            assert!(m < width, "BitPerm entry {m} out of range");
            assert!(!seen[m as usize], "BitPerm entry {m} duplicated");
            seen[m as usize] = true;
        }
        BitPerm { map }
    }

    /// Number of bits this permutation acts on.
    pub fn width(&self) -> u32 {
        self.map.len() as u32
    }

    /// The left-indexed wiring map (`map[k]` = source of output bit `k`).
    pub fn map(&self) -> &[u32] {
        &self.map
    }

    /// Returns a copy with left positions `i` and `j` of the *output*
    /// swapped — this is how the cumulative stage permutation `sigma_j`
    /// is built from `sigma_{j-1}` (the paper's local rule `L_j`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn swapped_left(&self, i: u32, j: u32) -> Self {
        let w = self.width();
        assert!(i < w && j < w, "swapped_left: positions {i},{j} out of range");
        let mut map = self.map.clone();
        map.swap(i as usize, j as usize);
        BitPerm { map }
    }

    /// Applies the permutation to a value: output left-bit `k` equals
    /// input left-bit `map[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= 1 << width`.
    pub fn apply(&self, x: usize) -> usize {
        let w = self.width();
        assert!(x < (1usize << w), "BitPerm::apply: {x} out of range for {w} bits");
        let mut out = 0usize;
        for (k, &src) in self.map.iter().enumerate() {
            // Convert left index to right (LSB-first) index.
            let src_r = w - 1 - src;
            let dst_r = w - 1 - (k as u32);
            out |= ((x >> src_r) & 1) << dst_r;
        }
        out
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Self {
        let mut map = vec![0u32; self.map.len()];
        for (k, &src) in self.map.iter().enumerate() {
            map[src as usize] = k as u32;
        }
        BitPerm { map }
    }

    /// Composition: `(self.then(other)).apply(x) == other.apply(self.apply(x))`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn then(&self, other: &BitPerm) -> Self {
        assert_eq!(self.width(), other.width(), "BitPerm::then: width mismatch");
        let map = other.map.iter().map(|&k| self.map[k as usize]).collect();
        BitPerm { map }
    }

    /// Applies the permutation to every index of `0..2^width`, returning
    /// the full index permutation (useful for building matrices).
    pub fn to_index_perm(&self) -> Vec<usize> {
        (0..(1usize << self.width())).map(|x| self.apply(x)).collect()
    }
}

/// Interleaves `lo` and `hi` as `[hi bits][lo bits]` into one address.
///
/// # Panics
///
/// Panics if the parts exceed their widths.
#[inline]
pub fn concat_bits(hi: usize, lo: usize, lo_bits: u32) -> usize {
    assert!(lo < (1usize << lo_bits), "concat_bits: lo out of range");
    (hi << lo_bits) | lo
}

/// Splits an address into `(hi, lo)` with `lo_bits` low bits.
#[inline]
pub fn split_bits(addr: usize, lo_bits: u32) -> (usize, usize) {
    (addr >> lo_bits, addr & ((1usize << lo_bits) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_involution() {
        for bits in 1..=10u32 {
            for x in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
            }
        }
    }

    #[test]
    fn bit_reverse_known_values() {
        assert_eq!(bit_reverse(0b0001, 4), 0b1000);
        assert_eq!(bit_reverse(0b1011, 4), 0b1101);
        assert_eq!(bit_reverse(5, 3), 5); // 101 is a palindrome
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_reverse_rejects_out_of_range() {
        let _ = bit_reverse(8, 3);
    }

    #[test]
    fn swap_bits_cases() {
        assert_eq!(swap_bits(0b10, 1, 0), 0b01);
        assert_eq!(swap_bits(0b11, 1, 0), 0b11);
        assert_eq!(swap_bits(0b0110, 3, 2), 0b1010);
    }

    #[test]
    fn identity_perm_is_identity() {
        let p = BitPerm::identity(4);
        for x in 0..16 {
            assert_eq!(p.apply(x), x);
        }
    }

    #[test]
    fn paper_def_edf_efd_walk() {
        // The 8-point walk of Fig. 2: def -> edf -> efd, with d,e,f the
        // leftmost..rightmost bits of the original address.
        let def = BitPerm::identity(3);
        let edf = def.swapped_left(0, 1);
        let efd = edf.swapped_left(1, 2);
        // Address with d=1, e=0, f=0 is 0b100 = 4.
        assert_eq!(edf.apply(0b100), 0b010); // e,d,f = 0,1,0
        assert_eq!(efd.apply(0b100), 0b001); // e,f,d = 0,0,1
                                             // And the final R (bit reverse of def) equals fed.
        let fed = BitPerm::from_map(vec![2, 1, 0]);
        for x in 0..8 {
            assert_eq!(fed.apply(x), bit_reverse(x, 3));
        }
        // fed is efd with its first two output bits swapped, as the paper
        // observes ("the final address fed ... after the bit-reverse
        // transformation R").
        assert_eq!(efd.swapped_left(0, 1), fed);
    }

    #[test]
    fn inverse_round_trips() {
        let p = BitPerm::from_map(vec![2, 0, 3, 1]);
        let inv = p.inverse();
        for x in 0..16 {
            assert_eq!(inv.apply(p.apply(x)), x);
            assert_eq!(p.apply(inv.apply(x)), x);
        }
    }

    #[test]
    fn composition_order() {
        let a = BitPerm::from_map(vec![1, 0, 2]);
        let b = BitPerm::from_map(vec![0, 2, 1]);
        let ab = a.then(&b);
        for x in 0..8 {
            assert_eq!(ab.apply(x), b.apply(a.apply(x)));
        }
    }

    #[test]
    fn from_map_rejects_non_permutation() {
        let r = std::panic::catch_unwind(|| BitPerm::from_map(vec![0, 0, 1]));
        assert!(r.is_err());
    }

    #[test]
    fn concat_split_roundtrip() {
        for hi in 0..8 {
            for lo in 0..16 {
                let a = concat_bits(hi, lo, 4);
                assert_eq!(split_bits(a, 4), (hi, lo));
            }
        }
    }

    #[test]
    fn index_perm_is_permutation() {
        let p = BitPerm::from_map(vec![1, 2, 0]);
        let mut idx = p.to_index_perm();
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }
}
