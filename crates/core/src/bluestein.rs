//! Bluestein's chirp-Z FFT: **any** transform size `n >= 2` as one
//! cyclic convolution at the next power of two `>= 2n - 1`, computed by
//! the workspace's own split-radix kernel.
//!
//! The identity `km = (k² + m² - (k-m)²) / 2` rewrites the DFT as
//!
//! ```text
//! X[k] = w[k] · Σ_m (x[m]·w[m]) · conj(w[k-m]),   w[j] = W_{2n}^{j²}
//! ```
//!
//! i.e. a linear convolution of the *chirped* input `a[m] = x[m]·w[m]`
//! with the conjugate chirp `b[j] = conj(w[j])`, followed by one more
//! chirp multiply. Because `b` is only ever evaluated at lags
//! `-(n-1)..=n-1`, the linear convolution embeds exactly in a cyclic
//! convolution of any length `M >= 2n - 1`; choosing the next power of
//! two lets the plan run it as three `M`-point split-radix FFTs — two
//! at execute time (the kernel spectrum is fixed at plan time), always
//! power-of-two, so the recursion trivially terminates regardless of
//! how adversarial `n`'s factorisation is.
//!
//! Plan-time state: the length-`n` chirp table (exact-angle twiddles:
//! `w[j]` is computed as `W_{2n}^{j² mod 2n}`, never by accumulating
//! phase, so the chirp does not decohere at large `n`), the forward and
//! inverse kernel spectra (`M` points each), and the two `M`-point
//! scratch arenas the convolution ping-pongs through — so
//! [`bluestein_into`] performs **zero heap allocation per transform**,
//! the same `execute_into` contract every other kernel in the crate
//! honours.

use crate::error::FftError;
use crate::reference::Direction;
use crate::splitradix::{split_radix_into, SplitRadixPlan};
use afft_num::{twiddle, Complex, C64};

/// Plan-time state of the chirp-Z kernel: chirp table, kernel spectra
/// for both directions, the inner power-of-two plan, and the scratch
/// arenas of the allocation-free execute path.
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    n: usize,
    /// Convolution length: the next power of two `>= 2n - 1`.
    m: usize,
    /// `chirp[j] = W_{2n}^{j²}` (the forward chirp; the inverse
    /// conjugates on the fly).
    chirp: Vec<C64>,
    /// `FFT_M` of the wrapped conjugate chirp — the fixed half of the
    /// convolution, per direction.
    kernel_fwd: Vec<C64>,
    kernel_inv: Vec<C64>,
    inner: SplitRadixPlan,
    buf_a: Vec<C64>,
    buf_b: Vec<C64>,
}

/// The chirp `w[j] = W_{2n}^{j² mod 2n}` with the square reduced in
/// `u128`, so the exact twiddle angle survives any `n` that fits memory.
fn chirp_at(n: usize, j: usize) -> C64 {
    let two_n = 2 * n as u128;
    twiddle(2 * n, ((j as u128 * j as u128) % two_n) as usize)
}

impl BluesteinPlan {
    /// Plans a chirp-Z FFT of size `n` — any `n >= 2`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] for `n < 2`.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n < 2 {
            return Err(FftError::InvalidSize { n, reason: "must be at least 2", factor: None });
        }
        let m = (2 * n - 1).next_power_of_two();
        let mut inner = SplitRadixPlan::new(m)?;
        let chirp: Vec<C64> = (0..n).map(|j| chirp_at(n, j)).collect();

        // The convolution kernel, wrapped cyclically: b[j] = conj(w[j])
        // for lags 0..n, and the negative lags j in 1..n alias to M - j.
        let mut buf_a = vec![Complex::zero(); m];
        let buf_b = vec![Complex::zero(); m];
        let mut kernel_fwd = vec![Complex::zero(); m];
        let mut kernel_inv = vec![Complex::zero(); m];
        for (j, &w) in chirp.iter().enumerate() {
            buf_a[j] = w.conj();
            if j > 0 {
                buf_a[m - j] = w.conj();
            }
        }
        split_radix_into(&mut inner, &buf_a, &mut kernel_fwd, Direction::Forward)?;
        // The inverse DFT is the same convolution under the conjugated
        // chirp; its kernel spectrum is precomputed too, so direction
        // switches cost nothing at execute time.
        for slot in buf_a.iter_mut() {
            *slot = slot.conj();
        }
        split_radix_into(&mut inner, &buf_a, &mut kernel_inv, Direction::Forward)?;
        Ok(BluesteinPlan { n, m, chirp, kernel_fwd, kernel_inv, inner, buf_a, buf_b })
    }

    /// The planned transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true for a plan (`n >= 2`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The internal cyclic-convolution length (the next power of two
    /// `>= 2n - 1`) — what the op-model and traffic estimates price.
    pub fn conv_len(&self) -> usize {
        self.m
    }
}

/// Executes the planned chirp-Z FFT into `output` (natural bin order,
/// unnormalised-DFT contract, no heap allocation).
///
/// # Errors
///
/// Returns [`FftError::LengthMismatch`] if either buffer is not
/// `plan.len()` points.
pub fn bluestein_into(
    plan: &mut BluesteinPlan,
    input: &[C64],
    output: &mut [C64],
    dir: Direction,
) -> Result<(), FftError> {
    let n = plan.n;
    if input.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: input.len() });
    }
    if output.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: output.len() });
    }
    let forward = dir == Direction::Forward;
    let kernel = if forward { &plan.kernel_fwd } else { &plan.kernel_inv };

    // Chirp the input into the convolution buffer and zero the padding
    // tail — the previous call's inverse pass dirtied the whole arena,
    // and a stale tail would alias into the convolution result.
    for (slot, (&x, &w)) in plan.buf_a.iter_mut().zip(input.iter().zip(&plan.chirp)) {
        *slot = if forward { x * w } else { x * w.conj() };
    }
    for slot in plan.buf_a[n..].iter_mut() {
        *slot = Complex::zero();
    }

    // Cyclic convolution by the convolution theorem: two power-of-two
    // split-radix runs around one pointwise multiply. The inner inverse
    // is unnormalised (returns M times the convolution); the 1/M fold
    // rides the final chirp multiply below.
    split_radix_into(&mut plan.inner, &plan.buf_a, &mut plan.buf_b, Direction::Forward)?;
    for (slot, &k) in plan.buf_b.iter_mut().zip(kernel) {
        *slot = *slot * k;
    }
    split_radix_into(&mut plan.inner, &plan.buf_b, &mut plan.buf_a, Direction::Inverse)?;

    let scale = 1.0 / plan.m as f64;
    for (k, (slot, &w)) in output.iter_mut().zip(&plan.chirp).enumerate() {
        let c = plan.buf_a[k] * scale;
        *slot = if forward { c * w } else { c * w.conj() };
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn matches_naive_at_prime_composite_and_power_of_two_sizes() {
        // Primes, non-5-smooth composites, a 5-smooth size, a power of
        // two: the chirp path must not care about the factorisation.
        for n in [2usize, 3, 7, 11, 17, 31, 97, 101, 64, 60, 77, 126, 251] {
            let x = random_signal(n, n as u64);
            let mut plan = BluesteinPlan::new(n).unwrap();
            let mut got = vec![Complex::zero(); n];
            for dir in [Direction::Forward, Direction::Inverse] {
                let want = dft_naive(&x, dir).unwrap();
                let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
                bluestein_into(&mut plan, &x, &mut got, dir).unwrap();
                let err = max_error(&got, &want) / peak;
                assert!(err < 1e-10, "n={n} {dir:?}: {err}");
            }
        }
    }

    #[test]
    fn round_trips_within_tolerance() {
        let n = 97;
        let x = random_signal(n, 5);
        let mut plan = BluesteinPlan::new(n).unwrap();
        let mut spec = vec![Complex::zero(); n];
        let mut back = vec![Complex::zero(); n];
        bluestein_into(&mut plan, &x, &mut spec, Direction::Forward).unwrap();
        bluestein_into(&mut plan, &spec, &mut back, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = back.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-10);
    }

    #[test]
    fn convolution_length_is_next_pow2_of_2n_minus_1() {
        for (n, m) in [(2usize, 4usize), (7, 16), (97, 256), (1009, 2048), (1344, 4096)] {
            assert_eq!(BluesteinPlan::new(n).unwrap().conv_len(), m, "n={n}");
        }
    }

    #[test]
    fn repeated_calls_reuse_a_clean_arena() {
        // The zero-padding contract: stale convolution state from one
        // call must never leak into the next (also across directions).
        let n = 31;
        let mut plan = BluesteinPlan::new(n).unwrap();
        let x = random_signal(n, 1);
        let y = random_signal(n, 2);
        let mut first = vec![Complex::zero(); n];
        let mut again = vec![Complex::zero(); n];
        bluestein_into(&mut plan, &x, &mut first, Direction::Forward).unwrap();
        bluestein_into(&mut plan, &y, &mut again, Direction::Inverse).unwrap();
        bluestein_into(&mut plan, &x, &mut again, Direction::Forward).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn rejects_degenerate_sizes_and_length_mismatch() {
        assert!(matches!(BluesteinPlan::new(0), Err(FftError::InvalidSize { .. })));
        assert!(matches!(BluesteinPlan::new(1), Err(FftError::InvalidSize { .. })));
        let mut plan = BluesteinPlan::new(7).unwrap();
        let x = random_signal(7, 3);
        let mut short = vec![Complex::zero(); 6];
        assert!(matches!(
            bluestein_into(&mut plan, &x, &mut short, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 7, got: 6 })
        ));
        let mut ok = vec![Complex::zero(); 7];
        assert!(matches!(
            bluestein_into(&mut plan, &x[..6], &mut ok, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 7, got: 6 })
        ));
    }

    #[test]
    fn chirp_angles_are_exact_at_large_indices() {
        // j² overflows naive usize arithmetic well below interesting
        // sizes on 32-bit hosts; the u128 reduction keeps the angle
        // exact. Spot-check against the mathematical definition.
        let n = 1009;
        for j in [0usize, 1, 500, 1008] {
            let theta = -std::f64::consts::PI * ((j * j) % (2 * n)) as f64 / n as f64;
            let want = Complex::new(theta.cos(), theta.sin());
            assert!(chirp_at(n, j).dist(want) < 1e-12, "j={j}");
        }
    }
}
