//! The cached FFT of Baas (JSSC 1999), the prior-art architecture the
//! paper builds on — plus an access-counting harness.
//!
//! Baas splits the N-point FFT into two *epochs* of equal length; within
//! an epoch, data is processed in independent fixed-size groups whose
//! intermediates live in a cache (our CRF ancestor). Main memory is
//! touched only at epoch boundaries. This module implements that
//! algorithm directly (with standard in-place radix-2 groups rather than
//! the array/BU structure) and counts main-memory accesses, so the
//! benefit of the paper's CRF can be quantified against both this and
//! the plain FFT.

use crate::bits::bit_reverse;
use crate::error::FftError;
use crate::plan::Split;
use crate::reference::Direction;
use afft_num::{twiddle, Complex, C64};

/// Count of main-memory traffic incurred by a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemTraffic {
    /// Complex points read from main memory.
    pub loads: usize,
    /// Complex points written to main memory.
    pub stores: usize,
}

impl MemTraffic {
    /// Total accesses.
    pub fn total(&self) -> usize {
        self.loads + self.stores
    }
}

/// Result of a cached-FFT run: natural-order spectrum plus the traffic
/// the epoch structure generated.
#[derive(Debug, Clone)]
pub struct CachedFftOutput {
    /// The spectrum in natural bin order.
    pub bins: Vec<C64>,
    /// Main-memory traffic (excludes in-cache group operations).
    pub traffic: MemTraffic,
}

/// Reusable work buffers for [`cached_fft_into`]: the inter-epoch
/// staging array and the cache (CRF-ancestor) group buffer. One scratch
/// set serves any number of transforms of any supported size.
#[derive(Debug, Clone, Default)]
pub struct CachedFftScratch {
    mid: Vec<C64>,
    cache: Vec<C64>,
}

impl CachedFftScratch {
    /// An empty scratch set; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs the two-epoch cached FFT of Baas over `f64`.
///
/// Functionally identical to the array FFT; structurally it uses plain
/// in-place radix-2 DIF groups (no BU module, no AC wiring) and counts
/// memory traffic: `2N` loads and `2N` stores (one load + store per
/// point per epoch), versus `N log2 N` each for the plain FFT.
///
/// This is the allocating path; steady-state callers should reuse
/// buffers through [`cached_fft_into`].
///
/// # Errors
///
/// Returns [`FftError`] for invalid sizes or mismatched input length.
pub fn cached_fft(input: &[C64], dir: Direction) -> Result<CachedFftOutput, FftError> {
    let mut bins = vec![Complex::zero(); input.len()];
    let mut scratch = CachedFftScratch::new();
    let traffic = cached_fft_into(input, &mut bins, dir, &mut scratch)?;
    Ok(CachedFftOutput { bins, traffic })
}

/// The allocation-free primitive behind [`cached_fft`]: writes the
/// natural-order spectrum into `output`, reusing the caller's
/// [`CachedFftScratch`] (no heap work once the scratch is warm).
///
/// # Errors
///
/// Returns [`FftError`] for invalid sizes, or
/// [`FftError::LengthMismatch`] when `output.len() != input.len()`.
pub fn cached_fft_into(
    input: &[C64],
    output: &mut [C64],
    dir: Direction,
    scratch: &mut CachedFftScratch,
) -> Result<MemTraffic, FftError> {
    let split = Split::for_size(input.len())?;
    let s = &split;
    if output.len() != s.n {
        return Err(FftError::LengthMismatch { expected: s.n, got: output.len() });
    }
    let mut traffic = MemTraffic::default();
    scratch.mid.resize(s.n, Complex::zero());
    scratch.cache.resize(s.p_size.max(s.q_size), Complex::zero());
    let mid = &mut scratch.mid;
    let cache = &mut scratch.cache;
    let out = output;

    // Epoch 0.
    for l in 0..s.q_size {
        for (m, slot) in cache.iter_mut().take(s.p_size).enumerate() {
            *slot = input[l + s.q_size * m];
            traffic.loads += 1;
        }
        group_dif(&mut cache[..s.p_size], dir);
        for bin in 0..s.p_size {
            let v = cache[bit_reverse(bin, s.p_stages)];
            let e = (bin * l) % s.n;
            let w = dir.twiddle(s.n, e);
            mid[bin + s.p_size * l] = v * w;
            traffic.stores += 1;
        }
    }

    // Epoch 1.
    for g in 0..s.p_size {
        for l in 0..s.q_size {
            cache[l] = mid[g + s.p_size * l];
            traffic.loads += 1;
        }
        group_dif(&mut cache[..s.q_size], dir);
        for t in 0..s.q_size {
            out[g + s.p_size * t] = cache[bit_reverse(t, s.q_stages)];
            traffic.stores += 1;
        }
    }
    Ok(traffic)
}

/// Memory traffic of the *plain* in-place FFT under the same accounting
/// (every butterfly loads 2 and stores 2 points): `N log2 N` each.
///
/// This is the paper's motivating count: "an N-point FFT has a total of
/// `N * log2 N` loads and stores for the whole dataflow".
pub fn plain_fft_traffic(n: usize) -> MemTraffic {
    let stages = n.trailing_zeros() as usize;
    MemTraffic { loads: n * stages, stores: n * stages }
}

fn group_dif(data: &mut [C64], dir: Direction) {
    let g = data.len();
    let p = g.trailing_zeros();
    for j in 1..=p {
        let dist = 1usize << (p - j);
        for start in (0..g).step_by(dist * 2) {
            for a in start..start + dist {
                let e = (a % dist) << (j - 1);
                let w = match dir {
                    Direction::Forward => twiddle(g, e),
                    Direction::Inverse => twiddle(g, e).conj(),
                };
                let x0 = data[a];
                let x1 = data[a + dist];
                data[a] = x0 + x1;
                data[a + dist] = (x0 - x1) * w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn cached_fft_matches_reference() {
        for n in [64usize, 128, 512, 1024] {
            let x = random_signal(n, n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let got = cached_fft(&x, Direction::Forward).unwrap();
            assert!(max_error(&got.bins, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn traffic_is_two_epochs_worth() {
        let n = 1024;
        let x = random_signal(n, 1);
        let got = cached_fft(&x, Direction::Forward).unwrap();
        assert_eq!(got.traffic.loads, 2 * n);
        assert_eq!(got.traffic.stores, 2 * n);
        // The plain FFT moves log2(N)/2 = 5x more data.
        let plain = plain_fft_traffic(n);
        assert_eq!(plain.loads, n * 10);
        assert_eq!(plain.total() / got.traffic.total(), 5);
    }

    #[test]
    fn inverse_round_trip() {
        let n = 256;
        let x = random_signal(n, 2);
        let y = cached_fft(&x, Direction::Forward).unwrap().bins;
        let z = cached_fft(&y, Direction::Inverse).unwrap().bins;
        let scaled: Vec<C64> = z.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-9);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(cached_fft(&[Complex::zero(); 48], Direction::Forward).is_err());
        assert!(cached_fft(&[Complex::zero(); 16], Direction::Forward).is_err());
    }
}
