//! The polymorphic execution layer: every FFT backend in the workspace
//! behind one [`FftEngine`] trait, enumerable through an
//! [`EngineRegistry`].
//!
//! The paper compares one algorithm across several execution substrates
//! (golden models, prior-art architectures, the cycle-accurate ASIP).
//! Before this layer each backend exposed an ad-hoc signature and every
//! harness carried per-backend glue; now a harness iterates the
//! registry and calls [`FftEngine::execute`].
//!
//! # Contract
//!
//! For a length-`N` engine, the execution **primitive** is
//! [`FftEngine::execute_into`]: it writes the *unnormalised* DFT
//! `X(k) = sum_m x(m) W_N^{km}` (or, for `Direction::Inverse`, the
//! unnormalised conjugate sum) in natural bin order into a
//! caller-provided `N`-point output buffer, so
//! `Inverse(Forward(x)) == N * x` for every engine. Backends that scale
//! internally (e.g. the per-stage-halving Q15 datapath) rescale to meet
//! this contract; their [`FftEngine::tolerance`] reports the expected
//! deviation relative to the spectrum peak.
//!
//! # Zero-allocation execution
//!
//! `execute_into` takes `&mut self` because every backend owns its
//! scratch buffers (the FFTW plan idiom): the first call sizes them,
//! every later call reuses them, so steady-state traffic does **zero
//! heap work per transform** — the caller brings the output, the engine
//! brings the scratch. [`FftEngine::execute`] is a provided convenience
//! wrapper that allocates one output buffer and delegates; the two
//! paths are bit-identical. Input and output never alias (enforced by
//! the borrow checker), and on error the output buffer's contents are
//! unspecified.
//!
//! This contract is what the upper layers build on: the planner's
//! batch executor and the streaming pipeline's long-lived workers each
//! own one engine instance (and therefore one scratch set) per thread
//! — [`FftEngine`] deliberately carries no `Sync` bound — and drive it
//! through `execute_into` so steady-state throughput work never
//! touches the allocator.
//!
//! # Examples
//!
//! ```
//! use afft_core::engine::EngineRegistry;
//! use afft_core::Direction;
//! use afft_num::Complex;
//!
//! let mut registry = EngineRegistry::standard(64)?;
//! assert!(registry.len() >= 5);
//! let x = vec![Complex::new(1.0, 0.0); 64];
//! // One reusable output buffer serves every engine: no per-transform
//! // allocation anywhere in the loop.
//! let mut spectrum = vec![Complex::zero(); 64];
//! for engine in registry.engines_mut() {
//!     engine.execute_into(&x, &mut spectrum, Direction::Forward)?;
//!     assert!((spectrum[0].re - 64.0).abs() < 1e-6, "{}", engine.name());
//! }
//! # Ok::<(), afft_core::FftError>(())
//! ```

use crate::array::ArrayFft;
use crate::bluestein::{bluestein_into, BluesteinPlan};
use crate::cached::{cached_fft_into, plain_fft_traffic, CachedFftScratch, MemTraffic};
use crate::error::FftError;
use crate::mcfft::{mcfft_into, Epochs, McfftScratch};
use crate::mixed::{factorize, mixed_radix_into, MixedRadixPlan};
use crate::plan::Split;
use crate::rader::{is_prime, rader_into, RaderPlan};
use crate::radix4::{is_power_of_four, radix4_dit_into, Radix4Plan};
use crate::realfft::RealFft;
use crate::reference::{
    bit_reverse_permute, dft_naive_into, fft_radix2_dif_f64, fft_radix2_dit_f64, Direction,
};
use crate::simd::{self, Radix4SimdEngine, SplitRadixSimdEngine};
use crate::splitradix::{split_radix_into, SplitRadixPlan};
use afft_num::{Complex, C64};

/// A uniform interface over every FFT backend in the workspace.
///
/// See the [module documentation](self) for the execute contract.
pub trait FftEngine {
    /// Stable snake_case identifier (e.g. `"array_fft"`, `"asip_iss"`).
    fn name(&self) -> &str;

    /// The transform size `N` this engine instance is planned for.
    fn len(&self) -> usize;

    /// Never true for a planned engine; provided alongside
    /// [`FftEngine::len`] for API completeness.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The execution primitive: runs the transform into a
    /// caller-provided output buffer, reusing engine-owned scratch.
    /// Input and output length must both equal [`FftEngine::len`];
    /// after the engine's first transform this performs no heap
    /// allocation. On error the output contents are unspecified.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] for wrong input or output
    /// lengths, or a backend-specific error ([`FftError::Backend`])
    /// when the execution substrate fails.
    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError>;

    /// Convenience wrapper over [`FftEngine::execute_into`]: allocates
    /// one output buffer and delegates. Bit-identical to the `_into`
    /// path; steady-state callers should prefer the primitive and
    /// reuse their own buffer.
    ///
    /// # Errors
    ///
    /// As [`FftEngine::execute_into`].
    fn execute(&mut self, input: &[C64], dir: Direction) -> Result<Vec<C64>, FftError> {
        let mut output = vec![Complex::zero(); self.len()];
        self.execute_into(input, &mut output, dir)?;
        Ok(output)
    }

    /// Main-memory traffic of one transform in complex points, where
    /// the backend models it (`None` for pure math backends).
    fn traffic(&self) -> Option<MemTraffic>;

    /// Expected worst-case deviation from the exact DFT, relative to
    /// the spectrum peak. Exact-arithmetic backends keep the default;
    /// quantised datapaths override it.
    fn tolerance(&self) -> f64 {
        1e-8
    }

    /// Cycle count of the most recent [`FftEngine::execute`], on
    /// backends with a cycle-accurate substrate (`None` elsewhere).
    fn cycles(&self) -> Option<u64> {
        None
    }
}

/// Validates an [`FftEngine::execute_into`] buffer pair against the
/// engine's planned size — the one length-check shared by every
/// backend, in this crate and out-of-crate adapters alike.
///
/// # Errors
///
/// Returns [`FftError::LengthMismatch`] if either buffer is not `n`
/// points.
pub fn check_io(n: usize, input: &[C64], output: &[C64]) -> Result<(), FftError> {
    if input.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: input.len() });
    }
    if output.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: output.len() });
    }
    Ok(())
}

/// The naive `O(N^2)` DFT as an engine: the golden reference.
#[derive(Debug, Clone, Copy)]
pub struct NaiveDftEngine {
    n: usize,
}

impl NaiveDftEngine {
    /// Plans a naive DFT of size `n` (any non-zero size).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] for `n == 0`.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 {
            return Err(FftError::InvalidSize { n, reason: "empty transform", factor: None });
        }
        Ok(NaiveDftEngine { n })
    }
}

impl FftEngine for NaiveDftEngine {
    fn name(&self) -> &str {
        "dft_naive"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        check_io(self.n, input, output)?;
        dft_naive_into(input, output, dir)
    }

    fn traffic(&self) -> Option<MemTraffic> {
        None
    }
}

/// The classic radix-2 decimation-in-time FFT as an engine.
#[derive(Debug, Clone, Copy)]
pub struct Radix2DitEngine {
    n: usize,
}

impl Radix2DitEngine {
    /// Plans a DIT FFT of size `n` (power of two, `>= 2`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        check_pow2_size(n)?;
        Ok(Radix2DitEngine { n })
    }
}

impl FftEngine for Radix2DitEngine {
    fn name(&self) -> &str {
        "radix2_dit"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        check_io(self.n, input, output)?;
        output.copy_from_slice(input);
        fft_radix2_dit_f64(output, dir)
    }

    fn traffic(&self) -> Option<MemTraffic> {
        Some(plain_fft_traffic(self.n))
    }
}

/// The radix-2 decimation-in-frequency FFT as an engine (its
/// bit-reversed output is re-ordered to natural order).
#[derive(Debug, Clone, Copy)]
pub struct Radix2DifEngine {
    n: usize,
}

impl Radix2DifEngine {
    /// Plans a DIF FFT of size `n` (power of two, `>= 2`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        check_pow2_size(n)?;
        Ok(Radix2DifEngine { n })
    }
}

impl FftEngine for Radix2DifEngine {
    fn name(&self) -> &str {
        "radix2_dif"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        check_io(self.n, input, output)?;
        output.copy_from_slice(input);
        fft_radix2_dif_f64(output, dir)?;
        bit_reverse_permute(output);
        Ok(())
    }

    fn traffic(&self) -> Option<MemTraffic> {
        Some(plain_fft_traffic(self.n))
    }
}

/// The radix-4 decimation-in-time FFT as an engine (power-of-4 sizes;
/// ~25% fewer complex multiplies than radix-2, plan-time twiddle
/// tables).
#[derive(Debug, Clone)]
pub struct Radix4DitEngine {
    plan: Radix4Plan,
}

impl Radix4DitEngine {
    /// Plans a radix-4 DIT FFT of size `n` (a power of 4, `>= 4`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Ok(Radix4DitEngine { plan: Radix4Plan::new(n)? })
    }
}

impl FftEngine for Radix4DitEngine {
    fn name(&self) -> &str {
        "radix4_dit"
    }

    fn len(&self) -> usize {
        self.plan.len()
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        radix4_dit_into(&self.plan, input, output, dir)
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // In-place combine: one full pass per radix-4 stage, half the
        // stage count of the radix-2 kernels.
        let n = self.plan.len();
        let stages = (n.trailing_zeros() / 2) as usize;
        Some(MemTraffic { loads: n * stages, stores: n * stages })
    }
}

/// The split-radix FFT as an engine (power-of-two sizes; the lowest
/// known operation count, plan-time twiddle table).
#[derive(Debug, Clone)]
pub struct SplitRadixEngine {
    plan: SplitRadixPlan,
}

impl SplitRadixEngine {
    /// Plans a split-radix FFT of size `n` (a power of two, `>= 2`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Ok(SplitRadixEngine { plan: SplitRadixPlan::new(n)? })
    }
}

impl FftEngine for SplitRadixEngine {
    fn name(&self) -> &str {
        "split_radix"
    }

    fn len(&self) -> usize {
        self.plan.len()
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        split_radix_into(&mut self.plan, input, output, dir)
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // The L-shaped recursion touches ~3/4 of the points per radix-2
        // stage equivalent.
        let n = self.plan.len();
        let stages = n.trailing_zeros() as usize;
        Some(MemTraffic { loads: 3 * n * stages / 4, stores: 3 * n * stages / 4 })
    }
}

/// The general mixed-radix FFT as an engine: any `n >= 2` with prime
/// factors in {2, 3, 5} — the only registry backend that serves
/// composite OFDM sizes like 60, 1200 and 1536.
#[derive(Debug, Clone)]
pub struct MixedRadixEngine {
    plan: MixedRadixPlan,
}

impl MixedRadixEngine {
    /// Plans a mixed-radix FFT of size `n` (`n >= 2`, 5-smooth).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Ok(MixedRadixEngine { plan: MixedRadixPlan::new(n)? })
    }

    /// The stage radices the plan factorised `n` into, outermost first.
    pub fn radices(&self) -> Vec<usize> {
        self.plan.radices()
    }
}

impl FftEngine for MixedRadixEngine {
    fn name(&self) -> &str {
        "mixed_radix"
    }

    fn len(&self) -> usize {
        self.plan.len()
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        mixed_radix_into(&mut self.plan, input, output, dir)
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // One full load + store pass per factor stage.
        let n = self.plan.len();
        let stages = self.plan.radices().len();
        Some(MemTraffic { loads: n * stages, stores: n * stages })
    }
}

/// The array-structured FFT golden model is itself an engine; its
/// `_into` path reuses the plan-owned scratch and fuses the natural-
/// order gather into the epoch-1 store (see [`ArrayFft::process_into`]).
impl FftEngine for ArrayFft<f64> {
    fn name(&self) -> &str {
        "array_fft"
    }

    fn len(&self) -> usize {
        ArrayFft::len(self)
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        self.process_into(input, output, dir)
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // One load and one store per point per epoch through the CRF
        // streaming port (the LDIN/STOUT beat count times two points).
        let n = ArrayFft::len(self);
        Some(MemTraffic { loads: 2 * n, stores: 2 * n })
    }
}

/// Baas's two-epoch cached FFT as an engine (with engine-owned
/// staging/cache scratch for the allocation-free path).
#[derive(Debug, Clone)]
pub struct CachedFftEngine {
    n: usize,
    scratch: CachedFftScratch,
}

impl CachedFftEngine {
    /// Plans a cached FFT of size `n` (power of two, `>= 64`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Split::for_size(n)?;
        Ok(CachedFftEngine { n, scratch: CachedFftScratch::new() })
    }
}

impl FftEngine for CachedFftEngine {
    fn name(&self) -> &str {
        "cached_fft"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        check_io(self.n, input, output)?;
        cached_fft_into(input, output, dir, &mut self.scratch)?;
        Ok(())
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // Two epochs, each touching every point once in each direction.
        Some(MemTraffic { loads: 2 * self.n, stores: 2 * self.n })
    }
}

/// The multi-epoch cached FFT (MCFFT) as an engine (with an
/// engine-owned scratch arena for the allocation-free path).
#[derive(Debug, Clone)]
pub struct McfftEngine {
    epochs: Epochs,
    scratch: McfftScratch,
}

impl McfftEngine {
    /// Plans an MCFFT with the canonical decomposition for `n`: epochs
    /// of at most 16 points, mirroring a small-cache configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `n` is a power of two
    /// `>= 2`.
    pub fn new(n: usize) -> Result<Self, FftError> {
        check_pow2_size(n)?;
        let mut factors = Vec::new();
        let mut bits = n.trailing_zeros();
        while bits > 0 {
            let step = bits.min(4);
            factors.push(1usize << step);
            bits -= step;
        }
        Self::with_epochs(Epochs::new(n, &factors)?)
    }

    /// Plans an MCFFT with an explicit epoch decomposition.
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for API symmetry.
    pub fn with_epochs(epochs: Epochs) -> Result<Self, FftError> {
        Ok(McfftEngine { epochs, scratch: McfftScratch::new() })
    }

    /// The epoch decomposition in use.
    pub fn epochs(&self) -> &Epochs {
        &self.epochs
    }
}

impl FftEngine for McfftEngine {
    fn name(&self) -> &str {
        "mcfft"
    }

    fn len(&self) -> usize {
        self.epochs.n()
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        check_io(self.epochs.n(), input, output)?;
        mcfft_into(input, output, &self.epochs, dir, &mut self.scratch)
    }

    fn traffic(&self) -> Option<MemTraffic> {
        Some(self.epochs.traffic())
    }
}

/// The packed real-input FFT as a full-contract engine.
///
/// [`RealFft`] transforms a length-`2N` *real* signal with one
/// `N`-point complex FFT. To satisfy the registry contract (an
/// unnormalised DFT of arbitrary *complex* input) this wrapper runs
/// that path twice — `DFT(x) = DFT(re x) + i DFT(im x)`, each half
/// expanded by conjugate symmetry — so the planner can rank the
/// packed-real datapath against the complex backends on the same
/// calibration signals.
#[derive(Debug, Clone)]
pub struct RealFftEngine {
    rfft: RealFft,
    // Engine-owned scratch for the allocation-free path: split real
    // components, unique-bin staging, both expanded spectra, and the
    // conjugated input of the inverse route.
    re_scratch: Vec<f64>,
    im_scratch: Vec<f64>,
    bins_scratch: Vec<C64>,
    fr_scratch: Vec<C64>,
    fi_scratch: Vec<C64>,
    conj_scratch: Vec<C64>,
}

impl RealFftEngine {
    /// Plans a real-FFT-backed engine of size `n` (`n/2` must be a
    /// supported array-FFT size, i.e. a power of two `>= 64`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Ok(RealFftEngine {
            rfft: RealFft::new(n)?,
            re_scratch: Vec::new(),
            im_scratch: Vec::new(),
            bins_scratch: Vec::new(),
            fr_scratch: Vec::new(),
            fi_scratch: Vec::new(),
            conj_scratch: Vec::new(),
        })
    }

    /// `DFT(re x) -> fr_scratch`, `DFT(im x) -> fi_scratch`, each via
    /// the packed real path and conjugate-symmetric expansion.
    fn split_real_dfts(&mut self, input: &[C64]) -> Result<(), FftError> {
        let n = input.len();
        self.re_scratch.resize(n, 0.0);
        self.im_scratch.resize(n, 0.0);
        for (i, c) in input.iter().enumerate() {
            self.re_scratch[i] = c.re;
            self.im_scratch[i] = c.im;
        }
        self.bins_scratch.resize(n / 2 + 1, Complex::zero());
        self.fr_scratch.resize(n, Complex::zero());
        self.fi_scratch.resize(n, Complex::zero());
        self.rfft.process_into(&self.re_scratch, &mut self.bins_scratch)?;
        self.rfft.expand_full_into(&self.bins_scratch, &mut self.fr_scratch);
        self.rfft.process_into(&self.im_scratch, &mut self.bins_scratch)?;
        self.rfft.expand_full_into(&self.bins_scratch, &mut self.fi_scratch);
        Ok(())
    }
}

impl FftEngine for RealFftEngine {
    fn name(&self) -> &str {
        "real_fft"
    }

    fn len(&self) -> usize {
        self.rfft.len()
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        check_io(self.rfft.len(), input, output)?;
        match dir {
            // DFT(x) = DFT(re x) + i DFT(im x).
            Direction::Forward => {
                self.split_real_dfts(input)?;
                for (k, slot) in output.iter_mut().enumerate() {
                    *slot = self.fr_scratch[k] + self.fi_scratch[k].mul_i();
                }
                Ok(())
            }
            // Unnormalised inverse: conjugate in, forward, conjugate out.
            Direction::Inverse => {
                let mut conj = core::mem::take(&mut self.conj_scratch);
                conj.resize(input.len(), Complex::zero());
                for (slot, c) in conj.iter_mut().zip(input) {
                    *slot = c.conj();
                }
                let result = self.execute_into(&conj, output, Direction::Forward);
                self.conj_scratch = conj;
                result?;
                for slot in output.iter_mut() {
                    *slot = slot.conj();
                }
                Ok(())
            }
        }
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // Two packed half-size array transforms (2 * (N/2) points each
        // way apiece) — the O(N) unscrambling stays register-resident.
        let n = self.len();
        Some(MemTraffic { loads: 2 * n, stores: 2 * n })
    }

    fn tolerance(&self) -> f64 {
        // The conjugate-symmetric post-butterfly adds a twiddle
        // multiply per bin on top of the inner FFT's roundoff.
        1e-7
    }
}

/// Bluestein's chirp-Z FFT as an engine: **any** `n >= 2` through one
/// power-of-two cyclic convolution — the registry's universal fallback
/// that closes the size domain (primes, 5G NR DFT-s-OFDM sizes,
/// arbitrary user requests).
#[derive(Debug, Clone)]
pub struct BluesteinEngine {
    plan: BluesteinPlan,
}

impl BluesteinEngine {
    /// Plans a chirp-Z FFT of size `n` (any `n >= 2`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] for `n < 2`.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Ok(BluesteinEngine { plan: BluesteinPlan::new(n)? })
    }

    /// The internal cyclic-convolution length (next power of two
    /// `>= 2n - 1`).
    pub fn conv_len(&self) -> usize {
        self.plan.conv_len()
    }
}

impl FftEngine for BluesteinEngine {
    fn name(&self) -> &str {
        "bluestein"
    }

    fn len(&self) -> usize {
        self.plan.len()
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        bluestein_into(&mut self.plan, input, output, dir)
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // Two m-point split-radix passes around the pointwise multiply,
        // plus the O(n + m) chirp/fold passes.
        let n = self.plan.len();
        let m = self.plan.conv_len();
        let stages = m.trailing_zeros() as usize;
        let inner = 2 * (3 * m * stages / 4);
        Some(MemTraffic { loads: inner + m + 2 * n, stores: inner + m + 2 * n })
    }

    fn tolerance(&self) -> f64 {
        // Three rounding fronts the direct kernels don't have: the
        // chirp multiply, the kernel-spectrum product, and the final
        // chirp/1-in-m fold. Each contributes O(eps) relative to the
        // spectrum peak; 1e-8 (the exact-arithmetic default) still
        // holds with orders of magnitude to spare at every size the
        // suite pins, so the default is kept deliberately.
        1e-8
    }
}

/// Rader's prime-length FFT as an engine: prime `p >= 3` through the
/// `(p-1)`-point generator-permutation cyclic convolution.
#[derive(Debug, Clone)]
pub struct RaderEngine {
    plan: RaderPlan,
}

impl RaderEngine {
    /// Plans a Rader FFT of prime size `p >= 3`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `p` is an odd prime.
    pub fn new(p: usize) -> Result<Self, FftError> {
        Ok(RaderEngine { plan: RaderPlan::new(p)? })
    }

    /// The engine family serving the inner `(p-1)`-point convolution.
    pub fn inner_engine(&self) -> &'static str {
        self.plan.inner_engine()
    }
}

impl FftEngine for RaderEngine {
    fn name(&self) -> &str {
        "rader"
    }

    fn len(&self) -> usize {
        self.plan.len()
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        rader_into(&mut self.plan, input, output, dir)
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // Two (p-1)-point inner passes, the gather/scatter permutations
        // and the pointwise kernel multiply.
        let p = self.plan.len();
        let m = p - 1;
        let stages = (usize::BITS - m.leading_zeros()) as usize;
        let inner = 2 * m * stages;
        Some(MemTraffic { loads: inner + 3 * m, stores: inner + 3 * m })
    }

    fn tolerance(&self) -> f64 {
        // One convolution (possibly Bluestein-backed, i.e. up to three
        // power-of-two FFTs deep) between gather and scatter; same
        // O(eps)-per-front argument as Bluestein, and the measured
        // error sits far below the exact-arithmetic default.
        1e-8
    }
}

fn check_pow2_size(n: usize) -> Result<(), FftError> {
    if !n.is_power_of_two() {
        return Err(FftError::InvalidSize { n, reason: "not a power of two", factor: None });
    }
    if n < 2 {
        return Err(FftError::InvalidSize { n, reason: "must be at least 2", factor: None });
    }
    Ok(())
}

/// An ordered collection of [`FftEngine`] backends for one size.
#[derive(Default)]
pub struct EngineRegistry {
    engines: Vec<Box<dyn FftEngine>>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether [`EngineRegistry::standard`] supports size `n`: **every**
    /// `n >= 2`. Powers of two get the full
    /// radix-2/radix-4/split-radix/epoch family; composite 5-smooth
    /// sizes (60, 1200, 1536, ...) get `mixed_radix`; odd primes get
    /// `rader`; and `bluestein` registers for every size, so no
    /// factorisation — however adversarial — falls outside the domain.
    /// Only the degenerate sizes 0 and 1 are rejected.
    pub fn supports(n: usize) -> bool {
        n >= 2
    }

    /// Every software backend of this crate that supports size `n`.
    /// For any supported `n` (see [`EngineRegistry::supports`]): the
    /// naive DFT and the universal `bluestein` chirp-Z engine. For
    /// 5-smooth sizes the general `mixed_radix` engine; for odd primes
    /// the `rader` engine. For powers of two additionally both radix-2
    /// FFTs, `split_radix` and the MCFFT (`radix4_dit` on powers of
    /// 4); from `n >= 64` (the smallest array-structured size) the
    /// array FFT and Baas's cached FFT; from `n >= 128` the packed
    /// real-input FFT (whose inner complex transform is `n/2`).
    ///
    /// On hosts with a detected vector unit the SIMD tier registers
    /// alongside its scalar siblings (from `n >= 16`): `radix4_simd`
    /// on powers of 4 and `split_radix_simd` on powers of two — unless
    /// suppressed via `AFFT_NO_SIMD=1` (see
    /// [`simd::active_level`]). Because the backend-set hash keys
    /// planner wisdom, suppressing the tier invalidates SIMD-era
    /// wisdom by construction.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless
    /// [`EngineRegistry::supports`] holds for `n` (any `n >= 2`).
    pub fn standard(n: usize) -> Result<Self, FftError> {
        if !Self::supports(n) {
            return Err(FftError::InvalidSize {
                n,
                reason: "no registered backend (need n >= 2)",
                factor: None,
            });
        }
        let simd_tier = simd::active_level().is_simd() && n >= 16;
        let mut registry = EngineRegistry::new();
        registry.register(Box::new(NaiveDftEngine::new(n)?));
        if n.is_power_of_two() {
            registry.register(Box::new(Radix2DitEngine::new(n)?));
            registry.register(Box::new(Radix2DifEngine::new(n)?));
            if is_power_of_four(n) {
                registry.register(Box::new(Radix4DitEngine::new(n)?));
                if simd_tier {
                    registry.register(Box::new(Radix4SimdEngine::new(n)?));
                }
            }
            registry.register(Box::new(SplitRadixEngine::new(n)?));
            if simd_tier {
                registry.register(Box::new(SplitRadixSimdEngine::new(n)?));
            }
            registry.register(Box::new(McfftEngine::new(n)?));
        }
        if factorize(n).is_some() {
            registry.register(Box::new(MixedRadixEngine::new(n)?));
        }
        if is_prime(n) && n >= 3 {
            registry.register(Box::new(RaderEngine::new(n)?));
        }
        registry.register(Box::new(BluesteinEngine::new(n)?));
        if Split::for_size(n).is_ok() {
            registry.register(Box::new(ArrayFft::<f64>::new(n)?));
            registry.register(Box::new(CachedFftEngine::new(n)?));
        }
        if n.is_power_of_two() && Split::for_size(n / 2).is_ok() {
            registry.register(Box::new(RealFftEngine::new(n)?));
        }
        Ok(registry)
    }

    /// Adds an engine; duplicate names are rejected by debug assertion.
    pub fn register(&mut self, engine: Box<dyn FftEngine>) -> &mut Self {
        debug_assert!(
            self.get(engine.name()).is_none(),
            "duplicate engine name {:?}",
            engine.name()
        );
        self.engines.push(engine);
        self
    }

    /// Iterates the registered engines in registration order (shared
    /// view: metadata like [`FftEngine::name`], [`FftEngine::traffic`],
    /// [`FftEngine::cycles`]). Executing needs [`Self::engines_mut`].
    pub fn engines(&self) -> impl Iterator<Item = &dyn FftEngine> {
        self.engines.iter().map(Box::as_ref)
    }

    /// Iterates the registered engines mutably — the execution view:
    /// [`FftEngine::execute_into`] takes `&mut self` because engines
    /// own their scratch buffers.
    pub fn engines_mut<'a>(
        &'a mut self,
    ) -> impl Iterator<Item = &'a mut (dyn FftEngine + 'static)> + 'a {
        self.engines.iter_mut().map(Box::as_mut)
    }

    /// Looks an engine up by name.
    pub fn get(&self, name: &str) -> Option<&dyn FftEngine> {
        self.engines().find(|e| e.name() == name)
    }

    /// Looks an engine up by name, mutably (to execute it in place).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut (dyn FftEngine + 'static)> {
        self.engines_mut().find(|e| e.name() == name)
    }

    /// Removes an engine by name and returns it owned — how a planner
    /// hands the winning backend to long-lived consumers (an OFDM
    /// modem, a batch executor) without re-planning.
    pub fn take(&mut self, name: &str) -> Option<Box<dyn FftEngine>> {
        let idx = self.engines.iter().position(|e| e.name() == name)?;
        Some(self.engines.remove(idx))
    }

    /// The registered engine names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.engines().map(FftEngine::name).collect()
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

impl core::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EngineRegistry").field("engines", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use afft_num::Complex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    /// The expected registration order for size `n`, conditioned on
    /// the host's active SIMD level the same way `standard` is.
    fn expected_names(n: usize) -> Vec<&'static str> {
        let simd_tier = simd::active_level().is_simd() && n >= 16;
        let mut names = vec!["dft_naive"];
        if n.is_power_of_two() {
            names.extend(["radix2_dit", "radix2_dif"]);
            if is_power_of_four(n) {
                names.push("radix4_dit");
                if simd_tier {
                    names.push("radix4_simd");
                }
            }
            names.push("split_radix");
            if simd_tier {
                names.push("split_radix_simd");
            }
            names.push("mcfft");
        }
        if factorize(n).is_some() {
            names.push("mixed_radix");
        }
        if is_prime(n) && n >= 3 {
            names.push("rader");
        }
        names.push("bluestein");
        if Split::for_size(n).is_ok() {
            names.extend(["array_fft", "cached_fft"]);
        }
        if n.is_power_of_two() && Split::for_size(n / 2).is_ok() {
            names.push("real_fft");
        }
        names
    }

    #[test]
    fn standard_registry_size_gates() {
        // Powers of two below/above the radix-4, array and real-FFT
        // thresholds, plus composite 5-smooth sizes (naive reference +
        // mixed_radix only). The SIMD tier appears from n >= 16
        // exactly when the host detects a vector unit.
        for n in [8usize, 16, 32, 64, 128, 256, 1024] {
            let r = EngineRegistry::standard(n).unwrap();
            assert_eq!(r.names(), expected_names(n), "n={n}");
        }
        for n in [60usize, 243, 1200, 1536] {
            let r = EngineRegistry::standard(n).unwrap();
            assert_eq!(r.names(), ["dft_naive", "mixed_radix", "bluestein"], "n={n}");
        }
        // Odd primes add Rader's engine; non-5-smooth composites fall
        // through to the universal chirp-Z fallback alone.
        for n in [7usize, 17, 97, 251, 1009] {
            let r = EngineRegistry::standard(n).unwrap();
            assert_eq!(r.names(), ["dft_naive", "rader", "bluestein"], "n={n}");
        }
        for n in [14usize, 77, 1022, 1344] {
            let r = EngineRegistry::standard(n).unwrap();
            assert_eq!(r.names(), ["dft_naive", "bluestein"], "n={n}");
        }
        assert!(EngineRegistry::standard(0).is_err());
        assert!(EngineRegistry::standard(1).is_err());
    }

    #[test]
    fn simd_tier_registers_exactly_when_detected() {
        let expect = simd::active_level().is_simd();
        let r = EngineRegistry::standard(1024).unwrap();
        assert_eq!(r.get("radix4_simd").is_some(), expect);
        assert_eq!(r.get("split_radix_simd").is_some(), expect);
        // Non-power-of-4 keeps split_radix_simd only; below the tier
        // minimum neither registers.
        let r = EngineRegistry::standard(32).unwrap();
        assert!(r.get("radix4_simd").is_none());
        assert_eq!(r.get("split_radix_simd").is_some(), expect);
        let r = EngineRegistry::standard(8).unwrap();
        assert!(r.get("radix4_simd").is_none());
        assert!(r.get("split_radix_simd").is_none());
    }

    #[test]
    fn supported_sizes_are_reported_explicitly() {
        // Every n >= 2 is supported — primes and rough composites
        // included, via the convolution engines. Only the degenerate
        // sizes are rejected.
        for n in [
            2usize, 7, 8, 14, 48, 49, 60, 64, 77, 97, 120, 243, 251, 600, 1009, 1022, 1200, 1344,
            1536,
        ] {
            assert!(EngineRegistry::supports(n), "{n}");
            assert!(EngineRegistry::standard(n).is_ok(), "{n}");
        }
        for n in [0usize, 1] {
            assert!(!EngineRegistry::supports(n), "{n}");
            assert!(
                matches!(EngineRegistry::standard(n), Err(FftError::InvalidSize { .. })),
                "{n}"
            );
        }
    }

    #[test]
    fn composite_registry_engines_agree_with_the_naive_dft() {
        // 5-smooth composites, odd primes (rader + bluestein) and a
        // rough composite (bluestein alone): every registered engine
        // must honour its own tolerance against the naive DFT.
        for n in [48usize, 60, 77, 97, 243, 251, 1200] {
            let mut registry = EngineRegistry::standard(n).unwrap();
            let x = random_signal(n, n as u64);
            for dir in [Direction::Forward, Direction::Inverse] {
                let want = dft_naive(&x, dir).unwrap();
                let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
                for engine in registry.engines_mut() {
                    let got = engine.execute(&x, dir).unwrap();
                    let err = max_error(&got, &want) / peak;
                    assert!(err < engine.tolerance(), "{} at n={n} {dir:?}: {err}", engine.name());
                }
            }
        }
    }

    #[test]
    fn all_engines_agree_with_the_naive_dft() {
        for n in [8usize, 64, 256] {
            let mut registry = EngineRegistry::standard(n).unwrap();
            let x = random_signal(n, n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
            for engine in registry.engines_mut() {
                let got = engine.execute(&x, Direction::Forward).unwrap();
                let err = max_error(&got, &want) / peak;
                assert!(err < engine.tolerance(), "{} at n={n}: {err}", engine.name());
            }
        }
    }

    #[test]
    fn every_engine_round_trips() {
        let n = 64;
        let mut registry = EngineRegistry::standard(n).unwrap();
        let x = random_signal(n, 5);
        for engine in registry.engines_mut() {
            let spectrum = engine.execute(&x, Direction::Forward).unwrap();
            let back = engine.execute(&spectrum, Direction::Inverse).unwrap();
            let got: Vec<C64> = back.iter().map(|&v| v * (1.0 / n as f64)).collect();
            assert!(
                max_error(&got, &x) < engine.tolerance() * n as f64,
                "{} round trip",
                engine.name()
            );
        }
    }

    #[test]
    fn execute_into_is_bit_identical_to_execute_and_reuses_the_buffer() {
        for n in [8usize, 128] {
            let mut registry = EngineRegistry::standard(n).unwrap();
            let x = random_signal(n, 21 + n as u64);
            let y = random_signal(n, 22 + n as u64);
            let mut out = vec![Complex::zero(); n];
            for engine in registry.engines_mut() {
                for dir in [Direction::Forward, Direction::Inverse] {
                    // Same buffer reused across inputs and directions:
                    // stale contents must never leak into a result.
                    for signal in [&x, &y] {
                        let alloc = engine.execute(signal, dir).unwrap();
                        engine.execute_into(signal, &mut out, dir).unwrap();
                        assert_eq!(alloc, out, "{} at n={n} {dir:?}", engine.name());
                    }
                }
            }
        }
    }

    #[test]
    fn length_mismatch_is_uniformly_reported() {
        let mut registry = EngineRegistry::standard(64).unwrap();
        let x = random_signal(32, 1);
        let ok = random_signal(64, 2);
        for engine in registry.engines_mut() {
            assert!(
                matches!(
                    engine.execute(&x, Direction::Forward),
                    Err(FftError::LengthMismatch { expected: 64, got: 32 })
                ),
                "{}",
                engine.name()
            );
            // The output buffer is length-checked too.
            let mut short = vec![Complex::zero(); 32];
            assert!(
                matches!(
                    engine.execute_into(&ok, &mut short, Direction::Forward),
                    Err(FftError::LengthMismatch { expected: 64, got: 32 })
                ),
                "{} output check",
                engine.name()
            );
        }
    }

    #[test]
    fn traffic_reporting_matches_the_motivating_counts() {
        let n = 1024usize;
        let registry = EngineRegistry::standard(n).unwrap();
        // The paper's Section II motivation: plain FFT moves N log2 N
        // points each way; the epoch structures move 2N each way.
        let plain = registry.get("radix2_dit").unwrap().traffic().unwrap();
        assert_eq!(plain.loads, n * 10);
        let cached = registry.get("cached_fft").unwrap().traffic().unwrap();
        assert_eq!(cached.total(), 4 * n);
        let array = registry.get("array_fft").unwrap().traffic().unwrap();
        assert_eq!(array.total(), 4 * n);
        assert!(registry.get("dft_naive").unwrap().traffic().is_none());
    }

    #[test]
    fn registry_lookup_and_registration() {
        let mut r = EngineRegistry::new();
        assert!(r.is_empty());
        r.register(Box::new(NaiveDftEngine::new(8).unwrap()));
        assert_eq!(r.len(), 1);
        assert!(r.get("dft_naive").is_some());
        assert!(r.get("missing").is_none());
        assert_eq!(format!("{r:?}"), "EngineRegistry { engines: [\"dft_naive\"] }");
    }

    #[test]
    fn take_removes_and_returns_the_engine_owned() {
        let mut r = EngineRegistry::standard(128).unwrap();
        let before = r.len();
        let engine = r.take("radix2_dit").expect("registered");
        assert_eq!(engine.name(), "radix2_dit");
        assert_eq!(engine.len(), 128);
        assert_eq!(r.len(), before - 1);
        assert!(r.get("radix2_dit").is_none());
        assert!(r.take("radix2_dit").is_none());
    }

    #[test]
    fn real_fft_engine_meets_the_complex_contract() {
        let n = 256;
        let mut engine = RealFftEngine::new(n).unwrap();
        let x = random_signal(n, 9);
        let want = dft_naive(&x, Direction::Forward).unwrap();
        let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
        let got = engine.execute(&x, Direction::Forward).unwrap();
        assert!(max_error(&got, &want) / peak < engine.tolerance());
        // Inverse via conjugation honours the unnormalised contract.
        let back = engine.execute(&got, Direction::Inverse).unwrap();
        let rt: Vec<C64> = back.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&rt, &x) < engine.tolerance() * n as f64);
        // Below the inner array threshold the wrapper is rejected.
        assert!(RealFftEngine::new(64).is_err());
    }
}
