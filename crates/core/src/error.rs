//! Error types for the FFT planning and execution APIs.

use core::fmt;

/// Errors returned by FFT planning and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FftError {
    /// The transform size is not supported by the rejecting planner.
    InvalidSize {
        /// The rejected size.
        n: usize,
        /// Why it was rejected.
        reason: &'static str,
        /// The offending prime factor of `n`, where the rejection is a
        /// factorisation limit (e.g. the 5-smooth `mixed_radix`
        /// planner rejecting `n = 14` names `7`); `None` for structural
        /// rejections (too small, not a power of two, ...).
        factor: Option<usize>,
    },
    /// An input buffer had the wrong length.
    LengthMismatch {
        /// Expected number of points.
        expected: usize,
        /// Provided number of points.
        got: usize,
    },
    /// An epoch decomposition was invalid (e.g. factors do not multiply
    /// to N, or a factor is below the butterfly-unit minimum).
    InvalidDecomposition {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An [`FftEngine`](crate::engine::FftEngine) backend failed for a
    /// reason specific to its execution substrate (e.g. a simulator
    /// trap inside the cycle-accurate ISS backend).
    Backend {
        /// The reporting engine's name.
        engine: String,
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::InvalidSize { n, reason, factor } => {
                write!(f, "invalid FFT size {n}: {reason}")?;
                if let Some(p) = factor {
                    write!(f, " (offending prime factor {p})")?;
                }
                Ok(())
            }
            FftError::LengthMismatch { expected, got } => {
                write!(f, "input length {got} does not match transform size {expected}")
            }
            FftError::InvalidDecomposition { reason } => {
                write!(f, "invalid epoch decomposition: {reason}")
            }
            FftError::Backend { engine, reason } => {
                write!(f, "engine {engine} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for FftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FftError::InvalidSize { n: 3, reason: "not a power of two", factor: None };
        assert_eq!(e.to_string(), "invalid FFT size 3: not a power of two");
        // A factorisation-limit rejection names the offending prime, so
        // "why exactly was 14 refused?" is answerable from the message.
        let e = FftError::InvalidSize {
            n: 14,
            reason: "prime factors beyond {2, 3, 5}",
            factor: Some(7),
        };
        assert_eq!(
            e.to_string(),
            "invalid FFT size 14: prime factors beyond {2, 3, 5} (offending prime factor 7)"
        );
        let e = FftError::LengthMismatch { expected: 64, got: 32 };
        assert!(e.to_string().contains("64"));
        let e = FftError::InvalidDecomposition { reason: "factors".into() };
        assert!(e.to_string().contains("factors"));
        let e = FftError::Backend { engine: "asip_iss".into(), reason: "trap".into() };
        assert_eq!(e.to_string(), "engine asip_iss failed: trap");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<FftError>();
    }
}
