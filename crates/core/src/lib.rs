//! The array-structured FFT of Guan, Lin and Fei (DATE 2009): algorithm,
//! address-changing algebra, coefficient storage, and prior-art
//! baselines — the mathematical core of the ASIP reproduction.
//!
//! # Overview
//!
//! The paper restructures an N-point FFT into two *epochs* of
//! register-file-resident groups, each group computed stage-by-stage by
//! a fixed 8-point butterfly module whose operand addresses are derived
//! in hardware by an *address-changing* (AC) rule. This crate is the
//! bit-exact software model of that machine:
//!
//! * [`ArrayFft`] — plan + execute the full transform (over `f64` or the
//!   16-bit fixed point of [`afft_num::Q15`]);
//! * [`address`] — the AC algebra (`sigma_j`, `L_j`, epoch maps);
//! * [`rom`] — the `P/2`-entry coefficient ROM and the octant-compressed
//!   pre-rotation table;
//! * [`matrix`] — the paper's Fig. 3 correctness identity in executable
//!   form;
//! * [`reference`](mod@reference), [`cached`], [`mcfft`] — the naive DFT, radix-2 FFTs,
//!   Baas's cached FFT and the variable-epoch MCFFT, used as golden
//!   references and comparison baselines;
//! * [`radix4`], [`splitradix`], [`mixed`] — the mixed-radix kernel
//!   family: radix-4 DIT (power-of-4), split-radix (power-of-two,
//!   lowest known op count) and the general {2, 3, 4, 5} mixed-radix
//!   engine that serves composite OFDM sizes (60, 1200, 1536, ...);
//! * [`bluestein`], [`rader`] — the convolution-based engines that
//!   close the size domain: chirp-Z for **any** `n >= 2` and the
//!   prime-length generator-permutation FFT, so 5G NR DFT-s-OFDM sizes
//!   and arbitrary user requests plan instead of erroring;
//! * [`simd`] — the vectorized kernel tier: AVX2/NEON variants of the
//!   radix-4 and split-radix butterflies over split real/imag planes,
//!   behind runtime feature dispatch (`AFFT_NO_SIMD=1` to suppress);
//! * [`engine`] — the [`FftEngine`] trait and [`EngineRegistry`]: every
//!   backend above behind one polymorphic execute interface (the
//!   cycle-accurate ISS registers through `afft_asip`).
//!
//! # Quickstart
//!
//! ```
//! use afft_core::{ArrayFft, Direction};
//! use afft_num::Complex;
//!
//! let fft: ArrayFft<f64> = ArrayFft::new(1024)?;
//! let input = vec![Complex::new(1.0, 0.0); 1024];
//! let spectrum = fft.process(&input, Direction::Forward)?;
//! assert!((spectrum[0].re - 1024.0).abs() < 1e-6);
//! # Ok::<(), afft_core::FftError>(())
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly one place:
// the `simd` module's architecture back-ends, which need `std::arch`
// intrinsics and raw unaligned loads/stores. Those back-ends carry
// per-call safety contracts and are additionally held to
// `unsafe_op_in_unsafe_fn`: every unsafe operation inside an `unsafe
// fn` still needs its own scoped block and SAFETY justification.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod address;
pub mod array;
pub mod bfp;
pub mod bits;
pub mod bluestein;
pub mod cached;
pub mod engine;
pub mod error;
pub mod matrix;
pub mod mcfft;
pub mod mixed;
pub mod ofdm;
pub mod plan;
pub mod rader;
pub mod radix4;
pub mod realfft;
pub mod reference;
pub mod rom;
pub mod simd;
pub mod snr;
pub mod splitradix;
pub mod stage;
pub mod window;

pub use array::ArrayFft;
pub use cached::MemTraffic;
pub use engine::{EngineRegistry, FftEngine};
pub use error::FftError;
pub use plan::Split;
pub use reference::Direction;
pub use stage::Scaling;
