//! Matrix forms of the address-changing proof (the paper's Fig. 3).
//!
//! The paper proves correctness of the array structure via the identity
//! `P_{j+1} x B_j = L_j x A x P_j` over one stage. In our formulation:
//!
//! * `B_j` — the in-place DIF stage operator on CRF contents;
//! * `S_j` — the permutation matrix of the cumulative read wiring
//!   [`sigma`]`sigma` of the AC algebra extended to all `P` rows (the
//!   paper's `P_j`);
//! * `M_j` — the fixed module applied in row space: butterflies on rows
//!   `(u, u + P/2)` with stage-`j` coefficients (the paper's `A`, whose
//!   *structure* is stage-independent; the coefficient values come from
//!   the ROM);
//! * `L_j` — the single bit-swap relating consecutive wirings:
//!   `S_{j+1} = L_{j+1} ∘ S_j` as index maps.
//!
//! The provable identities (all verified by tests and by the
//! `matrix_proof` experiment binary):
//!
//! 1. `B_j = S_j^{-1} M_j S_j`  — one stage through the module+wiring
//!    equals the in-place DIF stage;
//! 2. `S_{j+1} B_j = L_{j+1} M_j S_j` — the paper's Fig. 3 form.

use crate::address::{sigma, stage_butterflies};
use crate::reference::Direction;
use afft_num::{Complex, C64};

/// A dense complex matrix, row-major. Small (`P x P`) and only used by
/// the proof machinery and tests, so no effort is spent on performance.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    n: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// The `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        CMatrix { n, data: vec![Complex::zero(); n * n] }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = Complex::new(1.0, 0.0);
        }
        m
    }

    /// Builds a permutation matrix `M` with `M * x` gathering
    /// `y[i] = x[perm[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permutation(perm: &[usize]) -> Self {
        let n = perm.len();
        let mut m = Self::zeros(n);
        let mut seen = vec![false; n];
        for (i, &p) in perm.iter().enumerate() {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
            m[(i, p)] = Complex::new(1.0, 0.0);
        }
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.n, rhs.n, "matmul: dimension mismatch");
        let n = self.n;
        let mut out = CMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a.abs() == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] = out[(i, j)] + a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[C64]) -> Vec<C64> {
        assert_eq!(self.n, x.len(), "matvec: dimension mismatch");
        (0..self.n)
            .map(|i| {
                let mut acc = Complex::zero();
                for j in 0..self.n {
                    acc = acc + self[(i, j)] * x[j];
                }
                acc
            })
            .collect()
    }

    /// Maximum absolute entry-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn max_diff(&self, rhs: &CMatrix) -> f64 {
        assert_eq!(self.n, rhs.n, "max_diff: dimension mismatch");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a.dist(*b)).fold(0.0, f64::max)
    }
}

impl core::ops::Index<(usize, usize)> for CMatrix {
    type Output = C64;
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.n + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.n + j]
    }
}

/// The in-place DIF stage operator `B_j` on CRF address space
/// (`P = 2^p` points, stage `j` in `1..=p`).
pub fn stage_operator(p: u32, j: u32, dir: Direction) -> CMatrix {
    let n = 1usize << p;
    let mut m = CMatrix::zeros(n);
    for bf in stage_butterflies(p, j) {
        let w = dir.twiddle(n, bf.rom_addr);
        let one = Complex::new(1.0, 0.0);
        m[(bf.addr_a, bf.addr_a)] = one;
        m[(bf.addr_a, bf.addr_b)] = one;
        m[(bf.addr_b, bf.addr_a)] = w;
        m[(bf.addr_b, bf.addr_b)] = -w;
    }
    m
}

/// The fixed module `M_j` in row space: butterflies on rows
/// `(u, u + P/2)` with the stage-`j` coefficient sequence the ROM
/// addressing produces, enumerated through the wiring `sigma_j`.
pub fn module_operator(p: u32, j: u32, dir: Direction) -> CMatrix {
    let n = 1usize << p;
    let s = sigma(p, j);
    let mut m = CMatrix::zeros(n);
    let half = n / 2;
    for u in 0..half {
        // Row u pairs with row u + P/2; the coefficient is that of the
        // butterfly landing on CRF addresses (sigma(u), sigma(u+P/2)).
        let a = s.apply(u);
        let b = s.apply(u + half);
        let (lo, _hi) = if a < b { (a, b) } else { (b, a) };
        let dist = 1usize << (p - j);
        let e = (lo % dist) << (j - 1);
        let w = dir.twiddle(n, e);
        let one = Complex::new(1.0, 0.0);
        let (top, bot) = if a < b { (u, u + half) } else { (u + half, u) };
        // top row receives the sum; bottom row the twiddled difference.
        m[(top, top)] = one;
        m[(top, bot)] = one;
        m[(bot, top)] = w;
        m[(bot, bot)] = -w;
    }
    m
}

/// The permutation matrix `S_j` (the paper's `P_j`): row `r` of the
/// module reads CRF address `sigma_j(r)`.
pub fn wiring_matrix(p: u32, j: u32) -> CMatrix {
    CMatrix::permutation(&sigma(p, j).to_index_perm())
}

/// The local address-change matrix `L_j` (`j >= 2`) of the paper's
/// Fig. 3: the permutation relating consecutive module-order views,
/// `L_j = S_j * S_{j-1}^{-1}`.
///
/// As an *address function* the step between wirings is the adjacent
/// bit swap [`local_swap`](crate::address::local_swap) (`sigma_j = local_swap_j ∘ sigma_{j-1}`);
/// in module-row space that same step appears conjugated by the current
/// wiring, which is what this matrix is. Tests verify it is still a
/// single transposition of two address bits.
pub fn local_matrix(p: u32, j: u32) -> CMatrix {
    assert!((2..=p).contains(&j), "local_matrix: stage {j} out of 2..={p}");
    let s_j = wiring_matrix(p, j);
    let s_prev_inv = CMatrix::permutation(&sigma(p, j - 1).inverse().to_index_perm());
    s_j.matmul(&s_prev_inv)
}

/// Checks identity (1): `B_j == S_j^{-1} M_j S_j`. Returns the maximum
/// entry-wise deviation (0 up to rounding when the identity holds).
pub fn check_conjugation_identity(p: u32, j: u32) -> f64 {
    let b = stage_operator(p, j, Direction::Forward);
    let m = module_operator(p, j, Direction::Forward);
    let s = wiring_matrix(p, j);
    let s_inv = CMatrix::permutation(&sigma(p, j).inverse().to_index_perm());
    let lhs = b;
    let rhs = s_inv.matmul(&m).matmul(&s);
    lhs.max_diff(&rhs)
}

/// Checks the paper's Fig. 3 identity (2): `S_{j+1} B_j == L_{j+1} M_j
/// S_j` for `j in 1..p`. Returns the maximum entry-wise deviation.
pub fn check_paper_identity(p: u32, j: u32) -> f64 {
    assert!(j < p, "check_paper_identity: needs j+1 <= p");
    let b = stage_operator(p, j, Direction::Forward);
    let m = module_operator(p, j, Direction::Forward);
    let s_j = wiring_matrix(p, j);
    let s_j1 = wiring_matrix(p, j + 1);
    let l_j1 = local_matrix(p, j + 1);
    let lhs = s_j1.matmul(&b);
    let rhs = l_j1.matmul(&m).matmul(&s_j);
    lhs.max_diff(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn conjugation_identity_all_stages() {
        for p in 3..=6u32 {
            for j in 1..=p {
                let d = check_conjugation_identity(p, j);
                assert!(d < 1e-12, "p={p} j={j}: deviation {d}");
            }
        }
    }

    #[test]
    fn paper_identity_all_stages() {
        for p in 3..=6u32 {
            for j in 1..p {
                let d = check_paper_identity(p, j);
                assert!(d < 1e-12, "p={p} j={j}: deviation {d}");
            }
        }
    }

    #[test]
    fn local_matrix_is_a_single_bit_transposition() {
        for p in 3..=6u32 {
            for j in 2..=p {
                let l = local_matrix(p, j);
                let n = 1usize << p;
                // Recover the index map.
                let mut map = vec![0usize; n];
                for i in 0..n {
                    let hits: Vec<usize> = (0..n).filter(|&k| l[(i, k)].abs() > 0.5).collect();
                    assert_eq!(hits.len(), 1, "not a permutation matrix");
                    map[i] = hits[0];
                }
                // The map must be linear over bit positions: the image of
                // each power of two is a power of two, and exactly two
                // positions are exchanged.
                let mut moved = 0;
                for b in 0..p {
                    let img = map[1usize << b];
                    assert!(img.is_power_of_two(), "p={p} j={j}: image {img} not a bit");
                    if img != (1usize << b) {
                        moved += 1;
                    }
                }
                assert_eq!(moved, 2, "p={p} j={j}: L must swap exactly two bits");
                // And it is an involution.
                for i in 0..n {
                    assert_eq!(map[map[i]], i);
                }
            }
        }
    }

    #[test]
    fn stage_operators_compose_to_dft() {
        // B_p ... B_1 == bit-reversal * DFT matrix.
        let p = 4u32;
        let n = 1usize << p;
        let mut acc = CMatrix::identity(n);
        for j in 1..=p {
            acc = stage_operator(p, j, Direction::Forward).matmul(&acc);
        }
        // Build R * F where F is the DFT matrix and R the bit reversal.
        let mut want = CMatrix::zeros(n);
        for a in 0..n {
            let s = crate::bits::bit_reverse(a, p);
            for m in 0..n {
                want[(a, m)] = afft_num::twiddle(n, (s * m) % n);
            }
        }
        assert!(acc.max_diff(&want) < 1e-10);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 8;
        let mut a = CMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
            }
        }
        let x: Vec<C64> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let got = a.matvec(&x);
        // Compare against the product with a one-column embedding.
        for (i, g) in got.iter().enumerate() {
            let mut acc = Complex::zero();
            for j in 0..n {
                acc = acc + a[(i, j)] * x[j];
            }
            assert!(g.dist(acc) < 1e-12);
        }
    }

    #[test]
    fn permutation_matrix_gathers() {
        let p = CMatrix::permutation(&[2, 0, 1]);
        let x = vec![Complex::new(10.0, 0.0), Complex::new(20.0, 0.0), Complex::new(30.0, 0.0)];
        let y = p.matvec(&x);
        assert_eq!(y[0].re, 30.0);
        assert_eq!(y[1].re, 10.0);
        assert_eq!(y[2].re, 20.0);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permutation_rejects_duplicates() {
        let _ = CMatrix::permutation(&[0, 0, 1]);
    }
}
