//! Multi-epoch (variable-length-epoch) cached FFT — the MCFFT extension
//! of Atak et al. (ICASSP 2006), reference \[13\] of the paper.
//!
//! Where Baas fixes two epochs of equal length, the MCFFT generalises to
//! `E` epochs of arbitrary power-of-two factor sizes
//! `N = N_1 * N_2 * ... * N_E`, trading cache size against the number of
//! cache load/dump passes. We implement the general recursive four-step
//! decomposition; each recursion level is one epoch, so main-memory
//! traffic is `E * N` loads and `E * N` stores.

use crate::cached::MemTraffic;
use crate::error::FftError;
use crate::reference::{fft_radix2_dit_f64, Direction};
use afft_num::{Complex, C64};

/// A validated multi-epoch decomposition of a transform size.
///
/// # Examples
///
/// ```
/// use afft_core::mcfft::Epochs;
///
/// let e = Epochs::new(512, &[8, 8, 8])?;
/// assert_eq!(e.epoch_count(), 3);
/// assert_eq!(e.traffic().loads, 3 * 512);
/// # Ok::<(), afft_core::FftError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Epochs {
    n: usize,
    factors: Vec<usize>,
}

impl Epochs {
    /// Validates a factor list for size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidDecomposition`] unless every factor is
    /// a power of two `>= 2` and the product equals `n`.
    pub fn new(n: usize, factors: &[usize]) -> Result<Self, FftError> {
        if factors.is_empty() {
            return Err(FftError::InvalidDecomposition { reason: "no factors".into() });
        }
        let mut prod = 1usize;
        for &f in factors {
            if !f.is_power_of_two() || f < 2 {
                return Err(FftError::InvalidDecomposition {
                    reason: format!("factor {f} is not a power of two >= 2"),
                });
            }
            prod = prod.checked_mul(f).ok_or_else(|| FftError::InvalidDecomposition {
                reason: "factor product overflows".into(),
            })?;
        }
        if prod != n {
            return Err(FftError::InvalidDecomposition {
                reason: format!("factors multiply to {prod}, not {n}"),
            });
        }
        Ok(Epochs { n, factors: factors.to_vec() })
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The factor list.
    pub fn factors(&self) -> &[usize] {
        &self.factors
    }

    /// Number of epochs `E`.
    pub fn epoch_count(&self) -> usize {
        self.factors.len()
    }

    /// Largest factor: the cache (CRF) capacity this decomposition needs.
    pub fn cache_points(&self) -> usize {
        *self.factors.iter().max().expect("validated non-empty")
    }

    /// Main-memory traffic of the multi-epoch schedule: every epoch
    /// loads and stores all `N` points once.
    pub fn traffic(&self) -> MemTraffic {
        MemTraffic { loads: self.epoch_count() * self.n, stores: self.epoch_count() * self.n }
    }
}

/// Reusable work buffers for [`mcfft_into`]: one arena of per-recursion
/// level buffers (staging array, epoch group, sub-transform input and
/// output), lazily sized on first use and stable across transforms, so
/// a warm scratch set makes every subsequent transform allocation-free.
#[derive(Debug, Clone, Default)]
pub struct McfftScratch {
    levels: Vec<Vec<C64>>,
}

impl McfftScratch {
    /// An empty scratch arena; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Four buffers per splitting recursion level.
    fn level_bufs(&mut self, depth: usize) -> &mut [Vec<C64>] {
        let need = 4 * depth;
        if self.levels.len() < need {
            self.levels.resize_with(need, Vec::new);
        }
        &mut self.levels[..need]
    }
}

/// Runs the multi-epoch cached FFT, returning the spectrum in natural
/// bin order.
///
/// This is the allocating path; steady-state callers should reuse
/// buffers through [`mcfft_into`].
///
/// # Errors
///
/// Returns [`FftError::LengthMismatch`] if the input length differs
/// from the decomposition size.
pub fn mcfft(input: &[C64], epochs: &Epochs, dir: Direction) -> Result<Vec<C64>, FftError> {
    let mut out = vec![Complex::zero(); epochs.n];
    let mut scratch = McfftScratch::new();
    mcfft_into(input, &mut out, epochs, dir, &mut scratch)?;
    Ok(out)
}

/// The allocation-free primitive behind [`mcfft`]: writes the
/// natural-order spectrum into `output`, reusing the caller's
/// [`McfftScratch`] arena across the recursive epoch decomposition.
///
/// # Errors
///
/// Returns [`FftError::LengthMismatch`] if `input` or `output` differ
/// from the decomposition size.
pub fn mcfft_into(
    input: &[C64],
    output: &mut [C64],
    epochs: &Epochs,
    dir: Direction,
    scratch: &mut McfftScratch,
) -> Result<(), FftError> {
    if input.len() != epochs.n {
        return Err(FftError::LengthMismatch { expected: epochs.n, got: input.len() });
    }
    if output.len() != epochs.n {
        return Err(FftError::LengthMismatch { expected: epochs.n, got: output.len() });
    }
    let depth = epochs.factors.len().saturating_sub(1);
    four_step_into(input, output, &epochs.factors, dir, scratch.level_bufs(depth))
}

fn four_step_into(
    x: &[C64],
    out: &mut [C64],
    factors: &[usize],
    dir: Direction,
    scratch: &mut [Vec<C64>],
) -> Result<(), FftError> {
    let n = x.len();
    if factors.len() == 1 {
        out.copy_from_slice(x);
        return fft_radix2_dit_f64(out, dir);
    }
    let p = factors[0];
    let r = n / p;
    let (mine, deeper) = scratch.split_at_mut(4);
    let [mid, group, sub_in, sub_out] = mine else { unreachable!("split_at_mut(4)") };
    mid.resize(n, Complex::zero());
    group.resize(p, Complex::zero());
    sub_in.resize(r, Complex::zero());
    sub_out.resize(r, Complex::zero());

    // Epoch: P-point FFT over each residue class, then pre-rotation.
    for l in 0..r {
        for (m, slot) in group.iter_mut().take(p).enumerate() {
            *slot = x[l + r * m];
        }
        fft_radix2_dit_f64(&mut group[..p], dir)?;
        for (s, &z) in group.iter().take(p).enumerate() {
            let w = dir.twiddle(n, (s * l) % n);
            mid[s + p * l] = z * w;
        }
    }
    // Remaining epochs: recursive R-point transforms.
    for s in 0..p {
        for (l, slot) in sub_in.iter_mut().take(r).enumerate() {
            *slot = mid[s + p * l];
        }
        four_step_into(&sub_in[..r], &mut sub_out[..r], &factors[1..], dir, deeper)?;
        for (t, &v) in sub_out.iter().take(r).enumerate() {
            out[s + p * t] = v;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn three_epoch_512_matches_reference() {
        let n = 512;
        let e = Epochs::new(n, &[8, 8, 8]).unwrap();
        let x = random_signal(n, 1);
        let want = dft_naive(&x, Direction::Forward).unwrap();
        let got = mcfft(&x, &e, Direction::Forward).unwrap();
        assert!(max_error(&got, &want) < 1e-8);
    }

    #[test]
    fn unequal_epochs_match_reference() {
        let n = 1024;
        for factors in [vec![64, 16], vec![4, 16, 16], vec![2, 2, 256], vec![1024]] {
            let e = Epochs::new(n, &factors).unwrap();
            let x = random_signal(n, 7);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let got = mcfft(&x, &e, Direction::Forward).unwrap();
            assert!(max_error(&got, &want) < 1e-7, "factors {factors:?}");
        }
    }

    #[test]
    fn traffic_scales_with_epoch_count() {
        let two = Epochs::new(1024, &[32, 32]).unwrap();
        let three = Epochs::new(1024, &[16, 8, 8]).unwrap();
        assert_eq!(two.traffic().total(), 4096);
        assert_eq!(three.traffic().total(), 6144);
        // But the cache requirement shrinks: the MCFFT trade-off.
        assert_eq!(two.cache_points(), 32);
        assert_eq!(three.cache_points(), 16);
    }

    #[test]
    fn rejects_invalid_decompositions() {
        assert!(Epochs::new(512, &[8, 8]).is_err());
        assert!(Epochs::new(512, &[3, 171]).is_err());
        assert!(Epochs::new(512, &[]).is_err());
    }

    #[test]
    fn inverse_round_trip() {
        let n = 256;
        let e = Epochs::new(n, &[16, 4, 4]).unwrap();
        let x = random_signal(n, 9);
        let y = mcfft(&x, &e, Direction::Forward).unwrap();
        let z = mcfft(&y, &e, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = z.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-9);
    }

    #[test]
    fn length_mismatch_is_reported() {
        let e = Epochs::new(64, &[8, 8]).unwrap();
        assert!(matches!(
            mcfft(&[Complex::zero(); 32], &e, Direction::Forward),
            Err(FftError::LengthMismatch { .. })
        ));
    }
}
