//! General mixed-radix Cooley-Tukey FFT over radix {2, 3, 4, 5}
//! stages: the engine that serves the composite transform sizes real
//! OFDM traffic demands (LTE-1536, LTE-1200, the 60- and 120-point
//! control formats) which no power-of-two kernel can touch.
//!
//! [`factorize`] decomposes `N` into a stage list drawn from
//! `{4, 2, 3, 5}` (largest power-of-two radix first, then the odd
//! primes); any `N` whose prime factors exceed 5 is reported
//! unsupported rather than silently mishandled. Each recursion level
//! decimates by its stage radix `r`, transforms the `r` sub-sequences,
//! applies one plan-time twiddle table (`W_{n_level}^{i·s}`), and
//! combines with a hardcoded `r`-point butterfly (the radix-3 and
//! radix-5 butterflies use the classic constant-rotation forms; radix-4
//! uses only `±i` rotations). Execution reads the input through an
//! `(offset, stride)` view and works in a plan-owned `2N` scratch
//! arena: zero heap allocation per transform.

use crate::error::FftError;
use crate::reference::Direction;
use afft_num::{twiddle, Complex, C64};

/// cos(2π/3) imaginary companion: sin(2π/3) = √3/2.
const SIN_2PI_3: f64 = 0.866_025_403_784_438_6;
/// cos(2π/5) and cos(4π/5).
const COS_2PI_5: f64 = 0.309_016_994_374_947_45;
const COS_4PI_5: f64 = -0.809_016_994_374_947_4;
/// sin(2π/5) and sin(4π/5).
const SIN_2PI_5: f64 = 0.951_056_516_295_153_5;
const SIN_4PI_5: f64 = 0.587_785_252_292_473_1;

/// Factorises `n` into a mixed-radix stage list over `{4, 2, 3, 5}`
/// (4s first, then at most one 2, then 3s, then 5s), or `None` when a
/// prime factor beyond 5 makes `n` unsupported. `n < 2` is `None`.
pub fn factorize(n: usize) -> Option<Vec<usize>> {
    if n < 2 {
        return None;
    }
    let mut rest = n;
    let mut radices = Vec::new();
    while rest.is_multiple_of(4) {
        radices.push(4);
        rest /= 4;
    }
    if rest.is_multiple_of(2) {
        radices.push(2);
        rest /= 2;
    }
    while rest.is_multiple_of(3) {
        radices.push(3);
        rest /= 3;
    }
    while rest.is_multiple_of(5) {
        radices.push(5);
        rest /= 5;
    }
    if rest != 1 {
        return None;
    }
    Some(radices)
}

/// The smallest prime factor of `n` beyond 5 — the factor that makes
/// `n` unsupported here, named in the [`FftError::InvalidSize`] the
/// planner returns so "why exactly was 14 refused?" is answerable from
/// the message alone. `None` when `n` is 5-smooth or `n < 2`.
pub fn smallest_rough_factor(n: usize) -> Option<usize> {
    let mut rest = n;
    for p in [2usize, 3, 5] {
        while rest > 1 && rest.is_multiple_of(p) {
            rest /= p;
        }
    }
    if rest <= 1 {
        return None;
    }
    let mut candidate = 7usize;
    while candidate * candidate <= rest {
        if rest.is_multiple_of(candidate) {
            return Some(candidate);
        }
        candidate += 2;
    }
    Some(rest)
}

/// One recursion level of the plan: the sub-transform size at this
/// depth, its stage radix, and the inter-stage twiddle table.
#[derive(Debug, Clone)]
struct Level {
    /// Transform size at this level (`radix * m`).
    size: usize,
    /// The stage radix `r ∈ {2, 3, 4, 5}`.
    radix: usize,
    /// `tw[(i-1)*m + s] = W_size^{i*s}` for `i in 1..radix`,
    /// `s in 0..m` — forward; the inverse conjugates on the fly.
    tw: Vec<C64>,
}

/// Plan-time state of the mixed-radix kernel: the per-level stage
/// structure with twiddle tables, and the recursion scratch arena.
#[derive(Debug, Clone)]
pub struct MixedRadixPlan {
    n: usize,
    levels: Vec<Level>,
    scratch: Vec<C64>,
}

impl MixedRadixPlan {
    /// Plans a mixed-radix FFT of size `n` (`n >= 2` with prime factors
    /// in {2, 3, 5}).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        let radices = factorize(n).ok_or(FftError::InvalidSize {
            n,
            reason: "prime factors beyond {2, 3, 5}",
            factor: smallest_rough_factor(n),
        })?;
        let mut levels = Vec::with_capacity(radices.len());
        let mut size = n;
        for &radix in &radices {
            let m = size / radix;
            let mut tw = Vec::with_capacity((radix - 1) * m);
            for i in 1..radix {
                for s in 0..m {
                    tw.push(twiddle(size, i * s % size));
                }
            }
            levels.push(Level { size, radix, tw });
            size = m;
        }
        Ok(MixedRadixPlan { n, levels, scratch: vec![Complex::zero(); 2 * n] })
    }

    /// The planned transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true for a plan (`n >= 2`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The stage radices, outermost first (e.g. `[4, 4, 3]` for 48).
    pub fn radices(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.radix).collect()
    }
}

/// Executes the planned mixed-radix FFT into `output` (natural bin
/// order, unnormalised-DFT contract, no heap allocation).
///
/// Takes `&mut` the plan for its scratch arena only; the twiddle
/// tables are never written.
///
/// # Errors
///
/// Returns [`FftError::LengthMismatch`] if either buffer is not
/// `plan.len()` points.
pub fn mixed_radix_into(
    plan: &mut MixedRadixPlan,
    input: &[C64],
    output: &mut [C64],
    dir: Direction,
) -> Result<(), FftError> {
    let n = plan.n;
    if input.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: input.len() });
    }
    if output.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: output.len() });
    }
    let mut scratch = core::mem::take(&mut plan.scratch);
    rec(&plan.levels, input, 0, 1, output, &mut scratch, dir == Direction::Forward);
    plan.scratch = scratch;
    Ok(())
}

/// One recursion level: the DFT of `x[offset + stride*t]` for
/// `t in 0..levels[0].size`, written to `out`.
fn rec(
    levels: &[Level],
    input: &[C64],
    offset: usize,
    stride: usize,
    out: &mut [C64],
    scratch: &mut [C64],
    forward: bool,
) {
    let level = &levels[0];
    let r = level.radix;
    let m = level.size / r;
    if m == 1 {
        // Leaf: one bare r-point DFT straight off the strided input.
        let mut y = [Complex::zero(); 5];
        for (i, slot) in y[..r].iter_mut().enumerate() {
            *slot = input[offset + stride * i];
        }
        butterfly(&y, out, m, 0, r, forward);
        return;
    }
    let (cur, rest) = scratch.split_at_mut(level.size);
    for i in 0..r {
        rec(
            &levels[1..],
            input,
            offset + stride * i,
            stride * r,
            &mut cur[i * m..(i + 1) * m],
            rest,
            forward,
        );
    }
    // Combine: for each output column s, twiddle the r sub-spectra and
    // run the r-point butterfly across them, scattering to s + q*m.
    let mut y = [Complex::zero(); 5];
    for s in 0..m {
        y[0] = cur[s];
        for i in 1..r {
            let w = level.tw[(i - 1) * m + s];
            let w = if forward { w } else { w.conj() };
            y[i] = cur[i * m + s] * w;
        }
        butterfly(&y, out, m, s, r, forward);
    }
}

/// The hardcoded `r`-point DFT across `y[..r]`, scattered to
/// `out[s + q*m]` for `q in 0..r`.
#[inline]
fn butterfly(y: &[C64; 5], out: &mut [C64], m: usize, s: usize, r: usize, forward: bool) {
    match r {
        2 => {
            out[s] = y[0] + y[1];
            out[s + m] = y[0] - y[1];
        }
        3 => {
            // X1/X2 = (y0 - t1/2) ∓ i·(√3/2)(y1 - y2).
            let t1 = y[1] + y[2];
            let t2 = y[0] - t1 * 0.5;
            let t3 = (y[1] - y[2]) * SIN_2PI_3;
            let rot = if forward { t3.mul_neg_i() } else { t3.mul_i() };
            out[s] = y[0] + t1;
            out[s + m] = t2 + rot;
            out[s + 2 * m] = t2 - rot;
        }
        4 => {
            let t0 = y[0] + y[2];
            let t1 = y[0] - y[2];
            let t2 = y[1] + y[3];
            let t3 = y[1] - y[3];
            let t3r = if forward { t3.mul_neg_i() } else { t3.mul_i() };
            out[s] = t0 + t2;
            out[s + m] = t1 + t3r;
            out[s + 2 * m] = t0 - t2;
            out[s + 3 * m] = t1 - t3r;
        }
        5 => {
            // Classic constant-rotation radix-5 (cos/sin of 2π/5, 4π/5).
            let t1 = y[1] + y[4];
            let t2 = y[2] + y[3];
            let t3 = y[1] - y[4];
            let t4 = y[2] - y[3];
            let ma = y[0] + t1 * COS_2PI_5 + t2 * COS_4PI_5;
            let mb = y[0] + t1 * COS_4PI_5 + t2 * COS_2PI_5;
            let sa = t3 * SIN_2PI_5 + t4 * SIN_4PI_5;
            let sb = t3 * SIN_4PI_5 - t4 * SIN_2PI_5;
            let (ra, rb) =
                if forward { (sa.mul_neg_i(), sb.mul_neg_i()) } else { (sa.mul_i(), sb.mul_i()) };
            out[s] = y[0] + t1 + t2;
            out[s + m] = ma + ra;
            out[s + 2 * m] = mb + rb;
            out[s + 3 * m] = mb - rb;
            out[s + 4 * m] = ma - ra;
        }
        _ => unreachable!("radix {r} outside {{2, 3, 4, 5}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn factorization_covers_five_smooth_sizes() {
        assert_eq!(factorize(60), Some(vec![4, 3, 5]));
        assert_eq!(factorize(1536), Some(vec![4, 4, 4, 4, 2, 3]));
        assert_eq!(factorize(1200), Some(vec![4, 4, 3, 5, 5]));
        assert_eq!(factorize(243), Some(vec![3, 3, 3, 3, 3]));
        assert_eq!(factorize(2), Some(vec![2]));
        assert_eq!(factorize(5), Some(vec![5]));
        for n in [0usize, 1, 7, 14, 77, 1234] {
            assert_eq!(factorize(n), None, "{n}");
        }
        // Every stage list multiplies back to n.
        for n in 2..2000usize {
            if let Some(radices) = factorize(n) {
                assert_eq!(radices.iter().product::<usize>(), n);
                assert!(radices.iter().all(|r| [2, 3, 4, 5].contains(r)));
            }
        }
    }

    #[test]
    fn matches_naive_on_composite_sizes_both_directions() {
        for n in [2usize, 3, 4, 5, 6, 10, 12, 15, 20, 30, 60, 120, 243, 600] {
            let mut plan = MixedRadixPlan::new(n).unwrap();
            let x = random_signal(n, 31 + n as u64);
            let mut got = vec![Complex::zero(); n];
            for dir in [Direction::Forward, Direction::Inverse] {
                let want = dft_naive(&x, dir).unwrap();
                mixed_radix_into(&mut plan, &x, &mut got, dir).unwrap();
                let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
                assert!(max_error(&got, &want) / peak < 1e-11, "n={n} {dir:?}");
            }
        }
    }

    #[test]
    fn matches_naive_on_power_of_two_sizes() {
        for n in [8usize, 64, 256] {
            let mut plan = MixedRadixPlan::new(n).unwrap();
            let x = random_signal(n, 7 + n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let mut got = vec![Complex::zero(); n];
            mixed_radix_into(&mut plan, &x, &mut got, Direction::Forward).unwrap();
            let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
            assert!(max_error(&got, &want) / peak < 1e-12, "n={n}");
        }
    }

    #[test]
    fn acceptance_sizes_match_naive() {
        // The PR's acceptance list verbatim: every OFDM-relevant
        // composite size against the golden reference (forward; both
        // directions are covered for the smaller sizes above and by
        // the round-trip test below).
        for n in [60usize, 120, 600, 1200, 1536] {
            let mut plan = MixedRadixPlan::new(n).unwrap();
            let x = random_signal(n, 97 + n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let mut got = vec![Complex::zero(); n];
            mixed_radix_into(&mut plan, &x, &mut got, Direction::Forward).unwrap();
            let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
            assert!(max_error(&got, &want) / peak < 1e-11, "n={n}");
        }
    }

    #[test]
    fn round_trip_recovers_input_at_lte_sizes() {
        for n in [60usize, 1200, 1536] {
            let mut plan = MixedRadixPlan::new(n).unwrap();
            let x = random_signal(n, n as u64);
            let mut spec = vec![Complex::zero(); n];
            let mut back = vec![Complex::zero(); n];
            mixed_radix_into(&mut plan, &x, &mut spec, Direction::Forward).unwrap();
            mixed_radix_into(&mut plan, &spec, &mut back, Direction::Inverse).unwrap();
            let scaled: Vec<C64> = back.iter().map(|&v| v * (1.0 / n as f64)).collect();
            assert!(max_error(&scaled, &x) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn rejects_unsupported_sizes() {
        for n in [0usize, 1, 7, 14, 49, 77] {
            assert!(matches!(MixedRadixPlan::new(n), Err(FftError::InvalidSize { .. })), "{n}");
        }
    }

    /// Regression: the rejection must name the offending prime factor,
    /// not just the size — `n = 14` is refused *because of the 7*.
    #[test]
    fn rejection_names_the_offending_prime_factor() {
        for (n, factor) in
            [(14usize, 7usize), (49, 7), (77, 7), (1022, 7), (1009, 1009), (2026, 1013)]
        {
            let err = MixedRadixPlan::new(n).unwrap_err();
            assert!(
                matches!(err, FftError::InvalidSize { factor: Some(f), .. } if f == factor),
                "n={n}: {err:?}"
            );
            assert!(
                err.to_string().contains(&format!("offending prime factor {factor}")),
                "n={n}: {err}"
            );
        }
        // Structural rejections carry no factor.
        for n in [0usize, 1] {
            let err = MixedRadixPlan::new(n).unwrap_err();
            assert!(matches!(err, FftError::InvalidSize { factor: None, .. }), "n={n}: {err:?}");
        }
    }

    #[test]
    fn smallest_rough_factor_finds_the_first_prime_beyond_five() {
        assert_eq!(smallest_rough_factor(14), Some(7));
        assert_eq!(smallest_rough_factor(1344), Some(7)); // 2^6 * 3 * 7
        assert_eq!(smallest_rough_factor(121), Some(11));
        assert_eq!(smallest_rough_factor(1200), None);
        assert_eq!(smallest_rough_factor(1), None);
        assert_eq!(smallest_rough_factor(97), Some(97));
    }

    #[test]
    fn length_mismatch_is_reported() {
        let mut plan = MixedRadixPlan::new(60).unwrap();
        let x = random_signal(60, 1);
        let mut short = vec![Complex::zero(); 30];
        assert!(matches!(
            mixed_radix_into(&mut plan, &x, &mut short, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 60, got: 30 })
        ));
    }
}
