//! OFDM symbol processing: the system context the paper's introduction
//! motivates (MB-UWB 802.15.3a, WiMAX 802.16).
//!
//! The FFT is the kernel of an OFDM modem; this module supplies the
//! surrounding machinery — QPSK mapping, IFFT modulation with cyclic
//! prefix, CP removal + FFT demodulation, single-tap equalisation —
//! over the array FFT, so receiver-level examples and tests exercise
//! the transform in its real role.

use crate::array::ArrayFft;
use crate::engine::FftEngine;
use crate::error::FftError;
use crate::reference::Direction;
use afft_num::{Complex, C64};

/// QPSK constellation mapping: 2 bits per subcarrier, Gray-coded,
/// unit energy.
pub fn qpsk_map(bits: &[(bool, bool)]) -> Vec<C64> {
    bits.iter()
        .map(|&(b0, b1)| {
            let re = if b0 { 1.0 } else { -1.0 };
            let im = if b1 { 1.0 } else { -1.0 };
            Complex::new(re, im) * std::f64::consts::FRAC_1_SQRT_2
        })
        .collect()
}

/// Hard-decision QPSK demapping.
pub fn qpsk_demap(symbols: &[C64]) -> Vec<(bool, bool)> {
    symbols.iter().map(|s| (s.re >= 0.0, s.im >= 0.0)).collect()
}

/// An OFDM modulator/demodulator over any `N`-subcarrier
/// [`FftEngine`] with a cyclic prefix of `cp` samples.
///
/// [`Ofdm::new`] plans over the array-FFT golden model;
/// [`Ofdm::with_engine`] accepts whichever backend a planner selected
/// (see the `afft_planner` crate), so the modem runs on the winning
/// engine without per-symbol dispatch.
///
/// The modem owns a persistent time-domain work buffer (plus the
/// engine's own scratch), so the `_into` variants
/// ([`Ofdm::modulate_into`] / [`Ofdm::demodulate_into`]) process a
/// steady symbol stream with **zero heap allocation per symbol**.
///
/// # Examples
///
/// ```
/// use afft_core::ofdm::{Ofdm, qpsk_map, qpsk_demap};
///
/// let mut ofdm = Ofdm::new(128, 32)?;
/// let bits: Vec<(bool, bool)> = (0..128).map(|i| (i % 2 == 0, i % 3 == 0)).collect();
/// let tx = ofdm.modulate(&qpsk_map(&bits))?;
/// assert_eq!(tx.len(), 160); // N + CP
/// let rx = ofdm.demodulate(&tx)?;
/// assert_eq!(qpsk_demap(&rx), bits);
/// # Ok::<(), afft_core::FftError>(())
/// ```
pub struct Ofdm {
    engine: Box<dyn FftEngine>,
    cp: usize,
    // Persistent IFFT output staging for the modulator: reused across
    // symbols so the zero-allocation path never touches the heap.
    work: Vec<C64>,
}

impl core::fmt::Debug for Ofdm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Ofdm")
            .field("engine", &self.engine.name())
            .field("n", &self.engine.len())
            .field("cp", &self.cp)
            .finish()
    }
}

impl Ofdm {
    /// Plans an OFDM engine with `n` subcarriers and `cp` cyclic-prefix
    /// samples over the array-FFT golden model.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] for unsupported `n`, or an
    /// [`FftError::InvalidDecomposition`] if `cp >= n`.
    pub fn new(n: usize, cp: usize) -> Result<Self, FftError> {
        Self::with_engine(Box::new(ArrayFft::<f64>::new(n)?), cp)
    }

    /// Plans over an already-selected backend — typically the winner a
    /// planner took out of the registry.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidDecomposition`] if
    /// `cp >= engine.len()`.
    pub fn with_engine(engine: Box<dyn FftEngine>, cp: usize) -> Result<Self, FftError> {
        let n = engine.len();
        if cp >= n {
            return Err(FftError::InvalidDecomposition {
                reason: format!("cyclic prefix {cp} must be shorter than the symbol {n}"),
            });
        }
        let work = vec![Complex::zero(); n];
        Ok(Ofdm { engine, cp, work })
    }

    /// The FFT backend the modem runs on.
    pub fn engine(&self) -> &dyn FftEngine {
        self.engine.as_ref()
    }

    /// Number of subcarriers.
    pub fn subcarriers(&self) -> usize {
        self.engine.len()
    }

    /// Cyclic-prefix length in samples.
    pub fn cyclic_prefix(&self) -> usize {
        self.cp
    }

    /// Samples per transmitted symbol (`N + CP`).
    pub fn symbol_len(&self) -> usize {
        self.engine.len() + self.cp
    }

    /// Modulates one symbol: IFFT of the subcarrier values (normalised
    /// by `1/N`) with the cyclic prefix prepended.
    ///
    /// Allocates the returned symbol; the transform itself reuses the
    /// modem's persistent work buffer (see [`Ofdm::modulate_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `subcarriers.len() != N`.
    pub fn modulate(&mut self, subcarriers: &[C64]) -> Result<Vec<C64>, FftError> {
        let mut out = vec![Complex::zero(); self.symbol_len()];
        self.modulate_into(subcarriers, &mut out)?;
        Ok(out)
    }

    /// The allocation-free modulator: writes the `N + CP`-sample symbol
    /// into `out`, running the IFFT into the modem's persistent work
    /// buffer (no heap work per symbol once the engine scratch is warm).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `subcarriers.len() != N`
    /// or `out.len() != N + CP`.
    pub fn modulate_into(&mut self, subcarriers: &[C64], out: &mut [C64]) -> Result<(), FftError> {
        let n = self.engine.len();
        if out.len() != n + self.cp {
            return Err(FftError::LengthMismatch { expected: n + self.cp, got: out.len() });
        }
        self.engine.execute_into(subcarriers, &mut self.work, Direction::Inverse)?;
        let scale = 1.0 / n as f64;
        let (prefix, body) = out.split_at_mut(self.cp);
        for (slot, &v) in prefix.iter_mut().zip(&self.work[n - self.cp..]) {
            *slot = v * scale;
        }
        for (slot, &v) in body.iter_mut().zip(&self.work) {
            *slot = v * scale;
        }
        Ok(())
    }

    /// Demodulates one received symbol: strips the cyclic prefix and
    /// runs the forward FFT.
    ///
    /// Allocates the returned spectrum; steady-state receivers should
    /// use [`Ofdm::demodulate_into`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if the input is not
    /// `N + CP` samples.
    pub fn demodulate(&mut self, samples: &[C64]) -> Result<Vec<C64>, FftError> {
        let mut out = vec![Complex::zero(); self.engine.len()];
        self.demodulate_into(samples, &mut out)?;
        Ok(out)
    }

    /// The allocation-free demodulator: strips the cyclic prefix and
    /// runs the forward FFT straight into the caller's `N`-point
    /// buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if the input is not
    /// `N + CP` samples or `out` is not `N` points.
    pub fn demodulate_into(&mut self, samples: &[C64], out: &mut [C64]) -> Result<(), FftError> {
        let n = self.engine.len();
        if samples.len() != n + self.cp {
            return Err(FftError::LengthMismatch { expected: n + self.cp, got: samples.len() });
        }
        self.engine.execute_into(&samples[self.cp..], out, Direction::Forward)
    }

    /// Single-tap zero-forcing equalisation: divides each subcarrier by
    /// the channel's frequency response (estimated from a known pilot
    /// symbol, as `rx_pilot[k] / tx_pilot[k]`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or any channel coefficient is zero.
    pub fn equalize(&self, bins: &[C64], channel: &[C64]) -> Vec<C64> {
        assert_eq!(bins.len(), channel.len(), "equalize: length mismatch");
        bins.iter()
            .zip(channel)
            .map(|(&y, &h)| {
                let d = h.norm_sqr();
                assert!(d > 0.0, "equalize: zero channel coefficient");
                // y / h = y * conj(h) / |h|^2
                y * h.conj() * (1.0 / d)
            })
            .collect()
    }
}

/// Applies a time-domain FIR channel (circular-free linear convolution,
/// truncated to the input length) — a multipath test channel for
/// receiver experiments.
pub fn apply_fir_channel(samples: &[C64], taps: &[C64]) -> Vec<C64> {
    let mut out = vec![Complex::zero(); samples.len()];
    for (i, o) in out.iter_mut().enumerate() {
        for (j, &h) in taps.iter().enumerate() {
            if i >= j {
                *o = *o + samples[i - j] * h;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<(bool, bool)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (rng.gen(), rng.gen())).collect()
    }

    #[test]
    fn clean_channel_roundtrip() {
        let mut ofdm = Ofdm::new(128, 32).unwrap();
        let bits = random_bits(128, 1);
        let tx = ofdm.modulate(&qpsk_map(&bits)).unwrap();
        let rx = ofdm.demodulate(&tx).unwrap();
        assert_eq!(qpsk_demap(&rx), bits);
    }

    #[test]
    fn multipath_within_cp_is_equalizable() {
        let mut ofdm = Ofdm::new(256, 64).unwrap();
        // A 3-tap channel shorter than the CP.
        let taps = vec![Complex::new(1.0, 0.0), Complex::new(0.4, -0.2), Complex::new(-0.1, 0.15)];
        // Channel estimation from a known pilot.
        let pilot_bits = random_bits(256, 2);
        let pilot = qpsk_map(&pilot_bits);
        let tx_pilot = ofdm.modulate(&pilot).unwrap();
        let rx_pilot = ofdm.demodulate(&apply_fir_channel(&tx_pilot, &taps)).unwrap();
        let channel: Vec<C64> = rx_pilot
            .iter()
            .zip(&pilot)
            .map(|(&y, &x)| y * x.conj() * (1.0 / x.norm_sqr()))
            .collect();
        // Data symbol through the same channel.
        let bits = random_bits(256, 3);
        let tx = ofdm.modulate(&qpsk_map(&bits)).unwrap();
        let rx = ofdm.demodulate(&apply_fir_channel(&tx, &taps)).unwrap();
        let eq = ofdm.equalize(&rx, &channel);
        assert_eq!(qpsk_demap(&eq), bits, "multipath must equalise cleanly");
    }

    #[test]
    fn cp_makes_delay_harmless() {
        // A pure 5-sample delay within the CP only rotates subcarriers;
        // QPSK survives after equalisation but raw demap of a delayed
        // frame (without eq) would fail — check the equalised path.
        let mut ofdm = Ofdm::new(128, 16).unwrap();
        let mut taps = vec![Complex::zero(); 6];
        taps[5] = Complex::new(1.0, 0.0);
        let pilot = qpsk_map(&random_bits(128, 4));
        let tx_pilot = ofdm.modulate(&pilot).unwrap();
        let rx_pilot = ofdm.demodulate(&apply_fir_channel(&tx_pilot, &taps)).unwrap();
        let channel: Vec<C64> = rx_pilot
            .iter()
            .zip(&pilot)
            .map(|(&y, &x)| y * x.conj() * (1.0 / x.norm_sqr()))
            .collect();
        let bits = random_bits(128, 5);
        let tx = ofdm.modulate(&qpsk_map(&bits)).unwrap();
        let rx = ofdm.demodulate(&apply_fir_channel(&tx, &taps)).unwrap();
        assert_eq!(qpsk_demap(&ofdm.equalize(&rx, &channel)), bits);
    }

    #[test]
    fn geometry_accessors_and_validation() {
        let mut ofdm = Ofdm::new(128, 32).unwrap();
        assert_eq!(ofdm.subcarriers(), 128);
        assert_eq!(ofdm.cyclic_prefix(), 32);
        assert_eq!(ofdm.symbol_len(), 160);
        assert!(Ofdm::new(128, 128).is_err());
        assert!(Ofdm::new(100, 10).is_err());
        assert!(ofdm.demodulate(&vec![Complex::zero(); 128]).is_err());
    }

    #[test]
    fn qpsk_map_demap_roundtrip() {
        let bits = random_bits(64, 6);
        assert_eq!(qpsk_demap(&qpsk_map(&bits)), bits);
    }

    #[test]
    fn planned_engine_backend_demodulates_like_the_default() {
        let mut registry = crate::engine::EngineRegistry::standard(128).unwrap();
        let mut ofdm = Ofdm::with_engine(registry.take("radix2_dit").unwrap(), 32).unwrap();
        assert_eq!(ofdm.engine().name(), "radix2_dit");
        assert_eq!(format!("{ofdm:?}"), "Ofdm { engine: \"radix2_dit\", n: 128, cp: 32 }");
        let bits = random_bits(128, 9);
        let tx = ofdm.modulate(&qpsk_map(&bits)).unwrap();
        let rx = ofdm.demodulate(&tx).unwrap();
        assert_eq!(qpsk_demap(&rx), bits);
        // CP validation holds for injected engines too.
        let mut registry = crate::engine::EngineRegistry::standard(128).unwrap();
        assert!(Ofdm::with_engine(registry.take("mcfft").unwrap(), 128).is_err());
    }
}
