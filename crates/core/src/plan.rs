//! Transform-size planning: the `N = P * Q` epoch split.

use crate::error::FftError;

/// Minimum in-group size processable by the 8-point butterfly module
/// (4 parallel radix-2 butterflies consume 8 points per `BUT4`).
pub const MIN_GROUP: usize = 8;

/// The epoch decomposition `N = P * Q` of the paper's Section II-A.
///
/// `P = 2^p` is the epoch-0 group size (and the CRF capacity); `Q = 2^q`
/// is the epoch-1 group size; `p + q = log2 N` with `0 <= p - q <= 1`
/// (so `P = sqrt(N)` for even `log2 N`, `P = sqrt(2N)` otherwise,
/// exactly the paper's Section II-C statement).
///
/// # Examples
///
/// ```
/// use afft_core::plan::Split;
///
/// let s = Split::for_size(1024)?;
/// assert_eq!((s.p_size, s.q_size), (32, 32));
/// let s = Split::for_size(128)?;
/// assert_eq!((s.p_size, s.q_size), (16, 8));
/// # Ok::<(), afft_core::FftError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Split {
    /// Transform size `N`.
    pub n: usize,
    /// `log2 N`.
    pub log2_n: u32,
    /// Epoch-0 group size `P`.
    pub p_size: usize,
    /// Epoch-0 stage count `p = log2 P`.
    pub p_stages: u32,
    /// Epoch-1 group size `Q`.
    pub q_size: usize,
    /// Epoch-1 stage count `q = log2 Q`.
    pub q_stages: u32,
}

impl Split {
    /// Plans the canonical split for an `N`-point transform.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `N` is a power of two
    /// with `N >= MIN_GROUP^2 = 64` (the smallest size where both epochs
    /// keep the 8-point butterfly module busy, and the smallest size the
    /// paper evaluates).
    pub fn for_size(n: usize) -> Result<Self, FftError> {
        if !n.is_power_of_two() {
            return Err(FftError::InvalidSize { n, reason: "not a power of two", factor: None });
        }
        let log2_n = n.trailing_zeros();
        let p_stages = log2_n.div_ceil(2);
        let q_stages = log2_n - p_stages;
        let split = Split {
            n,
            log2_n,
            p_size: 1usize << p_stages,
            p_stages,
            q_size: 1usize << q_stages,
            q_stages,
        };
        if split.q_size < MIN_GROUP {
            return Err(FftError::InvalidSize {
                n,
                reason:
                    "smaller than 64: epoch-1 groups would not fill the 8-point butterfly module",
                factor: None,
            });
        }
        Ok(split)
    }

    /// Plans an explicit split `N = P * Q`; used by the variable-epoch
    /// (MCFFT) extension and by tests probing non-canonical splits.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidDecomposition`] unless both factors are
    /// powers of two of at least [`MIN_GROUP`] and multiply to `n`.
    pub fn with_factors(n: usize, p_size: usize, q_size: usize) -> Result<Self, FftError> {
        if !n.is_power_of_two() || !p_size.is_power_of_two() || !q_size.is_power_of_two() {
            return Err(FftError::InvalidDecomposition {
                reason: format!("{n} = {p_size} * {q_size}: all must be powers of two"),
            });
        }
        if p_size * q_size != n {
            return Err(FftError::InvalidDecomposition {
                reason: format!("{p_size} * {q_size} != {n}"),
            });
        }
        if p_size < MIN_GROUP || q_size < MIN_GROUP {
            return Err(FftError::InvalidDecomposition {
                reason: format!(
                    "factors {p_size}, {q_size} below butterfly-module minimum {MIN_GROUP}"
                ),
            });
        }
        Ok(Split {
            n,
            log2_n: n.trailing_zeros(),
            p_size,
            p_stages: p_size.trailing_zeros(),
            q_size,
            q_stages: q_size.trailing_zeros(),
        })
    }

    /// Number of epoch-0 groups (`Q`): one P-point FFT per residue class.
    pub fn epoch0_groups(&self) -> usize {
        self.q_size
    }

    /// Number of epoch-1 groups (`P`).
    pub fn epoch1_groups(&self) -> usize {
        self.p_size
    }

    /// Total `BUT4` operations for the whole transform:
    /// `Q * p * P/8 + P * q * Q/8 = N * log2(N) / 8`.
    pub fn total_bu_ops(&self) -> usize {
        self.n * self.log2_n as usize / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_splits_match_paper() {
        // (N, P, Q) for the paper's Table I sizes.
        for (n, p, q) in [
            (64usize, 8usize, 8usize),
            (128, 16, 8),
            (256, 16, 16),
            (512, 32, 16),
            (1024, 32, 32),
            (2048, 64, 32),
            (4096, 64, 64),
        ] {
            let s = Split::for_size(n).unwrap();
            assert_eq!((s.p_size, s.q_size), (p, q), "N={n}");
            assert_eq!(s.p_size * s.q_size, n);
            assert!(s.p_stages - s.q_stages <= 1);
        }
    }

    #[test]
    fn rejects_small_and_non_pow2() {
        assert!(Split::for_size(32).is_err());
        assert!(Split::for_size(48).is_err());
        assert!(Split::for_size(0).is_err());
    }

    #[test]
    fn bu_op_count_formula() {
        let s = Split::for_size(1024).unwrap();
        assert_eq!(s.total_bu_ops(), 1280);
        let s = Split::for_size(64).unwrap();
        assert_eq!(s.total_bu_ops(), 48);
    }

    #[test]
    fn explicit_factors_validation() {
        assert!(Split::with_factors(1024, 64, 16).is_ok());
        assert!(Split::with_factors(1024, 128, 8).is_ok());
        assert!(Split::with_factors(1024, 256, 4).is_err()); // Q too small
        assert!(Split::with_factors(1024, 32, 16).is_err()); // wrong product
    }

    #[test]
    fn group_counts() {
        let s = Split::for_size(128).unwrap();
        assert_eq!(s.epoch0_groups(), 8);
        assert_eq!(s.epoch1_groups(), 16);
    }
}
