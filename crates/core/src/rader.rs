//! Rader's prime-length FFT: an `N`-point DFT at prime `N` as one
//! `(N-1)`-point cyclic convolution through the generator permutation
//! of the multiplicative group mod `N`.
//!
//! For prime `p` the units mod `p` form a cyclic group: fixing a
//! primitive root `g`, the substitution `k = g^{-q}`, `m = g^{r}` turns
//! the non-zero part of the DFT sum into
//!
//! ```text
//! X[g^{-q}] = x[0] + Σ_r x[g^r] · W_p^{g^{r-q}}  =  x[0] + (a ⊛ b)_q
//! ```
//!
//! a cyclic convolution of `a_r = x[g^r]` with the fixed sequence
//! `b_s = W_p^{g^{-s}}`, both of length `p - 1` (`X[0]` is the plain
//! input sum). The convolution runs through the same engine family the
//! registry ranks for size `p - 1`, chosen at plan time in the
//! registry's own preference order: `split_radix` when `p - 1` is a
//! power of two, the 5-smooth `mixed_radix` when it applies, and
//! Bluestein's chirp-Z otherwise. That last arm is what makes the
//! recursion safe for *every* prime: [`BluesteinPlan`] only ever
//! recurses into power-of-two kernels, so the inner-transform chain is
//! at most two levels deep — no registry re-entry at execute time, no
//! unbounded recursion, no per-transform allocation.
//!
//! Plan-time state: the generator permutation and its inverse, the
//! forward/inverse kernel spectra (`FFT_{p-1}` of `b`), the inner plan
//! and two `(p-1)`-point scratch arenas, honouring the crate-wide
//! zero-allocation `execute_into` contract.

use crate::bluestein::{bluestein_into, BluesteinPlan};
use crate::error::FftError;
use crate::mixed::{factorize, mixed_radix_into, MixedRadixPlan};
use crate::reference::Direction;
use crate::splitradix::{split_radix_into, SplitRadixPlan};
use afft_num::{twiddle, Complex, C64};

/// Deterministic primality check by trial division — plan-time only,
/// and fast for any size a transform plan could plausibly hold.
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3usize;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// `base^exp mod modulus` with `u128` intermediates.
fn pow_mod(base: usize, mut exp: usize, modulus: usize) -> usize {
    let m = modulus as u128;
    let mut acc: u128 = 1;
    let mut b = base as u128 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    acc as usize
}

/// The distinct prime factors of `n`, by trial division (plan time).
fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2usize;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// The smallest primitive root mod prime `p`: the generator whose
/// powers enumerate every unit, i.e. whose order is exactly `p - 1`
/// (checked via `g^{(p-1)/q} != 1` for every prime `q | p - 1`).
fn primitive_root(p: usize) -> usize {
    let m = p - 1;
    let factors = prime_factors(m);
    (2..p)
        .find(|&g| factors.iter().all(|&q| pow_mod(g, m / q, p) != 1))
        .expect("every prime has a primitive root")
}

/// The inner `(p-1)`-point transform: the registry's engine family in
/// its own preference order, resolved once at plan time.
#[derive(Debug, Clone)]
enum Inner {
    SplitRadix(SplitRadixPlan),
    MixedRadix(MixedRadixPlan),
    Bluestein(BluesteinPlan),
}

impl Inner {
    fn plan(m: usize) -> Result<Self, FftError> {
        if m.is_power_of_two() {
            Ok(Inner::SplitRadix(SplitRadixPlan::new(m)?))
        } else if factorize(m).is_some() {
            Ok(Inner::MixedRadix(MixedRadixPlan::new(m)?))
        } else {
            Ok(Inner::Bluestein(BluesteinPlan::new(m)?))
        }
    }

    fn execute(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        match self {
            Inner::SplitRadix(plan) => split_radix_into(plan, input, output, dir),
            Inner::MixedRadix(plan) => mixed_radix_into(plan, input, output, dir),
            Inner::Bluestein(plan) => bluestein_into(plan, input, output, dir),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Inner::SplitRadix(_) => "split_radix",
            Inner::MixedRadix(_) => "mixed_radix",
            Inner::Bluestein(_) => "bluestein",
        }
    }
}

/// Plan-time state of the Rader kernel.
#[derive(Debug, Clone)]
pub struct RaderPlan {
    p: usize,
    /// `g_pow[q] = g^q mod p` — the input gather order.
    g_pow: Vec<usize>,
    /// `g_inv_pow[q] = g^{-q} mod p` — the output scatter order.
    g_inv_pow: Vec<usize>,
    /// `FFT_{p-1}` of `b_s = W_p^{g^{-s}}`, per direction.
    kernel_fwd: Vec<C64>,
    kernel_inv: Vec<C64>,
    inner: Inner,
    buf_a: Vec<C64>,
    buf_b: Vec<C64>,
}

impl RaderPlan {
    /// Plans a Rader FFT of prime size `p >= 3`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `p` is an odd prime
    /// (the even prime 2 has a trivial unit group and is served by
    /// every power-of-two kernel already).
    pub fn new(p: usize) -> Result<Self, FftError> {
        if p < 3 || !is_prime(p) {
            return Err(FftError::InvalidSize {
                n: p,
                reason: "Rader needs an odd prime size",
                factor: None,
            });
        }
        let m = p - 1;
        let g = primitive_root(p);
        let g_inv = pow_mod(g, m - 1, p); // g^{p-2} = g^{-1} mod p
        let mut g_pow = Vec::with_capacity(m);
        let mut g_inv_pow = Vec::with_capacity(m);
        let (mut fwd, mut inv) = (1usize, 1usize);
        for _ in 0..m {
            g_pow.push(fwd);
            g_inv_pow.push(inv);
            fwd = fwd * g % p;
            inv = inv * g_inv % p;
        }

        let mut inner = Inner::plan(m)?;
        let mut buf_a = vec![Complex::zero(); m];
        let buf_b = vec![Complex::zero(); m];
        let mut kernel_fwd = vec![Complex::zero(); m];
        let mut kernel_inv = vec![Complex::zero(); m];
        for (slot, &e) in buf_a.iter_mut().zip(&g_inv_pow) {
            *slot = twiddle(p, e);
        }
        inner.execute(&buf_a, &mut kernel_fwd, Direction::Forward)?;
        // Inverse DFT: same convolution with the conjugated twiddles.
        for slot in buf_a.iter_mut() {
            *slot = slot.conj();
        }
        inner.execute(&buf_a, &mut kernel_inv, Direction::Forward)?;
        Ok(RaderPlan { p, g_pow, g_inv_pow, kernel_fwd, kernel_inv, inner, buf_a, buf_b })
    }

    /// The planned transform size.
    pub fn len(&self) -> usize {
        self.p
    }

    /// Never true for a plan (`p >= 3`).
    pub fn is_empty(&self) -> bool {
        self.p == 0
    }

    /// The engine family serving the `(p-1)`-point inner convolution —
    /// the registry's preference order applied to `p - 1`.
    pub fn inner_engine(&self) -> &'static str {
        self.inner.name()
    }
}

/// Executes the planned Rader FFT into `output` (natural bin order,
/// unnormalised-DFT contract, no heap allocation).
///
/// # Errors
///
/// Returns [`FftError::LengthMismatch`] if either buffer is not
/// `plan.len()` points.
pub fn rader_into(
    plan: &mut RaderPlan,
    input: &[C64],
    output: &mut [C64],
    dir: Direction,
) -> Result<(), FftError> {
    let p = plan.p;
    if input.len() != p {
        return Err(FftError::LengthMismatch { expected: p, got: input.len() });
    }
    if output.len() != p {
        return Err(FftError::LengthMismatch { expected: p, got: output.len() });
    }
    let m = p - 1;
    let kernel = match dir {
        Direction::Forward => &plan.kernel_fwd,
        Direction::Inverse => &plan.kernel_inv,
    };

    // Gather the non-zero input points in generator order.
    for (slot, &idx) in plan.buf_a.iter_mut().zip(&plan.g_pow) {
        *slot = input[idx];
    }

    // (a ⊛ b) by the convolution theorem over the inner engine; the
    // inner inverse is unnormalised, folded by 1/m at the scatter.
    plan.inner.execute(&plan.buf_a, &mut plan.buf_b, Direction::Forward)?;
    for (slot, &k) in plan.buf_b.iter_mut().zip(kernel) {
        *slot = *slot * k;
    }
    plan.inner.execute(&plan.buf_b, &mut plan.buf_a, Direction::Inverse)?;

    // X[0] is the plain sum; every other bin scatters through g^{-q}.
    let x0 = input[0];
    let mut sum = Complex::zero();
    for &x in input {
        sum = sum + x;
    }
    output[0] = sum;
    let scale = 1.0 / m as f64;
    for (q, &idx) in plan.g_inv_pow.iter().enumerate() {
        output[idx] = x0 + plan.buf_a[q] * scale;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn primality_and_primitive_roots() {
        assert!(is_prime(2) && is_prime(3) && is_prime(97) && is_prime(1009));
        assert!(!is_prime(0) && !is_prime(1) && !is_prime(91) && !is_prime(1001));
        // Known smallest primitive roots.
        for (p, g) in [(3usize, 2usize), (5, 2), (7, 3), (17, 3), (97, 5), (251, 6)] {
            assert_eq!(primitive_root(p), g, "p={p}");
        }
    }

    #[test]
    fn generator_permutation_covers_every_nonzero_residue() {
        for p in [7usize, 17, 97, 251] {
            let plan = RaderPlan::new(p).unwrap();
            let mut seen = vec![false; p];
            for &v in &plan.g_pow {
                assert!(v >= 1 && v < p && !seen[v]);
                seen[v] = true;
            }
            // And the inverse order really is the inverse permutation.
            for (q, &v) in plan.g_inv_pow.iter().enumerate() {
                assert_eq!(v * plan.g_pow[q] % p, 1, "p={p} q={q}");
            }
        }
    }

    #[test]
    fn matches_naive_for_every_inner_engine_arm() {
        // p - 1 routes each arm: 17 -> 16 (split_radix), 7 -> 6 and
        // 251 -> 250 (mixed_radix), 1009 -> 1008 = 2^4·3^2·7
        // (bluestein). 3 and 5 are the degenerate tiny primes.
        for (p, inner) in [
            (3usize, "split_radix"),
            (5, "split_radix"),
            (7, "mixed_radix"),
            (17, "split_radix"),
            (97, "mixed_radix"),
            (251, "mixed_radix"),
            (1009, "bluestein"),
        ] {
            let mut plan = RaderPlan::new(p).unwrap();
            assert_eq!(plan.inner_engine(), inner, "p={p}");
            let x = random_signal(p, p as u64);
            let mut got = vec![Complex::zero(); p];
            for dir in [Direction::Forward, Direction::Inverse] {
                let want = dft_naive(&x, dir).unwrap();
                let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
                rader_into(&mut plan, &x, &mut got, dir).unwrap();
                let err = max_error(&got, &want) / peak;
                assert!(err < 1e-10, "p={p} {dir:?}: {err}");
            }
        }
    }

    #[test]
    fn round_trips_within_tolerance() {
        let p = 251;
        let x = random_signal(p, 9);
        let mut plan = RaderPlan::new(p).unwrap();
        let mut spec = vec![Complex::zero(); p];
        let mut back = vec![Complex::zero(); p];
        rader_into(&mut plan, &x, &mut spec, Direction::Forward).unwrap();
        rader_into(&mut plan, &spec, &mut back, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = back.iter().map(|&v| v * (1.0 / p as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-10);
    }

    #[test]
    fn rejects_composites_the_even_prime_and_mismatched_buffers() {
        for n in [0usize, 1, 2, 4, 9, 91, 1344] {
            assert!(matches!(RaderPlan::new(n), Err(FftError::InvalidSize { .. })), "{n}");
        }
        let mut plan = RaderPlan::new(7).unwrap();
        let x = random_signal(7, 3);
        let mut short = vec![Complex::zero(); 6];
        assert!(matches!(
            rader_into(&mut plan, &x, &mut short, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 7, got: 6 })
        ));
    }
}
