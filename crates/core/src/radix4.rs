//! Radix-4 decimation-in-time FFT for power-of-4 sizes.
//!
//! A radix-4 butterfly computes a 4-point DFT with additions and one
//! `±i` rotation only — no general complex multiplies — so an `N`-point
//! transform spends `(N/4) log4 N` three-twiddle butterflies where the
//! radix-2 algorithm spends `(N/2) log2 N` one-twiddle butterflies:
//! ~25% fewer complex multiplies overall. This implementation
//! additionally compiles all twiddles into per-stage tables at plan
//! time (the radix-2 reference recomputes `cos`/`sin` per butterfly),
//! so it is the crate's fastest power-of-4 kernel by a wide margin.
//!
//! The plan-time layout follows the FFTW idiom the engine layer is
//! built on: [`Radix4Plan::new`] does all table construction,
//! [`radix4_dit_into`] is the allocation-free execution primitive.

use crate::error::FftError;
use crate::reference::Direction;
use afft_num::{twiddle, C64};

/// Plan-time state of the radix-4 DIT kernel: the base-4 digit-reversal
/// permutation and one twiddle triple `(W^j, W^2j, W^3j)` per butterfly
/// per stage, stored forward (the inverse conjugates on the fly).
#[derive(Debug, Clone)]
pub struct Radix4Plan {
    n: usize,
    /// `rev[i]` = base-4 digit reversal of `i`: the input gather order.
    rev: Vec<usize>,
    /// Per stage (size 4, 16, ..., n): `len/4` twiddle triples.
    stages: Vec<Vec<[C64; 3]>>,
}

/// Whether `n` is a power of 4 (the sizes [`Radix4Plan`] supports).
pub fn is_power_of_four(n: usize) -> bool {
    n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2) && n >= 4
}

impl Radix4Plan {
    /// Plans a radix-4 DIT FFT of size `n` (a power of 4, `>= 4`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if !is_power_of_four(n) {
            return Err(FftError::InvalidSize { n, reason: "not a power of four", factor: None });
        }
        let digits = n.trailing_zeros() / 2;
        let rev = (0..n).map(|i| digit_reverse_base4(i, digits)).collect();
        let mut stages = Vec::new();
        let mut len = 4usize;
        while len <= n {
            let quarter = len / 4;
            stages.push(
                (0..quarter)
                    .map(|j| {
                        [twiddle(len, j), twiddle(len, 2 * j % len), twiddle(len, 3 * j % len)]
                    })
                    .collect(),
            );
            len *= 4;
        }
        Ok(Radix4Plan { n, rev, stages })
    }

    /// The planned transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true for a plan (`n >= 4`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Reverses the lowest `digits` base-4 digits of `i` (shared with the
/// SIMD radix-4 engine, whose gather order is identical).
pub(crate) fn digit_reverse_base4(mut i: usize, digits: u32) -> usize {
    let mut out = 0usize;
    for _ in 0..digits {
        out = (out << 2) | (i & 3);
        i >>= 2;
    }
    out
}

/// Executes the planned radix-4 DIT FFT into `output` (natural bin
/// order, unnormalised-DFT contract, no heap allocation).
///
/// # Errors
///
/// Returns [`FftError::LengthMismatch`] if either buffer is not
/// `plan.len()` points.
pub fn radix4_dit_into(
    plan: &Radix4Plan,
    input: &[C64],
    output: &mut [C64],
    dir: Direction,
) -> Result<(), FftError> {
    let n = plan.n;
    if input.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: input.len() });
    }
    if output.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: output.len() });
    }
    // Gather in base-4 digit-reversed order; the combine stages then
    // produce natural-order bins in place.
    for (slot, &src) in output.iter_mut().zip(plan.rev.iter()) {
        *slot = input[src];
    }
    let forward = dir == Direction::Forward;
    let mut len = 4usize;
    for stage in &plan.stages {
        let quarter = len / 4;
        for base in (0..n).step_by(len) {
            for (j, tw) in stage.iter().enumerate() {
                let [w1, w2, w3] =
                    if forward { *tw } else { [tw[0].conj(), tw[1].conj(), tw[2].conj()] };
                let i0 = base + j;
                let a = output[i0];
                let b = output[i0 + quarter] * w1;
                let c = output[i0 + 2 * quarter] * w2;
                let e = output[i0 + 3 * quarter] * w3;
                let t0 = a + c;
                let t1 = a - c;
                let t2 = b + e;
                let t3 = b - e;
                // The 4-point DFT's only rotation: W_4 = -i forward, +i
                // inverse.
                let t3r = if forward { t3.mul_neg_i() } else { t3.mul_i() };
                output[i0] = t0 + t2;
                output[i0 + quarter] = t1 + t3r;
                output[i0 + 2 * quarter] = t0 - t2;
                output[i0 + 3 * quarter] = t1 - t3r;
            }
        }
        len *= 4;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use afft_num::Complex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn power_of_four_detection() {
        for n in [4usize, 16, 64, 256, 1024, 4096] {
            assert!(is_power_of_four(n), "{n}");
        }
        for n in [0usize, 1, 2, 8, 32, 128, 512, 2048, 12] {
            assert!(!is_power_of_four(n), "{n}");
        }
    }

    #[test]
    fn digit_reverse_is_an_involution() {
        for i in 0..256 {
            assert_eq!(digit_reverse_base4(digit_reverse_base4(i, 4), 4), i);
        }
    }

    #[test]
    fn matches_naive_both_directions() {
        for n in [4usize, 16, 64, 256, 1024] {
            let plan = Radix4Plan::new(n).unwrap();
            let x = random_signal(n, 17 + n as u64);
            let mut got = vec![Complex::zero(); n];
            for dir in [Direction::Forward, Direction::Inverse] {
                let want = dft_naive(&x, dir).unwrap();
                radix4_dit_into(&plan, &x, &mut got, dir).unwrap();
                let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
                assert!(max_error(&got, &want) / peak < 1e-12, "n={n} {dir:?}");
            }
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 256;
        let plan = Radix4Plan::new(n).unwrap();
        let x = random_signal(n, 3);
        let mut spec = vec![Complex::zero(); n];
        let mut back = vec![Complex::zero(); n];
        radix4_dit_into(&plan, &x, &mut spec, Direction::Forward).unwrap();
        radix4_dit_into(&plan, &spec, &mut back, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = back.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-10);
    }

    #[test]
    fn rejects_non_power_of_four() {
        for n in [0usize, 2, 8, 12, 32, 128] {
            assert!(matches!(Radix4Plan::new(n), Err(FftError::InvalidSize { .. })), "{n}");
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let plan = Radix4Plan::new(16).unwrap();
        let x = random_signal(16, 1);
        let mut short = vec![Complex::zero(); 8];
        assert!(matches!(
            radix4_dit_into(&plan, &x, &mut short, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 16, got: 8 })
        ));
        assert!(matches!(
            radix4_dit_into(&plan, &x[..8], &mut vec![Complex::zero(); 16], Direction::Forward),
            Err(FftError::LengthMismatch { expected: 16, got: 8 })
        ));
    }
}
