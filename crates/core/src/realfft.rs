//! Real-input FFT over the array structure.
//!
//! OFDM baseband samples are complex, but many front-end tasks
//! (channel sounding, spectral monitoring) transform *real* sample
//! streams. The classic trick computes a `2N`-point real FFT with one
//! `N`-point complex FFT: pack even samples into the real part and odd
//! samples into the imaginary part, transform, then unscramble with a
//! conjugate-symmetric post-butterfly. On the ASIP this halves both
//! cycles and CRF pressure; here it is implemented over the golden
//! model as a library extension.

use crate::array::ArrayFft;
use crate::error::FftError;
use crate::reference::Direction;
use afft_num::{twiddle, Complex, C64};

/// A planned real-input FFT of size `2N` (even, `N >= 64`).
///
/// # Examples
///
/// ```
/// use afft_core::realfft::RealFft;
///
/// let fft = RealFft::new(256)?;
/// let x: Vec<f64> = (0..256).map(|m| (m as f64 * 0.1).sin()).collect();
/// let spectrum = fft.process(&x)?;
/// assert_eq!(spectrum.len(), 129); // bins 0..=N
/// # Ok::<(), afft_core::FftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RealFft {
    inner: ArrayFft<f64>,
    len: usize,
    // Reusable buffers for the allocation-free path: the packed
    // even/odd complex signal and the inner transform's output.
    packed_scratch: Vec<C64>,
    z_scratch: Vec<C64>,
}

impl RealFft {
    /// Plans a real FFT of `len` points (`len = 2N`, `N` a supported
    /// complex size).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `len/2` is a valid
    /// array-FFT size (power of two `>= 64`).
    pub fn new(len: usize) -> Result<Self, FftError> {
        if !len.is_multiple_of(2) {
            return Err(FftError::InvalidSize {
                n: len,
                reason: "real FFT length must be even",
                factor: None,
            });
        }
        Ok(RealFft {
            inner: ArrayFft::new(len / 2)?,
            len,
            packed_scratch: Vec::new(),
            z_scratch: Vec::new(),
        })
    }

    /// Transform size (`2N`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Real FFTs are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transforms a real signal, returning the `N+1` unique bins
    /// `X[0] ..= X[N]` (the rest follow from conjugate symmetry:
    /// `X[2N-k] = conj(X[k])`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != len`.
    pub fn process(&self, input: &[f64]) -> Result<Vec<C64>, FftError> {
        if input.len() != self.len {
            return Err(FftError::LengthMismatch { expected: self.len, got: input.len() });
        }
        let n = self.len / 2;
        // Pack even/odd samples into one complex vector.
        let packed: Vec<C64> =
            (0..n).map(|m| Complex::new(input[2 * m], input[2 * m + 1])).collect();
        let z = self.inner.process(&packed, Direction::Forward)?;
        let mut out = vec![Complex::zero(); n + 1];
        unscramble(&z, &mut out);
        Ok(out)
    }

    /// The allocation-free variant of [`RealFft::process`]: writes the
    /// `N+1` unique bins into `output`, reusing plan-owned packing and
    /// transform scratch (no heap work once the scratch is warm).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != len` or
    /// `output.len() != len/2 + 1`.
    pub fn process_into(&mut self, input: &[f64], output: &mut [C64]) -> Result<(), FftError> {
        if input.len() != self.len {
            return Err(FftError::LengthMismatch { expected: self.len, got: input.len() });
        }
        let n = self.len / 2;
        if output.len() != n + 1 {
            return Err(FftError::LengthMismatch { expected: n + 1, got: output.len() });
        }
        self.packed_scratch.resize(n, Complex::zero());
        self.z_scratch.resize(n, Complex::zero());
        for (m, slot) in self.packed_scratch.iter_mut().enumerate() {
            *slot = Complex::new(input[2 * m], input[2 * m + 1]);
        }
        self.inner.process_into(&self.packed_scratch, &mut self.z_scratch, Direction::Forward)?;
        unscramble(&self.z_scratch, output);
        Ok(())
    }

    /// Expands the unique bins into the full `2N`-point spectrum using
    /// conjugate symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `bins.len() != len/2 + 1`.
    pub fn expand_full(&self, bins: &[C64]) -> Vec<C64> {
        let mut full = vec![Complex::zero(); self.len];
        self.expand_full_into(bins, &mut full);
        full
    }

    /// [`RealFft::expand_full`] into a caller-provided `2N`-point
    /// buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `bins.len() != len/2 + 1` or `full.len() != len`.
    pub fn expand_full_into(&self, bins: &[C64], full: &mut [C64]) {
        let n = self.len / 2;
        assert_eq!(bins.len(), n + 1, "expand_full: need N+1 unique bins");
        assert_eq!(full.len(), self.len, "expand_full: need a 2N-point output");
        full[..=n].copy_from_slice(bins);
        for k in 1..n {
            full[2 * n - k] = bins[k].conj();
        }
    }
}

/// The conjugate-symmetric post-butterfly: `X[k] = E[k] + W_{2N}^k
/// O[k]`, where `E[k] = (Z[k] + conj(Z[N-k]))/2` and `O[k] = -i(Z[k] -
/// conj(Z[N-k]))/2`, for the `N+1` unique bins.
fn unscramble(z: &[C64], out: &mut [C64]) {
    let n = z.len();
    for (k, slot) in out.iter_mut().enumerate() {
        let zk = if k == n { z[0] } else { z[k] };
        let zc = if k == 0 { z[0].conj() } else { z[n - k].conj() };
        let e = (zk + zc) * 0.5;
        let o = (zk - zc).mul_neg_i() * 0.5;
        *slot = e + o * twiddle(2 * n, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_real(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn matches_complex_dft_of_real_signal() {
        for len in [128usize, 256, 2048] {
            let x = random_real(len, len as u64);
            let fft = RealFft::new(len).unwrap();
            let bins = fft.process(&x).unwrap();
            let full = fft.expand_full(&bins);
            let complex_in: Vec<C64> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
            let want = dft_naive(&complex_in, Direction::Forward).unwrap();
            assert!(max_error(&full, &want) < 1e-7 * len as f64, "len={len}");
        }
    }

    #[test]
    fn real_cosine_peaks_at_its_bin() {
        let len = 256;
        let tone = 12;
        let x: Vec<f64> = (0..len)
            .map(|m| (2.0 * std::f64::consts::PI * tone as f64 * m as f64 / len as f64).cos())
            .collect();
        let fft = RealFft::new(len).unwrap();
        let bins = fft.process(&x).unwrap();
        for (k, bin) in bins.iter().enumerate() {
            let expect = if k == tone { len as f64 / 2.0 } else { 0.0 };
            assert!((bin.abs() - expect).abs() < 1e-8, "bin {k}");
        }
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let len = 128;
        let x = random_real(len, 3);
        let fft = RealFft::new(len).unwrap();
        let bins = fft.process(&x).unwrap();
        assert!(bins[0].im.abs() < 1e-9, "DC must be real");
        assert!(bins[len / 2].im.abs() < 1e-9, "Nyquist must be real");
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(RealFft::new(127).is_err());
        assert!(RealFft::new(64).is_err()); // N = 32 below array minimum
        let fft = RealFft::new(128).unwrap();
        assert!(fft.process(&vec![0.0; 64]).is_err());
        assert_eq!(fft.len(), 128);
        assert!(!fft.is_empty());
    }
}
