//! Reference transforms: the naive DFT and the classic radix-2
//! Cooley-Tukey FFT (both decimations).
//!
//! These serve three purposes:
//!
//! 1. **Golden results** — every other transform in the workspace is
//!    checked against [`dft_naive`].
//! 2. **The paper's Imple 1 baseline** — the "standard software FFT" run
//!    on the base core is this radix-2 algorithm; the ASIP program
//!    generator mirrors [`fft_radix2_dit_f64`] loop-for-loop.
//! 3. **Prior-art structure** — the in-place DIF stage ([`dif_stage`])
//!    is the mathematical object the array structure re-wires; exposing
//!    it lets the address-algebra tests compare stage by stage.

use crate::bits::bit_reverse;
use crate::error::FftError;
use afft_num::{twiddle, Complex, Scalar, C64};

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Forward DFT (`W_N = exp(-2*pi*i/N)`).
    #[default]
    Forward,
    /// Inverse DFT without the `1/N` normalisation (caller scales).
    Inverse,
}

impl Direction {
    /// Twiddle for this direction: conjugated for the inverse transform.
    pub fn twiddle(self, n: usize, k: usize) -> C64 {
        let w = twiddle(n, k);
        match self {
            Direction::Forward => w,
            Direction::Inverse => w.conj(),
        }
    }
}

/// Naive `O(N^2)` DFT. The golden reference for every test in the
/// workspace.
///
/// # Errors
///
/// Returns [`FftError::InvalidSize`] if `input` is empty.
///
/// # Examples
///
/// ```
/// use afft_core::reference::{dft_naive, Direction};
/// use afft_num::Complex;
///
/// let x = vec![Complex::new(1.0, 0.0); 4];
/// let y = dft_naive(&x, Direction::Forward)?;
/// assert!((y[0].re - 4.0).abs() < 1e-12); // DC bin
/// assert!(y[1].abs() < 1e-12);
/// # Ok::<(), afft_core::FftError>(())
/// ```
pub fn dft_naive(input: &[C64], dir: Direction) -> Result<Vec<C64>, FftError> {
    let mut out = vec![Complex::zero(); input.len()];
    dft_naive_into(input, &mut out, dir)?;
    Ok(out)
}

/// Naive `O(N^2)` DFT written into a caller-provided buffer — the
/// allocation-free primitive behind [`dft_naive`].
///
/// # Errors
///
/// Returns [`FftError::InvalidSize`] if `input` is empty, or
/// [`FftError::LengthMismatch`] if `output.len() != input.len()`.
pub fn dft_naive_into(input: &[C64], output: &mut [C64], dir: Direction) -> Result<(), FftError> {
    let n = input.len();
    if n == 0 {
        return Err(FftError::InvalidSize { n, reason: "empty input", factor: None });
    }
    if output.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: output.len() });
    }
    for (k, out) in output.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (m, &x) in input.iter().enumerate() {
            acc = acc + x * dir.twiddle(n, (k * m) % n);
        }
        *out = acc;
    }
    Ok(())
}

/// Permutes `data` into bit-reversed order in place.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn bit_reverse_permute<T: Copy>(data: &mut [T]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "bit_reverse_permute: len {n} not a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// In-place radix-2 decimation-in-time FFT over `f64`, natural-order
/// input and output (a bit-reversal permutation runs first).
///
/// # Errors
///
/// Returns [`FftError::InvalidSize`] unless the length is a power of two
/// and at least 2.
pub fn fft_radix2_dit_f64(data: &mut [C64], dir: Direction) -> Result<(), FftError> {
    let n = data.len();
    check_pow2(n)?;
    bit_reverse_permute(data);
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = dir.twiddle(len, k);
                let a = data[start + k];
                let b = data[start + k + half] * w;
                data[start + k] = a + b;
                data[start + k + half] = a - b;
            }
        }
        len *= 2;
    }
    Ok(())
}

/// In-place radix-2 decimation-in-frequency FFT over `f64`:
/// natural-order input, **bit-reversed output** (call
/// [`bit_reverse_permute`] afterwards for natural order).
///
/// # Errors
///
/// Returns [`FftError::InvalidSize`] unless the length is a power of two
/// and at least 2.
pub fn fft_radix2_dif_f64(data: &mut [C64], dir: Direction) -> Result<(), FftError> {
    let n = data.len();
    check_pow2(n)?;
    let stages = n.trailing_zeros();
    for j in 1..=stages {
        dif_stage(data, j, dir);
    }
    Ok(())
}

/// Executes DIF stage `j` (1-indexed) in place on the whole array.
///
/// Stage `j` pairs elements at distance `2^(p-j)` where `p = log2 N`, and
/// applies the twiddle `W_N^((a mod 2^(p-j)) * 2^(j-1))` on the difference
/// path. This is the `B_j` operator of the paper's Fig. 3.
///
/// # Panics
///
/// Panics if the length is not a power of two or `j` is out of
/// `1..=log2(N)`.
pub fn dif_stage(data: &mut [C64], j: u32, dir: Direction) {
    let n = data.len();
    assert!(n.is_power_of_two(), "dif_stage: len {n} not a power of two");
    let p = n.trailing_zeros();
    assert!(j >= 1 && j <= p, "dif_stage: stage {j} out of 1..={p}");
    let dist = 1usize << (p - j);
    let block = dist * 2;
    for start in (0..n).step_by(block) {
        for a in start..start + dist {
            let e = (a % dist) << (j - 1);
            let w = dir.twiddle(n, e);
            let x0 = data[a];
            let x1 = data[a + dist];
            data[a] = x0 + x1;
            data[a + dist] = (x0 - x1) * w;
        }
    }
}

/// Generic in-place radix-2 DIT FFT over any [`Scalar`], with an optional
/// per-stage arithmetic right shift (`scale_shift`) to keep fixed-point
/// data in range (1 bit per stage gives an output scaled by `1/N`).
///
/// Twiddles are quantised from `f64` per butterfly.
///
/// # Errors
///
/// Returns [`FftError::InvalidSize`] unless the length is a power of two
/// and at least 2.
pub fn fft_radix2_dit<T: Scalar>(
    data: &mut [Complex<T>],
    dir: Direction,
    scale_half_per_stage: bool,
) -> Result<(), FftError> {
    let n = data.len();
    check_pow2(n)?;
    bit_reverse_permute(data);
    let half_scalar = T::from_f64(0.5);
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let wf = dir.twiddle(len, k);
                let w = Complex::new(T::from_f64(wf.re), T::from_f64(wf.im));
                let a = data[start + k];
                let b = data[start + k + half] * w;
                let (mut s, mut d) = (a + b, a - b);
                if scale_half_per_stage {
                    s = s * half_scalar;
                    d = d * half_scalar;
                }
                data[start + k] = s;
                data[start + k + half] = d;
            }
        }
        len *= 2;
    }
    Ok(())
}

pub(crate) fn check_pow2(n: usize) -> Result<(), FftError> {
    if !n.is_power_of_two() {
        return Err(FftError::InvalidSize { n, reason: "not a power of two", factor: None });
    }
    if n < 2 {
        return Err(FftError::InvalidSize { n, reason: "must be at least 2", factor: None });
    }
    Ok(())
}

/// Maximum absolute element-wise deviation between two complex vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_error(a: &[C64], b: &[C64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_error: length mismatch");
    a.iter().zip(b).map(|(x, y)| x.dist(*y)).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_num::Q15;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub(crate) fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Complex::zero(); 8];
        x[0] = Complex::new(1.0, 0.0);
        let y = dft_naive(&x, Direction::Forward).unwrap();
        for bin in y {
            assert!(bin.dist(Complex::new(1.0, 0.0)) < 1e-12);
        }
    }

    #[test]
    fn dft_of_single_tone_peaks_at_bin() {
        let n = 16;
        let tone = 3;
        let x: Vec<C64> = (0..n).map(|m| twiddle(n, (tone * m) % n).conj()).collect();
        let y = dft_naive(&x, Direction::Forward).unwrap();
        for (k, bin) in y.iter().enumerate() {
            let expect = if k == tone { n as f64 } else { 0.0 };
            assert!((bin.abs() - expect).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn dft_rejects_empty() {
        assert!(matches!(dft_naive(&[], Direction::Forward), Err(FftError::InvalidSize { .. })));
    }

    #[test]
    fn dit_matches_naive() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let x = random_signal(n, 42 + n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let mut got = x.clone();
            fft_radix2_dit_f64(&mut got, Direction::Forward).unwrap();
            assert!(max_error(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn dif_matches_naive_after_reorder() {
        for n in [4usize, 8, 32, 128] {
            let x = random_signal(n, 7 + n as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let mut got = x.clone();
            fft_radix2_dif_f64(&mut got, Direction::Forward).unwrap();
            bit_reverse_permute(&mut got);
            assert!(max_error(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn forward_then_inverse_recovers_input() {
        let n = 64;
        let x = random_signal(n, 1);
        let mut y = x.clone();
        fft_radix2_dit_f64(&mut y, Direction::Forward).unwrap();
        fft_radix2_dit_f64(&mut y, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = y.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-10);
    }

    #[test]
    fn dif_stage_composition_equals_full_dif() {
        let n = 32;
        let x = random_signal(n, 9);
        let mut whole = x.clone();
        fft_radix2_dif_f64(&mut whole, Direction::Forward).unwrap();
        let mut staged = x;
        for j in 1..=5 {
            dif_stage(&mut staged, j, Direction::Forward);
        }
        assert!(max_error(&whole, &staged) < 1e-12);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex::zero(); 12];
        assert!(fft_radix2_dit_f64(&mut x, Direction::Forward).is_err());
        let mut x = vec![Complex::zero(); 1];
        assert!(fft_radix2_dit_f64(&mut x, Direction::Forward).is_err());
    }

    #[test]
    fn fixed_point_dit_tracks_float_with_scaling() {
        let n = 256;
        let xf = random_signal(n, 3);
        let xq: Vec<Complex<Q15>> = xf.iter().map(|&c| Complex::from_c64(c * 0.5)).collect();
        let mut want: Vec<C64> = xq.iter().map(|q| q.to_c64()).collect();
        fft_radix2_dit_f64(&mut want, Direction::Forward).unwrap();
        let want_scaled: Vec<C64> = want.iter().map(|&v| v * (1.0 / n as f64)).collect();

        let mut got = xq;
        fft_radix2_dit::<Q15>(&mut got, Direction::Forward, true).unwrap();
        let gotf: Vec<C64> = got.iter().map(|q| q.to_c64()).collect();
        assert!(max_error(&gotf, &want_scaled) < 4e-3, "fixed-point error too large");
    }

    #[test]
    fn bit_reverse_permute_is_involution() {
        let x: Vec<usize> = (0..64).collect();
        let mut y = x.clone();
        bit_reverse_permute(&mut y);
        bit_reverse_permute(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn linearity_of_dft() {
        let n = 32;
        let a = random_signal(n, 10);
        let b = random_signal(n, 11);
        let sum: Vec<C64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = dft_naive(&a, Direction::Forward).unwrap();
        let fb = dft_naive(&b, Direction::Forward).unwrap();
        let fsum = dft_naive(&sum, Direction::Forward).unwrap();
        let want: Vec<C64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert!(max_error(&fsum, &want) < 1e-9);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let x = random_signal(n, 12);
        let y = dft_naive(&x, Direction::Forward).unwrap();
        let ex: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|c| c.norm_sqr()).sum();
        assert!((ey - ex * n as f64).abs() < 1e-7 * ex * n as f64);
    }
}
