//! Coefficient storage: the on-chip twiddle ROM and the
//! octant-compressed inter-epoch pre-rotation table (Section II-C).

use crate::error::FftError;
use crate::reference::Direction;
use afft_num::{twiddle, Complex, Scalar};

/// The on-chip coefficient ROM holding the `P/2` intra-epoch twiddles
/// `W_P^0 .. W_P^{P/2-1}`.
///
/// Epoch-1 groups (size `Q <= P`) read the same ROM with their exponents
/// scaled by `P/Q`, since `W_Q^e = W_P^{e * P/Q}` — no second ROM is
/// needed, which the paper exploits by sizing one ROM for `P`.
///
/// # Examples
///
/// ```
/// use afft_core::rom::CoefRom;
///
/// let rom: CoefRom<f64> = CoefRom::new(8)?;
/// assert_eq!(rom.len(), 4);
/// let w2 = rom.entry(2); // W_8^2 = -i
/// assert!((w2.im - (-1.0)).abs() < 1e-12);
/// # Ok::<(), afft_core::FftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoefRom<T> {
    p_size: usize,
    entries: Vec<Complex<T>>,
}

impl<T: Scalar> CoefRom<T> {
    /// Builds the ROM for group size `P` (quantising each `W_P^k` into
    /// the element type).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `P` is a power of two of
    /// at least 2.
    pub fn new(p_size: usize) -> Result<Self, FftError> {
        crate::reference::check_pow2(p_size)?;
        let entries = (0..p_size / 2).map(|k| Complex::from_c64(twiddle(p_size, k))).collect();
        Ok(CoefRom { p_size, entries })
    }

    /// Number of ROM entries (`P/2`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROM is empty (only for `P = 2`... never in practice;
    /// provided for `len`/`is_empty` API completeness).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Group size `P` this ROM was built for.
    pub fn p_size(&self) -> usize {
        self.p_size
    }

    /// Reads entry `k`, i.e. `W_P^k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= P/2`.
    #[inline]
    pub fn entry(&self, k: usize) -> Complex<T> {
        self.entries[k]
    }

    /// Reads the twiddle `W_G^e` for a sub-group of size `G <= P`
    /// (`G` a power of two): exponent is rescaled onto the `P`-sized ROM.
    ///
    /// For the forward transform this is `entry(e * P/G)`; the inverse
    /// transform conjugates.
    ///
    /// # Panics
    ///
    /// Panics if `G` does not divide `P` or `e >= G/2`.
    #[inline]
    pub fn group_twiddle(&self, g_size: usize, e: usize, dir: Direction) -> Complex<T> {
        assert!(
            g_size.is_power_of_two() && g_size <= self.p_size,
            "group_twiddle: group size {g_size} incompatible with ROM for {}",
            self.p_size
        );
        assert!(e < g_size / 2, "group_twiddle: exponent {e} out of range for size {g_size}");
        let w = self.entry(e * (self.p_size / g_size));
        match dir {
            Direction::Forward => w,
            Direction::Inverse => w.conj(),
        }
    }
}

/// How the octant expander rebuilds a coefficient from a table entry
/// `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OctantOp {
    /// `(a, b)` — identity.
    Identity,
    /// `(-b, -a)` — swap then negate both.
    NegSwap,
    /// `(b, -a)` — multiply by `-i`.
    MulNegI,
    /// `(-a, b)` — negate real part.
    NegRe,
    /// `(-a, -b)` — negate both.
    Neg,
    /// `(b, a)` — swap.
    Swap,
    /// `(-b, a)` — multiply by `i`.
    MulI,
    /// `(a, -b)` — conjugate.
    Conj,
}

impl OctantOp {
    /// Applies the reconstruction to a table entry.
    pub fn apply<T: Scalar>(self, w: Complex<T>) -> Complex<T> {
        match self {
            OctantOp::Identity => w,
            OctantOp::NegSwap => Complex::new(-w.im, -w.re),
            OctantOp::MulNegI => w.mul_neg_i(),
            OctantOp::NegRe => Complex::new(-w.re, w.im),
            OctantOp::Neg => -w,
            OctantOp::Swap => w.swap(),
            OctantOp::MulI => w.mul_i(),
            OctantOp::Conj => w.conj(),
        }
    }
}

/// A resolved pre-rotation access: which table entry to fetch and how to
/// expand it. This is what the `STOUT` store path's coefficient logic
/// computes; the simulator uses `index` to model the memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrerotRef {
    /// Table index in `0 ..= N/8`.
    pub index: usize,
    /// Octant reconstruction to apply to the fetched `(a, b)`.
    pub op: OctantOp,
}

/// The inter-epoch pre-rotation table: only the first `N/8 + 1`
/// coefficients `W_N^0 .. W_N^{N/8}` are stored (in main memory on the
/// real system); every other `W_N^e` is reconstructed by the circular
/// symmetry of the unit circle — the paper's Section II-C compression.
///
/// # Examples
///
/// ```
/// use afft_core::rom::PrerotTable;
///
/// let t: PrerotTable<f64> = PrerotTable::new(64)?;
/// assert_eq!(t.len(), 64 / 8 + 1);
/// let w = t.coefficient(48); // W_64^48 = +i
/// assert!(w.re.abs() < 1e-12 && (w.im - 1.0).abs() < 1e-12);
/// # Ok::<(), afft_core::FftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrerotTable<T> {
    n: usize,
    entries: Vec<Complex<T>>,
}

impl<T: Scalar> PrerotTable<T> {
    /// Builds the compressed table for transform size `N`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `N` is a power of two of
    /// at least 8 (below 8 the octant structure degenerates).
    pub fn new(n: usize) -> Result<Self, FftError> {
        crate::reference::check_pow2(n)?;
        if n < 8 {
            return Err(FftError::InvalidSize {
                n,
                reason: "pre-rotation table needs N >= 8",
                factor: None,
            });
        }
        let entries = (0..=n / 8).map(|k| Complex::from_c64(twiddle(n, k))).collect();
        Ok(PrerotTable { n, entries })
    }

    /// Number of stored entries (`N/8 + 1`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never, for a valid table).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Transform size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resolves exponent `e` to a table access: index plus octant
    /// reconstruction. This mirrors the paper's addressing rule
    /// ("`(sl) mod (N/8)` when `floor(sl / (N/8))` is even, and
    /// `N/8 - (sl) mod (N/8)` when odd"), extended to all eight octants.
    pub fn resolve(&self, e: usize) -> PrerotRef {
        resolve_prerot(self.n, e)
    }

    /// Fetches and reconstructs `W_N^e` (forward direction).
    pub fn coefficient(&self, e: usize) -> Complex<T> {
        let r = self.resolve(e);
        r.op.apply(self.entries[r.index])
    }

    /// Fetches and reconstructs the coefficient for `dir`: the inverse
    /// transform uses the conjugate `W_N^{-e}`.
    pub fn coefficient_dir(&self, e: usize, dir: Direction) -> Complex<T> {
        match dir {
            Direction::Forward => self.coefficient(e),
            Direction::Inverse => self.coefficient(e).conj(),
        }
    }
}

/// Resolves exponent `e` of `W_N^e` to a compressed-table access
/// (index in `0..=N/8` plus the octant reconstruction); the pure
/// hardware function the `STOUT` coefficient logic implements.
///
/// # Panics
///
/// Panics unless `n` is a power of two `>= 8`.
pub fn resolve_prerot(n: usize, e: usize) -> PrerotRef {
    assert!(n.is_power_of_two() && n >= 8, "resolve_prerot: invalid n {n}");
    let e = e % n;
    let eighth = n / 8;
    let octant = e / eighth;
    let r = e % eighth;
    let (index, op) = if octant.is_multiple_of(2) {
        let op = match octant {
            0 => OctantOp::Identity,
            2 => OctantOp::MulNegI,
            4 => OctantOp::Neg,
            6 => OctantOp::MulI,
            _ => unreachable!(),
        };
        (r, op)
    } else {
        let op = match octant {
            1 => OctantOp::NegSwap,
            3 => OctantOp::NegRe,
            5 => OctantOp::Swap,
            7 => OctantOp::Conj,
            _ => unreachable!(),
        };
        (eighth - r, op)
    };
    PrerotRef { index, op }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_num::{twiddle_q15, Q15};

    #[test]
    fn rom_entries_are_twiddles() {
        let rom: CoefRom<f64> = CoefRom::new(32).unwrap();
        assert_eq!(rom.len(), 16);
        assert_eq!(rom.p_size(), 32);
        assert!(!rom.is_empty());
        for k in 0..16 {
            let want = twiddle(32, k);
            assert!(rom.entry(k).dist(want) < 1e-12, "k={k}");
        }
    }

    #[test]
    fn rom_group_twiddle_rescales() {
        let rom: CoefRom<f64> = CoefRom::new(32).unwrap();
        for e in 0..4 {
            let want = twiddle(8, e);
            let got = rom.group_twiddle(8, e, Direction::Forward);
            assert!(got.dist(want) < 1e-12, "e={e}");
            let got = rom.group_twiddle(8, e, Direction::Inverse);
            assert!(got.dist(want.conj()) < 1e-12, "inverse e={e}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rom_group_twiddle_bounds() {
        let rom: CoefRom<f64> = CoefRom::new(32).unwrap();
        let _ = rom.group_twiddle(8, 4, Direction::Forward);
    }

    #[test]
    fn rom_q15_quantisation() {
        let rom: CoefRom<Q15> = CoefRom::new(16).unwrap();
        for k in 0..8 {
            let want = twiddle_q15(16, k);
            assert_eq!(rom.entry(k), want, "k={k}");
        }
    }

    #[test]
    fn prerot_table_all_exponents_exact() {
        for n in [8usize, 16, 64, 256, 1024] {
            let t: PrerotTable<f64> = PrerotTable::new(n).unwrap();
            assert_eq!(t.len(), n / 8 + 1);
            for e in 0..2 * n {
                let want = twiddle(n, e % n);
                let got = t.coefficient(e);
                assert!(got.dist(want) < 1e-12, "n={n} e={e}: got {got:?} want {want:?}");
            }
        }
    }

    #[test]
    fn prerot_inverse_direction_conjugates() {
        let t: PrerotTable<f64> = PrerotTable::new(64).unwrap();
        for e in [1usize, 13, 40, 63] {
            let f = t.coefficient_dir(e, Direction::Forward);
            let i = t.coefficient_dir(e, Direction::Inverse);
            assert!(f.conj().dist(i) < 1e-15);
        }
    }

    #[test]
    fn prerot_resolve_matches_paper_rule_in_first_quadrant() {
        // The paper's rule covers the even/odd eighth alternation of the
        // table index; check it for the first two octants explicitly.
        let t: PrerotTable<f64> = PrerotTable::new(64).unwrap();
        let eighth = 8;
        for e in 0..16 {
            let r = t.resolve(e);
            let expect_index = if (e / eighth) % 2 == 0 { e % eighth } else { eighth - e % eighth };
            assert_eq!(r.index, expect_index, "e={e}");
        }
    }

    #[test]
    fn prerot_q15_accuracy() {
        let t: PrerotTable<Q15> = PrerotTable::new(128).unwrap();
        for e in 0..128 {
            let want = twiddle(128, e);
            let got = t.coefficient(e).to_c64();
            assert!(got.dist(want) < 2e-4, "e={e}");
        }
    }

    #[test]
    fn prerot_rejects_tiny_sizes() {
        assert!(PrerotTable::<f64>::new(4).is_err());
        assert!(PrerotTable::<f64>::new(12).is_err());
    }

    #[test]
    fn octant_ops_are_the_eight_symmetries() {
        use OctantOp::*;
        let w = Complex::new(0.6, -0.8);
        let results: Vec<Complex<f64>> = [Identity, NegSwap, MulNegI, NegRe, Neg, Swap, MulI, Conj]
            .iter()
            .map(|op| op.apply(w))
            .collect();
        // All eight images are distinct and have the same magnitude.
        for (i, a) in results.iter().enumerate() {
            assert!((a.abs() - 1.0).abs() < 1e-12);
            for b in &results[i + 1..] {
                assert!(a.dist(*b) > 1e-6);
            }
        }
    }
}
