//! The portable split-plane kernels: layout passes, twiddle tables in
//! structure-of-arrays form, and the scalar reference implementations
//! of the two vectorized butterflies.
//!
//! Everything here is safe code over `f64` planes. The architecture
//! back-ends (`x86`/`neon`) mirror these loops lane-parallel; the
//! equivalence suite holds them to this reference.

use afft_num::{twiddle, C64};

/// Splits interleaved complex points into separate real/imag planes.
pub(crate) fn deinterleave(src: &[C64], re: &mut [f64], im: &mut [f64]) {
    debug_assert!(src.len() == re.len() && src.len() == im.len());
    for ((c, r), i) in src.iter().zip(re.iter_mut()).zip(im.iter_mut()) {
        *r = c.re;
        *i = c.im;
    }
}

/// Recombines real/imag planes into interleaved complex points.
pub(crate) fn interleave(re: &[f64], im: &[f64], dst: &mut [C64]) {
    debug_assert!(dst.len() == re.len() && dst.len() == im.len());
    for ((c, r), i) in dst.iter_mut().zip(re.iter()).zip(im.iter()) {
        c.re = *r;
        c.im = *i;
    }
}

/// One radix-4 stage's twiddle triples in split (structure-of-arrays)
/// form: `w1 = W_len^j`, `w2 = W_len^{2j}`, `w3 = W_len^{3j}` for
/// `j in 0..len/4`, each as separate re/im planes so a vector lane
/// loads contiguously. Stored forward; the inverse negates the imag
/// plane on load.
#[derive(Debug, Clone)]
pub(crate) struct R4Twiddles {
    pub w1re: Vec<f64>,
    pub w1im: Vec<f64>,
    pub w2re: Vec<f64>,
    pub w2im: Vec<f64>,
    pub w3re: Vec<f64>,
    pub w3im: Vec<f64>,
}

impl R4Twiddles {
    /// The split twiddle table of one radix-4 stage of size `len`.
    pub(crate) fn for_stage(len: usize) -> Self {
        let quarter = len / 4;
        let mut t = R4Twiddles {
            w1re: Vec::with_capacity(quarter),
            w1im: Vec::with_capacity(quarter),
            w2re: Vec::with_capacity(quarter),
            w2im: Vec::with_capacity(quarter),
            w3re: Vec::with_capacity(quarter),
            w3im: Vec::with_capacity(quarter),
        };
        for j in 0..quarter {
            let w1 = twiddle(len, j);
            let w2 = twiddle(len, 2 * j % len);
            let w3 = twiddle(len, 3 * j % len);
            t.w1re.push(w1.re);
            t.w1im.push(w1.im);
            t.w2re.push(w2.re);
            t.w2im.push(w2.im);
            t.w3re.push(w3.re);
            t.w3im.push(w3.im);
        }
        t
    }
}

/// One split-radix combine level's twiddle pairs in split form:
/// `w1 = W_len^k`, `w3 = W_len^{3k}` for `k in 0..len/4`.
#[derive(Debug, Clone)]
pub(crate) struct SrTwiddles {
    pub w1re: Vec<f64>,
    pub w1im: Vec<f64>,
    pub w3re: Vec<f64>,
    pub w3im: Vec<f64>,
}

impl SrTwiddles {
    /// The split twiddle table of one combine level of size `len`.
    pub(crate) fn for_level(len: usize) -> Self {
        let quarter = len / 4;
        let mut t = SrTwiddles {
            w1re: Vec::with_capacity(quarter),
            w1im: Vec::with_capacity(quarter),
            w3re: Vec::with_capacity(quarter),
            w3im: Vec::with_capacity(quarter),
        };
        for k in 0..quarter {
            let w1 = twiddle(len, k);
            let w3 = twiddle(len, 3 * k % len);
            t.w1re.push(w1.re);
            t.w1im.push(w1.im);
            t.w3re.push(w3.re);
            t.w3im.push(w3.im);
        }
        t
    }
}

/// One full radix-4 DIT stage of size `len` over the whole `re`/`im`
/// planes, in place — the scalar reference of the vector stage
/// kernels. `sign` is `+1.0` forward, `-1.0` inverse (conjugated
/// twiddles, `+i` rotation).
pub(crate) fn radix4_stage_scalar(
    re: &mut [f64],
    im: &mut [f64],
    tw: &R4Twiddles,
    len: usize,
    sign: f64,
) {
    let n = re.len();
    let quarter = len / 4;
    for base in (0..n).step_by(len) {
        for j in 0..quarter {
            let w1re = tw.w1re[j];
            let w1im = sign * tw.w1im[j];
            let w2re = tw.w2re[j];
            let w2im = sign * tw.w2im[j];
            let w3re = tw.w3re[j];
            let w3im = sign * tw.w3im[j];
            let i0 = base + j;
            let i1 = i0 + quarter;
            let i2 = i0 + 2 * quarter;
            let i3 = i0 + 3 * quarter;
            let (are, aim) = (re[i0], im[i0]);
            let (bre, bim) = (re[i1] * w1re - im[i1] * w1im, re[i1] * w1im + im[i1] * w1re);
            let (cre, cim) = (re[i2] * w2re - im[i2] * w2im, re[i2] * w2im + im[i2] * w2re);
            let (ere, eim) = (re[i3] * w3re - im[i3] * w3im, re[i3] * w3im + im[i3] * w3re);
            let (t0re, t0im) = (are + cre, aim + cim);
            let (t1re, t1im) = (are - cre, aim - cim);
            let (t2re, t2im) = (bre + ere, bim + eim);
            let (t3re, t3im) = (bre - ere, bim - eim);
            // The 4-point DFT's only rotation: -i forward, +i inverse.
            let (rre, rim) = (sign * t3im, -sign * t3re);
            re[i0] = t0re + t2re;
            im[i0] = t0im + t2im;
            re[i1] = t1re + rre;
            im[i1] = t1im + rim;
            re[i2] = t0re - t2re;
            im[i2] = t0im - t2im;
            re[i3] = t1re - rre;
            im[i3] = t1im - rim;
        }
    }
}

/// One split-radix combine over split planes — the scalar reference of
/// the vector combine kernels. `cur` holds the three sub-spectra
/// `[U (len/2) | Z (len/4) | Z' (len/4)]`; the combined `len`-point
/// spectrum lands in `out`. `sign` as in [`radix4_stage_scalar`].
pub(crate) fn split_combine_scalar(
    cur_re: &[f64],
    cur_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    tw: &SrTwiddles,
    sign: f64,
) {
    let len = out_re.len();
    let half = len / 2;
    let quarter = len / 4;
    for k in 0..quarter {
        let w1re = tw.w1re[k];
        let w1im = sign * tw.w1im[k];
        let w3re = tw.w3re[k];
        let w3im = sign * tw.w3im[k];
        let (zre, zim) = (cur_re[half + k], cur_im[half + k]);
        let (pre, pim) = (cur_re[half + quarter + k], cur_im[half + quarter + k]);
        let (t1re, t1im) = (zre * w1re - zim * w1im, zre * w1im + zim * w1re);
        let (t2re, t2im) = (pre * w3re - pim * w3im, pre * w3im + pim * w3re);
        let (sre, sim) = (t1re + t2re, t1im + t2im);
        let (dre, dim) = (t1re - t2re, t1im - t2im);
        // diff * (-i) forward, diff * (+i) inverse.
        let (rre, rim) = (sign * dim, -sign * dre);
        let (u0re, u0im) = (cur_re[k], cur_im[k]);
        let (u1re, u1im) = (cur_re[k + quarter], cur_im[k + quarter]);
        out_re[k] = u0re + sre;
        out_im[k] = u0im + sim;
        out_re[k + half] = u0re - sre;
        out_im[k + half] = u0im - sim;
        out_re[k + quarter] = u1re + rre;
        out_im[k + quarter] = u1im + rim;
        out_re[k + 3 * quarter] = u1re - rre;
        out_im[k + 3 * quarter] = u1im - rim;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_num::Complex;

    #[test]
    fn layout_passes_round_trip() {
        let src: Vec<C64> = (0..9).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let mut re = vec![0.0; 9];
        let mut im = vec![0.0; 9];
        let mut back = vec![Complex::zero(); 9];
        deinterleave(&src, &mut re, &mut im);
        interleave(&re, &im, &mut back);
        assert_eq!(src, back);
        assert_eq!(re[3], 3.0);
        assert_eq!(im[3], -3.0);
    }

    #[test]
    fn twiddle_tables_match_the_scalar_twiddles() {
        let t = R4Twiddles::for_stage(16);
        for j in 0..4 {
            assert_eq!(Complex::new(t.w1re[j], t.w1im[j]), twiddle(16, j));
            assert_eq!(Complex::new(t.w2re[j], t.w2im[j]), twiddle(16, 2 * j));
            assert_eq!(Complex::new(t.w3re[j], t.w3im[j]), twiddle(16, 3 * j));
        }
        let s = SrTwiddles::for_level(8);
        assert_eq!(s.w1re.len(), 2);
        assert_eq!(Complex::new(s.w1re[1], s.w1im[1]), twiddle(8, 1));
        assert_eq!(Complex::new(s.w3re[1], s.w3im[1]), twiddle(8, 3));
    }
}
