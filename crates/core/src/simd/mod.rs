//! The SIMD kernel tier: vectorized butterfly engines behind runtime
//! feature dispatch.
//!
//! Every other kernel in the crate is scalar. This module adds
//! register-vectorized variants of the hot butterflies — the radix-4
//! DIT stage and the split-radix combine — as *distinct engines*
//! ([`Radix4SimdEngine`], [`SplitRadixSimdEngine`]), the FFTW codelet
//! idiom the planner is built on: the registry offers scalar and SIMD
//! side by side, `Strategy::Measure` ranks them honestly per host, and
//! wisdom remembers the winner.
//!
//! # Runtime dispatch
//!
//! [`active_level`] probes the host once per call site (the underlying
//! `is_*_feature_detected!` results are cached by `std`):
//!
//! * **x86_64** — [`SimdLevel::Avx2Fma`] when both `avx2` and `fma`
//!   are detected (4 × f64 lanes);
//! * **aarch64** — [`SimdLevel::Neon`] (2 × f64 lanes, baseline on
//!   that architecture but still probed);
//! * anywhere else, or when the **`AFFT_NO_SIMD`** environment
//!   variable is set non-empty (and not `"0"`) — [`SimdLevel::Scalar`].
//!
//! [`EngineRegistry::standard`](crate::engine::EngineRegistry::standard)
//! registers the SIMD engines only when `active_level().is_simd()`
//! holds, so `AFFT_NO_SIMD=1` removes them from every registry (and
//! with them from plans, wisdom keys and benches) — the escape hatch
//! for A/B measurement and for exercising the scalar fallback path in
//! CI. The engines themselves clamp their level to what the host
//! really supports ([`SimdLevel::clamp_to_host`]), so an engine
//! constructed with a forced level is always sound: the `unsafe`
//! vectorized stage functions run only after the matching CPU features
//! were detected.
//!
//! # Layout: interleaved trait boundary, split planes inside
//!
//! The [`FftEngine`](crate::engine::FftEngine) contract stays
//! interleaved `C64` — callers never see the vector layout. At plan
//! time each SIMD engine allocates engine-owned split real/imag
//! scratch planes and twiddle tables in split (structure-of-arrays)
//! form; `execute_into` deinterleaves once on entry, runs every
//! butterfly stage as pure plane arithmetic (a vector complex multiply
//! is four FMAs, no shuffles), and re-interleaves once on exit. That
//! keeps the per-transform heap traffic at zero (the PR-3
//! `execute_into` idiom) and makes the vector inner loops straight
//! contiguous loads.
//!
//! `unsafe` lives only in this module's architecture back-ends (the
//! private `x86`/`neon` submodules), under the crate-level
//! `deny(unsafe_code)` + `deny(unsafe_op_in_unsafe_fn)` gates; the
//! portable scalar kernels (the private `kernels` submodule) are the
//! safe reference the vector paths are tested against (see
//! `tests/simd_equivalence.rs`).

pub(crate) mod kernels;
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
pub(crate) mod neon;
#[allow(unsafe_code)]
pub mod radix4;
#[allow(unsafe_code)]
pub mod splitradix;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod x86;

pub use radix4::Radix4SimdEngine;
pub use splitradix::SplitRadixSimdEngine;

/// The vector datapath a SIMD engine plans for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// No vector unit used: the portable split-plane kernels.
    Scalar,
    /// x86_64 AVX2 + FMA: 4 × f64 lanes, fused multiply-add.
    Avx2Fma,
    /// aarch64 Advanced SIMD: 2 × f64 lanes, fused multiply-add.
    Neon,
}

impl SimdLevel {
    /// Whether this level drives a vector unit (anything but scalar).
    pub fn is_simd(self) -> bool {
        self != SimdLevel::Scalar
    }

    /// `f64` lanes per vector register at this level.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Avx2Fma => 4,
            SimdLevel::Neon => 2,
        }
    }

    /// Stable lowercase identifier (bench JSON, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2Fma => "avx2_fma",
            SimdLevel::Neon => "neon",
        }
    }

    /// This level if the host actually supports it, else
    /// [`SimdLevel::Scalar`] — the soundness clamp every SIMD engine
    /// applies at plan time, so a forced level can never make an
    /// `unsafe` vector kernel run on a host without the feature.
    pub fn clamp_to_host(self) -> SimdLevel {
        if self == SimdLevel::Scalar || self == detect_host() {
            self
        } else {
            SimdLevel::Scalar
        }
    }
}

/// The best vector level the host hardware supports, ignoring the
/// `AFFT_NO_SIMD` override. Feature probes are cached by `std`.
pub fn detect_host() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2Fma;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return SimdLevel::Neon;
        }
    }
    SimdLevel::Scalar
}

/// Whether the `AFFT_NO_SIMD` environment variable suppresses the SIMD
/// tier: set non-empty and not `"0"` (the `PATH`-style reading — an
/// empty value is treated as unset, matching `$AFFT_WISDOM`).
pub fn simd_suppressed() -> bool {
    std::env::var_os("AFFT_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The level the SIMD tier actually plans with: [`detect_host`] unless
/// [`simd_suppressed`] — the one decision point the registry, the
/// engines and the planner's cost models all share.
pub fn active_level() -> SimdLevel {
    if simd_suppressed() {
        SimdLevel::Scalar
    } else {
        detect_host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_and_names_are_consistent() {
        assert_eq!(SimdLevel::Scalar.lanes(), 1);
        assert_eq!(SimdLevel::Avx2Fma.lanes(), 4);
        assert_eq!(SimdLevel::Neon.lanes(), 2);
        assert!(!SimdLevel::Scalar.is_simd());
        assert!(SimdLevel::Avx2Fma.is_simd());
        assert_eq!(SimdLevel::Avx2Fma.as_str(), "avx2_fma");
        assert_eq!(SimdLevel::Scalar.as_str(), "scalar");
    }

    #[test]
    fn clamp_never_exceeds_the_host() {
        let host = detect_host();
        for level in [SimdLevel::Scalar, SimdLevel::Avx2Fma, SimdLevel::Neon] {
            let clamped = level.clamp_to_host();
            assert!(clamped == SimdLevel::Scalar || clamped == host);
        }
        assert_eq!(SimdLevel::Scalar.clamp_to_host(), SimdLevel::Scalar);
        assert_eq!(host.clamp_to_host(), host);
    }

    #[test]
    fn active_level_is_detect_host_or_scalar() {
        // Whatever the ambient environment, the invariant holds.
        let active = active_level();
        assert!(active == SimdLevel::Scalar || active == detect_host());
    }
}
