//! NEON (aarch64 Advanced SIMD) back-end: 2 × f64 lanes over split
//! real/imag planes.
//!
//! The 2-lane mirror of the AVX2 back-end: same split-plane loop
//! structure, fused multiply-add complex arithmetic, no shuffles.
//! Direction handling multiplies by a ±1.0 sign vector instead of the
//! x86 XOR-mask trick — multiplication by ±1.0 is exact in IEEE-754,
//! so the two back-ends stay arithmetically identical to the scalar
//! reference's sign algebra.
//!
//! `unsafe` here follows the same contract as `x86.rs`: NEON is
//! verified at plan time (`SimdLevel::clamp_to_host`; it is baseline
//! on aarch64), and raw load/store bounds are debug-asserted and
//! guaranteed by the callers' loop structure.

use super::kernels::{R4Twiddles, SrTwiddles};
use core::arch::aarch64::{
    float64x2_t, vaddq_f64, vdupq_n_f64, vfmaq_f64, vfmsq_f64, vld1q_f64, vmulq_f64, vst1q_f64,
    vsubq_f64,
};

/// Loads 2 lanes from `p[i..i + 2]`.
///
/// # Safety
///
/// Caller must guarantee `i + 2 <= p.len()` (debug-asserted).
#[inline]
#[target_feature(enable = "neon")]
unsafe fn ld(p: &[f64], i: usize) -> float64x2_t {
    debug_assert!(i + 2 <= p.len());
    // SAFETY: in-bounds per the caller contract above.
    unsafe { vld1q_f64(p.as_ptr().add(i)) }
}

/// Stores 2 lanes to `p[i..i + 2]`.
///
/// # Safety
///
/// Caller must guarantee `i + 2 <= p.len()` (debug-asserted).
#[inline]
#[target_feature(enable = "neon")]
unsafe fn st(p: &mut [f64], i: usize, v: float64x2_t) {
    debug_assert!(i + 2 <= p.len());
    // SAFETY: in-bounds per the caller contract above.
    unsafe { vst1q_f64(p.as_mut_ptr().add(i), v) }
}

/// Lane-wise complex multiply over split planes:
/// `(are + i·aim) * (bre + i·bim)`.
#[inline]
#[target_feature(enable = "neon")]
fn cmul(
    are: float64x2_t,
    aim: float64x2_t,
    bre: float64x2_t,
    bim: float64x2_t,
) -> (float64x2_t, float64x2_t) {
    // vfmsq(a, b, c) = a - b*c; vfmaq(a, b, c) = a + b*c.
    let re = vfmsq_f64(vmulq_f64(are, bre), aim, bim);
    let im = vfmaq_f64(vmulq_f64(are, bim), aim, bre);
    (re, im)
}

/// One full radix-4 DIT stage of size `len`, 2 butterflies per
/// iteration — the NEON mirror of `kernels::radix4_stage_scalar`.
///
/// # Safety
///
/// The host must support NEON (verified at plan time). `re`/`im` must
/// be equal-length planes with `re.len()` a multiple of `len`, and
/// `len / 4` a multiple of 2.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn radix4_stage_neon(
    re: &mut [f64],
    im: &mut [f64],
    tw: &R4Twiddles,
    len: usize,
    forward: bool,
) {
    let n = re.len();
    let quarter = len / 4;
    debug_assert!(im.len() == n && n % len == 0 && quarter % 2 == 0);
    let sign = vdupq_n_f64(if forward { 1.0 } else { -1.0 });
    let neg_sign = vdupq_n_f64(if forward { -1.0 } else { 1.0 });
    for base in (0..n).step_by(len) {
        for j in (0..quarter).step_by(2) {
            let i0 = base + j;
            let i1 = i0 + quarter;
            let i2 = i0 + 2 * quarter;
            let i3 = i0 + 3 * quarter;
            // SAFETY: i3 + 2 <= base + len <= n, twiddle planes are
            // `quarter` long — every access below is in bounds.
            unsafe {
                let w1re = ld(&tw.w1re, j);
                let w1im = vmulq_f64(ld(&tw.w1im, j), sign);
                let w2re = ld(&tw.w2re, j);
                let w2im = vmulq_f64(ld(&tw.w2im, j), sign);
                let w3re = ld(&tw.w3re, j);
                let w3im = vmulq_f64(ld(&tw.w3im, j), sign);
                let (are, aim) = (ld(re, i0), ld(im, i0));
                let (bre, bim) = cmul(ld(re, i1), ld(im, i1), w1re, w1im);
                let (cre, cim) = cmul(ld(re, i2), ld(im, i2), w2re, w2im);
                let (ere, eim) = cmul(ld(re, i3), ld(im, i3), w3re, w3im);
                let (t0re, t0im) = (vaddq_f64(are, cre), vaddq_f64(aim, cim));
                let (t1re, t1im) = (vsubq_f64(are, cre), vsubq_f64(aim, cim));
                let (t2re, t2im) = (vaddq_f64(bre, ere), vaddq_f64(bim, eim));
                let (t3re, t3im) = (vsubq_f64(bre, ere), vsubq_f64(bim, eim));
                // r = t3 * (-i) forward / (+i) inverse:
                // r_re = sign * t3_im, r_im = -sign * t3_re.
                let rre = vmulq_f64(t3im, sign);
                let rim = vmulq_f64(t3re, neg_sign);
                st(re, i0, vaddq_f64(t0re, t2re));
                st(im, i0, vaddq_f64(t0im, t2im));
                st(re, i1, vaddq_f64(t1re, rre));
                st(im, i1, vaddq_f64(t1im, rim));
                st(re, i2, vsubq_f64(t0re, t2re));
                st(im, i2, vsubq_f64(t0im, t2im));
                st(re, i3, vsubq_f64(t1re, rre));
                st(im, i3, vsubq_f64(t1im, rim));
            }
        }
    }
}

/// One split-radix combine (`cur = [U | Z | Z']` → `out`), 2 bins per
/// iteration — the NEON mirror of `kernels::split_combine_scalar`.
///
/// # Safety
///
/// The host must support NEON (verified at plan time). `cur_*` must
/// hold `out_re.len()` points, `out_*` be equal-length, and
/// `out_re.len() / 4` a multiple of 2.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn split_combine_neon(
    cur_re: &[f64],
    cur_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    tw: &SrTwiddles,
    forward: bool,
) {
    let len = out_re.len();
    let half = len / 2;
    let quarter = len / 4;
    debug_assert!(cur_re.len() >= len && cur_im.len() >= len && out_im.len() == len);
    debug_assert!(quarter % 2 == 0);
    let sign = vdupq_n_f64(if forward { 1.0 } else { -1.0 });
    let neg_sign = vdupq_n_f64(if forward { -1.0 } else { 1.0 });
    for k in (0..quarter).step_by(2) {
        // SAFETY: k + 2 <= quarter, so every index below stays within
        // `len` (out planes) / `quarter` (twiddle planes).
        unsafe {
            let w1re = ld(&tw.w1re, k);
            let w1im = vmulq_f64(ld(&tw.w1im, k), sign);
            let w3re = ld(&tw.w3re, k);
            let w3im = vmulq_f64(ld(&tw.w3im, k), sign);
            let (t1re, t1im) = cmul(ld(cur_re, half + k), ld(cur_im, half + k), w1re, w1im);
            let (t2re, t2im) =
                cmul(ld(cur_re, half + quarter + k), ld(cur_im, half + quarter + k), w3re, w3im);
            let (sre, sim) = (vaddq_f64(t1re, t2re), vaddq_f64(t1im, t2im));
            let (dre, dim) = (vsubq_f64(t1re, t2re), vsubq_f64(t1im, t2im));
            let rre = vmulq_f64(dim, sign);
            let rim = vmulq_f64(dre, neg_sign);
            let (u0re, u0im) = (ld(cur_re, k), ld(cur_im, k));
            let (u1re, u1im) = (ld(cur_re, k + quarter), ld(cur_im, k + quarter));
            st(out_re, k, vaddq_f64(u0re, sre));
            st(out_im, k, vaddq_f64(u0im, sim));
            st(out_re, k + half, vsubq_f64(u0re, sre));
            st(out_im, k + half, vsubq_f64(u0im, sim));
            st(out_re, k + quarter, vaddq_f64(u1re, rre));
            st(out_im, k + quarter, vaddq_f64(u1im, rim));
            st(out_re, k + 3 * quarter, vsubq_f64(u1re, rre));
            st(out_im, k + 3 * quarter, vsubq_f64(u1im, rim));
        }
    }
}
