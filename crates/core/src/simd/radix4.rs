//! The SIMD radix-4 DIT engine: interleaved `C64` at the trait
//! boundary, split real/imag planes inside.
//!
//! The plan owns everything the hot path needs — the base-4
//! digit-reversal gather order, per-stage twiddle tables in split
//! (structure-of-arrays) form, and the two scratch planes — so
//! `execute_into` does zero heap work per transform. The first stage
//! (`len = 4`, all twiddles 1) is fused into the deinterleaving
//! gather; every later stage runs 4 (AVX2) or 2 (NEON) butterflies per
//! iteration, falling back to the scalar split-plane kernel when no
//! vector unit is active.

use crate::cached::MemTraffic;
use crate::engine::{check_io, FftEngine};
use crate::error::FftError;
use crate::radix4::{digit_reverse_base4, is_power_of_four};
use crate::reference::Direction;
use crate::simd::kernels::{self, R4Twiddles};
use crate::simd::SimdLevel;
use afft_num::C64;

/// Radix-4 DIT FFT over split-plane scratch with vectorized stages
/// (power-of-4 sizes `>= 16`). Registered as `radix4_simd` when the
/// host exposes a vector unit; see the [module docs](crate::simd) for
/// the dispatch and layout story.
#[derive(Debug, Clone)]
pub struct Radix4SimdEngine {
    n: usize,
    level: SimdLevel,
    /// `rev[i]` = base-4 digit reversal of `i`: the gather order.
    rev: Vec<usize>,
    /// Per stage (size 16, 64, ..., n) split twiddle tables; the
    /// `len = 4` stage is twiddle-free and fused into the gather.
    stages: Vec<R4Twiddles>,
    /// Engine-owned split scratch planes (the FFTW plan idiom).
    re: Vec<f64>,
    im: Vec<f64>,
}

impl Radix4SimdEngine {
    /// Plans a SIMD radix-4 FFT of size `n` (a power of 4, `>= 16`) at
    /// the host's [`active_level`](crate::simd::active_level).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Self::with_level(n, crate::simd::active_level())
    }

    /// Plans at an explicit dispatch level — the A/B hook the
    /// equivalence tests and benches use. The level is clamped to what
    /// the host supports ([`SimdLevel::clamp_to_host`]), so a forced
    /// vector level on a host without the feature soundly degrades to
    /// the scalar split-plane path.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `n` is a power of 4
    /// `>= 16`.
    pub fn with_level(n: usize, level: SimdLevel) -> Result<Self, FftError> {
        if !is_power_of_four(n) || n < 16 {
            return Err(FftError::InvalidSize {
                n,
                reason: "not a power of four >= 16",
                factor: None,
            });
        }
        let digits = n.trailing_zeros() / 2;
        let rev = (0..n).map(|i| digit_reverse_base4(i, digits)).collect();
        let mut stages = Vec::new();
        let mut len = 16usize;
        while len <= n {
            stages.push(R4Twiddles::for_stage(len));
            len *= 4;
        }
        Ok(Radix4SimdEngine {
            n,
            level: level.clamp_to_host(),
            rev,
            stages,
            re: vec![0.0; n],
            im: vec![0.0; n],
        })
    }

    /// The dispatch level the plan executes at (post-clamp).
    pub fn level(&self) -> SimdLevel {
        self.level
    }
}

impl FftEngine for Radix4SimdEngine {
    fn name(&self) -> &str {
        "radix4_simd"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        check_io(self.n, input, output)?;
        let forward = dir == Direction::Forward;
        let sign = if forward { 1.0 } else { -1.0 };
        // Deinterleave, gather and the twiddle-free first stage in one
        // pass: each group of 4 digit-reversed points becomes a 4-point
        // DFT written straight into the split planes.
        for g in (0..self.n).step_by(4) {
            let a = input[self.rev[g]];
            let b = input[self.rev[g + 1]];
            let c = input[self.rev[g + 2]];
            let e = input[self.rev[g + 3]];
            let t0 = a + c;
            let t1 = a - c;
            let t2 = b + e;
            let t3 = b - e;
            let r = if forward { t3.mul_neg_i() } else { t3.mul_i() };
            let (o0, o1, o2, o3) = (t0 + t2, t1 + r, t0 - t2, t1 - r);
            self.re[g] = o0.re;
            self.im[g] = o0.im;
            self.re[g + 1] = o1.re;
            self.im[g + 1] = o1.im;
            self.re[g + 2] = o2.re;
            self.im[g + 2] = o2.im;
            self.re[g + 3] = o3.re;
            self.im[g + 3] = o3.im;
        }
        let mut len = 16usize;
        for tw in &self.stages {
            match self.level {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: level == Avx2Fma only after clamp_to_host
                // confirmed the host detects avx2 + fma; plane lengths
                // and `len / 4 % 4 == 0` hold by construction.
                SimdLevel::Avx2Fma => unsafe {
                    crate::simd::x86::radix4_stage_avx2(
                        &mut self.re,
                        &mut self.im,
                        tw,
                        len,
                        forward,
                    );
                },
                #[cfg(target_arch = "aarch64")]
                // SAFETY: level == Neon only after clamp_to_host
                // confirmed the host detects neon; plane lengths and
                // `len / 4 % 2 == 0` hold by construction.
                SimdLevel::Neon => unsafe {
                    crate::simd::neon::radix4_stage_neon(
                        &mut self.re,
                        &mut self.im,
                        tw,
                        len,
                        forward,
                    );
                },
                _ => kernels::radix4_stage_scalar(&mut self.re, &mut self.im, tw, len, sign),
            }
            len *= 4;
        }
        kernels::interleave(&self.re, &self.im, output);
        Ok(())
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // One full pass per radix-4 stage plus the deinterleave and
        // interleave layout passes.
        let stages = (self.n.trailing_zeros() / 2) as usize;
        Some(MemTraffic { loads: self.n * (stages + 2), stores: self.n * (stages + 2) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use afft_num::Complex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn matches_naive_at_every_level_and_direction() {
        for n in [16usize, 64, 256, 1024] {
            let x = random_signal(n, 31 + n as u64);
            for level in [SimdLevel::Scalar, crate::simd::detect_host()] {
                let mut engine = Radix4SimdEngine::with_level(n, level).unwrap();
                let mut got = vec![Complex::zero(); n];
                for dir in [Direction::Forward, Direction::Inverse] {
                    let want = dft_naive(&x, dir).unwrap();
                    engine.execute_into(&x, &mut got, dir).unwrap();
                    let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
                    assert!(max_error(&got, &want) / peak < 1e-12, "n={n} level={level:?} {dir:?}");
                }
            }
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 256;
        let mut engine = Radix4SimdEngine::new(n).unwrap();
        let x = random_signal(n, 7);
        let mut spec = vec![Complex::zero(); n];
        let mut back = vec![Complex::zero(); n];
        engine.execute_into(&x, &mut spec, Direction::Forward).unwrap();
        engine.execute_into(&spec, &mut back, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = back.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-10);
    }

    #[test]
    fn rejects_unsupported_sizes() {
        for n in [0usize, 2, 4, 8, 32, 128, 512] {
            assert!(matches!(Radix4SimdEngine::new(n), Err(FftError::InvalidSize { .. })), "{n}");
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let mut engine = Radix4SimdEngine::new(16).unwrap();
        let x = random_signal(16, 1);
        let mut short = vec![Complex::zero(); 8];
        assert!(matches!(
            engine.execute_into(&x, &mut short, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 16, got: 8 })
        ));
    }

    #[test]
    fn forced_level_is_clamped_to_the_host() {
        // Whichever of these the host can't run must degrade to scalar.
        for level in [SimdLevel::Avx2Fma, SimdLevel::Neon] {
            let engine = Radix4SimdEngine::with_level(64, level).unwrap();
            assert!(
                engine.level() == SimdLevel::Scalar || engine.level() == crate::simd::detect_host()
            );
        }
    }
}
