//! The SIMD split-radix engine: the scalar recursion's L-shaped
//! decomposition over split real/imag planes, with vectorized combine
//! loops.
//!
//! Structure mirrors [`crate::splitradix`]: an `N`-point DFT splits
//! into one `N/2`-point DFT over the even samples and two `N/4`-point
//! DFTs over the `4m+1` / `4m+3` samples, recursing through a
//! plan-owned 2N-point scratch arena. The differences are layout and
//! width: the input is deinterleaved once into split planes (so the
//! strided recursive reads are plain `f64` loads), per-level twiddle
//! tables are stored in split form, and each combine level with at
//! least one full vector of bins runs 4 (AVX2) or 2 (NEON) bins per
//! iteration. Base cases and narrow levels use the scalar split-plane
//! kernel, so every host computes the same sign algebra.

use crate::cached::MemTraffic;
use crate::engine::{check_io, FftEngine};
use crate::error::FftError;
use crate::reference::{check_pow2, Direction};
use crate::simd::kernels::{self, SrTwiddles};
use crate::simd::SimdLevel;
use afft_num::C64;

/// Split-radix FFT over split-plane scratch with vectorized combines
/// (power-of-two sizes `>= 16`). Registered as `split_radix_simd` when
/// the host exposes a vector unit; see the [module
/// docs](crate::simd) for the dispatch and layout story.
#[derive(Debug, Clone)]
pub struct SplitRadixSimdEngine {
    n: usize,
    level: SimdLevel,
    /// Per combine level, indexed by `log2(len)` (entries below
    /// `len = 4` are empty placeholders: those lengths are base cases).
    levels: Vec<SrTwiddles>,
    // Engine-owned planes: deinterleaved input, combined output, and
    // the 2N recursion arena.
    in_re: Vec<f64>,
    in_im: Vec<f64>,
    out_re: Vec<f64>,
    out_im: Vec<f64>,
    sc_re: Vec<f64>,
    sc_im: Vec<f64>,
}

impl SplitRadixSimdEngine {
    /// Plans a SIMD split-radix FFT of size `n` (a power of two,
    /// `>= 16`) at the host's
    /// [`active_level`](crate::simd::active_level).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Self::with_level(n, crate::simd::active_level())
    }

    /// Plans at an explicit dispatch level, clamped to the host
    /// ([`SimdLevel::clamp_to_host`]) — see
    /// [`Radix4SimdEngine::with_level`](crate::simd::Radix4SimdEngine::with_level).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `n` is a power of two
    /// `>= 16`.
    pub fn with_level(n: usize, level: SimdLevel) -> Result<Self, FftError> {
        check_pow2(n)?;
        if n < 16 {
            return Err(FftError::InvalidSize {
                n,
                reason: "below the SIMD tier's minimum (16)",
                factor: None,
            });
        }
        let log2n = n.trailing_zeros() as usize;
        let levels = (0..=log2n)
            .map(|bits| {
                if bits < 2 {
                    SrTwiddles { w1re: vec![], w1im: vec![], w3re: vec![], w3im: vec![] }
                } else {
                    SrTwiddles::for_level(1 << bits)
                }
            })
            .collect();
        Ok(SplitRadixSimdEngine {
            n,
            level: level.clamp_to_host(),
            levels,
            in_re: vec![0.0; n],
            in_im: vec![0.0; n],
            out_re: vec![0.0; n],
            out_im: vec![0.0; n],
            sc_re: vec![0.0; 2 * n],
            sc_im: vec![0.0; 2 * n],
        })
    }

    /// The dispatch level the plan executes at (post-clamp).
    pub fn level(&self) -> SimdLevel {
        self.level
    }
}

impl FftEngine for SplitRadixSimdEngine {
    fn name(&self) -> &str {
        "split_radix_simd"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        dir: Direction,
    ) -> Result<(), FftError> {
        check_io(self.n, input, output)?;
        let forward = dir == Direction::Forward;
        kernels::deinterleave(input, &mut self.in_re, &mut self.in_im);
        rec(
            &self.levels,
            self.level,
            &self.in_re,
            &self.in_im,
            0,
            1,
            &mut self.out_re,
            &mut self.out_im,
            &mut self.sc_re,
            &mut self.sc_im,
            forward,
        );
        kernels::interleave(&self.out_re, &self.out_im, output);
        Ok(())
    }

    fn traffic(&self) -> Option<MemTraffic> {
        // The L-shaped recursion touches ~3/4 of the points per
        // radix-2 stage equivalent, plus the two layout passes.
        let stages = self.n.trailing_zeros() as usize;
        let moved = 3 * self.n * stages / 4 + 2 * self.n;
        Some(MemTraffic { loads: moved, stores: moved })
    }
}

/// One recursion level: the DFT of `in[offset + stride*m]` for
/// `m in 0..out_re.len()`, written to the `out` planes. Sub-spectra
/// live in `sc[..len]` (`[U | Z | Z']`, the scalar recursion's layout),
/// with `sc[len..]` shared by the sub-recursions.
#[allow(clippy::too_many_arguments)]
fn rec(
    levels: &[SrTwiddles],
    simd: SimdLevel,
    in_re: &[f64],
    in_im: &[f64],
    offset: usize,
    stride: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
    sc_re: &mut [f64],
    sc_im: &mut [f64],
    forward: bool,
) {
    let len = out_re.len();
    if len == 1 {
        out_re[0] = in_re[offset];
        out_im[0] = in_im[offset];
        return;
    }
    if len == 2 {
        let (are, aim) = (in_re[offset], in_im[offset]);
        let (bre, bim) = (in_re[offset + stride], in_im[offset + stride]);
        out_re[0] = are + bre;
        out_im[0] = aim + bim;
        out_re[1] = are - bre;
        out_im[1] = aim - bim;
        return;
    }
    let half = len / 2;
    let quarter = len / 4;
    let (cur_re, rest_re) = sc_re.split_at_mut(len);
    let (cur_im, rest_im) = sc_im.split_at_mut(len);
    {
        let (u_re, zz_re) = cur_re.split_at_mut(half);
        let (z_re, zp_re) = zz_re.split_at_mut(quarter);
        let (u_im, zz_im) = cur_im.split_at_mut(half);
        let (z_im, zp_im) = zz_im.split_at_mut(quarter);
        rec(levels, simd, in_re, in_im, offset, stride * 2, u_re, u_im, rest_re, rest_im, forward);
        rec(
            levels,
            simd,
            in_re,
            in_im,
            offset + stride,
            stride * 4,
            z_re,
            z_im,
            rest_re,
            rest_im,
            forward,
        );
        rec(
            levels,
            simd,
            in_re,
            in_im,
            offset + 3 * stride,
            stride * 4,
            zp_re,
            zp_im,
            rest_re,
            rest_im,
            forward,
        );
    }
    let tw = &levels[len.trailing_zeros() as usize];
    match simd {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: simd == Avx2Fma only after clamp_to_host confirmed
        // the host detects avx2 + fma; `quarter >= 4` is checked by the
        // guard and the plane lengths hold by construction.
        SimdLevel::Avx2Fma if quarter >= 4 => unsafe {
            crate::simd::x86::split_combine_avx2(cur_re, cur_im, out_re, out_im, tw, forward);
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: simd == Neon only after clamp_to_host confirmed the
        // host detects neon; `quarter >= 2` is checked by the guard and
        // the plane lengths hold by construction.
        SimdLevel::Neon if quarter >= 2 => unsafe {
            crate::simd::neon::split_combine_neon(cur_re, cur_im, out_re, out_im, tw, forward);
        },
        _ => {
            let sign = if forward { 1.0 } else { -1.0 };
            kernels::split_combine_scalar(cur_re, cur_im, out_re, out_im, tw, sign);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use afft_num::Complex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn matches_naive_at_every_level_and_direction() {
        for n in [16usize, 32, 128, 512, 1024] {
            let x = random_signal(n, 41 + n as u64);
            for level in [SimdLevel::Scalar, crate::simd::detect_host()] {
                let mut engine = SplitRadixSimdEngine::with_level(n, level).unwrap();
                let mut got = vec![Complex::zero(); n];
                for dir in [Direction::Forward, Direction::Inverse] {
                    let want = dft_naive(&x, dir).unwrap();
                    engine.execute_into(&x, &mut got, dir).unwrap();
                    let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
                    assert!(max_error(&got, &want) / peak < 1e-12, "n={n} level={level:?} {dir:?}");
                }
            }
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 512;
        let mut engine = SplitRadixSimdEngine::new(n).unwrap();
        let x = random_signal(n, 11);
        let mut spec = vec![Complex::zero(); n];
        let mut back = vec![Complex::zero(); n];
        engine.execute_into(&x, &mut spec, Direction::Forward).unwrap();
        engine.execute_into(&spec, &mut back, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = back.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-10);
    }

    #[test]
    fn rejects_unsupported_sizes() {
        for n in [0usize, 1, 2, 4, 8, 12, 60] {
            assert!(
                matches!(SplitRadixSimdEngine::new(n), Err(FftError::InvalidSize { .. })),
                "{n}"
            );
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let mut engine = SplitRadixSimdEngine::new(64).unwrap();
        let x = random_signal(64, 1);
        let mut short = vec![Complex::zero(); 32];
        assert!(matches!(
            engine.execute_into(&x, &mut short, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 64, got: 32 })
        ));
    }
}
