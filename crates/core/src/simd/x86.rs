//! AVX2 + FMA back-end: 4 × f64 lanes over split real/imag planes.
//!
//! Mirrors `kernels::radix4_stage_scalar` / `split_combine_scalar`
//! lane-parallel. Because the data lives in split planes, a vector
//! complex multiply is two FMAs and two multiplies — no shuffles
//! anywhere — and twiddle loads are contiguous. Direction handling is
//! branch-free: the imag twiddle plane and the `∓i` rotation are
//! sign-flipped by XOR masks chosen once per call.
//!
//! All `unsafe` in this file is either a `#[target_feature]` call
//! boundary (callers must have verified AVX2 + FMA at plan time; see
//! `SimdLevel::clamp_to_host`) or a raw unaligned load/store whose
//! bounds are asserted in debug builds and guaranteed by the callers'
//! loop structure (`quarter % 4 == 0`, indices `< n`).

use super::kernels::{R4Twiddles, SrTwiddles};
use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_fmadd_pd, _mm256_fmsub_pd, _mm256_loadu_pd, _mm256_mul_pd,
    _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm256_xor_pd,
};

/// Loads 4 lanes from `p[i..i + 4]`.
///
/// # Safety
///
/// Caller must have AVX2 enabled and guarantee `i + 4 <= p.len()`
/// (debug-asserted).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn ld(p: &[f64], i: usize) -> __m256d {
    debug_assert!(i + 4 <= p.len());
    // SAFETY: in-bounds per the caller contract above.
    unsafe { _mm256_loadu_pd(p.as_ptr().add(i)) }
}

/// Stores 4 lanes to `p[i..i + 4]`.
///
/// # Safety
///
/// Caller must have AVX2 enabled and guarantee `i + 4 <= p.len()`
/// (debug-asserted).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn st(p: &mut [f64], i: usize, v: __m256d) {
    debug_assert!(i + 4 <= p.len());
    // SAFETY: in-bounds per the caller contract above.
    unsafe { _mm256_storeu_pd(p.as_mut_ptr().add(i), v) }
}

/// Lane-wise complex multiply over split planes:
/// `(are + i·aim) * (bre + i·bim)`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
fn cmul(are: __m256d, aim: __m256d, bre: __m256d, bim: __m256d) -> (__m256d, __m256d) {
    let re = _mm256_fmsub_pd(are, bre, _mm256_mul_pd(aim, bim));
    let im = _mm256_fmadd_pd(are, bim, _mm256_mul_pd(aim, bre));
    (re, im)
}

/// The three sign masks one direction needs: conjugation of the loaded
/// twiddle imag plane, and the two halves of the `∓i` rotation
/// (`r_re = ±diff_im`, `r_im = ∓diff_re`).
#[inline]
#[target_feature(enable = "avx2")]
fn masks(forward: bool) -> (__m256d, __m256d, __m256d) {
    let neg = _mm256_set1_pd(-0.0);
    let zero = _mm256_setzero_pd();
    if forward {
        (zero, zero, neg)
    } else {
        (neg, neg, zero)
    }
}

/// One full radix-4 DIT stage of size `len`, 4 butterflies per
/// iteration — the AVX2 mirror of `kernels::radix4_stage_scalar`.
///
/// # Safety
///
/// The host must support AVX2 + FMA (verified at plan time via
/// `SimdLevel::clamp_to_host`). `re`/`im` must be equal-length planes
/// with `re.len()` a multiple of `len`, and `len / 4` a multiple of 4.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn radix4_stage_avx2(
    re: &mut [f64],
    im: &mut [f64],
    tw: &R4Twiddles,
    len: usize,
    forward: bool,
) {
    let n = re.len();
    let quarter = len / 4;
    debug_assert!(im.len() == n && n.is_multiple_of(len) && quarter.is_multiple_of(4));
    let (m_conj, m_rot_re, m_rot_im) = masks(forward);
    for base in (0..n).step_by(len) {
        for j in (0..quarter).step_by(4) {
            let i0 = base + j;
            let i1 = i0 + quarter;
            let i2 = i0 + 2 * quarter;
            let i3 = i0 + 3 * quarter;
            // SAFETY: i3 + 4 <= base + len <= n, twiddle planes are
            // `quarter` long — every access below is in bounds.
            unsafe {
                let w1re = ld(&tw.w1re, j);
                let w1im = _mm256_xor_pd(ld(&tw.w1im, j), m_conj);
                let w2re = ld(&tw.w2re, j);
                let w2im = _mm256_xor_pd(ld(&tw.w2im, j), m_conj);
                let w3re = ld(&tw.w3re, j);
                let w3im = _mm256_xor_pd(ld(&tw.w3im, j), m_conj);
                let (are, aim) = (ld(re, i0), ld(im, i0));
                let (bre, bim) = cmul(ld(re, i1), ld(im, i1), w1re, w1im);
                let (cre, cim) = cmul(ld(re, i2), ld(im, i2), w2re, w2im);
                let (ere, eim) = cmul(ld(re, i3), ld(im, i3), w3re, w3im);
                let (t0re, t0im) = (_mm256_add_pd(are, cre), _mm256_add_pd(aim, cim));
                let (t1re, t1im) = (_mm256_sub_pd(are, cre), _mm256_sub_pd(aim, cim));
                let (t2re, t2im) = (_mm256_add_pd(bre, ere), _mm256_add_pd(bim, eim));
                let (t3re, t3im) = (_mm256_sub_pd(bre, ere), _mm256_sub_pd(bim, eim));
                let rre = _mm256_xor_pd(t3im, m_rot_re);
                let rim = _mm256_xor_pd(t3re, m_rot_im);
                st(re, i0, _mm256_add_pd(t0re, t2re));
                st(im, i0, _mm256_add_pd(t0im, t2im));
                st(re, i1, _mm256_add_pd(t1re, rre));
                st(im, i1, _mm256_add_pd(t1im, rim));
                st(re, i2, _mm256_sub_pd(t0re, t2re));
                st(im, i2, _mm256_sub_pd(t0im, t2im));
                st(re, i3, _mm256_sub_pd(t1re, rre));
                st(im, i3, _mm256_sub_pd(t1im, rim));
            }
        }
    }
}

/// One split-radix combine (`cur = [U | Z | Z']` → `out`), 4 bins per
/// iteration — the AVX2 mirror of `kernels::split_combine_scalar`.
///
/// # Safety
///
/// The host must support AVX2 + FMA (verified at plan time via
/// `SimdLevel::clamp_to_host`). `cur_*` must hold `out_re.len()`
/// points, `out_*` be equal-length, and `out_re.len() / 4` a multiple
/// of 4.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn split_combine_avx2(
    cur_re: &[f64],
    cur_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    tw: &SrTwiddles,
    forward: bool,
) {
    let len = out_re.len();
    let half = len / 2;
    let quarter = len / 4;
    debug_assert!(cur_re.len() >= len && cur_im.len() >= len && out_im.len() == len);
    debug_assert!(quarter.is_multiple_of(4));
    let (m_conj, m_rot_re, m_rot_im) = masks(forward);
    for k in (0..quarter).step_by(4) {
        // SAFETY: k + 4 <= quarter, so every index below stays within
        // `len` (out planes) / `quarter` (twiddle planes).
        unsafe {
            let w1re = ld(&tw.w1re, k);
            let w1im = _mm256_xor_pd(ld(&tw.w1im, k), m_conj);
            let w3re = ld(&tw.w3re, k);
            let w3im = _mm256_xor_pd(ld(&tw.w3im, k), m_conj);
            let (t1re, t1im) = cmul(ld(cur_re, half + k), ld(cur_im, half + k), w1re, w1im);
            let (t2re, t2im) =
                cmul(ld(cur_re, half + quarter + k), ld(cur_im, half + quarter + k), w3re, w3im);
            let (sre, sim) = (_mm256_add_pd(t1re, t2re), _mm256_add_pd(t1im, t2im));
            let (dre, dim) = (_mm256_sub_pd(t1re, t2re), _mm256_sub_pd(t1im, t2im));
            let rre = _mm256_xor_pd(dim, m_rot_re);
            let rim = _mm256_xor_pd(dre, m_rot_im);
            let (u0re, u0im) = (ld(cur_re, k), ld(cur_im, k));
            let (u1re, u1im) = (ld(cur_re, k + quarter), ld(cur_im, k + quarter));
            st(out_re, k, _mm256_add_pd(u0re, sre));
            st(out_im, k, _mm256_add_pd(u0im, sim));
            st(out_re, k + half, _mm256_sub_pd(u0re, sre));
            st(out_im, k + half, _mm256_sub_pd(u0im, sim));
            st(out_re, k + quarter, _mm256_add_pd(u1re, rre));
            st(out_im, k + quarter, _mm256_add_pd(u1im, rim));
            st(out_re, k + 3 * quarter, _mm256_sub_pd(u1re, rre));
            st(out_im, k + 3 * quarter, _mm256_sub_pd(u1im, rim));
        }
    }
}
