//! Signal-quality metrics for the fixed-point datapath.
//!
//! The paper's datapath is 16-bit; any fixed-point FFT trades dynamic
//! range for area. These helpers quantify that trade (used by the
//! `quantization` experiment and the BFP comparison).

use afft_num::C64;

/// Signal-to-noise ratio in dB between a reference and a measured
/// vector: `10 log10(sum|ref|^2 / sum|ref - meas|^2)`.
///
/// Returns `f64::INFINITY` for an exact match.
///
/// # Panics
///
/// Panics if the lengths differ or the reference is all-zero.
///
/// # Examples
///
/// ```
/// use afft_core::snr::snr_db;
/// use afft_num::Complex;
///
/// let reference = vec![Complex::new(1.0, 0.0); 8];
/// let noisy: Vec<_> = reference.iter().map(|c| *c + Complex::new(0.01, 0.0)).collect();
/// let snr = snr_db(&reference, &noisy);
/// assert!((snr - 40.0).abs() < 0.1);
/// ```
pub fn snr_db(reference: &[C64], measured: &[C64]) -> f64 {
    assert_eq!(reference.len(), measured.len(), "snr_db: length mismatch");
    let sig: f64 = reference.iter().map(|c| c.norm_sqr()).sum();
    assert!(sig > 0.0, "snr_db: reference has no energy");
    let err: f64 = reference.iter().zip(measured).map(|(a, b)| (*a - *b).norm_sqr()).sum();
    if err == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / err).log10()
    }
}

/// Root-mean-square error between two complex vectors.
///
/// # Panics
///
/// Panics if the lengths differ or the input is empty.
pub fn rms_error(reference: &[C64], measured: &[C64]) -> f64 {
    assert_eq!(reference.len(), measured.len(), "rms_error: length mismatch");
    assert!(!reference.is_empty(), "rms_error: empty input");
    let err: f64 = reference.iter().zip(measured).map(|(a, b)| (*a - *b).norm_sqr()).sum();
    (err / reference.len() as f64).sqrt()
}

/// Effective number of bits implied by an SNR for a full-scale
/// sinusoid: `(snr_db - 1.76) / 6.02`.
pub fn effective_bits(snr_db: f64) -> f64 {
    (snr_db - 1.76) / 6.02
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_num::Complex;

    #[test]
    fn exact_match_is_infinite_snr() {
        let x = vec![Complex::new(1.0, -2.0); 4];
        assert_eq!(snr_db(&x, &x), f64::INFINITY);
        assert_eq!(rms_error(&x, &x), 0.0);
    }

    #[test]
    fn known_noise_level() {
        let reference = vec![Complex::new(1.0, 0.0); 100];
        let measured: Vec<C64> = reference.iter().map(|c| *c + Complex::new(0.001, 0.0)).collect();
        let snr = snr_db(&reference, &measured);
        assert!((snr - 60.0).abs() < 0.1, "snr {snr}");
        assert!((rms_error(&reference, &measured) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn effective_bits_of_16_bit_quantisation() {
        // Ideal 16-bit quantisation ~ 98.1 dB SNR ~ 16 bits.
        let bits = effective_bits(98.09);
        assert!((bits - 16.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = vec![Complex::new(1.0, 0.0); 2];
        let b = vec![Complex::new(1.0, 0.0); 3];
        let _ = snr_db(&a, &b);
    }
}
