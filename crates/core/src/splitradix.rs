//! Split-radix FFT for power-of-two sizes — the lowest known
//! operation count among practical power-of-two FFT algorithms
//! (~4N log2 N real operations versus the radix-2 algorithm's
//! ~5N log2 N).
//!
//! The decomposition splits an `N`-point DFT into one `N/2`-point DFT
//! over the even samples and two `N/4`-point DFTs over the `4m+1` and
//! `4m+3` samples:
//!
//! ```text
//! X[k]        = U[k] + (W^k Z[k] + W^{3k} Z'[k])
//! X[k + N/2]  = U[k] - (W^k Z[k] + W^{3k} Z'[k])
//! X[k + N/4]  = U[k + N/4] ∓ i (W^k Z[k] - W^{3k} Z'[k])
//! X[k + 3N/4] = U[k + N/4] ± i (W^k Z[k] - W^{3k} Z'[k])
//! ```
//!
//! (upper signs forward, lower inverse). The recursion reads the input
//! through an `(offset, stride)` view — no gather pass — and writes
//! each level's three sub-spectra into a plan-owned scratch arena, so
//! execution allocates nothing. All `W_N^k` twiddles come from one
//! plan-time table.

use crate::error::FftError;
use crate::reference::{check_pow2, Direction};
use afft_num::{twiddle, Complex, C64};

/// Plan-time state of the split-radix kernel: the full `W_N^k` twiddle
/// table (forward; the inverse conjugates on the fly) and the recursion
/// scratch arena (`2N` points: `N` for the current level's sub-spectra,
/// `N` shared by the sub-recursions).
#[derive(Debug, Clone)]
pub struct SplitRadixPlan {
    n: usize,
    tw: Vec<C64>,
    scratch: Vec<C64>,
}

impl SplitRadixPlan {
    /// Plans a split-radix FFT of size `n` (a power of two, `>= 2`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] otherwise.
    pub fn new(n: usize) -> Result<Self, FftError> {
        check_pow2(n)?;
        let tw = (0..n).map(|k| twiddle(n, k)).collect();
        Ok(SplitRadixPlan { n, tw, scratch: vec![Complex::zero(); 2 * n] })
    }

    /// The planned transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true for a plan (`n >= 2`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Executes the planned split-radix FFT into `output` (natural bin
/// order, unnormalised-DFT contract, no heap allocation).
///
/// Takes `&mut` the plan for its scratch arena only; the twiddle table
/// is never written.
///
/// # Errors
///
/// Returns [`FftError::LengthMismatch`] if either buffer is not
/// `plan.len()` points.
pub fn split_radix_into(
    plan: &mut SplitRadixPlan,
    input: &[C64],
    output: &mut [C64],
    dir: Direction,
) -> Result<(), FftError> {
    let n = plan.n;
    if input.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: input.len() });
    }
    if output.len() != n {
        return Err(FftError::LengthMismatch { expected: n, got: output.len() });
    }
    let mut scratch = core::mem::take(&mut plan.scratch);
    rec(&plan.tw, n, input, 0, 1, output, &mut scratch, dir == Direction::Forward);
    plan.scratch = scratch;
    Ok(())
}

/// One recursion level: the DFT of `x[offset + stride*m]` for
/// `m in 0..out.len()`, written to `out`. `n_total` and `tw` address
/// the shared top-level twiddle table (`W_len^k = W_N^{k * N/len}`).
#[allow(clippy::too_many_arguments)]
fn rec(
    tw: &[C64],
    n_total: usize,
    input: &[C64],
    offset: usize,
    stride: usize,
    out: &mut [C64],
    scratch: &mut [C64],
    forward: bool,
) {
    let len = out.len();
    if len == 1 {
        out[0] = input[offset];
        return;
    }
    if len == 2 {
        let a = input[offset];
        let b = input[offset + stride];
        out[0] = a + b;
        out[1] = a - b;
        return;
    }
    let half = len / 2;
    let quarter = len / 4;
    let (cur, rest) = scratch.split_at_mut(len);
    {
        let (u, zz) = cur.split_at_mut(half);
        let (z, zp) = zz.split_at_mut(quarter);
        rec(tw, n_total, input, offset, stride * 2, u, rest, forward);
        rec(tw, n_total, input, offset + stride, stride * 4, z, rest, forward);
        rec(tw, n_total, input, offset + 3 * stride, stride * 4, zp, rest, forward);
    }
    // cur = [U (half) | Z (quarter) | Z' (quarter)]; combine into out.
    let step = n_total / len; // W_len^k = tw[k * step]
    for k in 0..quarter {
        let (w1, w3) = {
            let a = tw[k * step];
            let b = tw[3 * k * step % n_total];
            if forward {
                (a, b)
            } else {
                (a.conj(), b.conj())
            }
        };
        let t1 = cur[half + k] * w1;
        let t2 = cur[half + quarter + k] * w3;
        let sum = t1 + t2;
        let diff = t1 - t2;
        let rot = if forward { diff.mul_neg_i() } else { diff.mul_i() };
        let u0 = cur[k];
        let u1 = cur[k + quarter];
        out[k] = u0 + sum;
        out[k + half] = u0 - sum;
        out[k + quarter] = u1 + rot;
        out[k + 3 * quarter] = u1 - rot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{dft_naive, max_error};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn matches_naive_both_directions() {
        for n in [2usize, 4, 8, 16, 32, 128, 512, 1024] {
            let mut plan = SplitRadixPlan::new(n).unwrap();
            let x = random_signal(n, 23 + n as u64);
            let mut got = vec![Complex::zero(); n];
            for dir in [Direction::Forward, Direction::Inverse] {
                let want = dft_naive(&x, dir).unwrap();
                split_radix_into(&mut plan, &x, &mut got, dir).unwrap();
                let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max);
                assert!(max_error(&got, &want) / peak < 1e-12, "n={n} {dir:?}");
            }
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 512;
        let mut plan = SplitRadixPlan::new(n).unwrap();
        let x = random_signal(n, 5);
        let mut spec = vec![Complex::zero(); n];
        let mut back = vec![Complex::zero(); n];
        split_radix_into(&mut plan, &x, &mut spec, Direction::Forward).unwrap();
        split_radix_into(&mut plan, &spec, &mut back, Direction::Inverse).unwrap();
        let scaled: Vec<C64> = back.iter().map(|&v| v * (1.0 / n as f64)).collect();
        assert!(max_error(&scaled, &x) < 1e-10);
    }

    #[test]
    fn rejects_invalid_sizes() {
        for n in [0usize, 1, 12, 60] {
            assert!(matches!(SplitRadixPlan::new(n), Err(FftError::InvalidSize { .. })), "{n}");
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let mut plan = SplitRadixPlan::new(64).unwrap();
        let x = random_signal(64, 1);
        let mut short = vec![Complex::zero(); 32];
        assert!(matches!(
            split_radix_into(&mut plan, &x, &mut short, Direction::Forward),
            Err(FftError::LengthMismatch { expected: 64, got: 32 })
        ));
    }
}
