//! Software model of the butterfly unit (BU): the fixed computation
//! module of Fig. 2/Fig. 4, executing four radix-2 DIF butterflies per
//! operation on a CRF-resident group.

use crate::address::{butterfly_at, module_butterflies, Butterfly};
use crate::reference::Direction;
use crate::rom::CoefRom;
use afft_num::{Complex, Scalar};

/// Per-stage amplitude management of the datapath.
///
/// `f64` golden runs use [`Scaling::None`]; the 16-bit datapath uses
/// [`Scaling::HalfPerStage`] (a 1-bit arithmetic shift after every
/// butterfly) so that no stage can overflow — the output is then scaled
/// by `1/N` overall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scaling {
    /// No scaling: exact DFT amplitudes (use with `f64`).
    #[default]
    None,
    /// Halve both butterfly outputs every stage (divide-by-N overall).
    HalfPerStage,
}

/// Executes one radix-2 DIF butterfly in place.
///
/// `crf[a], crf[b] <- crf[a] + crf[b], (crf[a] - crf[b]) * w`,
/// optionally halving both outputs.
#[inline]
pub fn butterfly_dif<T: Scalar>(
    crf: &mut [Complex<T>],
    bf: Butterfly,
    w: Complex<T>,
    scaling: Scaling,
) {
    let x0 = crf[bf.addr_a];
    let x1 = crf[bf.addr_b];
    let (s, d) = match scaling {
        Scaling::None => (x0 + x1, (x0 - x1) * w),
        // Halve in wide arithmetic (one guard bit) so a full-scale sum
        // never saturates before the shift.
        Scaling::HalfPerStage => (x0.add_half(x1), x0.sub_half(x1) * w),
    };
    crf[bf.addr_a] = s;
    crf[bf.addr_b] = d;
}

/// Executes one `BUT4` operation: module `i` (1-indexed) of stage `j` on
/// a group of `g_size` points held at the front of `crf`.
///
/// Coefficients come from `rom` (sized for some `P >= g_size`; exponents
/// are rescaled automatically, so epoch-1 groups of size `Q < P` reuse
/// the epoch-0 ROM exactly as the hardware does).
///
/// # Panics
///
/// Panics if `g_size` is not a power of two `>= 8`, if `crf` is shorter
/// than `g_size`, or if `i`/`j` are out of range for the group.
pub fn bu4<T: Scalar>(
    crf: &mut [Complex<T>],
    rom: &CoefRom<T>,
    g_size: usize,
    j: u32,
    i: usize,
    dir: Direction,
    scaling: Scaling,
) {
    assert!(g_size.is_power_of_two() && g_size >= 8, "bu4: group size {g_size} invalid");
    assert!(crf.len() >= g_size, "bu4: CRF smaller than group");
    let p = g_size.trailing_zeros();
    for bf in module_butterflies(p, j, i) {
        let w = rom.group_twiddle(g_size, bf.rom_addr, dir);
        butterfly_dif(crf, bf, w, scaling);
    }
}

/// Runs one full DIF stage (`g_size / 8` `BUT4` operations) on a group.
///
/// # Panics
///
/// As for [`bu4`].
pub fn run_stage<T: Scalar>(
    crf: &mut [Complex<T>],
    rom: &CoefRom<T>,
    g_size: usize,
    j: u32,
    dir: Direction,
    scaling: Scaling,
) {
    for i in 1..=(g_size / 8) {
        bu4(crf, rom, g_size, j, i, dir, scaling);
    }
}

/// Runs all `log2(g_size)` stages of a group in place. After this the
/// CRF holds the group's DFT with output bin `s` at address
/// `bit_reverse(s)` (the `R` reorder is applied by the store path).
///
/// # Panics
///
/// As for [`bu4`].
pub fn run_group<T: Scalar>(
    crf: &mut [Complex<T>],
    rom: &CoefRom<T>,
    g_size: usize,
    dir: Direction,
    scaling: Scaling,
) {
    let p = g_size.trailing_zeros();
    for j in 1..=p {
        run_stage(crf, rom, g_size, j, dir, scaling);
    }
}

/// Runs a stage butterfly-by-butterfly using [`butterfly_at`] directly;
/// identical to [`run_stage`] but exposed for trace-level cross-checks
/// against the simulator's AC unit.
pub fn run_stage_by_counter<T: Scalar>(
    crf: &mut [Complex<T>],
    rom: &CoefRom<T>,
    g_size: usize,
    j: u32,
    dir: Direction,
    scaling: Scaling,
) {
    let p = g_size.trailing_zeros();
    for c in 0..g_size / 2 {
        let bf = butterfly_at(p, j, c);
        let w = rom.group_twiddle(g_size, bf.rom_addr, dir);
        butterfly_dif(crf, bf, w, scaling);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bit_reverse;
    use crate::reference::{dft_naive, max_error};
    use afft_num::{C64, Q15};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_group(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn group_equals_reference_dft_for_all_sizes() {
        for g in [8usize, 16, 32, 64, 128] {
            let x = random_group(g, g as u64);
            let want = dft_naive(&x, Direction::Forward).unwrap();
            let rom: CoefRom<f64> = CoefRom::new(g).unwrap();
            let mut crf = x;
            run_group(&mut crf, &rom, g, Direction::Forward, Scaling::None);
            // Output bin s sits at address rev(s).
            let p = g.trailing_zeros();
            let got: Vec<C64> = (0..g).map(|s| crf[bit_reverse(s, p)]).collect();
            assert!(max_error(&got, &want) < 1e-9 * g as f64, "g={g}");
        }
    }

    #[test]
    fn subgroup_reuses_bigger_rom() {
        // Epoch-1 groups of size Q read the P-sized ROM: must still be a
        // correct Q-point DFT.
        let (p_size, q_size) = (32usize, 8usize);
        let rom: CoefRom<f64> = CoefRom::new(p_size).unwrap();
        let x = random_group(q_size, 5);
        let want = dft_naive(&x, Direction::Forward).unwrap();
        let mut crf = vec![Complex::zero(); p_size];
        crf[..q_size].copy_from_slice(&x);
        run_group(&mut crf, &rom, q_size, Direction::Forward, Scaling::None);
        let got: Vec<C64> = (0..q_size).map(|s| crf[bit_reverse(s, 3)]).collect();
        assert!(max_error(&got, &want) < 1e-10);
    }

    #[test]
    fn inverse_direction_round_trips() {
        let g = 16;
        let rom: CoefRom<f64> = CoefRom::new(g).unwrap();
        let x = random_group(g, 6);
        let mut crf = x.clone();
        run_group(&mut crf, &rom, g, Direction::Forward, Scaling::None);
        // Un-reverse, run inverse, un-reverse again, scale by 1/g.
        let p = g.trailing_zeros();
        let mut mid: Vec<C64> = (0..g).map(|s| crf[bit_reverse(s, p)]).collect();
        run_group(&mut mid, &rom, g, Direction::Inverse, Scaling::None);
        let got: Vec<C64> = (0..g).map(|s| mid[bit_reverse(s, p)] * (1.0 / g as f64)).collect();
        assert!(max_error(&got, &x) < 1e-12);
    }

    #[test]
    fn counter_enumeration_equals_module_enumeration() {
        let g = 64;
        let rom: CoefRom<f64> = CoefRom::new(g).unwrap();
        let x = random_group(g, 7);
        let mut a = x.clone();
        let mut b = x;
        for j in 1..=6 {
            run_stage(&mut a, &rom, g, j, Direction::Forward, Scaling::None);
            run_stage_by_counter(&mut b, &rom, g, j, Direction::Forward, Scaling::None);
        }
        assert!(max_error(&a, &b) < 1e-15);
    }

    #[test]
    fn scaling_halves_every_stage() {
        let g = 8;
        let rom: CoefRom<f64> = CoefRom::new(g).unwrap();
        let mut crf = vec![Complex::new(0.8, 0.0); g];
        run_group(&mut crf, &rom, g, Direction::Forward, Scaling::HalfPerStage);
        // DC bin = mean of inputs = 0.8; bin 0 sits at address 0.
        assert!((crf[0].re - 0.8).abs() < 1e-12);
        for (addr, v) in crf.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-12, "addr {addr} should be zero");
        }
    }

    #[test]
    fn q15_group_tracks_float() {
        let g = 32;
        let xf = random_group(g, 8);
        let rom: CoefRom<Q15> = CoefRom::new(g).unwrap();
        let mut crf: Vec<Complex<Q15>> = xf.iter().map(|&c| Complex::from_c64(c * 0.9)).collect();
        run_group(&mut crf, &rom, g, Direction::Forward, Scaling::HalfPerStage);
        let want =
            dft_naive(&crf.iter().map(|_| Complex::zero()).collect::<Vec<_>>(), Direction::Forward);
        drop(want); // the real comparison below uses the quantised input
        let xq: Vec<C64> = xf.iter().map(|&c| Complex::<Q15>::from_c64(c * 0.9).to_c64()).collect();
        let exact = dft_naive(&xq, Direction::Forward).unwrap();
        let p = g.trailing_zeros();
        let got: Vec<C64> = (0..g).map(|s| crf[bit_reverse(s, p)].to_c64() * g as f64).collect();
        assert!(max_error(&got, &exact) < 0.05 * g as f64, "fixed-point drift");
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn bu4_rejects_tiny_groups() {
        let rom: CoefRom<f64> = CoefRom::new(8).unwrap();
        let mut crf = vec![Complex::<f64>::zero(); 4];
        bu4(&mut crf, &rom, 4, 1, 1, Direction::Forward, Scaling::None);
    }
}
