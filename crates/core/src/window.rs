//! Window functions for spectral analysis front-ends.
//!
//! A spectrum analyser built on the array FFT needs windowing to
//! control leakage; these are the standard cosine-sum windows with
//! their textbook gains, tested against their defining properties.

use afft_num::{Complex, C64};

/// Window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// No shaping (all ones).
    Rectangular,
    /// Hann: `0.5 - 0.5 cos(2 pi n / (N-1))`.
    Hann,
    /// Hamming: `0.54 - 0.46 cos(2 pi n / (N-1))`.
    Hamming,
    /// Blackman (a0 = 0.42, a1 = 0.5, a2 = 0.08).
    Blackman,
}

impl Window {
    /// Sample `n` of an `len`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `n >= len` or `len < 2`.
    pub fn coefficient(self, n: usize, len: usize) -> f64 {
        assert!(len >= 2, "window needs at least 2 points");
        assert!(n < len, "window index out of range");
        let x = 2.0 * std::f64::consts::PI * n as f64 / (len - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * x.cos(),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// The full window vector.
    pub fn vector(self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.coefficient(n, len)).collect()
    }

    /// Coherent gain: mean of the window (amplitude correction factor
    /// for tones).
    pub fn coherent_gain(self, len: usize) -> f64 {
        self.vector(len).iter().sum::<f64>() / len as f64
    }

    /// Applies the window to a complex signal in place.
    ///
    /// # Panics
    ///
    /// Panics if `len < 2`.
    pub fn apply(self, signal: &mut [C64]) {
        let len = signal.len();
        for (n, s) in signal.iter_mut().enumerate() {
            let w = self.coefficient(n, len);
            *s = Complex::new(s.re * w, s.im * w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_symmetry() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let v = w.vector(64);
            // Symmetric.
            for n in 0..64 {
                assert!((v[n] - v[63 - n]).abs() < 1e-12, "{w:?} n={n}");
            }
            // Peak at the centre region.
            let peak = v.iter().cloned().fold(0.0, f64::max);
            assert!((peak - v[31]).abs() < 0.01 || (peak - v[32]).abs() < 0.01);
        }
        // Hann endpoints are exactly zero.
        let hann = Window::Hann.vector(64);
        assert!(hann[0].abs() < 1e-15 && hann[63].abs() < 1e-15);
    }

    #[test]
    fn coherent_gains_match_textbook_values() {
        // Asymptotic gains: Hann 0.50, Hamming 0.54, Blackman 0.42.
        for (w, gain) in [(Window::Hann, 0.5), (Window::Hamming, 0.54), (Window::Blackman, 0.42)] {
            let g = w.coherent_gain(4096);
            assert!((g - gain).abs() < 0.01, "{w:?}: {g}");
        }
        assert_eq!(Window::Rectangular.coherent_gain(64), 1.0);
    }

    #[test]
    fn hann_reduces_leakage_vs_rectangular() {
        use crate::reference::{dft_naive, Direction};
        use afft_num::twiddle;
        let n = 64;
        // An off-bin tone (worst case for leakage).
        let tone = 10.5;
        let make = |win: Window| {
            let mut x: Vec<C64> = (0..n)
                .map(|m| {
                    let theta = -2.0 * std::f64::consts::PI * tone * m as f64 / n as f64;
                    Complex::new(theta.cos(), theta.sin()).conj()
                })
                .collect();
            win.apply(&mut x);
            let y = dft_naive(&x, Direction::Forward).unwrap();
            // Leakage far from the tone (bins 40..50).
            y[40..50].iter().map(|c| c.abs()).fold(0.0, f64::max)
        };
        let _ = twiddle(2, 0); // keep the import honest
        let rect = make(Window::Rectangular);
        let hann = make(Window::Hann);
        assert!(hann < rect / 10.0, "hann {hann} vs rect {rect}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds() {
        let _ = Window::Hann.coefficient(64, 64);
    }
}
