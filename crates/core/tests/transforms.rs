//! Cross-checks between every transform implementation in the crate:
//! they are different machines computing the same mathematics, so they
//! must agree pairwise.

use afft_core::bfp::bfp_array_fft;
use afft_core::cached::cached_fft;
use afft_core::mcfft::{mcfft, Epochs};
use afft_core::realfft::RealFft;
use afft_core::reference::{
    bit_reverse_permute, dft_naive, fft_radix2_dif_f64, fft_radix2_dit_f64, max_error, Direction,
};
use afft_core::{ArrayFft, Scaling, Split};
use afft_num::{Complex, C64, Q15};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_signal(n: usize, seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

#[test]
fn all_f64_transforms_agree() {
    let n = 1024;
    let x = random_signal(n, 1);

    let array = ArrayFft::<f64>::new(n).unwrap().process(&x, Direction::Forward).unwrap();

    let mut dit = x.clone();
    fft_radix2_dit_f64(&mut dit, Direction::Forward).unwrap();

    let mut dif = x.clone();
    fft_radix2_dif_f64(&mut dif, Direction::Forward).unwrap();
    bit_reverse_permute(&mut dif);

    let cached = cached_fft(&x, Direction::Forward).unwrap().bins;

    let epochs = Epochs::new(n, &[32, 32]).unwrap();
    let mc = mcfft(&x, &epochs, Direction::Forward).unwrap();

    for (name, other) in
        [("radix2-dit", &dit), ("radix2-dif", &dif), ("cached", &cached), ("mcfft", &mc)]
    {
        assert!(max_error(&array, other) < 1e-8, "array vs {name}");
    }
}

#[test]
fn array_fft_agrees_across_all_legal_splits() {
    let n = 4096;
    let x = random_signal(n, 2);
    let want = ArrayFft::<f64>::new(n).unwrap().process(&x, Direction::Forward).unwrap();
    for (p, q) in [(64usize, 64usize), (128, 32), (256, 16), (512, 8)] {
        let split = Split::with_factors(n, p, q).unwrap();
        let fft = ArrayFft::<f64>::with_split(split, Scaling::None).unwrap();
        let got = fft.process(&x, Direction::Forward).unwrap();
        assert!(max_error(&got, &want) < 1e-7, "split {p}x{q}");
    }
}

#[test]
fn mcfft_deep_decompositions_agree() {
    let n = 4096;
    let x = random_signal(n, 3);
    let want = dft_naive(&x, Direction::Forward).unwrap();
    for factors in [vec![4096], vec![64, 64], vec![16, 16, 16], vec![8, 8, 8, 8]] {
        let e = Epochs::new(n, &factors).unwrap();
        let got = mcfft(&x, &e, Direction::Forward).unwrap();
        assert!(max_error(&got, &want) < 1e-6, "factors {factors:?}");
    }
}

#[test]
fn fixed_and_bfp_agree_on_wellscaled_input() {
    let n = 256;
    let x = random_signal(n, 4);
    let xq: Vec<Complex<Q15>> = x.iter().map(|&c| Complex::from_c64(c * 0.9)).collect();

    let fixed = ArrayFft::<Q15>::with_scaling(n, Scaling::HalfPerStage)
        .unwrap()
        .process(&xq, Direction::Forward)
        .unwrap();
    let fixed_f: Vec<C64> = fixed.iter().map(|c| c.to_c64() * n as f64).collect();

    let bfp = bfp_array_fft(&xq, Direction::Forward).unwrap();
    let scale = (bfp.exponent as f64).exp2();
    let bfp_f: Vec<C64> = bfp.data.iter().map(|c| c.to_c64() * scale).collect();

    let norm = fixed_f.iter().map(|c| c.abs()).fold(0.0, f64::max);
    assert!(max_error(&fixed_f, &bfp_f) / norm < 0.01);
}

#[test]
fn realfft_consistent_with_array_fft() {
    let len = 512;
    let mut rng = StdRng::seed_from_u64(5);
    let real: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let rfft = RealFft::new(len).unwrap();
    let bins = rfft.process(&real).unwrap();
    let full = rfft.expand_full(&bins);

    let complex_in: Vec<C64> = real.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let want = ArrayFft::<f64>::new(len).unwrap().process(&complex_in, Direction::Forward).unwrap();
    assert!(max_error(&full, &want) < 1e-8);
}

#[test]
fn hermitian_symmetry_of_real_input_on_array_fft() {
    let n = 128;
    let mut rng = StdRng::seed_from_u64(6);
    let x: Vec<C64> = (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
    let y = ArrayFft::<f64>::new(n).unwrap().process(&x, Direction::Forward).unwrap();
    for k in 1..n {
        assert!(y[n - k].dist(y[k].conj()) < 1e-9, "bin {k}");
    }
}

#[test]
fn convolution_theorem_via_forward_inverse() {
    // Circular convolution in time == product in frequency.
    let n = 64;
    let a = random_signal(n, 7);
    let b = random_signal(n, 8);
    let fft = ArrayFft::<f64>::new(n).unwrap();
    let fa = fft.process(&a, Direction::Forward).unwrap();
    let fb = fft.process(&b, Direction::Forward).unwrap();
    let prod: Vec<C64> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    let conv_freq: Vec<C64> = fft
        .process(&prod, Direction::Inverse)
        .unwrap()
        .iter()
        .map(|&v| v * (1.0 / n as f64))
        .collect();
    // Direct circular convolution.
    let mut conv_time = vec![Complex::zero(); n];
    for (i, ci) in conv_time.iter_mut().enumerate() {
        for j in 0..n {
            *ci = *ci + a[j] * b[(n + i - j) % n];
        }
    }
    assert!(max_error(&conv_freq, &conv_time) < 1e-8);
}
