//! Analytic hardware-cost model: the reproduction's stand-in for
//! Synopsys Design Compiler + TSMC 0.18 um synthesis (Section IV).
//!
//! The model composes the custom hardware (BU, AC, CRF, coefficient
//! ROM) from a small standard-cell constant library expressed in
//! NAND2-equivalent gates and nanoseconds. The constants are calibrated
//! *once* against the paper's published totals for the 1024-point
//! (P = 32) configuration — 17324 gates BU+AC, 15764 gates CRF+ROM,
//! 17.68 mW at 300 MHz, 3.2 ns BU critical path — and then used to
//! predict the scaling of every other configuration (the `hwcost`
//! experiment sweeps P).
//!
//! # Examples
//!
//! ```
//! use afft_hwmodel::{asip_cost, TechLibrary};
//!
//! let cost = asip_cost(&TechLibrary::tsmc018(), 32);
//! assert!((cost.total_gates() as f64 - 33_000.0).abs() / 33_000.0 < 0.05);
//! assert!(cost.max_clock_mhz() > 300.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Gate count of the paper's base PISA core (including its 32 KB
/// cache), for overhead comparisons.
pub const PISA_CORE_GATES: u64 = 106_000;

/// Standard-cell constants for one technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechLibrary {
    /// 16x16-bit signed multiplier, NAND2-equivalents.
    pub mult16_gates: f64,
    /// 16-bit adder/subtractor.
    pub add16_gates: f64,
    /// 32-bit adder.
    pub add32_gates: f64,
    /// Round-and-saturate stage, 16-bit.
    pub round16_gates: f64,
    /// Per-butterfly control/miscellaneous.
    pub bfly_misc_gates: f64,
    /// One flip-flop bit.
    pub dff_gates: f64,
    /// Register-file port cost: gates per storage bit, per port, per
    /// entry (mux/decode trees grow with both entries and ports).
    pub rf_port_factor: f64,
    /// ROM cell per bit.
    pub rom_bit_gates: f64,
    /// AC unit: fixed control gates.
    pub ac_fixed_gates: f64,
    /// AC unit: gates per `p^2` (the bit-permute mux fabric grows with
    /// the square of the address width).
    pub ac_perm_factor: f64,
    /// Multiplier delay, ns.
    pub mult16_delay_ns: f64,
    /// 32-bit adder delay, ns.
    pub add32_delay_ns: f64,
    /// Round/saturate delay, ns.
    pub round_delay_ns: f64,
    /// AC address-generation delay, ns.
    pub ac_delay_ns: f64,
    /// Dynamic power coefficient: mW per gate per MHz at full activity.
    pub power_mw_per_gate_mhz: f64,
}

impl TechLibrary {
    /// The calibrated TSMC 0.18 um library of the paper's synthesis.
    pub fn tsmc018() -> Self {
        TechLibrary {
            mult16_gates: 825.0,
            add16_gates: 48.0,
            add32_gates: 96.0,
            round16_gates: 40.0,
            bfly_misc_gates: 90.0,
            dff_gates: 6.0,
            rf_port_factor: 0.018,
            rom_bit_gates: 0.3,
            ac_fixed_gates: 600.0,
            ac_perm_factor: 48.0,
            mult16_delay_ns: 2.35,
            add32_delay_ns: 0.65,
            round_delay_ns: 0.2,
            ac_delay_ns: 0.55,
            power_mw_per_gate_mhz: 3.423e-6,
        }
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        Self::tsmc018()
    }
}

/// Cost of one synthesised module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleCost {
    /// NAND2-equivalent gate count.
    pub gates: f64,
    /// Register-to-register critical path, ns.
    pub delay_ns: f64,
    /// Switching-activity factor used for power estimates.
    pub activity: f64,
}

impl ModuleCost {
    /// Dynamic power at `f_mhz`, in mW.
    pub fn power_mw(&self, lib: &TechLibrary, f_mhz: f64) -> f64 {
        self.gates * self.activity * lib.power_mw_per_gate_mhz * f_mhz
    }
}

/// One radix-2 DIF butterfly datapath (2 x 16-bit add/sub per complex
/// component, 4 multipliers, 2 wide adders, rounding).
pub fn butterfly_cost(lib: &TechLibrary) -> ModuleCost {
    let gates = 4.0 * lib.mult16_gates
        + 4.0 * lib.add16_gates
        + 2.0 * lib.add32_gates
        + 2.0 * lib.round16_gates
        + lib.bfly_misc_gates;
    let delay = lib.mult16_delay_ns + lib.add32_delay_ns + lib.round_delay_ns;
    ModuleCost { gates, delay_ns: delay, activity: 1.0 }
}

/// The BU: four parallel butterflies.
pub fn bu_cost(lib: &TechLibrary) -> ModuleCost {
    let b = butterfly_cost(lib);
    ModuleCost { gates: 4.0 * b.gates, delay_ns: b.delay_ns, activity: 1.0 }
}

/// The AC unit for a group of `2^p` points: counters plus the
/// bit-permute fabric that produces 8 CRF addresses and 4 ROM addresses
/// per cycle.
///
/// # Panics
///
/// Panics if `p < 3` (the BU needs 8 points).
pub fn ac_cost(lib: &TechLibrary, p: u32) -> ModuleCost {
    assert!(p >= 3, "ac_cost: group must be at least 8 points");
    let gates = lib.ac_fixed_gates + lib.ac_perm_factor * f64::from(p * p);
    ModuleCost { gates, delay_ns: lib.ac_delay_ns, activity: 0.8 }
}

/// A multiported register file: `entries` x `bits` with `read_ports` +
/// `write_ports` access ports (the CRF needs 8R/8W for one BU beat).
pub fn register_file_cost(
    lib: &TechLibrary,
    entries: usize,
    bits: usize,
    read_ports: usize,
    write_ports: usize,
) -> ModuleCost {
    let storage = lib.dff_gates;
    let ports = (read_ports + write_ports) as f64 * entries as f64 * lib.rf_port_factor;
    let gates = entries as f64 * bits as f64 * (storage + ports);
    ModuleCost { gates, delay_ns: 0.9, activity: 0.5 }
}

/// A coefficient ROM of `entries` x `bits`.
pub fn rom_cost(lib: &TechLibrary, entries: usize, bits: usize) -> ModuleCost {
    ModuleCost {
        gates: entries as f64 * bits as f64 * lib.rom_bit_gates,
        delay_ns: 0.7,
        activity: 0.3,
    }
}

/// Synthesis summary of the full custom extension for a given epoch-0
/// group size `P` (the paper's Section IV configuration is `P = 32`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsipCost {
    /// Group size the hardware was sized for.
    pub p_size: usize,
    /// BU + AC gates (the paper's 17324 for P=32).
    pub bu_ac_gates: f64,
    /// CRF + coefficient ROM gates (the paper's 15764 for P=32).
    pub crf_rom_gates: f64,
    /// BU + AC dynamic power at 300 MHz, mW (the paper's 17.68).
    pub bu_ac_power_mw: f64,
    /// Storage power at 300 MHz, mW (model estimate; not in the paper).
    pub crf_rom_power_mw: f64,
    /// Critical path of the whole extension, ns.
    pub critical_path_ns: f64,
}

impl AsipCost {
    /// Total extra gates over the base core.
    pub fn total_gates(&self) -> u64 {
        (self.bu_ac_gates + self.crf_rom_gates).round() as u64
    }

    /// Area overhead relative to the PISA base core.
    pub fn overhead_vs_pisa(&self) -> f64 {
        self.total_gates() as f64 / PISA_CORE_GATES as f64
    }

    /// Maximum clock frequency implied by the critical path, MHz.
    pub fn max_clock_mhz(&self) -> f64 {
        1000.0 / self.critical_path_ns
    }
}

/// Energy of one transform: custom-hardware dynamic power integrated
/// over the run time, in nanojoules.
///
/// `E = (P_bu_ac + P_crf_rom) * cycles / f`. Combined with the
/// simulator's cycle counts this gives the energy-per-FFT figure the
/// paper's power discussion implies (reported by the `hwcost`
/// experiment).
pub fn energy_per_transform_nj(cost: &AsipCost, cycles: u64, f_mhz: f64) -> f64 {
    let power_mw = cost.bu_ac_power_mw + cost.crf_rom_power_mw;
    // mW * us = nJ; time_us = cycles / f_mhz.
    power_mw * (cycles as f64 / f_mhz)
}

/// Evaluates the full custom extension for group size `p_size`.
///
/// # Panics
///
/// Panics unless `p_size` is a power of two `>= 8`.
pub fn asip_cost(lib: &TechLibrary, p_size: usize) -> AsipCost {
    assert!(p_size.is_power_of_two() && p_size >= 8, "asip_cost: invalid P {p_size}");
    let p = p_size.trailing_zeros();
    let bu = bu_cost(lib);
    let ac = ac_cost(lib, p);
    let crf = register_file_cost(lib, p_size, 32, 8, 8);
    let rom = rom_cost(lib, p_size / 2, 32);
    AsipCost {
        p_size,
        bu_ac_gates: bu.gates + ac.gates,
        crf_rom_gates: crf.gates + rom.gates,
        bu_ac_power_mw: bu.power_mw(lib, 300.0) + ac.power_mw(lib, 300.0),
        crf_rom_power_mw: crf.power_mw(lib, 300.0) + rom.power_mw(lib, 300.0),
        critical_path_ns: bu.delay_ns.max(ac.delay_ns).max(crf.delay_ns).max(rom.delay_ns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_config() -> AsipCost {
        asip_cost(&TechLibrary::tsmc018(), 32)
    }

    #[test]
    fn bu_ac_gates_match_paper_within_2_percent() {
        let c = paper_config();
        let rel = (c.bu_ac_gates - 17324.0).abs() / 17324.0;
        assert!(rel < 0.02, "BU+AC {} vs 17324 ({:.1}%)", c.bu_ac_gates, rel * 100.0);
    }

    #[test]
    fn crf_rom_gates_match_paper_within_2_percent() {
        let c = paper_config();
        let rel = (c.crf_rom_gates - 15764.0).abs() / 15764.0;
        assert!(rel < 0.02, "CRF+ROM {} vs 15764 ({:.1}%)", c.crf_rom_gates, rel * 100.0);
    }

    #[test]
    fn total_is_the_papers_33k() {
        let c = paper_config();
        assert!((32_000..=34_000).contains(&c.total_gates()), "total {}", c.total_gates());
        assert!(c.overhead_vs_pisa() < 0.33);
    }

    #[test]
    fn power_matches_paper_within_3_percent() {
        let c = paper_config();
        let rel = (c.bu_ac_power_mw - 17.68).abs() / 17.68;
        assert!(rel < 0.03, "power {} vs 17.68 mW", c.bu_ac_power_mw);
    }

    #[test]
    fn critical_path_is_the_bu_at_3_2ns() {
        let c = paper_config();
        assert!((c.critical_path_ns - 3.2).abs() < 0.05, "path {} ns", c.critical_path_ns);
        assert!(c.max_clock_mhz() > 300.0 && c.max_clock_mhz() < 330.0);
    }

    #[test]
    fn scaling_is_monotone_in_p() {
        let lib = TechLibrary::tsmc018();
        let mut prev = 0u64;
        for p in [8usize, 16, 32, 64, 128] {
            let c = asip_cost(&lib, p);
            assert!(c.total_gates() > prev, "P={p}");
            prev = c.total_gates();
        }
    }

    #[test]
    fn crf_dominates_growth_at_large_p() {
        let lib = TechLibrary::tsmc018();
        let c64 = asip_cost(&lib, 64);
        let c128 = asip_cost(&lib, 128);
        // BU is fixed; storage grows superlinearly (ports x entries).
        let bu_growth = c128.bu_ac_gates / c64.bu_ac_gates;
        let rf_growth = c128.crf_rom_gates / c64.crf_rom_gates;
        assert!(rf_growth > 2.0 && bu_growth < 1.2);
    }

    #[test]
    fn module_power_scales_linearly_with_frequency() {
        let lib = TechLibrary::tsmc018();
        let bu = bu_cost(&lib);
        let p150 = bu.power_mw(&lib, 150.0);
        let p300 = bu.power_mw(&lib, 300.0);
        assert!((p300 / p150 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid P")]
    fn rejects_tiny_group() {
        let _ = asip_cost(&TechLibrary::tsmc018(), 4);
    }

    #[test]
    fn energy_scales_with_cycles_and_inverse_frequency() {
        let c = paper_config();
        let e1 = energy_per_transform_nj(&c, 4168, 300.0);
        let e2 = energy_per_transform_nj(&c, 8336, 300.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
        // Paper-regime sanity: a 1024-pt FFT in ~4k cycles at 300 MHz
        // with ~25 mW total is a few hundred nJ.
        assert!(e1 > 100.0 && e1 < 1000.0, "energy {e1} nJ");
    }
}
