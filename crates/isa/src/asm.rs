//! A programmatic assembler with labels: the tool every program
//! generator in `afft-asip` is built on.
//!
//! [`Asm`] buffers instructions and label references; [`Asm::assemble`]
//! resolves branch offsets and jump targets and yields a [`Program`].

use crate::instr::Instr;
use crate::program::Program;
use crate::reg::Reg;
use core::fmt;
use std::collections::HashMap;

/// Errors produced when resolving an assembled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The re-defined label.
        label: String,
    },
    /// A branch target is further than a 16-bit word offset can reach.
    BranchOutOfRange {
        /// The label that was too far.
        label: String,
        /// The computed word offset.
        offset: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range (offset {offset} words)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Fixed(Instr),
    /// A raw data word (constant pool entry from `.word`).
    Raw(u32),
    /// Branch with the offset field to be patched from a label.
    Branch(Instr, String),
    /// Jump (`J`/`JAL`) with the target to be patched from a label.
    Jump {
        link: bool,
        label: String,
    },
}

/// An in-progress assembly unit.
///
/// # Examples
///
/// ```
/// use afft_isa::{Asm, Instr, Reg};
///
/// let mut a = Asm::new();
/// a.li(Reg::T0, 3);
/// a.label("loop");
/// a.emit(Instr::Addi { rt: Reg::T0, rs: Reg::T0, imm: -1 });
/// a.bgtz_to(Reg::T0, "loop");
/// a.emit(Instr::Halt);
/// let program = a.assemble()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), afft_isa::AsmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

impl Asm {
    /// Creates an empty assembly unit.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current instruction index (where the next emit lands).
    pub fn here(&self) -> usize {
        self.items.len()
    }

    /// Appends a fixed instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.items.push(Item::Fixed(i));
        self
    }

    /// Appends a raw 32-bit data word (constant-pool entry). The word
    /// occupies one slot in the image; jumping into it is the
    /// program's responsibility to avoid.
    pub fn emit_raw(&mut self, word: u32) -> &mut Self {
        self.items.push(Item::Raw(word));
        self
    }

    /// Defines `label` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (programming error in a
    /// generator; surfaced eagerly rather than at assemble time).
    pub fn label(&mut self, label: &str) -> &mut Self {
        let prev = self.labels.insert(label.to_string(), self.items.len());
        assert!(prev.is_none(), "duplicate label `{label}`");
        self
    }

    /// Loads a 32-bit constant with the shortest sequence
    /// (`addi` / `ori` / `lui` / `lui+ori`).
    pub fn li(&mut self, rd: Reg, value: i32) -> &mut Self {
        let v = value as u32;
        if (-32768..=32767).contains(&value) {
            self.emit(Instr::Addi { rt: rd, rs: Reg::ZERO, imm: value as i16 });
        } else if v & 0xffff_0000 == 0 {
            self.emit(Instr::Ori { rt: rd, rs: Reg::ZERO, imm: v as u16 });
        } else if v & 0xffff == 0 {
            self.emit(Instr::Lui { rt: rd, imm: (v >> 16) as u16 });
        } else {
            self.emit(Instr::Lui { rt: rd, imm: (v >> 16) as u16 });
            self.emit(Instr::Ori { rt: rd, rs: rd, imm: v as u16 });
        }
        self
    }

    /// Register move pseudo-instruction (`or rd, rs, zero`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Or { rd, rs, rt: Reg::ZERO })
    }

    /// `beq rs, rt, label`.
    pub fn beq_to(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.items.push(Item::Branch(Instr::Beq { rs, rt, offset: 0 }, label.to_string()));
        self
    }

    /// `bne rs, rt, label`.
    pub fn bne_to(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.items.push(Item::Branch(Instr::Bne { rs, rt, offset: 0 }, label.to_string()));
        self
    }

    /// `blez rs, label`.
    pub fn blez_to(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.items.push(Item::Branch(Instr::Blez { rs, offset: 0 }, label.to_string()));
        self
    }

    /// `bgtz rs, label`.
    pub fn bgtz_to(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.items.push(Item::Branch(Instr::Bgtz { rs, offset: 0 }, label.to_string()));
        self
    }

    /// `bltz rs, label`.
    pub fn bltz_to(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.items.push(Item::Branch(Instr::Bltz { rs, offset: 0 }, label.to_string()));
        self
    }

    /// `bgez rs, label`.
    pub fn bgez_to(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.items.push(Item::Branch(Instr::Bgez { rs, offset: 0 }, label.to_string()));
        self
    }

    /// `j label`.
    pub fn j_to(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Jump { link: false, label: label.to_string() });
        self
    }

    /// `jal label`.
    pub fn jal_to(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Jump { link: true, label: label.to_string() });
        self
    }

    /// Resolves all label references and produces the program image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined labels or out-of-range branch
    /// offsets.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        let mut words = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let word = match item {
                Item::Fixed(i) => i.encode(),
                Item::Raw(w) => *w,
                Item::Branch(i, label) => {
                    let target = self.lookup(label)?;
                    let offset = target as i64 - (idx as i64 + 1);
                    if offset < i64::from(i16::MIN) || offset > i64::from(i16::MAX) {
                        return Err(AsmError::BranchOutOfRange { label: label.clone(), offset });
                    }
                    patch_branch(*i, offset as i16).encode()
                }
                Item::Jump { link, label } => {
                    let target = self.lookup(label)? as u32;
                    if *link {
                        Instr::Jal { target }.encode()
                    } else {
                        Instr::J { target }.encode()
                    }
                }
            };
            words.push(word);
        }
        Ok(Program::from_words(words))
    }

    fn lookup(&self, label: &str) -> Result<usize, AsmError> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| AsmError::UndefinedLabel { label: label.to_string() })
    }
}

fn patch_branch(i: Instr, offset: i16) -> Instr {
    use Instr::*;
    match i {
        Beq { rs, rt, .. } => Beq { rs, rt, offset },
        Bne { rs, rt, .. } => Bne { rs, rt, offset },
        Blez { rs, .. } => Blez { rs, offset },
        Bgtz { rs, .. } => Bgtz { rs, offset },
        Bltz { rs, .. } => Bltz { rs, offset },
        Bgez { rs, .. } => Bgez { rs, offset },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        a.li(Reg::T0, 2);
        a.label("top");
        a.emit(Instr::Addi { rt: Reg::T0, rs: Reg::T0, imm: -1 });
        a.bne_to(Reg::T0, Reg::ZERO, "top");
        a.beq_to(Reg::ZERO, Reg::ZERO, "end");
        a.emit(Instr::Halt); // skipped
        a.label("end");
        a.emit(Instr::Halt);
        let p = a.assemble().unwrap();
        // bne at index 2 targets index 1: offset -2.
        match p.instr_at(2).unwrap() {
            Instr::Bne { offset, .. } => assert_eq!(offset, -2),
            other => panic!("{other:?}"),
        }
        // beq at index 3 targets index 5: offset +1.
        match p.instr_at(3).unwrap() {
            Instr::Beq { offset, .. } => assert_eq!(offset, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn jumps_get_absolute_word_targets() {
        let mut a = Asm::new();
        a.j_to("f");
        a.emit(Instr::Halt);
        a.label("f");
        a.jal_to("f");
        let p = a.assemble().unwrap();
        assert_eq!(p.instr_at(0).unwrap(), Instr::J { target: 2 });
        assert_eq!(p.instr_at(2).unwrap(), Instr::Jal { target: 2 });
    }

    #[test]
    fn li_picks_shortest_encoding() {
        let count = |v: i32| {
            let mut a = Asm::new();
            a.li(Reg::T0, v);
            a.assemble().unwrap().len()
        };
        assert_eq!(count(0), 1);
        assert_eq!(count(-1), 1);
        assert_eq!(count(32767), 1);
        assert_eq!(count(0x8000), 1); // ori
        assert_eq!(count(0x10000), 1); // lui
        assert_eq!(count(0x12345678), 2); // lui+ori
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new();
        a.j_to("nowhere");
        assert_eq!(a.assemble(), Err(AsmError::UndefinedLabel { label: "nowhere".into() }));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics_eagerly() {
        let mut a = Asm::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn mv_is_or_with_zero() {
        let mut a = Asm::new();
        a.mv(Reg::T1, Reg::T2);
        let p = a.assemble().unwrap();
        assert_eq!(p.instr_at(0).unwrap(), Instr::Or { rd: Reg::T1, rs: Reg::T2, rt: Reg::ZERO });
    }
}
