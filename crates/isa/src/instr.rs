//! The instruction set: a PISA-like 32-bit base ISA plus the paper's
//! three custom FFT instructions (`BUT4`, `LDIN`, `STOUT`) and the
//! configuration move `MTFFT` that loads the AC unit's context
//! (transform size, group size, group id, pre-rotation state).
//!
//! Encodings are classic MIPS-style 32-bit words: R-type
//! (`op rs rt rd shamt funct`), I-type (`op rs rt imm16`), and J-type
//! (`op target26`). Custom instructions occupy opcodes `0x38..=0x3b`.
//! There are no branch delay slots (a deliberate simplification of the
//! timing model, documented in `afft-sim`).

use crate::reg::Reg;
use core::fmt;

/// Selector for [`Instr::Mtfft`]: which AC-unit configuration register
/// to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FftCfg {
    /// `log2` of the current group size (`p` for epoch 0, `q` for 1).
    GroupSizeLog2 = 0,
    /// `log2 N` of the whole transform (pre-rotation exponent modulus).
    NLog2 = 1,
    /// Current group index (`l` in epoch 0, `s` in epoch 1).
    GroupId = 2,
    /// Pre-rotation enable: non-zero applies `W_N^{s*l}` on `STOUT`.
    PrerotEnable = 3,
    /// Byte base address of the compressed pre-rotation table in memory.
    PrerotBase = 4,
    /// Direct write of the CRF auto-increment load pointer.
    LoadPtr = 5,
    /// Direct write of the CRF auto-increment store pointer.
    StorePtr = 6,
    /// Inverse-transform enable: non-zero conjugates all coefficients.
    InverseEnable = 7,
    /// `LDIN` gather stride in points (1 = one contiguous 64-bit beat;
    /// `Q` or `P` for the corner-turn epochs, which fetch two words).
    LoadStride = 8,
}

impl FftCfg {
    /// All selectors, in encoding order.
    pub const ALL: [FftCfg; 9] = [
        FftCfg::GroupSizeLog2,
        FftCfg::NLog2,
        FftCfg::GroupId,
        FftCfg::PrerotEnable,
        FftCfg::PrerotBase,
        FftCfg::LoadPtr,
        FftCfg::StorePtr,
        FftCfg::InverseEnable,
        FftCfg::LoadStride,
    ];

    /// Decodes a selector from its field value.
    pub fn from_bits(v: u32) -> Option<FftCfg> {
        Self::ALL.get(v as usize).copied()
    }

    /// Field value of this selector.
    pub fn to_bits(self) -> u32 {
        self as u32
    }

    /// Assembly mnemonic of the selector.
    pub fn name(self) -> &'static str {
        match self {
            FftCfg::GroupSizeLog2 => "gsize",
            FftCfg::NLog2 => "nlog2",
            FftCfg::GroupId => "group",
            FftCfg::PrerotEnable => "prerot",
            FftCfg::PrerotBase => "prerotbase",
            FftCfg::LoadPtr => "ldptr",
            FftCfg::StorePtr => "stptr",
            FftCfg::InverseEnable => "inverse",
            FftCfg::LoadStride => "ldstride",
        }
    }

    /// Parses a selector mnemonic.
    pub fn parse(s: &str) -> Option<FftCfg> {
        Self::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// One machine instruction, in decoded form.
///
/// # Examples
///
/// ```
/// use afft_isa::{Instr, Reg};
///
/// let i = Instr::Addi { rt: Reg::T0, rs: Reg::ZERO, imm: 42 };
/// let word = i.encode();
/// assert_eq!(Instr::decode(word)?, i);
/// # Ok::<(), afft_isa::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings follow the MIPS conventions named in the variant docs
pub enum Instr {
    // --- R-type ALU ---
    /// `rd <- rs + rt` (wrapping).
    Add { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs - rt` (wrapping).
    Sub { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs & rt`.
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs | rt`.
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs ^ rt`.
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- !(rs | rt)`.
    Nor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- (rs as i32) < (rt as i32)`.
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- (rs as u32) < (rt as u32)`.
    Sltu { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rt << shamt`.
    Sll { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd <- rt >> shamt` (logical).
    Srl { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd <- rt >> shamt` (arithmetic).
    Sra { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd <- rt << (rs & 31)`.
    Sllv { rd: Reg, rt: Reg, rs: Reg },
    /// `rd <- rt >> (rs & 31)` (logical).
    Srlv { rd: Reg, rt: Reg, rs: Reg },
    /// `rd <- rt >> (rs & 31)` (arithmetic).
    Srav { rd: Reg, rt: Reg, rs: Reg },
    /// `rd <- low32(rs * rt)` (signed multiply).
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- high32(rs * rt)` (signed).
    Mulh { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- high32(rs * rt)` (unsigned).
    Mulhu { rd: Reg, rs: Reg, rt: Reg },
    /// Jump to `rs`.
    Jr { rs: Reg },
    /// `rd <- pc + 4`; jump to `rs`.
    Jalr { rd: Reg, rs: Reg },
    /// Stop the simulation.
    Halt,

    // --- I-type ---
    /// `rt <- rs + sign_extend(imm)` (wrapping).
    Addi { rt: Reg, rs: Reg, imm: i16 },
    /// `rt <- (rs as i32) < sign_extend(imm)`.
    Slti { rt: Reg, rs: Reg, imm: i16 },
    /// `rt <- rs & zero_extend(imm)`.
    Andi { rt: Reg, rs: Reg, imm: u16 },
    /// `rt <- rs | zero_extend(imm)`.
    Ori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt <- rs ^ zero_extend(imm)`.
    Xori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt <- imm << 16`.
    Lui { rt: Reg, imm: u16 },
    /// `rt <- mem32[rs + offset]`.
    Lw { rt: Reg, base: Reg, offset: i16 },
    /// `rt <- sign_extend(mem16[rs + offset])`.
    Lh { rt: Reg, base: Reg, offset: i16 },
    /// `rt <- zero_extend(mem16[rs + offset])`.
    Lhu { rt: Reg, base: Reg, offset: i16 },
    /// `mem32[rs + offset] <- rt`.
    Sw { rt: Reg, base: Reg, offset: i16 },
    /// `mem16[rs + offset] <- rt[15:0]`.
    Sh { rt: Reg, base: Reg, offset: i16 },
    /// Branch if `rs == rt` (offset in words from the next pc).
    Beq { rs: Reg, rt: Reg, offset: i16 },
    /// Branch if `rs != rt`.
    Bne { rs: Reg, rt: Reg, offset: i16 },
    /// Branch if `rs <= 0` (signed).
    Blez { rs: Reg, offset: i16 },
    /// Branch if `rs > 0` (signed).
    Bgtz { rs: Reg, offset: i16 },
    /// Branch if `rs < 0` (signed).
    Bltz { rs: Reg, offset: i16 },
    /// Branch if `rs >= 0` (signed).
    Bgez { rs: Reg, offset: i16 },

    // --- J-type ---
    /// Absolute jump (word target within the 256 MiB page).
    J { target: u32 },
    /// Absolute call: `ra <- pc + 4`, jump.
    Jal { target: u32 },

    // --- Custom FFT extension ---
    /// One butterfly-unit operation: 4 parallel radix-2 butterflies on
    /// the CRF. `stage` register holds `j` (1-based), `module` holds `i`
    /// (1-based); the AC unit derives all 8 CRF addresses and 4 ROM
    /// addresses from these two values.
    But4 { stage: Reg, module: Reg },
    /// Load two complex points `mem64[base + offset]` into the CRF at
    /// the auto-incrementing load pointer.
    Ldin { base: Reg, offset: i16 },
    /// Store two complex points from the CRF (bit-reversed read through
    /// the AC unit, pre-rotated when enabled) to `mem64[base + offset]`;
    /// the store pointer auto-increments.
    Stout { base: Reg, offset: i16 },
    /// Write AC-unit configuration register `sel` from GPR `rs`.
    Mtfft { rs: Reg, sel: FftCfg },
}

/// Error returned by [`Instr::decode`] for invalid instruction words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcodes.
const OP_SPECIAL: u32 = 0x00;
const OP_REGIMM: u32 = 0x01;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_BLEZ: u32 = 0x06;
const OP_BGTZ: u32 = 0x07;
const OP_ADDI: u32 = 0x08;
const OP_SLTI: u32 = 0x0a;
const OP_ANDI: u32 = 0x0c;
const OP_ORI: u32 = 0x0d;
const OP_XORI: u32 = 0x0e;
const OP_LUI: u32 = 0x0f;
const OP_LH: u32 = 0x21;
const OP_LW: u32 = 0x23;
const OP_LHU: u32 = 0x25;
const OP_SH: u32 = 0x29;
const OP_SW: u32 = 0x2b;
const OP_BUT4: u32 = 0x38;
const OP_LDIN: u32 = 0x39;
const OP_STOUT: u32 = 0x3a;
const OP_MTFFT: u32 = 0x3b;

// SPECIAL functs.
const F_SLL: u32 = 0x00;
const F_SRL: u32 = 0x02;
const F_SRA: u32 = 0x03;
const F_SLLV: u32 = 0x04;
const F_SRLV: u32 = 0x06;
const F_SRAV: u32 = 0x07;
const F_JR: u32 = 0x08;
const F_JALR: u32 = 0x09;
const F_HALT: u32 = 0x0c;
const F_MUL: u32 = 0x18;
const F_MULH: u32 = 0x19;
const F_MULHU: u32 = 0x1a;
const F_ADD: u32 = 0x20;
const F_SUB: u32 = 0x22;
const F_AND: u32 = 0x24;
const F_OR: u32 = 0x25;
const F_XOR: u32 = 0x26;
const F_NOR: u32 = 0x27;
const F_SLT: u32 = 0x2a;
const F_SLTU: u32 = 0x2b;

fn r_type(funct: u32, rs: Reg, rt: Reg, rd: Reg, shamt: u8) -> u32 {
    (u32::from(rs) << 21)
        | (u32::from(rt) << 16)
        | (u32::from(rd) << 11)
        | (u32::from(shamt) << 6)
        | funct
}

fn i_type(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (op << 26) | (u32::from(rs) << 21) | (u32::from(rt) << 16) | u32::from(imm)
}

impl Instr {
    /// A canonical no-op (`sll zero, zero, 0`).
    pub const NOP: Instr = Instr::Sll { rd: Reg::ZERO, rt: Reg::ZERO, shamt: 0 };

    /// Encodes to a 32-bit instruction word.
    pub fn encode(self) -> u32 {
        use Instr::*;
        let z = Reg::ZERO;
        match self {
            Add { rd, rs, rt } => r_type(F_ADD, rs, rt, rd, 0),
            Sub { rd, rs, rt } => r_type(F_SUB, rs, rt, rd, 0),
            And { rd, rs, rt } => r_type(F_AND, rs, rt, rd, 0),
            Or { rd, rs, rt } => r_type(F_OR, rs, rt, rd, 0),
            Xor { rd, rs, rt } => r_type(F_XOR, rs, rt, rd, 0),
            Nor { rd, rs, rt } => r_type(F_NOR, rs, rt, rd, 0),
            Slt { rd, rs, rt } => r_type(F_SLT, rs, rt, rd, 0),
            Sltu { rd, rs, rt } => r_type(F_SLTU, rs, rt, rd, 0),
            Sll { rd, rt, shamt } => r_type(F_SLL, z, rt, rd, shamt),
            Srl { rd, rt, shamt } => r_type(F_SRL, z, rt, rd, shamt),
            Sra { rd, rt, shamt } => r_type(F_SRA, z, rt, rd, shamt),
            Sllv { rd, rt, rs } => r_type(F_SLLV, rs, rt, rd, 0),
            Srlv { rd, rt, rs } => r_type(F_SRLV, rs, rt, rd, 0),
            Srav { rd, rt, rs } => r_type(F_SRAV, rs, rt, rd, 0),
            Mul { rd, rs, rt } => r_type(F_MUL, rs, rt, rd, 0),
            Mulh { rd, rs, rt } => r_type(F_MULH, rs, rt, rd, 0),
            Mulhu { rd, rs, rt } => r_type(F_MULHU, rs, rt, rd, 0),
            Jr { rs } => r_type(F_JR, rs, z, z, 0),
            Jalr { rd, rs } => r_type(F_JALR, rs, z, rd, 0),
            Halt => r_type(F_HALT, z, z, z, 0),
            Addi { rt, rs, imm } => i_type(OP_ADDI, rs, rt, imm as u16),
            Slti { rt, rs, imm } => i_type(OP_SLTI, rs, rt, imm as u16),
            Andi { rt, rs, imm } => i_type(OP_ANDI, rs, rt, imm),
            Ori { rt, rs, imm } => i_type(OP_ORI, rs, rt, imm),
            Xori { rt, rs, imm } => i_type(OP_XORI, rs, rt, imm),
            Lui { rt, imm } => i_type(OP_LUI, z, rt, imm),
            Lw { rt, base, offset } => i_type(OP_LW, base, rt, offset as u16),
            Lh { rt, base, offset } => i_type(OP_LH, base, rt, offset as u16),
            Lhu { rt, base, offset } => i_type(OP_LHU, base, rt, offset as u16),
            Sw { rt, base, offset } => i_type(OP_SW, base, rt, offset as u16),
            Sh { rt, base, offset } => i_type(OP_SH, base, rt, offset as u16),
            Beq { rs, rt, offset } => i_type(OP_BEQ, rs, rt, offset as u16),
            Bne { rs, rt, offset } => i_type(OP_BNE, rs, rt, offset as u16),
            Blez { rs, offset } => i_type(OP_BLEZ, rs, z, offset as u16),
            Bgtz { rs, offset } => i_type(OP_BGTZ, rs, z, offset as u16),
            Bltz { rs, offset } => i_type(OP_REGIMM, rs, Reg::new(0), offset as u16),
            Bgez { rs, offset } => i_type(OP_REGIMM, rs, Reg::new(1), offset as u16),
            J { target } => (OP_J << 26) | (target & 0x03ff_ffff),
            Jal { target } => (OP_JAL << 26) | (target & 0x03ff_ffff),
            But4 { stage, module } => i_type(OP_BUT4, stage, module, 0),
            Ldin { base, offset } => i_type(OP_LDIN, base, z, offset as u16),
            Stout { base, offset } => i_type(OP_STOUT, base, z, offset as u16),
            Mtfft { rs, sel } => i_type(OP_MTFFT, rs, Reg::new(sel.to_bits() as u8), 0),
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes or function codes.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        use Instr::*;
        let op = word >> 26;
        let rs = Reg::new(((word >> 21) & 31) as u8);
        let rt = Reg::new(((word >> 16) & 31) as u8);
        let rd = Reg::new(((word >> 11) & 31) as u8);
        let shamt = ((word >> 6) & 31) as u8;
        let imm = (word & 0xffff) as u16;
        let simm = imm as i16;
        let err = DecodeError { word };
        Ok(match op {
            OP_SPECIAL => match word & 0x3f {
                F_SLL => Sll { rd, rt, shamt },
                F_SRL => Srl { rd, rt, shamt },
                F_SRA => Sra { rd, rt, shamt },
                F_SLLV => Sllv { rd, rt, rs },
                F_SRLV => Srlv { rd, rt, rs },
                F_SRAV => Srav { rd, rt, rs },
                F_JR => Jr { rs },
                F_JALR => Jalr { rd, rs },
                F_HALT => Halt,
                F_MUL => Mul { rd, rs, rt },
                F_MULH => Mulh { rd, rs, rt },
                F_MULHU => Mulhu { rd, rs, rt },
                F_ADD => Add { rd, rs, rt },
                F_SUB => Sub { rd, rs, rt },
                F_AND => And { rd, rs, rt },
                F_OR => Or { rd, rs, rt },
                F_XOR => Xor { rd, rs, rt },
                F_NOR => Nor { rd, rs, rt },
                F_SLT => Slt { rd, rs, rt },
                F_SLTU => Sltu { rd, rs, rt },
                _ => return Err(err),
            },
            OP_REGIMM => match rt.index() {
                0 => Bltz { rs, offset: simm },
                1 => Bgez { rs, offset: simm },
                _ => return Err(err),
            },
            OP_J => J { target: word & 0x03ff_ffff },
            OP_JAL => Jal { target: word & 0x03ff_ffff },
            OP_BEQ => Beq { rs, rt, offset: simm },
            OP_BNE => Bne { rs, rt, offset: simm },
            OP_BLEZ => Blez { rs, offset: simm },
            OP_BGTZ => Bgtz { rs, offset: simm },
            OP_ADDI => Addi { rt, rs, imm: simm },
            OP_SLTI => Slti { rt, rs, imm: simm },
            OP_ANDI => Andi { rt, rs, imm },
            OP_ORI => Ori { rt, rs, imm },
            OP_XORI => Xori { rt, rs, imm },
            OP_LUI => Lui { rt, imm },
            OP_LW => Lw { rt, base: rs, offset: simm },
            OP_LH => Lh { rt, base: rs, offset: simm },
            OP_LHU => Lhu { rt, base: rs, offset: simm },
            OP_SW => Sw { rt, base: rs, offset: simm },
            OP_SH => Sh { rt, base: rs, offset: simm },
            OP_BUT4 => But4 { stage: rs, module: rt },
            OP_LDIN => Ldin { base: rs, offset: simm },
            OP_STOUT => Stout { base: rs, offset: simm },
            OP_MTFFT => {
                let sel = FftCfg::from_bits(rt.index() as u32).ok_or(err)?;
                Mtfft { rs, sel }
            }
            _ => return Err(err),
        })
    }

    /// True for control-transfer instructions (branches, jumps, halt).
    pub fn is_control(self) -> bool {
        use Instr::*;
        matches!(
            self,
            Jr { .. }
                | Jalr { .. }
                | Halt
                | Beq { .. }
                | Bne { .. }
                | Blez { .. }
                | Bgtz { .. }
                | Bltz { .. }
                | Bgez { .. }
                | J { .. }
                | Jal { .. }
        )
    }

    /// True for the custom FFT extension instructions.
    pub fn is_custom(self) -> bool {
        matches!(
            self,
            Instr::But4 { .. } | Instr::Ldin { .. } | Instr::Stout { .. } | Instr::Mtfft { .. }
        )
    }

    /// True for base-ISA memory instructions (`lw/lh/lhu/sw/sh`).
    pub fn is_base_mem(self) -> bool {
        use Instr::*;
        matches!(self, Lw { .. } | Lh { .. } | Lhu { .. } | Sw { .. } | Sh { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add { rd, rs, rt } => write!(f, "add {rd}, {rs}, {rt}"),
            Sub { rd, rs, rt } => write!(f, "sub {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Nor { rd, rs, rt } => write!(f, "nor {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Sltu { rd, rs, rt } => write!(f, "sltu {rd}, {rs}, {rt}"),
            Sll { rd, rt, shamt } => write!(f, "sll {rd}, {rt}, {shamt}"),
            Srl { rd, rt, shamt } => write!(f, "srl {rd}, {rt}, {shamt}"),
            Sra { rd, rt, shamt } => write!(f, "sra {rd}, {rt}, {shamt}"),
            Sllv { rd, rt, rs } => write!(f, "sllv {rd}, {rt}, {rs}"),
            Srlv { rd, rt, rs } => write!(f, "srlv {rd}, {rt}, {rs}"),
            Srav { rd, rt, rs } => write!(f, "srav {rd}, {rt}, {rs}"),
            Mul { rd, rs, rt } => write!(f, "mul {rd}, {rs}, {rt}"),
            Mulh { rd, rs, rt } => write!(f, "mulh {rd}, {rs}, {rt}"),
            Mulhu { rd, rs, rt } => write!(f, "mulhu {rd}, {rs}, {rt}"),
            Jr { rs } => write!(f, "jr {rs}"),
            Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Halt => write!(f, "halt"),
            Addi { rt, rs, imm } => write!(f, "addi {rt}, {rs}, {imm}"),
            Slti { rt, rs, imm } => write!(f, "slti {rt}, {rs}, {imm}"),
            Andi { rt, rs, imm } => write!(f, "andi {rt}, {rs}, {imm:#x}"),
            Ori { rt, rs, imm } => write!(f, "ori {rt}, {rs}, {imm:#x}"),
            Xori { rt, rs, imm } => write!(f, "xori {rt}, {rs}, {imm:#x}"),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Lw { rt, base, offset } => write!(f, "lw {rt}, {offset}({base})"),
            Lh { rt, base, offset } => write!(f, "lh {rt}, {offset}({base})"),
            Lhu { rt, base, offset } => write!(f, "lhu {rt}, {offset}({base})"),
            Sw { rt, base, offset } => write!(f, "sw {rt}, {offset}({base})"),
            Sh { rt, base, offset } => write!(f, "sh {rt}, {offset}({base})"),
            Beq { rs, rt, offset } => write!(f, "beq {rs}, {rt}, {offset}"),
            Bne { rs, rt, offset } => write!(f, "bne {rs}, {rt}, {offset}"),
            Blez { rs, offset } => write!(f, "blez {rs}, {offset}"),
            Bgtz { rs, offset } => write!(f, "bgtz {rs}, {offset}"),
            Bltz { rs, offset } => write!(f, "bltz {rs}, {offset}"),
            Bgez { rs, offset } => write!(f, "bgez {rs}, {offset}"),
            J { target } => write!(f, "j {:#x}", target << 2),
            Jal { target } => write!(f, "jal {:#x}", target << 2),
            But4 { stage, module } => write!(f, "but4 {stage}, {module}"),
            Ldin { base, offset } => write!(f, "ldin {offset}({base})"),
            Stout { base, offset } => write!(f, "stout {offset}({base})"),
            Mtfft { rs, sel } => write!(f, "mtfft {rs}, {}", sel.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        use Instr::*;
        let (a, b, c) = (Reg::T0, Reg::T1, Reg::T2);
        vec![
            Add { rd: a, rs: b, rt: c },
            Sub { rd: a, rs: b, rt: c },
            And { rd: a, rs: b, rt: c },
            Or { rd: a, rs: b, rt: c },
            Xor { rd: a, rs: b, rt: c },
            Nor { rd: a, rs: b, rt: c },
            Slt { rd: a, rs: b, rt: c },
            Sltu { rd: a, rs: b, rt: c },
            Sll { rd: a, rt: c, shamt: 7 },
            Srl { rd: a, rt: c, shamt: 31 },
            Sra { rd: a, rt: c, shamt: 1 },
            Sllv { rd: a, rt: c, rs: b },
            Srlv { rd: a, rt: c, rs: b },
            Srav { rd: a, rt: c, rs: b },
            Mul { rd: a, rs: b, rt: c },
            Mulh { rd: a, rs: b, rt: c },
            Mulhu { rd: a, rs: b, rt: c },
            Jr { rs: Reg::RA },
            Jalr { rd: Reg::RA, rs: a },
            Halt,
            Addi { rt: a, rs: b, imm: -5 },
            Slti { rt: a, rs: b, imm: 100 },
            Andi { rt: a, rs: b, imm: 0xffff },
            Ori { rt: a, rs: b, imm: 0x8000 },
            Xori { rt: a, rs: b, imm: 1 },
            Lui { rt: a, imm: 0xdead },
            Lw { rt: a, base: Reg::SP, offset: -8 },
            Lh { rt: a, base: b, offset: 2 },
            Lhu { rt: a, base: b, offset: 6 },
            Sw { rt: a, base: Reg::SP, offset: 12 },
            Sh { rt: a, base: b, offset: 0 },
            Beq { rs: a, rt: b, offset: -3 },
            Bne { rs: a, rt: b, offset: 3 },
            Blez { rs: a, offset: 1 },
            Bgtz { rs: a, offset: -1 },
            Bltz { rs: a, offset: 5 },
            Bgez { rs: a, offset: -5 },
            J { target: 0x123456 },
            Jal { target: 0x2 },
            But4 { stage: a, module: b },
            Ldin { base: a, offset: 16 },
            Stout { base: a, offset: -16 },
            Mtfft { rs: a, sel: FftCfg::GroupId },
            Instr::NOP,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in sample_instrs() {
            let w = i.encode();
            let d = Instr::decode(w).unwrap_or_else(|e| panic!("{i}: {e}"));
            assert_eq!(d, i, "word {w:#010x}");
        }
    }

    #[test]
    fn all_cfg_selectors_roundtrip() {
        for sel in FftCfg::ALL {
            let i = Instr::Mtfft { rs: Reg::T3, sel };
            assert_eq!(Instr::decode(i.encode()).unwrap(), i);
            assert_eq!(FftCfg::parse(sel.name()), Some(sel));
        }
    }

    #[test]
    fn decode_rejects_unknown() {
        assert!(Instr::decode(0xffff_ffff).is_err());
        // SPECIAL with bogus funct.
        assert!(Instr::decode(0x0000_003f).is_err());
        // REGIMM with rt = 5.
        assert!(Instr::decode((0x01 << 26) | (5 << 16)).is_err());
    }

    #[test]
    fn classification() {
        assert!(Instr::Halt.is_control());
        assert!(Instr::J { target: 0 }.is_control());
        assert!(!Instr::NOP.is_control());
        assert!(Instr::But4 { stage: Reg::T0, module: Reg::T1 }.is_custom());
        assert!(Instr::Lw { rt: Reg::T0, base: Reg::T1, offset: 0 }.is_base_mem());
        assert!(!Instr::Ldin { base: Reg::T0, offset: 0 }.is_base_mem());
    }

    #[test]
    fn nop_encodes_to_zero() {
        assert_eq!(Instr::NOP.encode(), 0);
        assert_eq!(Instr::decode(0).unwrap(), Instr::NOP);
    }

    #[test]
    fn display_is_readable() {
        let i = Instr::Addi { rt: Reg::T0, rs: Reg::ZERO, imm: 42 };
        assert_eq!(i.to_string(), "addi t0, zero, 42");
        let i = Instr::Ldin { base: Reg::S0, offset: 8 };
        assert_eq!(i.to_string(), "ldin 8(s0)");
        let i = Instr::Mtfft { rs: Reg::A0, sel: FftCfg::PrerotEnable };
        assert_eq!(i.to_string(), "mtfft a0, prerot");
    }

    #[test]
    fn negative_offsets_sign_extend() {
        let i = Instr::Lw { rt: Reg::T0, base: Reg::SP, offset: -4 };
        match Instr::decode(i.encode()).unwrap() {
            Instr::Lw { offset, .. } => assert_eq!(offset, -4),
            other => panic!("decoded {other:?}"),
        }
    }
}
