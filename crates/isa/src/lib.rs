//! Instruction-set definition for the array-FFT ASIP: a PISA-like
//! 32-bit base ISA extended with the paper's custom instructions
//! (`BUT4`, `LDIN`, `STOUT`, plus the `MTFFT` configuration move), an
//! encoder/decoder, a programmatic assembler with labels, and a text
//! assembler.
//!
//! Execution semantics live in `afft-sim`; this crate is the pure
//! architectural definition shared by the simulator, the program
//! generators of `afft-asip`, and the baseline models.
//!
//! # Examples
//!
//! ```
//! use afft_isa::{Asm, Instr, Reg};
//!
//! let mut a = Asm::new();
//! a.li(Reg::T0, 8);
//! a.label("loop");
//! a.emit(Instr::Ldin { base: Reg::S0, offset: 0 });
//! a.emit(Instr::Addi { rt: Reg::S0, rs: Reg::S0, imm: 8 });
//! a.emit(Instr::Addi { rt: Reg::T0, rs: Reg::T0, imm: -1 });
//! a.bgtz_to(Reg::T0, "loop");
//! a.emit(Instr::Halt);
//! let program = a.assemble()?;
//! assert_eq!(program.len(), 6);
//! # Ok::<(), afft_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod instr;
pub mod parser;
pub mod program;
pub mod reg;

pub use asm::{Asm, AsmError};
pub use instr::{DecodeError, FftCfg, Instr};
pub use program::Program;
pub use reg::Reg;
