//! A small two-pass text assembler over the same syntax the
//! disassembler prints, plus labels and comments.
//!
//! Supported line forms:
//!
//! ```text
//! # comment            ; also a comment
//! loop:                # label definition (may share a line with code)
//!     addi t0, t0, -1
//!     lw   t1, 8(sp)
//!     bne  t0, zero, loop
//!     but4 t2, t3
//!     ldin 0(s0)
//!     mtfft a0, group
//!     j    end
//! end: halt
//! ```

use crate::asm::{Asm, AsmError};
use crate::instr::{FftCfg, Instr};
use crate::program::Program;
use crate::reg::Reg;
use core::fmt;

/// Error from the text assembler, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> Self {
        ParseError { line: 0, message: e.to_string() }
    }
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line for syntax errors,
/// unknown mnemonics or unresolved labels.
///
/// # Examples
///
/// ```
/// let p = afft_isa::parser::assemble_text(
///     "      li   v0, 41
///            addi v0, v0, 1
///            halt",
/// )?;
/// assert_eq!(p.len(), 3);
/// # Ok::<(), afft_isa::parser::ParseError>(())
/// ```
pub fn assemble_text(source: &str) -> Result<Program, ParseError> {
    let mut asm = Asm::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(idx) = text.find(['#', ';']) {
            text = &text[..idx];
        }
        let mut text = text.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = text.find(':') {
            let (head, rest) = text.split_at(colon);
            let label = head.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                asm.label(label);
            }))
            .is_err()
            {
                return Err(ParseError { line, message: format!("duplicate label `{label}`") });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(directive) = text.strip_prefix('.') {
            parse_directive(&mut asm, directive, line)?;
            continue;
        }
        parse_instruction(&mut asm, text, line)?;
    }
    asm.assemble().map_err(|e| ParseError { line: 0, message: e.to_string() })
}

/// Data directives: `.word v[, v...]` emits raw 32-bit words into the
/// instruction stream (constant pools); `.nop n` emits `n` no-ops
/// (alignment padding / timing filler).
fn parse_directive(asm: &mut Asm, text: &str, line: usize) -> Result<(), ParseError> {
    let err = |message: String| ParseError { line, message };
    let (name, rest) = match text.split_once(char::is_whitespace) {
        Some((n, r)) => (n, r.trim()),
        None => (text, ""),
    };
    match name {
        "word" => {
            if rest.is_empty() {
                return Err(err(".word needs at least one value".into()));
            }
            for v in rest.split(',') {
                let v = parse_int(v)
                    .filter(|&v| i64::from(i32::MIN) <= v && v <= i64::from(u32::MAX))
                    .ok_or_else(|| err(format!("bad .word value `{v}`")))?;
                asm.emit_raw(v as u32);
            }
        }
        "nop" => {
            let count = parse_int(rest)
                .and_then(|v| usize::try_from(v).ok())
                .filter(|&v| v <= 4096)
                .ok_or_else(|| err(format!("bad .nop count `{rest}`")))?;
            for _ in 0..count {
                asm.emit(crate::instr::Instr::NOP);
            }
        }
        other => return Err(err(format!("unknown directive `.{other}`"))),
    }
    Ok(())
}

fn parse_instruction(asm: &mut Asm, text: &str, line: usize) -> Result<(), ParseError> {
    let err = |message: String| ParseError { line, message };
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let reg = |s: &str| Reg::parse(s).ok_or_else(|| err(format!("bad register `{s}`")));
    let imm16 = |s: &str| -> Result<i16, ParseError> {
        parse_int(s)
            .and_then(|v| i16::try_from(v).ok())
            .ok_or_else(|| err(format!("bad immediate `{s}`")))
    };
    let uimm16 = |s: &str| -> Result<u16, ParseError> {
        parse_int(s)
            .and_then(|v| {
                u16::try_from(v as u32 & 0xffff).ok().filter(|_| (0..=0xffff).contains(&v))
            })
            .ok_or_else(|| err(format!("bad immediate `{s}`")))
    };
    let need = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(format!("`{mnemonic}` expects {n} operands, got {}", ops.len())))
        }
    };
    // `offset(base)` addressing.
    let mem = |s: &str| -> Result<(Reg, i16), ParseError> {
        let open = s.find('(').ok_or_else(|| err(format!("bad address `{s}`")))?;
        let close = s.rfind(')').ok_or_else(|| err(format!("bad address `{s}`")))?;
        let off = s[..open].trim();
        let off = if off.is_empty() { 0 } else { imm16(off)? };
        let base = reg(s[open + 1..close].trim())?;
        Ok((base, off))
    };

    use Instr::*;
    let three_r = |f: fn(Reg, Reg, Reg) -> Instr| -> Result<Instr, ParseError> {
        need(3)?;
        Ok(f(reg(ops[0])?, reg(ops[1])?, reg(ops[2])?))
    };
    match mnemonic {
        "add" => asm.emit(three_r(|rd, rs, rt| Add { rd, rs, rt })?),
        "sub" => asm.emit(three_r(|rd, rs, rt| Sub { rd, rs, rt })?),
        "and" => asm.emit(three_r(|rd, rs, rt| And { rd, rs, rt })?),
        "or" => asm.emit(three_r(|rd, rs, rt| Or { rd, rs, rt })?),
        "xor" => asm.emit(three_r(|rd, rs, rt| Xor { rd, rs, rt })?),
        "nor" => asm.emit(three_r(|rd, rs, rt| Nor { rd, rs, rt })?),
        "slt" => asm.emit(three_r(|rd, rs, rt| Slt { rd, rs, rt })?),
        "sltu" => asm.emit(three_r(|rd, rs, rt| Sltu { rd, rs, rt })?),
        "mul" => asm.emit(three_r(|rd, rs, rt| Mul { rd, rs, rt })?),
        "mulh" => asm.emit(three_r(|rd, rs, rt| Mulh { rd, rs, rt })?),
        "mulhu" => asm.emit(three_r(|rd, rs, rt| Mulhu { rd, rs, rt })?),
        "sllv" => asm.emit(three_r(|rd, rt, rs| Sllv { rd, rt, rs })?),
        "srlv" => asm.emit(three_r(|rd, rt, rs| Srlv { rd, rt, rs })?),
        "srav" => asm.emit(three_r(|rd, rt, rs| Srav { rd, rt, rs })?),
        "sll" | "srl" | "sra" => {
            need(3)?;
            let rd = reg(ops[0])?;
            let rt = reg(ops[1])?;
            let sh = parse_int(ops[2])
                .and_then(|v| u8::try_from(v).ok())
                .filter(|&v| v < 32)
                .ok_or_else(|| err(format!("bad shift `{}`", ops[2])))?;
            asm.emit(match mnemonic {
                "sll" => Sll { rd, rt, shamt: sh },
                "srl" => Srl { rd, rt, shamt: sh },
                _ => Sra { rd, rt, shamt: sh },
            })
        }
        "addi" => {
            need(3)?;
            asm.emit(Addi { rt: reg(ops[0])?, rs: reg(ops[1])?, imm: imm16(ops[2])? })
        }
        "slti" => {
            need(3)?;
            asm.emit(Slti { rt: reg(ops[0])?, rs: reg(ops[1])?, imm: imm16(ops[2])? })
        }
        "andi" => {
            need(3)?;
            asm.emit(Andi { rt: reg(ops[0])?, rs: reg(ops[1])?, imm: uimm16(ops[2])? })
        }
        "ori" => {
            need(3)?;
            asm.emit(Ori { rt: reg(ops[0])?, rs: reg(ops[1])?, imm: uimm16(ops[2])? })
        }
        "xori" => {
            need(3)?;
            asm.emit(Xori { rt: reg(ops[0])?, rs: reg(ops[1])?, imm: uimm16(ops[2])? })
        }
        "lui" => {
            need(2)?;
            asm.emit(Lui { rt: reg(ops[0])?, imm: uimm16(ops[1])? })
        }
        "li" => {
            need(2)?;
            let v = parse_int(ops[1])
                .and_then(|v| i32::try_from(v).ok())
                .ok_or_else(|| err(format!("bad constant `{}`", ops[1])))?;
            asm.li(reg(ops[0])?, v)
        }
        "move" | "mv" => {
            need(2)?;
            asm.mv(reg(ops[0])?, reg(ops[1])?)
        }
        "nop" => {
            need(0)?;
            asm.emit(Instr::NOP)
        }
        "lw" | "lh" | "lhu" | "sw" | "sh" => {
            need(2)?;
            let rt = reg(ops[0])?;
            let (base, offset) = mem(ops[1])?;
            asm.emit(match mnemonic {
                "lw" => Lw { rt, base, offset },
                "lh" => Lh { rt, base, offset },
                "lhu" => Lhu { rt, base, offset },
                "sw" => Sw { rt, base, offset },
                _ => Sh { rt, base, offset },
            })
        }
        "beq" | "bne" => {
            need(3)?;
            let rs = reg(ops[0])?;
            let rt = reg(ops[1])?;
            if mnemonic == "beq" {
                asm.beq_to(rs, rt, ops[2])
            } else {
                asm.bne_to(rs, rt, ops[2])
            }
        }
        "blez" | "bgtz" | "bltz" | "bgez" => {
            need(2)?;
            let rs = reg(ops[0])?;
            match mnemonic {
                "blez" => asm.blez_to(rs, ops[1]),
                "bgtz" => asm.bgtz_to(rs, ops[1]),
                "bltz" => asm.bltz_to(rs, ops[1]),
                _ => asm.bgez_to(rs, ops[1]),
            }
        }
        "j" => {
            need(1)?;
            asm.j_to(ops[0])
        }
        "jal" => {
            need(1)?;
            asm.jal_to(ops[0])
        }
        "jr" => {
            need(1)?;
            asm.emit(Jr { rs: reg(ops[0])? })
        }
        "jalr" => {
            need(2)?;
            asm.emit(Jalr { rd: reg(ops[0])?, rs: reg(ops[1])? })
        }
        "halt" => {
            need(0)?;
            asm.emit(Halt)
        }
        "but4" => {
            need(2)?;
            asm.emit(But4 { stage: reg(ops[0])?, module: reg(ops[1])? })
        }
        "ldin" | "stout" => {
            need(1)?;
            let (base, offset) = mem(ops[0])?;
            asm.emit(if mnemonic == "ldin" {
                Ldin { base, offset }
            } else {
                Stout { base, offset }
            })
        }
        "mtfft" => {
            need(2)?;
            let sel = FftCfg::parse(ops[1])
                .ok_or_else(|| err(format!("bad fft config selector `{}`", ops[1])))?;
            asm.emit(Mtfft { rs: reg(ops[0])?, sel })
        }
        other => return Err(err(format!("unknown mnemonic `{other}`"))),
    };
    Ok(())
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_disassembler() {
        let src = "
            start:
                li   t0, 4
            loop:
                addi t0, t0, -1
                bne  t0, zero, loop
                lw   t1, 8(sp)
                sw   t1, -4(sp)
                but4 t2, t3
                ldin 0(s0)
                stout 8(s1)
                mtfft a0, prerot
                jal  start
                halt
        ";
        let p = assemble_text(src).unwrap();
        assert_eq!(p.len(), 11);
        let listing = p.disassemble();
        assert!(listing.contains("bne t0, zero, -2"));
        assert!(listing.contains("mtfft a0, prerot"));
    }

    #[test]
    fn comments_and_blank_lines_skip() {
        let p = assemble_text("# just a comment\n\n   ; another\nhalt\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn label_sharing_a_line() {
        let p = assemble_text("end: halt").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = assemble_text("nop\nbogus t0, t1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn undefined_label_reported() {
        let e = assemble_text("j nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn numeric_forms() {
        let p = assemble_text("li t0, 0x7fff\nli t1, -12\nlui t2, 0xbeef\nhalt").unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn bad_register_and_immediate() {
        assert!(assemble_text("addi q0, t0, 1").is_err());
        assert!(assemble_text("addi t0, t0, 99999").is_err());
        assert!(assemble_text("sll t0, t1, 40").is_err());
    }
}

#[cfg(test)]
mod directive_tests {
    use super::*;

    #[test]
    fn word_directive_emits_raw_data() {
        let p = assemble_text("j start\n.word 0xdeadbeef, 42, -1\nstart: halt").unwrap();
        assert_eq!(p.words()[1], 0xdead_beef);
        assert_eq!(p.words()[2], 42);
        assert_eq!(p.words()[3], u32::MAX);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn nop_directive_pads() {
        let p = assemble_text(".nop 3\nhalt").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.words()[0], 0);
    }

    #[test]
    fn constant_pool_is_loadable() {
        // Labels address words: a program can lw from its own pool via
        // the label's word index * 4.
        let p = assemble_text("j start\npool: .word 123\nstart: lw v0, 4(zero)\nhalt").unwrap();
        assert_eq!(p.words()[1], 123);
    }

    #[test]
    fn bad_directives_are_errors() {
        assert!(assemble_text(".word").is_err());
        assert!(assemble_text(".word zzz").is_err());
        assert!(assemble_text(".nop -1").is_err());
        assert!(assemble_text(".align 4").is_err());
    }
}
