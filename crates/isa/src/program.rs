//! An assembled program image.

use crate::instr::{DecodeError, Instr};
use core::fmt;

/// An assembled sequence of instruction words, loaded at word address 0.
///
/// The program counter is a *word* index into this image; `J`/`JAL`
/// targets and `JR` register values are byte addresses divided by 4.
///
/// # Examples
///
/// ```
/// use afft_isa::{Instr, Program, Reg};
///
/// let p = Program::from_instrs(&[
///     Instr::Addi { rt: Reg::V0, rs: Reg::ZERO, imm: 7 },
///     Instr::Halt,
/// ]);
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.instr_at(0)?, Instr::Addi { rt: Reg::V0, rs: Reg::ZERO, imm: 7 });
/// # Ok::<(), afft_isa::DecodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    words: Vec<u32>,
}

impl Program {
    /// Builds a program from raw instruction words.
    pub fn from_words(words: Vec<u32>) -> Self {
        Program { words }
    }

    /// Builds a program by encoding a slice of instructions.
    pub fn from_instrs(instrs: &[Instr]) -> Self {
        Program { words: instrs.iter().map(|i| i.encode()).collect() }
    }

    /// The raw instruction words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Decodes the instruction at word index `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if `pc` is out of bounds (reported with a
    /// sentinel word) or the word does not decode.
    pub fn instr_at(&self, pc: usize) -> Result<Instr, DecodeError> {
        let word = *self.words.get(pc).ok_or(DecodeError { word: 0xffff_ffff })?;
        Instr::decode(word)
    }

    /// Full disassembly listing (one instruction per line, with word
    /// addresses), for debugging and the `asm_playground` example.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (pc, &w) in self.words.iter().enumerate() {
            use fmt::Write;
            match Instr::decode(w) {
                Ok(i) => writeln!(out, "{:6}: {:08x}  {}", pc, w, i).expect("write to string"),
                Err(_) => writeln!(out, "{:6}: {:08x}  <invalid>", pc, w).expect("write to string"),
            }
        }
        out
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<I: IntoIterator<Item = Instr>>(iter: I) -> Self {
        Program { words: iter.into_iter().map(|i| i.encode()).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn build_and_fetch() {
        let p = Program::from_instrs(&[Instr::NOP, Instr::Halt]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.instr_at(1).unwrap(), Instr::Halt);
        assert!(p.instr_at(2).is_err());
    }

    #[test]
    fn disassembly_lists_every_word() {
        let p = Program::from_instrs(&[
            Instr::Addi { rt: Reg::T0, rs: Reg::ZERO, imm: 1 },
            Instr::Halt,
        ]);
        let d = p.disassemble();
        assert!(d.contains("addi t0, zero, 1"));
        assert!(d.contains("halt"));
        assert_eq!(d.lines().count(), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let p: Program = [Instr::NOP, Instr::NOP].into_iter().collect();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn invalid_word_disassembles_gracefully() {
        let p = Program::from_words(vec![0xffff_ffff]);
        assert!(p.disassemble().contains("<invalid>"));
    }
}
