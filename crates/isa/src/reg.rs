//! General-purpose register file names and conventions.
//!
//! The base core is PISA-like: 32 GPRs with `r0` hardwired to zero. We
//! follow the familiar MIPS calling conventions so generated programs
//! (and their disassembly) read naturally.

use core::fmt;

/// A general-purpose register index (`r0` ..= `r31`).
///
/// # Examples
///
/// ```
/// use afft_isa::Reg;
/// assert_eq!(Reg::ZERO.index(), 0);
/// assert_eq!(Reg::new(4), Reg::A0);
/// assert_eq!(Reg::SP.to_string(), "sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg(1);
    /// Return value 0.
    pub const V0: Reg = Reg(2);
    /// Return value 1.
    pub const V1: Reg = Reg(3);
    /// Argument 0.
    pub const A0: Reg = Reg(4);
    /// Argument 1.
    pub const A1: Reg = Reg(5);
    /// Argument 2.
    pub const A2: Reg = Reg(6);
    /// Argument 3.
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporaries `t0..t7`.
    pub const T0: Reg = Reg(8);
    /// Temporary 1.
    pub const T1: Reg = Reg(9);
    /// Temporary 2.
    pub const T2: Reg = Reg(10);
    /// Temporary 3.
    pub const T3: Reg = Reg(11);
    /// Temporary 4.
    pub const T4: Reg = Reg(12);
    /// Temporary 5.
    pub const T5: Reg = Reg(13);
    /// Temporary 6.
    pub const T6: Reg = Reg(14);
    /// Temporary 7.
    pub const T7: Reg = Reg(15);
    /// Callee-saved `s0..s7`.
    pub const S0: Reg = Reg(16);
    /// Saved 1.
    pub const S1: Reg = Reg(17);
    /// Saved 2.
    pub const S2: Reg = Reg(18);
    /// Saved 3.
    pub const S3: Reg = Reg(19);
    /// Saved 4.
    pub const S4: Reg = Reg(20);
    /// Saved 5.
    pub const S5: Reg = Reg(21);
    /// Saved 6.
    pub const S6: Reg = Reg(22);
    /// Saved 7.
    pub const S7: Reg = Reg(23);
    /// Temporary 8.
    pub const T8: Reg = Reg(24);
    /// Temporary 9.
    pub const T9: Reg = Reg(25);
    /// Kernel 0 (free for program use here).
    pub const K0: Reg = Reg(26);
    /// Kernel 1 (free for program use here).
    pub const K1: Reg = Reg(27);
    /// Global pointer.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer.
    pub const FP: Reg = Reg(30);
    /// Return address.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    #[inline]
    pub const fn new(index: u8) -> Reg {
        assert!(index < 32, "register index out of range");
        Reg(index)
    }

    /// The register index (0..=31).
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Canonical ABI name (`zero`, `at`, `v0`, ... `ra`).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "sp", "fp", "ra",
        ];
        NAMES[self.0 as usize]
    }

    /// Parses either an ABI name (`t0`) or a numeric name (`r8`/`$8`).
    pub fn parse(s: &str) -> Option<Reg> {
        let s = s.trim().trim_start_matches('$');
        for i in 0..32u8 {
            if Reg(i).name() == s {
                return Some(Reg(i));
            }
        }
        let num = s.strip_prefix('r').unwrap_or(s);
        num.parse::<u8>().ok().filter(|&i| i < 32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<Reg> for u32 {
    fn from(r: Reg) -> u32 {
        u32::from(r.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for i in 0..32u8 {
            let r = Reg::new(i);
            assert_eq!(Reg::parse(r.name()), Some(r), "{}", r.name());
            assert_eq!(Reg::parse(&format!("r{i}")), Some(r));
            assert_eq!(Reg::parse(&format!("${i}")), Some(r));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Reg::parse("r32"), None);
        assert_eq!(Reg::parse("x7"), None);
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_big_index() {
        let _ = Reg::new(32);
    }

    #[test]
    fn conventions() {
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::RA.index(), 31);
        assert_eq!(Reg::ZERO.name(), "zero");
    }
}
