//! Property tests of the ISA: encode/decode and
//! assemble/disassemble/re-assemble are lossless.

use afft_isa::parser::assemble_text;
use afft_isa::{FftCfg, Instr, Program, Reg};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn instr() -> impl Strategy<Value = Instr> {
    use Instr::*;
    prop_oneof![
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Add { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Sub { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| And { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Or { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Xor { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Nor { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Slt { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Sltu { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Mul { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Mulh { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Mulhu { rd, rs, rt }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Sll { rd, rt, shamt }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Srl { rd, rt, shamt }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Sra { rd, rt, shamt }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Addi { rt, rs, imm }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Slti { rt, rs, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Andi { rt, rs, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Ori { rt, rs, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Xori { rt, rs, imm }),
        (reg(), any::<u16>()).prop_map(|(rt, imm)| Lui { rt, imm }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, offset)| Lw { rt, base, offset }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, offset)| Lh { rt, base, offset }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, offset)| Lhu { rt, base, offset }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, offset)| Sw { rt, base, offset }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, offset)| Sh { rt, base, offset }),
        (reg(), reg(), any::<i16>()).prop_map(|(rs, rt, offset)| Beq { rs, rt, offset }),
        (reg(), reg(), any::<i16>()).prop_map(|(rs, rt, offset)| Bne { rs, rt, offset }),
        (reg(), any::<i16>()).prop_map(|(rs, offset)| Blez { rs, offset }),
        (reg(), any::<i16>()).prop_map(|(rs, offset)| Bgtz { rs, offset }),
        (reg(), any::<i16>()).prop_map(|(rs, offset)| Bltz { rs, offset }),
        (reg(), any::<i16>()).prop_map(|(rs, offset)| Bgez { rs, offset }),
        (0u32..(1 << 26)).prop_map(|target| J { target }),
        (0u32..(1 << 26)).prop_map(|target| Jal { target }),
        reg().prop_map(|rs| Jr { rs }),
        (reg(), reg()).prop_map(|(rd, rs)| Jalr { rd, rs }),
        Just(Halt),
        (reg(), reg()).prop_map(|(stage, module)| But4 { stage, module }),
        (reg(), any::<i16>()).prop_map(|(base, offset)| Ldin { base, offset }),
        (reg(), any::<i16>()).prop_map(|(base, offset)| Stout { base, offset }),
        (reg(), 0usize..FftCfg::ALL.len()).prop_map(|(rs, s)| Mtfft { rs, sel: FftCfg::ALL[s] }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn encode_decode_roundtrip(i in instr()) {
        let word = i.encode();
        let decoded = Instr::decode(word).expect("generated instruction decodes");
        prop_assert_eq!(decoded, i);
    }

    #[test]
    fn decode_is_idempotent_on_valid_words(word in any::<u32>()) {
        // If a random word decodes, re-encoding must reproduce it up to
        // don't-care fields: decode(encode(decode(w))) == decode(w).
        if let Ok(i) = Instr::decode(word) {
            let norm = i.encode();
            prop_assert_eq!(Instr::decode(norm).expect("normalised decodes"), i);
        }
    }

    #[test]
    fn disassemble_reassemble_is_identity(is in prop::collection::vec(instr(), 1..40)) {
        // Branch/jump operands in a listing are offsets/targets; give
        // the parser a label-free subset by filtering control flow.
        let body: Vec<Instr> = is.into_iter().filter(|i| !i.is_control()).collect();
        prop_assume!(!body.is_empty());
        let p = Program::from_instrs(&body);
        // Strip addresses and word columns from the listing.
        // Listing format is `{pc:6}: {word:08x}  {instr}`: the mnemonic
        // starts at a fixed column.
        let text: String =
            p.disassemble().lines().map(|l| l[18..].to_string() + "\n").collect();
        let p2 = assemble_text(&text).expect("listing reassembles");
        prop_assert_eq!(p2.words(), p.words());
    }
}

#[test]
fn every_cfg_selector_has_unique_name() {
    let mut names: Vec<&str> = FftCfg::ALL.iter().map(|c| c.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), FftCfg::ALL.len());
}
