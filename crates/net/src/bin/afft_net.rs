//! The serving binary: an OFDM modem pool behind a TCP socket.
//!
//! Serves four channels from one worker pool — a modulator and a
//! demodulator for WiMAX 802.16 (256 subcarriers, 64-sample cyclic
//! prefix) and for MB-UWB 802.15.3a (128 subcarriers, 32-sample
//! prefix) — each on the engine an autotuning Estimate plan picked for
//! its size. Clients speak the `afft_net` frame protocol; see the
//! crate docs.
//!
//! ```text
//! afft_net [--addr HOST:PORT] [--workers N] [--queue-depth N]
//! afft_net --smoke    # in-process loopback self-test, exits 0 on pass
//! ```

use afft_core::engine::EngineRegistry;
use afft_net::{NetClient, NetEvent, NetServer};
use afft_num::Complex;
use afft_planner::{Planner, Strategy};
use afft_stream::{ChannelOp, ChannelSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "afft_net: OFDM serving binary (WiMAX-256 + UWB-128 modem pairs over TCP)\n\n\
             options:\n  \
             --addr HOST:PORT   bind address (default 127.0.0.1:4517)\n  \
             --workers N        pipeline worker threads (default 4)\n  \
             --queue-depth N    pipeline submission budget (default 64)\n  \
             --smoke            in-process loopback self-test; exits 0 on pass"
        );
        return Ok(());
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let addr = flag(&args, "--addr")?.unwrap_or_else(|| {
        // The smoke test binds an ephemeral port so parallel CI jobs
        // never collide.
        if smoke {
            "127.0.0.1:0".to_string()
        } else {
            "127.0.0.1:4517".to_string()
        }
    });
    let workers: usize = match flag(&args, "--workers")? {
        Some(v) => v.parse().map_err(|_| format!("--workers value {v:?} is not an integer"))?,
        None => 4,
    };
    let queue_depth: usize = match flag(&args, "--queue-depth")? {
        Some(v) => v.parse().map_err(|_| format!("--queue-depth value {v:?} is not an integer"))?,
        None => 64,
    };

    // Plan each symbol size once; the serving channels run the winners.
    let mut planner = Planner::new();
    let wimax = planner.plan(256, Strategy::Estimate)?;
    let uwb = planner.plan(128, Strategy::Estimate)?;

    let mut builder =
        NetServer::builder(EngineRegistry::standard).workers(workers).queue_depth(queue_depth);
    let wimax_tx = builder.channel(ChannelSpec::from_plan(&wimax, ChannelOp::Modulate { cp: 64 }));
    let wimax_rx =
        builder.channel(ChannelSpec::from_plan(&wimax, ChannelOp::Demodulate { cp: 64 }));
    let uwb_tx = builder.channel(ChannelSpec::from_plan(&uwb, ChannelOp::Modulate { cp: 32 }));
    let uwb_rx = builder.channel(ChannelSpec::from_plan(&uwb, ChannelOp::Demodulate { cp: 32 }));
    let server = builder.serve(&addr)?;

    println!(
        "afft_net serving on {} ({workers} workers, queue depth {queue_depth})\n  \
         ch {wimax_tx}/{wimax_rx}: WiMAX-256 modulate/demodulate on `{}`\n  \
         ch {uwb_tx}/{uwb_rx}:  UWB-128 modulate/demodulate on `{}`",
        server.local_addr(),
        wimax.best().name,
        uwb.best().name,
    );

    if smoke {
        return run_smoke(server, wimax_tx, wimax_rx);
    }

    // Serve until killed; the accept/router/handler threads do the
    // work. (Graceful drain is exercised by the library tests and the
    // smoke run — a plain SIGKILL here just drops the sockets.)
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Loopback self-test over the real socket: one WiMAX-256 symbol out
/// through modulate and back through demodulate, plus an admin stats
/// round trip, then a graceful drain.
fn run_smoke(
    server: NetServer,
    wimax_tx: u16,
    wimax_rx: u16,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = NetClient::connect(server.local_addr())?;
    assert_eq!(client.channels().len(), 4, "HELLO must advertise all four channels");
    assert_eq!(client.channels()[wimax_tx as usize].n, 256);

    // QPSK-ish subcarriers with a deterministic pattern; modulate.
    let subcarriers: Vec<_> = (0..256)
        .map(|i| {
            let re = if i % 2 == 0 { 1.0 } else { -1.0 };
            let im = if i % 3 == 0 { 1.0 } else { -1.0 };
            Complex::new(re, im) * std::f64::consts::FRAC_1_SQRT_2
        })
        .collect();
    client.submit(wimax_tx, 1, &subcarriers)?;
    let samples = match client.recv_event()? {
        NetEvent::Result { channel, seq, samples } => {
            assert_eq!((channel, seq), (wimax_tx, 1));
            assert_eq!(samples.len(), 256 + 64, "modulate emits N + cp samples");
            samples
        }
        other => return Err(format!("smoke: expected a modulate Result, got {other:?}").into()),
    };

    // Demodulate the noiseless samples; the bins must reproduce the
    // subcarriers to numerical precision.
    client.submit(wimax_rx, 2, &samples)?;
    match client.recv_event()? {
        NetEvent::Result { channel, seq, samples: bins } => {
            assert_eq!((channel, seq), (wimax_rx, 2));
            assert_eq!(bins.len(), 256);
            let worst = bins
                .iter()
                .zip(&subcarriers)
                .map(|(got, want)| (*got - *want).abs())
                .fold(0.0f64, f64::max);
            assert!(worst < 1e-9, "smoke: round-trip error {worst:e} too large");
        }
        other => return Err(format!("smoke: expected a demodulate Result, got {other:?}").into()),
    }

    // Admin stats: structurally sane JSON naming this server and the
    // pipeline snapshot underneath it.
    client.request_stats(3)?;
    match client.recv_event()? {
        NetEvent::Stats { json } => {
            for needle in
                ["\"server\":\"afft_net\"", "\"pipeline\":", "\"frames_in\":", "\"shed\":"]
            {
                assert!(json.contains(needle), "smoke: stats JSON missing {needle}: {json}");
            }
        }
        other => return Err(format!("smoke: expected Stats, got {other:?}").into()),
    }

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.delivered, stats.submitted, "smoke: drain must deliver everything accepted");
    println!("smoke: PASS ({} frames served, clean drain)", stats.delivered);
    Ok(())
}

/// `--flag value` lookup; a flag present without a value is a hard
/// error, same stance as the bench harness's `--stamp`.
fn flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    let Some(at) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    match args.get(at + 1) {
        Some(v) => Ok(Some(v.clone())),
        None => Err(format!("{name} requires a value")),
    }
}
