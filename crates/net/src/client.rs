//! A loopback client for the serving binary.
//!
//! Small by design: connect, read the server's `HELLO` channel table,
//! submit sample frames, and pull typed [`NetEvent`]s back off the
//! wire. It exists so the tests, the bench harness, and the examples
//! all exercise the **real** socket path instead of calling into the
//! pipeline directly — but it is a perfectly serviceable client for
//! any process that wants transforms over TCP.
//!
//! [`NetClient::split`] separates the send and receive halves onto
//! cloned sockets so a flood writer and a drain reader can run on
//! different threads — which is exactly how a client must be shaped to
//! observe `RETRY_AFTER` load-shedding without deadlocking on its own
//! unread responses.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use afft_num::C64;

use crate::proto::{
    self, ChannelInfo, ProtoError, OP_ERROR, OP_HELLO, OP_RESULT, OP_RETRY_AFTER, OP_STATS,
    OP_STATS_JSON, OP_SUBMIT,
};

/// One frame's worth of server response, already decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum NetEvent {
    /// A completed transform: the channel's output samples.
    Result {
        /// Wire channel the work ran on.
        channel: u16,
        /// The client's own correlation id, echoed back.
        seq: u64,
        /// Output samples (`output_len` of the channel).
        samples: Vec<C64>,
    },
    /// The server shed the frame; resubmit after the hinted delay.
    RetryAfter {
        /// Wire channel the submission targeted.
        channel: u16,
        /// The client's own correlation id, echoed back.
        seq: u64,
        /// Suggested backoff in milliseconds.
        millis: u32,
    },
    /// The server refused or failed the frame.
    ServerError {
        /// Wire channel the frame targeted (0 for connection-level
        /// protocol errors).
        channel: u16,
        /// The client's correlation id (0 for connection-level
        /// errors).
        seq: u64,
        /// Human-readable reason.
        message: String,
    },
    /// The admin stats document, answering a
    /// [`request_stats`](NetSender::request_stats).
    Stats {
        /// The JSON text (server counters + pipeline snapshot).
        json: String,
    },
}

/// The write half: submits work and stats requests.
#[derive(Debug)]
pub struct NetSender {
    stream: TcpStream,
    channels: Vec<ChannelInfo>,
}

/// The read half: decodes response frames into [`NetEvent`]s.
#[derive(Debug)]
pub struct NetReceiver {
    stream: TcpStream,
    payload: Vec<u8>,
}

/// A connected client: the two halves plus the server's channel table.
#[derive(Debug)]
pub struct NetClient {
    tx: NetSender,
    rx: NetReceiver,
}

impl NetClient {
    /// Connects and reads the server's `HELLO` channel table.
    ///
    /// # Errors
    ///
    /// Connection failure, or a malformed/non-`HELLO` first frame.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ProtoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut rx = NetReceiver { stream: stream.try_clone()?, payload: Vec::new() };
        let header = proto::read_header(&mut rx.stream)?;
        if header.op != OP_HELLO {
            return Err(ProtoError::Malformed(format!(
                "expected a HELLO frame, got op {:#04x}",
                header.op
            )));
        }
        proto::read_payload_into(&mut rx.stream, &header, &mut rx.payload)?;
        let channels = proto::decode_hello(&rx.payload)?;
        Ok(Self { tx: NetSender { stream, channels }, rx })
    }

    /// The channel table the server advertised.
    pub fn channels(&self) -> &[ChannelInfo] {
        self.tx.channels()
    }

    /// Submits one symbol; see [`NetSender::submit`].
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn submit(&mut self, channel: u16, seq: u64, samples: &[C64]) -> Result<(), ProtoError> {
        self.tx.submit(channel, seq, samples)
    }

    /// Asks for the admin stats document; the answer arrives as
    /// [`NetEvent::Stats`].
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn request_stats(&mut self, seq: u64) -> Result<(), ProtoError> {
        self.tx.request_stats(seq)
    }

    /// Blocks for the next response frame; see
    /// [`NetReceiver::recv_event`].
    ///
    /// # Errors
    ///
    /// Socket failure (including EOF) or a malformed frame.
    pub fn recv_event(&mut self) -> Result<NetEvent, ProtoError> {
        self.rx.recv_event()
    }

    /// Bounds how long [`recv_event`](Self::recv_event) blocks (`None`
    /// restores wait-forever); a timeout surfaces as
    /// [`ProtoError::Io`] with kind `WouldBlock`/`TimedOut`.
    ///
    /// # Errors
    ///
    /// The underlying `set_read_timeout` failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ProtoError> {
        self.rx.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Splits into independently-owned halves on cloned sockets, so a
    /// writer thread can keep submitting while a reader thread drains.
    pub fn split(self) -> (NetSender, NetReceiver) {
        (self.tx, self.rx)
    }
}

impl NetSender {
    /// The channel table the server advertised.
    pub fn channels(&self) -> &[ChannelInfo] {
        &self.channels
    }

    /// Submits one symbol on a wire channel. `seq` is the caller's
    /// correlation id, echoed verbatim on whatever answer comes back.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn submit(&mut self, channel: u16, seq: u64, samples: &[C64]) -> Result<(), ProtoError> {
        let mut payload = Vec::with_capacity(samples.len() * proto::BYTES_PER_SAMPLE);
        proto::put_samples(&mut payload, samples);
        proto::write_frame(&mut self.stream, OP_SUBMIT, channel, seq, &payload)?;
        Ok(())
    }

    /// Asks for the admin stats document.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn request_stats(&mut self, seq: u64) -> Result<(), ProtoError> {
        proto::write_frame(&mut self.stream, OP_STATS, 0, seq, &[])?;
        Ok(())
    }
}

impl NetReceiver {
    /// Blocks for the next response frame and decodes it. EOF (the
    /// server closed the connection) surfaces as [`ProtoError::Io`].
    ///
    /// # Errors
    ///
    /// Socket failure, or a frame that decodes to no known response
    /// op.
    pub fn recv_event(&mut self) -> Result<NetEvent, ProtoError> {
        let header = proto::read_header(&mut self.stream)?;
        proto::read_payload_into(&mut self.stream, &header, &mut self.payload)?;
        match header.op {
            OP_RESULT => {
                let mut samples = Vec::new();
                proto::take_samples(&self.payload, &mut samples)?;
                Ok(NetEvent::Result { channel: header.channel, seq: header.seq, samples })
            }
            OP_RETRY_AFTER => {
                let bytes: [u8; 4] = self.payload.as_slice().try_into().map_err(|_| {
                    ProtoError::Malformed(format!(
                        "RETRY_AFTER payload is {} bytes, want 4",
                        self.payload.len()
                    ))
                })?;
                Ok(NetEvent::RetryAfter {
                    channel: header.channel,
                    seq: header.seq,
                    millis: u32::from_le_bytes(bytes),
                })
            }
            OP_ERROR => Ok(NetEvent::ServerError {
                channel: header.channel,
                seq: header.seq,
                message: String::from_utf8_lossy(&self.payload).into_owned(),
            }),
            OP_STATS_JSON => Ok(NetEvent::Stats {
                json: String::from_utf8(self.payload.clone()).map_err(|_| {
                    ProtoError::Malformed("stats document is not UTF-8".to_string())
                })?,
            }),
            other => Err(ProtoError::Malformed(format!("unexpected response op {other:#04x}"))),
        }
    }
}
