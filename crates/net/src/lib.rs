//! Network-facing OFDM serving layer: the [`afft_stream`] pipeline
//! behind a TCP socket.
//!
//! Layer 5 of the stack: [`afft_core`] computes, [`afft_planner`]
//! chooses, [`afft_stream`] schedules, and this crate **serves** — a
//! length-prefixed binary-frame protocol ([`proto`]), a
//! thread-per-connection server that maps connections onto stream
//! channels ([`server`]), and a loopback client ([`client`]) so tests,
//! benches, and examples drive the real wire path.
//!
//! Design stances, in one breath: backpressure is *protocol-level*
//! (a full pipeline answers `RETRY_AFTER`, never an unbounded queue);
//! payload buffers recycle through completions (zero steady-state
//! per-frame allocation); shutdown *drains* (every accepted frame is
//! answered before the pool is joined); and the admin `STATS` frame
//! exposes the [`afft_obs`]-backed pipeline snapshot as JSON.
//!
//! ```no_run
//! use afft_core::engine::EngineRegistry;
//! use afft_net::{NetClient, NetEvent, NetServer};
//! use afft_stream::{ChannelOp, ChannelSpec};
//!
//! let mut builder = NetServer::builder(EngineRegistry::standard);
//! let ch = builder.channel(ChannelSpec {
//!     n: 256,
//!     engine: "radix4_dit".to_string(),
//!     op: ChannelOp::Modulate { cp: 64 },
//! });
//! let server = builder.serve("127.0.0.1:0").expect("bind");
//!
//! let mut client = NetClient::connect(server.local_addr()).expect("connect");
//! let subcarriers = vec![afft_num::Complex::new(1.0, 0.0); 256];
//! client.submit(ch, 7, &subcarriers).expect("submit");
//! match client.recv_event().expect("recv") {
//!     NetEvent::Result { seq, samples, .. } => assert_eq!((seq, samples.len()), (7, 320)),
//!     other => panic!("unexpected {other:?}"),
//! }
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{NetClient, NetEvent, NetReceiver, NetSender};
pub use proto::{ChannelInfo, OpKind, ProtoError};
pub use server::{NetServer, NetServerBuilder};
