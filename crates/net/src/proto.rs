//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a fixed 20-byte little-endian header followed by
//! `payload_len` bytes of payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic       b"AFN1"
//!      4     1  version     1
//!      5     1  op          frame kind (OP_* constants)
//!      6     2  channel     wire channel index (u16 LE)
//!      8     8  seq         client correlation id (u64 LE), echoed back
//!     16     4  payload_len bytes of payload that follow (u32 LE)
//! ```
//!
//! `seq` is the **client's** correlation id: the server echoes it on
//! the matching `RESULT` / `RETRY_AFTER` / `ERROR` frame and never
//! interprets it, so a client may pipeline any number of frames per
//! channel and match responses however it likes. Sample payloads
//! (`SUBMIT` / `RESULT`) are packed `f64` little-endian re/im pairs —
//! [`BYTES_PER_SAMPLE`] bytes per complex point, in order.
//!
//! [`MAX_PAYLOAD`] caps `payload_len`; [`read_header`] refuses a larger
//! claim **before any allocation**, so an adversarial length prefix
//! cannot balloon server memory. Bad magic or version is a hard
//! protocol error (the connection cannot be resynchronised); a merely
//! wrong-sized payload on a known channel is recoverable — the server
//! discards the bounded payload and answers with an `ERROR` frame.

use afft_num::{Complex, C64};
use std::io::{Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"AFN1";
/// Protocol version carried in every header.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 20;
/// Upper bound on `payload_len` — checked before any allocation. 1 MiB
/// holds a 32768-point complex symbol, far beyond any registered
/// channel, while keeping a hostile length prefix harmless.
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Packed size of one complex sample (two little-endian `f64`s).
pub const BYTES_PER_SAMPLE: usize = 16;

/// Client → server: run the payload through a channel.
pub const OP_SUBMIT: u8 = 0x01;
/// Client → server: request the admin stats JSON (`channel`/`seq`
/// echoed on the reply; no payload).
pub const OP_STATS: u8 = 0x02;
/// Server → client, once per connection: the channel table
/// ([`encode_hello`] / [`decode_hello`]).
pub const OP_HELLO: u8 = 0x80;
/// Server → client: a finished symbol (packed samples payload).
pub const OP_RESULT: u8 = 0x81;
/// Server → client: load-shed refusal; payload is a `u32` LE
/// retry-after hint in milliseconds. The symbol was **not** accepted.
pub const OP_RETRY_AFTER: u8 = 0x82;
/// Server → client: a definitive failure for `seq` (UTF-8 message
/// payload). Also used at shutdown for frames that can no longer run.
pub const OP_ERROR: u8 = 0x83;
/// Server → client: the admin stats document (UTF-8 JSON payload).
pub const OP_STATS_JSON: u8 = 0x84;

/// What a channel does to a submitted payload, as advertised in the
/// `HELLO` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Forward transform, `n` points in and out.
    Forward,
    /// Inverse transform, `n` points in and out.
    Inverse,
    /// OFDM modulation: `n` subcarriers in, `n + cp` samples out.
    Modulate,
    /// OFDM demodulation: `n + cp` samples in, `n` bins out.
    Demodulate,
}

impl OpKind {
    fn code(self) -> u8 {
        match self {
            OpKind::Forward => 0,
            OpKind::Inverse => 1,
            OpKind::Modulate => 2,
            OpKind::Demodulate => 3,
        }
    }

    fn from_code(code: u8) -> Result<OpKind, ProtoError> {
        Ok(match code {
            0 => OpKind::Forward,
            1 => OpKind::Inverse,
            2 => OpKind::Modulate,
            3 => OpKind::Demodulate,
            other => return Err(ProtoError::Malformed(format!("unknown op kind {other}"))),
        })
    }
}

/// One row of the `HELLO` channel table: everything a client needs to
/// shape payloads for (and interpret results from) a wire channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelInfo {
    /// Wire channel index (the header's `channel` field).
    pub index: u16,
    /// Transform size (subcarrier count for the OFDM ops).
    pub n: u32,
    /// Samples per `SUBMIT` payload.
    pub input_len: u32,
    /// Samples per `RESULT` payload.
    pub output_len: u32,
    /// What the channel does.
    pub kind: OpKind,
    /// Cyclic-prefix length (0 for the raw transforms).
    pub cp: u32,
    /// The engine serving the channel.
    pub engine: String,
}

/// A decoded frame header (magic and version already validated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Frame kind, one of the `OP_*` constants.
    pub op: u8,
    /// Wire channel index.
    pub channel: u16,
    /// Client correlation id.
    pub seq: u64,
    /// Payload bytes following the header (`<= MAX_PAYLOAD`).
    pub payload_len: u32,
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed (including EOF mid-frame).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`] — the peer is not
    /// speaking this protocol, or the stream lost sync. Unrecoverable.
    BadMagic([u8; 4]),
    /// Unsupported protocol version. Unrecoverable.
    BadVersion(u8),
    /// The header claimed more than [`MAX_PAYLOAD`] bytes; refused
    /// before any allocation. Unrecoverable (the payload length cannot
    /// be trusted for a skip).
    Oversized(u32),
    /// Structurally invalid payload (bad sample packing, truncated
    /// table, unknown op kind).
    Malformed(String),
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "socket error: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::Oversized(len) => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            ProtoError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Serialises a header into its 20 wire bytes.
pub fn encode_header(header: &Header) -> [u8; HEADER_LEN] {
    let mut bytes = [0u8; HEADER_LEN];
    bytes[0..4].copy_from_slice(&MAGIC);
    bytes[4] = VERSION;
    bytes[5] = header.op;
    bytes[6..8].copy_from_slice(&header.channel.to_le_bytes());
    bytes[8..16].copy_from_slice(&header.seq.to_le_bytes());
    bytes[16..20].copy_from_slice(&header.payload_len.to_le_bytes());
    bytes
}

/// Reads and validates one header: magic, version, and the
/// [`MAX_PAYLOAD`] cap — the cap is enforced **here**, before any
/// payload buffer exists, so a hostile length prefix costs nothing.
///
/// # Errors
///
/// [`ProtoError::Io`] (including EOF), [`ProtoError::BadMagic`],
/// [`ProtoError::BadVersion`], or [`ProtoError::Oversized`].
pub fn read_header(r: &mut impl Read) -> Result<Header, ProtoError> {
    let mut bytes = [0u8; HEADER_LEN];
    r.read_exact(&mut bytes)?;
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    if bytes[4] != VERSION {
        return Err(ProtoError::BadVersion(bytes[4]));
    }
    let payload_len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(payload_len));
    }
    Ok(Header {
        op: bytes[5],
        channel: u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes")),
        seq: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        payload_len,
    })
}

/// Reads a (cap-checked) header's payload into `buf`, reusing its
/// capacity — the steady-state read path allocates nothing once the
/// buffer has grown to the connection's largest frame.
pub fn read_payload_into(
    r: &mut impl Read,
    header: &Header,
    buf: &mut Vec<u8>,
) -> Result<(), ProtoError> {
    buf.clear();
    buf.resize(header.payload_len as usize, 0);
    r.read_exact(buf)?;
    Ok(())
}

/// Writes one frame — header plus payload — as a single buffered write,
/// so a frame is never interleaved with another writer's bytes as long
/// as callers serialise on the stream (the server wraps each connection
/// in a write mutex).
pub fn write_frame(
    w: &mut impl Write,
    op: u8,
    channel: u16,
    seq: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_PAYLOAD as u64, "oversized outbound frame");
    let header = encode_header(&Header { op, channel, seq, payload_len: payload.len() as u32 });
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Packs complex samples onto the end of `payload` (re then im, `f64`
/// little-endian each).
pub fn put_samples(payload: &mut Vec<u8>, samples: &[C64]) {
    payload.reserve(samples.len() * BYTES_PER_SAMPLE);
    for s in samples {
        payload.extend_from_slice(&s.re.to_le_bytes());
        payload.extend_from_slice(&s.im.to_le_bytes());
    }
}

/// Unpacks a sample payload into `out` (cleared first, capacity
/// reused).
///
/// # Errors
///
/// [`ProtoError::Malformed`] if the byte count is not a whole number of
/// samples.
pub fn take_samples(payload: &[u8], out: &mut Vec<C64>) -> Result<(), ProtoError> {
    if !payload.len().is_multiple_of(BYTES_PER_SAMPLE) {
        return Err(ProtoError::Malformed(format!(
            "sample payload of {} bytes is not a multiple of {BYTES_PER_SAMPLE}",
            payload.len()
        )));
    }
    out.clear();
    out.reserve(payload.len() / BYTES_PER_SAMPLE);
    for pair in payload.chunks_exact(BYTES_PER_SAMPLE) {
        let re = f64::from_le_bytes(pair[0..8].try_into().expect("8 bytes"));
        let im = f64::from_le_bytes(pair[8..16].try_into().expect("8 bytes"));
        out.push(Complex::new(re, im));
    }
    Ok(())
}

/// Encodes the `HELLO` channel table: `u16` row count, then per row the
/// fixed fields and a length-prefixed engine name.
pub fn encode_hello(channels: &[ChannelInfo]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(channels.len() as u16).to_le_bytes());
    for ch in channels {
        out.extend_from_slice(&ch.index.to_le_bytes());
        out.extend_from_slice(&ch.n.to_le_bytes());
        out.extend_from_slice(&ch.input_len.to_le_bytes());
        out.extend_from_slice(&ch.output_len.to_le_bytes());
        out.push(ch.kind.code());
        out.extend_from_slice(&ch.cp.to_le_bytes());
        let name = ch.engine.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
    }
    out
}

/// Decodes a `HELLO` payload back into the channel table.
///
/// # Errors
///
/// [`ProtoError::Malformed`] on truncation, trailing bytes, an unknown
/// op kind, or a non-UTF-8 engine name.
pub fn decode_hello(payload: &[u8]) -> Result<Vec<ChannelInfo>, ProtoError> {
    let truncated = || ProtoError::Malformed("truncated channel table".to_string());
    let mut at = 0usize;
    let mut grab = |len: usize| -> Result<&[u8], ProtoError> {
        let slice = payload.get(at..at + len).ok_or_else(truncated)?;
        at += len;
        Ok(slice)
    };
    let count = u16::from_le_bytes(grab(2)?.try_into().expect("2 bytes"));
    let mut channels = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let index = u16::from_le_bytes(grab(2)?.try_into().expect("2 bytes"));
        let n = u32::from_le_bytes(grab(4)?.try_into().expect("4 bytes"));
        let input_len = u32::from_le_bytes(grab(4)?.try_into().expect("4 bytes"));
        let output_len = u32::from_le_bytes(grab(4)?.try_into().expect("4 bytes"));
        let kind = OpKind::from_code(grab(1)?[0])?;
        let cp = u32::from_le_bytes(grab(4)?.try_into().expect("4 bytes"));
        let name_len = u16::from_le_bytes(grab(2)?.try_into().expect("2 bytes")) as usize;
        let engine = core::str::from_utf8(grab(name_len)?)
            .map_err(|_| ProtoError::Malformed("engine name is not UTF-8".to_string()))?
            .to_string();
        channels.push(ChannelInfo { index, n, input_len, output_len, kind, cp, engine });
    }
    if at != payload.len() {
        return Err(ProtoError::Malformed("trailing bytes after channel table".to_string()));
    }
    Ok(channels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_through_the_wire_bytes() {
        let header = Header { op: OP_SUBMIT, channel: 7, seq: 0xdead_beef_1234, payload_len: 96 };
        let bytes = encode_header(&header);
        assert_eq!(bytes.len(), HEADER_LEN);
        let back = read_header(&mut &bytes[..]).unwrap();
        assert_eq!(back, header);
    }

    #[test]
    fn bad_magic_and_version_are_hard_errors() {
        let mut bytes =
            encode_header(&Header { op: OP_SUBMIT, channel: 0, seq: 0, payload_len: 0 });
        bytes[0] = b'X';
        assert!(matches!(read_header(&mut &bytes[..]), Err(ProtoError::BadMagic(_))));
        let mut bytes =
            encode_header(&Header { op: OP_SUBMIT, channel: 0, seq: 0, payload_len: 0 });
        bytes[4] = 9;
        assert!(matches!(read_header(&mut &bytes[..]), Err(ProtoError::BadVersion(9))));
    }

    #[test]
    fn oversized_length_prefix_is_refused_at_the_header() {
        // An adversarial 4 GiB claim must die in read_header — before
        // read_payload_into (and its allocation) can ever run.
        let mut bytes =
            encode_header(&Header { op: OP_SUBMIT, channel: 0, seq: 0, payload_len: 0 });
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_header(&mut &bytes[..]), Err(ProtoError::Oversized(u32::MAX))));
        // The cap itself is fine.
        bytes[16..20].copy_from_slice(&MAX_PAYLOAD.to_le_bytes());
        assert_eq!(read_header(&mut &bytes[..]).unwrap().payload_len, MAX_PAYLOAD);
    }

    #[test]
    fn truncated_frames_surface_as_io_errors() {
        let bytes = encode_header(&Header { op: OP_SUBMIT, channel: 0, seq: 0, payload_len: 0 });
        assert!(matches!(read_header(&mut &bytes[..10]), Err(ProtoError::Io(_))));
        let header = Header { op: OP_SUBMIT, channel: 0, seq: 0, payload_len: 32 };
        let mut buf = Vec::new();
        let short = [0u8; 16];
        assert!(matches!(
            read_payload_into(&mut &short[..], &header, &mut buf),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn samples_round_trip_and_reject_ragged_payloads() {
        let samples: Vec<C64> =
            (0..5).map(|i| Complex::new(i as f64 + 0.25, -(i as f64) * 0.5)).collect();
        let mut payload = Vec::new();
        put_samples(&mut payload, &samples);
        assert_eq!(payload.len(), 5 * BYTES_PER_SAMPLE);
        let mut back = Vec::new();
        take_samples(&payload, &mut back).unwrap();
        assert_eq!(back, samples);
        assert!(matches!(
            take_samples(&payload[..payload.len() - 3], &mut back),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn hello_table_round_trips_and_rejects_truncation() {
        let table = vec![
            ChannelInfo {
                index: 0,
                n: 256,
                input_len: 256,
                output_len: 320,
                kind: OpKind::Modulate,
                cp: 64,
                engine: "radix4_simd".to_string(),
            },
            ChannelInfo {
                index: 1,
                n: 128,
                input_len: 160,
                output_len: 128,
                kind: OpKind::Demodulate,
                cp: 32,
                engine: "split_radix".to_string(),
            },
        ];
        let payload = encode_hello(&table);
        assert_eq!(decode_hello(&payload).unwrap(), table);
        assert!(matches!(
            decode_hello(&payload[..payload.len() - 1]),
            Err(ProtoError::Malformed(_))
        ));
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(matches!(decode_hello(&trailing), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn whole_frames_round_trip_through_write_frame() {
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        put_samples(&mut payload, &[Complex::new(1.0, -2.0)]);
        write_frame(&mut wire, OP_RESULT, 3, 42, &payload).unwrap();
        let mut cursor = &wire[..];
        let header = read_header(&mut cursor).unwrap();
        assert_eq!((header.op, header.channel, header.seq), (OP_RESULT, 3, 42));
        let mut body = Vec::new();
        read_payload_into(&mut cursor, &header, &mut body).unwrap();
        assert_eq!(body, payload);
    }
}
