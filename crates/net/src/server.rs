//! The serving side: a TCP listener whose connections feed a shared
//! [`StreamPipeline`].
//!
//! # Thread shape
//!
//! One **accept thread** polls a non-blocking listener; each connection
//! gets a **handler thread** that reads frames and submits symbols; each
//! channel gets a **router thread** that receives the channel's in-order
//! completions and writes them back to whichever connection submitted
//! them. Handlers and routers meet at a per-channel *pending map*
//! (pipeline seq → submitting connection): the handler inserts under
//! the map's lock **around** the `try_submit` call, so a completion can
//! never be routed before its origin is recorded.
//!
//! # Backpressure = load-shedding
//!
//! A full pipeline budget ([`SubmitError::QueueFull`]) or a connection
//! over its outstanding-frames cap is answered with a `RETRY_AFTER`
//! frame instead of queueing unboundedly — the symbol is *not* accepted
//! and its buffers go straight back to the channel's pool. Every frame
//! the pipeline *does* accept is answered eventually: a `RESULT`, an
//! `ERROR` carrying the backend's verdict, or — if a worker panic
//! poisons the pipeline — an `ERROR` from the router's drain.
//!
//! # Buffer recycling
//!
//! Payload buffers travel with the job and come back in the completion
//! (the stream crate's own contract); the router returns them to a
//! per-channel pool the handlers draw from, so the steady-state
//! per-frame path allocates nothing.
//!
//! # Graceful drain
//!
//! [`NetServer::shutdown`] stops accepting, closes the pipeline intake
//! (late frames are answered with `ERROR`), lets every handler drain
//! the frames already buffered on its socket, lets every router deliver
//! every accepted completion, then joins the pool — accepted work is
//! never dropped on the floor.

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use afft_core::Direction;
use afft_num::{Complex, C64};
use afft_obs::json;
use afft_planner::RegistryFactory;
use afft_stream::{
    ChannelId, ChannelOp, ChannelSpec, Completion, RecvError, StreamPipeline, StreamStats,
    SubmitError,
};

use crate::proto::{
    self, ChannelInfo, Header, OpKind, BYTES_PER_SAMPLE, HEADER_LEN, OP_ERROR, OP_HELLO, OP_RESULT,
    OP_RETRY_AFTER, OP_STATS, OP_STATS_JSON, OP_SUBMIT,
};

/// How often blocked reads and waits re-check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(50);
/// Accept-loop sleep between polls of the non-blocking listener.
const ACCEPT_TICK: Duration = Duration::from_millis(5);
/// Cap on pooled buffer pairs per channel — enough to cover the whole
/// submission budget without letting a burst pin memory forever.
const POOL_CAP: usize = 64;

/// Configures and launches a [`NetServer`]. Obtained from
/// [`NetServer::builder`].
#[derive(Debug)]
pub struct NetServerBuilder {
    factory: RegistryFactory,
    specs: Vec<ChannelSpec>,
    workers: usize,
    queue_depth: usize,
    observability: Option<bool>,
    retry_after_ms: u32,
    max_conn_outstanding: u64,
}

impl NetServerBuilder {
    /// Worker-pool size for the underlying pipeline (see
    /// [`afft_stream::StreamBuilder::workers`]).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Pipeline-wide submission budget; a full budget is what turns
    /// into `RETRY_AFTER` frames (see
    /// [`afft_stream::StreamBuilder::queue_depth`]).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Explicitly enables or disables pipeline metrics (surfaced on the
    /// admin stats endpoint); the default follows `AFFT_OBS`.
    #[must_use]
    pub fn observability(mut self, on: bool) -> Self {
        self.observability = Some(on);
        self
    }

    /// The retry hint (milliseconds) carried in `RETRY_AFTER` frames.
    #[must_use]
    pub fn retry_after_ms(mut self, millis: u32) -> Self {
        self.retry_after_ms = millis;
        self
    }

    /// Per-connection cap on accepted-but-unanswered frames; a
    /// connection at its cap is shed with `RETRY_AFTER` even when the
    /// pipeline has budget, so one slow reader cannot monopolise the
    /// pool or balloon the server's reply backlog.
    #[must_use]
    pub fn max_conn_outstanding(mut self, frames: u64) -> Self {
        self.max_conn_outstanding = frames.max(1);
        self
    }

    /// Registers a serving channel; returns its **wire** index (the
    /// protocol's `channel` field, advertised in `HELLO`).
    pub fn channel(&mut self, spec: ChannelSpec) -> u16 {
        self.specs.push(spec);
        (self.specs.len() - 1) as u16
    }

    /// Builds the pipeline, binds `addr` (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port), and spawns the accept and router threads.
    ///
    /// # Errors
    ///
    /// Any pipeline construction error (bad channel spec, unknown
    /// engine) mapped to [`std::io::Error`], or the bind failure
    /// itself.
    pub fn serve(self, addr: &str) -> std::io::Result<NetServer> {
        let mut builder = StreamPipeline::builder(self.factory)
            .workers(self.workers)
            .queue_depth(self.queue_depth);
        if let Some(on) = self.observability {
            builder = builder.observability(on);
        }
        let mut channels = Vec::with_capacity(self.specs.len());
        let mut infos = Vec::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            channels.push(builder.channel(spec.clone()));
            let (kind, cp) = match spec.op {
                ChannelOp::Transform(Direction::Forward) => (OpKind::Forward, 0),
                ChannelOp::Transform(Direction::Inverse) => (OpKind::Inverse, 0),
                ChannelOp::Modulate { cp } => (OpKind::Modulate, cp),
                ChannelOp::Demodulate { cp } => (OpKind::Demodulate, cp),
            };
            infos.push(ChannelInfo {
                index: i as u16,
                n: spec.n as u32,
                input_len: spec.input_len() as u32,
                output_len: spec.output_len() as u32,
                kind,
                cp: cp as u32,
                engine: spec.engine.clone(),
            });
        }
        let pipeline = builder.build().map_err(std::io::Error::other)?;

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let hello = proto::encode_hello(&infos);
        let shared = Arc::new(ServerShared {
            pipeline,
            channels,
            chan: infos.iter().map(|_| ChanState::default()).collect(),
            infos,
            hello,
            shutdown: AtomicBool::new(false),
            retry_after_ms: self.retry_after_ms,
            max_conn_outstanding: self.max_conn_outstanding,
            connections: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });

        let routers = (0..shared.channels.len())
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || router_loop(&shared, idx))
            })
            .collect();

        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || accept_loop(&listener, &shared, &handlers))
        };

        Ok(NetServer { shared, accept: Some(accept), routers, handlers, local_addr })
    }
}

/// The running server: owns the accept/router/handler threads and the
/// pipeline they share. See the [module docs](self) for the thread
/// shape and guarantees.
#[derive(Debug)]
pub struct NetServer {
    shared: Arc<ServerShared>,
    accept: Option<std::thread::JoinHandle<()>>,
    routers: Vec<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    local_addr: SocketAddr,
}

impl NetServer {
    /// Starts configuring a server over a registry factory (the same
    /// entry point the pipeline itself uses).
    pub fn builder(factory: RegistryFactory) -> NetServerBuilder {
        NetServerBuilder {
            factory,
            specs: Vec::new(),
            workers: 4,
            queue_depth: 64,
            observability: None,
            retry_after_ms: 10,
            max_conn_outstanding: 64,
        }
    }

    /// The bound address — with an ephemeral bind (`:0`), where clients
    /// should actually connect.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The admin stats document (the same JSON a `STATS` frame
    /// returns): server-level counters plus the full pipeline
    /// [`StreamStats::to_json`] snapshot, per-channel histograms
    /// included when observability is on.
    pub fn stats_json(&self) -> String {
        admin_stats_json(&self.shared)
    }

    /// Graceful drain: stop accepting, close the pipeline intake (late
    /// frames are answered with `ERROR`), let handlers flush what their
    /// sockets already buffered, let routers deliver every accepted
    /// completion, then join everything. Returns the pipeline's final
    /// stats. Connections close once their last response is written.
    pub fn shutdown(mut self) -> StreamStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // No new connections. Close the intake so frames still arriving
        // get a definitive ERROR instead of an accept they can't have.
        self.shared.pipeline.close();
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for h in handlers {
            let _ = h.join();
        }
        // Handlers are gone: nothing submits any more. Wake the routers
        // so they notice shutdown once their pending maps drain.
        for st in &self.shared.chan {
            let _g = st.pending.lock().expect("pending map poisoned");
            st.work.notify_all();
        }
        for h in self.routers.drain(..) {
            let _ = h.join();
        }
        // Routers delivered everything accepted; the final snapshot is
        // the report. The pipeline itself is joined by its own Drop —
        // which, unlike StreamPipeline::shutdown, tolerates a poisoned
        // pool instead of re-raising the worker's panic.
        self.shared.pipeline.stats()
    }
}

/// Everything the accept, handler, and router threads share.
struct ServerShared {
    pipeline: StreamPipeline,
    /// Pipeline handles, index-aligned with `infos` and `chan`.
    channels: Vec<ChannelId>,
    infos: Vec<ChannelInfo>,
    /// Pre-encoded `HELLO` payload, one copy for every connection.
    hello: Vec<u8>,
    chan: Vec<ChanState>,
    shutdown: AtomicBool,
    retry_after_ms: u32,
    max_conn_outstanding: u64,
    connections: AtomicU64,
    frames_in: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
}

impl core::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServerShared").finish_non_exhaustive()
    }
}

/// Per-channel rendezvous between handlers and the channel's router.
#[derive(Default)]
struct ChanState {
    /// pipeline seq → submitting connection. A handler inserts under
    /// this lock *around* its `try_submit`, so the router (which pops
    /// under the same lock) can never see a completion whose origin is
    /// not yet recorded.
    pending: Mutex<HashMap<u64, Pending>>,
    /// Wakes the router when the map goes non-empty (and at shutdown).
    work: Condvar,
    /// Recycled `(input, output)` buffer pairs.
    pool: Mutex<Vec<(Vec<C64>, Vec<C64>)>>,
}

/// Where an accepted symbol's answer must go.
struct Pending {
    writer: Arc<ConnWriter>,
    client_seq: u64,
}

/// The write half of a connection, shared by its handler and every
/// router delivering to it. The mutex keeps frames atomic on the wire;
/// `dead` latches the first write failure so a vanished client costs at
/// most one failed write per pending answer.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    outstanding: AtomicU64,
    dead: AtomicBool,
}

impl ConnWriter {
    fn send(&self, op: u8, channel: u16, seq: u64, payload: &[u8]) {
        if self.dead.load(Ordering::SeqCst) {
            return;
        }
        let mut stream = self.stream.lock().expect("connection writer poisoned");
        if proto::write_frame(&mut *stream, op, channel, seq, payload).is_err() {
            self.dead.store(true, Ordering::SeqCst);
        }
    }

    fn send_error(&self, channel: u16, seq: u64, message: &str) {
        self.send(OP_ERROR, channel, seq, message.as_bytes());
    }
}

/// Outcome of a polled exact-length read.
enum ReadStatus {
    /// The buffer is full.
    Done,
    /// Clean EOF on a frame boundary (before the first byte).
    Eof,
    /// The peer died mid-frame.
    TruncatedEof,
    /// The shutdown flag was raised while waiting for bytes.
    Shutdown,
}

/// Reads exactly `buf.len()` bytes from a stream whose read timeout is
/// [`POLL_TICK`], retrying timeout ticks so a frame split across
/// packets is never mis-framed — but bailing out once shutdown is
/// raised and the socket has gone quiet (anything already buffered
/// keeps draining: a tick only fires when no bytes are ready).
fn poll_read_exact(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<ReadStatus> {
    let mut at = 0;
    while at < buf.len() {
        match stream.read(&mut buf[at..]) {
            Ok(0) => return Ok(if at == 0 { ReadStatus::Eof } else { ReadStatus::TruncatedEof }),
            Ok(k) => at += k,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(ReadStatus::Shutdown);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadStatus::Done)
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    handlers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let _ = handle_conn(&shared, stream);
                });
                handlers.lock().expect("handler list poisoned").push(handle);
            }
            // Non-blocking listener: no pending connection (or a
            // transient accept error) — sleep a tick and re-poll.
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

/// One connection's read loop: `HELLO`, then frames until EOF, a
/// protocol error, or shutdown (draining what the socket already
/// buffered first).
fn handle_conn(shared: &Arc<ServerShared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL_TICK))?;
    // Backstop against a peer that stops reading entirely: a stalled
    // response write marks the connection dead rather than wedging a
    // router. (The outstanding-frames cap sheds slow readers long
    // before this fires.)
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(stream.try_clone()?),
        outstanding: AtomicU64::new(0),
        dead: AtomicBool::new(false),
    });
    writer.send(OP_HELLO, 0, 0, &shared.hello);

    let mut stream = stream;
    let mut hdr_bytes = [0u8; HEADER_LEN];
    let mut payload: Vec<u8> = Vec::new();
    loop {
        if writer.dead.load(Ordering::SeqCst) {
            return Ok(());
        }
        match poll_read_exact(&mut stream, &mut hdr_bytes, &shared.shutdown)? {
            ReadStatus::Done => {}
            ReadStatus::Eof | ReadStatus::TruncatedEof | ReadStatus::Shutdown => return Ok(()),
        }
        let header = match proto::read_header(&mut &hdr_bytes[..]) {
            Ok(h) => h,
            Err(e) => {
                // Bad magic/version/length claim: the stream cannot be
                // resynchronised. Name the problem and hang up.
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                writer.send_error(0, 0, &e.to_string());
                return Ok(());
            }
        };
        // The payload is bounded (read_header enforced the cap), so it
        // is always drained — even for a frame that will be refused —
        // keeping the stream framed for the next round trip.
        match poll_read_exact(
            &mut stream,
            {
                payload.clear();
                payload.resize(header.payload_len as usize, 0);
                &mut payload
            },
            &shared.shutdown,
        )? {
            ReadStatus::Done => {}
            ReadStatus::Eof | ReadStatus::TruncatedEof | ReadStatus::Shutdown => return Ok(()),
        }
        shared.frames_in.fetch_add(1, Ordering::SeqCst);
        match header.op {
            OP_SUBMIT => {
                if handle_submit(shared, &writer, &header, &payload).is_err() {
                    return Ok(());
                }
            }
            OP_STATS => {
                let doc = admin_stats_json(shared);
                writer.send(OP_STATS_JSON, header.channel, header.seq, doc.as_bytes());
            }
            other => {
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                writer.send_error(header.channel, header.seq, &format!("unknown op {other:#04x}"));
            }
        }
    }
}

/// A submit frame: validate, draw pooled buffers, and run the
/// lock-bracketed `try_submit`. `Err(())` means the connection should
/// be dropped (the pipeline is dead).
fn handle_submit(
    shared: &Arc<ServerShared>,
    writer: &Arc<ConnWriter>,
    header: &Header,
    payload: &[u8],
) -> Result<(), ()> {
    let idx = header.channel as usize;
    let Some(info) = shared.infos.get(idx) else {
        writer.send_error(header.channel, header.seq, &format!("unknown channel {idx}"));
        return Ok(());
    };
    let expected = info.input_len as usize * BYTES_PER_SAMPLE;
    if payload.len() != expected {
        // Wrong shape is recoverable: the payload was bounded and fully
        // drained, so the stream is still framed.
        writer.send_error(
            header.channel,
            header.seq,
            &format!("channel {idx} takes {expected}-byte payloads, got {}", payload.len()),
        );
        return Ok(());
    }
    if writer.outstanding.load(Ordering::SeqCst) >= shared.max_conn_outstanding {
        shed(shared, writer, header);
        return Ok(());
    }

    let st = &shared.chan[idx];
    let (mut input, output) = st
        .pool
        .lock()
        .expect("buffer pool poisoned")
        .pop()
        .unwrap_or_else(|| (Vec::new(), vec![Complex::zero(); info.output_len as usize]));
    proto::take_samples(payload, &mut input).expect("length validated above");

    // The pending insert happens under the same lock that brackets
    // try_submit: the router pops under this lock, so a completion
    // cannot be routed before its origin is recorded.
    let mut pending = st.pending.lock().expect("pending map poisoned");
    match shared.pipeline.try_submit(shared.channels[idx], input, output) {
        Ok(seq) => {
            pending.insert(seq, Pending { writer: Arc::clone(writer), client_seq: header.seq });
            writer.outstanding.fetch_add(1, Ordering::SeqCst);
            st.work.notify_one();
            Ok(())
        }
        Err(e) => {
            drop(pending);
            let verdict = match &e {
                SubmitError::QueueFull { .. } => Verdict::Shed,
                SubmitError::Closed { .. } => Verdict::Refuse("server is shutting down"),
                SubmitError::Poisoned { .. } => {
                    Verdict::Dead("pipeline poisoned by a worker panic")
                }
                SubmitError::Shape { .. } => Verdict::Refuse("internal shape mismatch"),
            };
            // Every refusal hands the buffers back; recycle them.
            let (input, output) = e.into_buffers();
            recycle(st, input, output);
            match verdict {
                Verdict::Shed => {
                    shed(shared, writer, header);
                    Ok(())
                }
                Verdict::Refuse(why) => {
                    writer.send_error(header.channel, header.seq, why);
                    Ok(())
                }
                Verdict::Dead(why) => {
                    writer.send_error(header.channel, header.seq, why);
                    Err(())
                }
            }
        }
    }
}

/// How a refused submission is answered.
enum Verdict {
    Shed,
    Refuse(&'static str),
    Dead(&'static str),
}

/// Answers a load-shed with `RETRY_AFTER` and counts it.
fn shed(shared: &ServerShared, writer: &ConnWriter, header: &Header) {
    shared.shed.fetch_add(1, Ordering::SeqCst);
    writer.send(OP_RETRY_AFTER, header.channel, header.seq, &shared.retry_after_ms.to_le_bytes());
}

/// Returns a buffer pair to the channel's pool (bounded; overflow is
/// simply dropped).
fn recycle(st: &ChanState, input: Vec<C64>, output: Vec<C64>) {
    let mut pool = st.pool.lock().expect("buffer pool poisoned");
    if pool.len() < POOL_CAP {
        pool.push((input, output));
    }
}

/// One channel's delivery loop: wait for pending work, receive the
/// channel's completions in order, and write each back to its
/// submitting connection. Exits when shutdown has drained everything —
/// or, on a poisoned pipeline, after answering every pending frame
/// with an `ERROR`.
fn router_loop(shared: &Arc<ServerShared>, idx: usize) {
    let st = &shared.chan[idx];
    let ch = shared.channels[idx];
    let wire = idx as u16;
    let mut scratch: Vec<u8> = Vec::new();
    loop {
        // Park until a handler records pending work (or shutdown).
        {
            let mut pending = st.pending.lock().expect("pending map poisoned");
            while pending.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                pending = st.work.wait_timeout(pending, POLL_TICK).expect("pending map poisoned").0;
            }
            if pending.is_empty() && shared.shutdown.load(Ordering::SeqCst) {
                // Every accepted symbol has a pending entry (inserted
                // under the submit bracket), so empty-at-shutdown means
                // fully drained.
                return;
            }
        }
        match shared.pipeline.recv_timeout(ch, POLL_TICK) {
            Ok(Some(done)) => deliver(st, wire, done, &mut scratch),
            // Nothing outstanding pipeline-side; loop back to the wait
            // (the pending map drives the exit decision).
            Ok(None) | Err(RecvError::Timeout) => {}
            Err(RecvError::Poisoned) => {
                // The channel's remaining symbols will never complete:
                // give every waiting connection a definitive answer.
                let mut pending = st.pending.lock().expect("pending map poisoned");
                for (_seq, p) in pending.drain() {
                    p.writer.send_error(wire, p.client_seq, "pipeline poisoned by a worker panic");
                    p.writer.outstanding.fetch_sub(1, Ordering::SeqCst);
                }
                return;
            }
        }
    }
}

/// Writes one completion back to its submitting connection and recycles
/// the payload buffers.
fn deliver(st: &ChanState, wire: u16, done: Completion, scratch: &mut Vec<u8>) {
    let entry = st.pending.lock().expect("pending map poisoned").remove(&done.seq);
    let Some(p) = entry else {
        // Unreachable by construction; tolerate rather than poison the
        // router.
        recycle(st, done.input, done.output);
        return;
    };
    match &done.error {
        Some(err) => p.writer.send_error(wire, p.client_seq, &err.to_string()),
        None => {
            scratch.clear();
            proto::put_samples(scratch, &done.output);
            p.writer.send(OP_RESULT, wire, p.client_seq, scratch);
        }
    }
    p.writer.outstanding.fetch_sub(1, Ordering::SeqCst);
    recycle(st, done.input, done.output);
}

/// The admin stats document: server-level counters wrapped around the
/// pipeline's own [`StreamStats::to_json`] snapshot.
fn admin_stats_json(shared: &ServerShared) -> String {
    json::Obj::new()
        .str("server", "afft_net")
        .num("channels", shared.infos.len() as f64)
        .num("connections", shared.connections.load(Ordering::SeqCst) as f64)
        .num("frames_in", shared.frames_in.load(Ordering::SeqCst) as f64)
        .num("shed", shared.shed.load(Ordering::SeqCst) as f64)
        .num("protocol_errors", shared.protocol_errors.load(Ordering::SeqCst) as f64)
        .bool("poisoned", shared.pipeline.is_poisoned())
        .raw("pipeline", shared.pipeline.stats().to_json())
        .finish()
}
