//! Adversarial clients against a live server: malformed bytes, hostile
//! length claims, readers that stop reading, pools under concurrent
//! fire, and shutdown racing in-flight work. The server must shrug —
//! refuse cleanly, keep serving everyone else, and never lose a frame
//! it accepted.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use afft_core::engine::EngineRegistry;
use afft_core::Direction;
use afft_net::proto::{self, HEADER_LEN, MAGIC, OP_SUBMIT, VERSION};
use afft_net::{NetClient, NetEvent, NetServer, NetServerBuilder, ProtoError};
use afft_num::{Complex, C64};
use afft_stream::ChannelSpec;

/// A one-channel server over a fast 64-point forward transform.
fn transform_server() -> NetServerBuilder {
    let mut builder = NetServer::builder(EngineRegistry::standard).workers(2).queue_depth(32);
    builder.channel(ChannelSpec::transform(64, "split_radix", Direction::Forward));
    builder
}

/// A scaled impulse: its forward FFT is flat at `amp` on every bin,
/// which makes per-client cross-talk instantly visible.
fn impulse(n: usize, amp: f64) -> Vec<C64> {
    let mut v = vec![Complex::zero(); n];
    v[0] = Complex::new(amp, 0.0);
    v
}

fn assert_flat(samples: &[C64], amp: f64) {
    for (i, s) in samples.iter().enumerate() {
        assert!((s.re - amp).abs() < 1e-9 && s.im.abs() < 1e-9, "bin {i} = {s:?}, want {amp}+0i");
    }
}

/// Reads and discards the HELLO frame on a raw socket.
fn eat_hello(stream: &mut TcpStream) {
    let header = proto::read_header(stream).expect("hello header");
    let mut buf = Vec::new();
    proto::read_payload_into(stream, &header, &mut buf).expect("hello payload");
}

#[test]
fn truncated_frame_then_disconnect_leaves_the_server_serving() {
    let server = transform_server().serve("127.0.0.1:0").expect("bind");

    // Half a header, then vanish mid-frame.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    eat_hello(&mut raw);
    raw.write_all(&MAGIC).expect("write");
    raw.write_all(&[VERSION, OP_SUBMIT, 0, 0, 7]).expect("write");
    drop(raw);

    // And again, dying one byte short of a complete header.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    eat_hello(&mut raw);
    let header = proto::encode_header(&proto::Header {
        op: OP_SUBMIT,
        channel: 0,
        seq: 1,
        payload_len: 64 * proto::BYTES_PER_SAMPLE as u32,
    });
    raw.write_all(&header[..HEADER_LEN - 1]).expect("write");
    drop(raw);

    // The server is unbothered: a fresh client round-trips cleanly.
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.submit(0, 42, &impulse(64, 3.0)).expect("submit");
    match client.recv_event().expect("recv") {
        NetEvent::Result { seq, samples, .. } => {
            assert_eq!(seq, 42);
            assert_flat(&samples, 3.0);
        }
        other => panic!("expected a Result, got {other:?}"),
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.delivered, stats.submitted);
}

#[test]
fn oversized_length_prefix_is_refused_and_the_connection_closed() {
    let server = transform_server().serve("127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

    // Hand-craft a header claiming a 4 GiB payload on the raw socket.
    // read_header refuses at the length field — nothing is allocated
    // and no payload bytes are awaited.
    let mut hostile = Vec::with_capacity(HEADER_LEN);
    hostile.extend_from_slice(&MAGIC);
    hostile.push(VERSION);
    hostile.push(OP_SUBMIT);
    hostile.extend_from_slice(&0u16.to_le_bytes());
    hostile.extend_from_slice(&9u64.to_le_bytes());
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    eat_hello(&mut raw);
    raw.write_all(&hostile).expect("write");

    // The hostile connection gets a definitive ERROR naming the cap,
    // then EOF: the stream cannot be resynchronised after a length lie.
    raw.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let header = proto::read_header(&mut raw).expect("error frame header");
    assert_eq!(header.op, proto::OP_ERROR);
    let mut payload = Vec::new();
    proto::read_payload_into(&mut raw, &header, &mut payload).expect("error frame payload");
    let message = String::from_utf8_lossy(&payload).into_owned();
    assert!(message.contains("exceeds"), "error should name the cap: {message}");
    match proto::read_header(&mut raw) {
        Err(ProtoError::Io(_)) => {}
        other => panic!("expected EOF after the refusal, got {other:?}"),
    }

    // The well-behaved connection on the same server still works.
    client.submit(0, 5, &impulse(64, 2.0)).expect("submit");
    match client.recv_event().expect("recv") {
        NetEvent::Result { seq, samples, .. } => {
            assert_eq!(seq, 5);
            assert_flat(&samples, 2.0);
        }
        other => panic!("expected a Result, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.delivered, stats.submitted);
}

#[test]
fn slow_reader_is_shed_at_its_outstanding_cap() {
    // A deliberately slow engine and a 2-frame outstanding cap: a
    // client that fires without reading must see RETRY_AFTER, and
    // every accepted frame must still complete.
    let mut builder = NetServer::builder(EngineRegistry::standard)
        .workers(1)
        .queue_depth(32)
        .max_conn_outstanding(2);
    builder.channel(ChannelSpec::transform(512, "dft_naive", Direction::Forward));
    let server = builder.serve("127.0.0.1:0").expect("bind");

    let client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let (mut tx, mut rx) = client.split();
    let burst = 8u64;
    for seq in 0..burst {
        tx.submit(0, seq, &impulse(512, 1.0)).expect("submit");
    }
    let (mut results, mut retries) = (0u64, 0u64);
    for _ in 0..burst {
        match rx.recv_event().expect("recv") {
            NetEvent::Result { samples, .. } => {
                assert_flat(&samples, 1.0);
                results += 1;
            }
            NetEvent::RetryAfter { millis, .. } => {
                assert!(millis > 0);
                retries += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(retries >= 1, "an unread burst of {burst} over a cap of 2 must shed");
    assert_eq!(results + retries, burst, "every frame gets exactly one answer");

    // Resubmitting the shed frames at a polite pace drains cleanly.
    for seq in 0..retries {
        tx.submit(0, 100 + seq, &impulse(512, 1.0)).expect("submit");
        match rx.recv_event().expect("recv") {
            NetEvent::Result { seq: got, .. } => assert_eq!(got, 100 + seq),
            other => panic!("unexpected {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.delivered, stats.submitted);
    assert_eq!(stats.delivered, burst, "8 accepted in total: 8 - shed + resubmits");
}

#[test]
fn concurrent_clients_share_one_pool_without_crosstalk() {
    let server = Arc::new(transform_server().workers(4).serve("127.0.0.1:0").expect("bind"));
    let delivered = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..4u64)
        .map(|id| {
            let addr = server.local_addr();
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
                let amp = (id + 1) as f64;
                for frame in 0..16u64 {
                    let seq = id * 1000 + frame;
                    client.submit(0, seq, &impulse(64, amp)).expect("submit");
                    match client.recv_event().expect("recv") {
                        NetEvent::Result { seq: got, samples, .. } => {
                            assert_eq!(got, seq, "answers stay on the submitting connection");
                            assert_flat(&samples, amp);
                            delivered.fetch_add(1, Ordering::SeqCst);
                        }
                        other => panic!("client {id}: unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    assert_eq!(delivered.load(Ordering::SeqCst), 64);
    let server = Arc::into_inner(server).expect("sole owner");
    let stats = server.shutdown();
    assert_eq!(stats.delivered, 64);
    assert_eq!(stats.delivered, stats.submitted);
}

#[test]
fn shutdown_with_frames_in_flight_loses_no_accepted_work() {
    // Slow engine, shallow queue: the burst is guaranteed to still be
    // in flight (and partly shed) when shutdown lands.
    let mut builder = NetServer::builder(EngineRegistry::standard).workers(1).queue_depth(4);
    builder.channel(ChannelSpec::transform(512, "dft_naive", Direction::Forward));
    let server = builder.serve("127.0.0.1:0").expect("bind");

    let client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let (mut tx, mut rx) = client.split();
    let burst = 16u64;
    for seq in 0..burst {
        tx.submit(0, seq, &impulse(512, 1.0)).expect("submit");
    }
    // Let the frames land in the server's socket buffer, then pull the
    // plug while the pipeline is mid-burst.
    std::thread::sleep(Duration::from_millis(100));
    let reader = std::thread::spawn(move || {
        let (mut results, mut retries, mut errors) = (0u64, 0u64, 0u64);
        loop {
            match rx.recv_event() {
                Ok(NetEvent::Result { samples, .. }) => {
                    assert_flat(&samples, 1.0);
                    results += 1;
                }
                Ok(NetEvent::RetryAfter { .. }) => retries += 1,
                Ok(NetEvent::ServerError { .. }) => errors += 1,
                Ok(other) => panic!("unexpected {other:?}"),
                // EOF: the drain is complete and the server hung up.
                Err(ProtoError::Io(_)) => return (results, retries, errors),
                Err(e) => panic!("protocol error: {e}"),
            }
        }
    });
    let stats = server.shutdown();
    let (results, retries, errors) = reader.join().expect("reader thread");

    // The ledger must balance: every frame was answered exactly once,
    // and every frame the pipeline accepted came back as a Result.
    assert_eq!(results + retries + errors, burst, "every frame gets exactly one answer");
    assert_eq!(
        results, stats.submitted,
        "accepted work must all be delivered (shed {retries}, refused {errors})"
    );
    assert_eq!(stats.delivered, stats.submitted);
}
