//! The acceptance path over real sockets: the WiMAX-256 and UWB-128
//! modem pairs round-tripping QPSK through AWGN with zero bit errors,
//! a flood client observing protocol-level load-shedding without
//! losing an accepted frame, and the admin stats document holding up
//! to structural scrutiny.

use std::time::Duration;

use afft_core::engine::EngineRegistry;
use afft_core::Direction;
use afft_net::{NetClient, NetEvent, NetServer};
use afft_num::{Complex, C64};
use afft_stream::{ChannelOp, ChannelSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NOISE: f64 = 0.01;

/// The serving binary's channel layout: WiMAX-256 and UWB-128 modem
/// pairs on one pool. Returns (server, [wimax_tx, wimax_rx, uwb_tx,
/// uwb_rx]).
fn modem_server() -> (NetServer, [u16; 4]) {
    let mut builder = NetServer::builder(EngineRegistry::standard).workers(2).queue_depth(32);
    let chans = [
        builder.channel(ChannelSpec {
            n: 256,
            engine: "split_radix".to_string(),
            op: ChannelOp::Modulate { cp: 64 },
        }),
        builder.channel(ChannelSpec {
            n: 256,
            engine: "split_radix".to_string(),
            op: ChannelOp::Demodulate { cp: 64 },
        }),
        builder.channel(ChannelSpec {
            n: 128,
            engine: "split_radix".to_string(),
            op: ChannelOp::Modulate { cp: 32 },
        }),
        builder.channel(ChannelSpec {
            n: 128,
            engine: "split_radix".to_string(),
            op: ChannelOp::Demodulate { cp: 32 },
        }),
    ];
    (builder.serve("127.0.0.1:0").expect("bind"), chans)
}

fn expect_result(client: &mut NetClient, want_channel: u16, want_seq: u64) -> Vec<C64> {
    match client.recv_event().expect("recv") {
        NetEvent::Result { channel, seq, samples } => {
            assert_eq!((channel, seq), (want_channel, want_seq));
            samples
        }
        other => panic!("expected a Result on ch {want_channel}, got {other:?}"),
    }
}

#[test]
fn wimax_and_uwb_modems_round_trip_qpsk_through_awgn_over_the_wire() {
    let (server, [wimax_tx, wimax_rx, uwb_tx, uwb_rx]) = modem_server();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");

    // The HELLO table must describe the modem layout faithfully.
    let infos = client.channels().to_vec();
    assert_eq!(infos.len(), 4);
    assert_eq!((infos[wimax_tx as usize].n, infos[wimax_tx as usize].cp), (256, 64));
    assert_eq!(infos[wimax_tx as usize].output_len, 256 + 64);
    assert_eq!(infos[wimax_rx as usize].input_len, 256 + 64);
    assert_eq!((infos[uwb_tx as usize].n, infos[uwb_tx as usize].cp), (128, 32));

    let mut rng = StdRng::seed_from_u64(2009);
    let mut total_bits = 0usize;
    let mut bit_errors = 0usize;
    for &(name, n, tx, rx, frames) in
        &[("WiMAX-256", 256usize, wimax_tx, wimax_rx, 24u64), ("UWB-128", 128, uwb_tx, uwb_rx, 32)]
    {
        let mut bits = vec![(false, false); n];
        let mut subcarriers = vec![Complex::zero(); n];
        for frame in 0..frames {
            // Transmit: QPSK-map fresh bits, modulate over the wire.
            for (slot, b) in subcarriers.iter_mut().zip(bits.iter_mut()) {
                *b = (rng.gen(), rng.gen());
                let re = if b.0 { 1.0 } else { -1.0 };
                let im = if b.1 { 1.0 } else { -1.0 };
                *slot = Complex::new(re, im) * std::f64::consts::FRAC_1_SQRT_2;
            }
            client.submit(tx, frame, &subcarriers).expect("submit tx");
            let mut samples = expect_result(&mut client, tx, frame);

            // Channel: AWGN onto the time-domain samples.
            for s in samples.iter_mut() {
                *s = *s + Complex::new(rng.gen_range(-NOISE..NOISE), rng.gen_range(-NOISE..NOISE));
            }

            // Receive: demodulate over the wire, hard-decision demap.
            client.submit(rx, frame, &samples).expect("submit rx");
            let bins = expect_result(&mut client, rx, frame);
            assert_eq!(bins.len(), n, "{name}: demodulate returns N bins");
            for (bin, &sent) in bins.iter().zip(&bits) {
                total_bits += 2;
                bit_errors +=
                    usize::from((bin.re >= 0.0) != sent.0) + usize::from((bin.im >= 0.0) != sent.1);
            }
        }
    }
    assert_eq!(bit_errors, 0, "QPSK at noise {NOISE} must demodulate cleanly ({total_bits} bits)");
    assert!(total_bits > 0);

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.delivered, stats.submitted, "clean drain");
    assert_eq!(stats.delivered, 2 * (24 + 32), "one tx + one rx per frame");
}

/// Parses the first `"key":<integer>` occurrence out of the flat admin
/// JSON — enough structure-awareness for a zero-dependency test.
fn json_u64(doc: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle).unwrap_or_else(|| panic!("stats JSON missing {needle}: {doc}"));
    doc[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric value for {needle}"))
}

#[test]
fn flood_client_sees_retry_after_and_loses_no_accepted_frame() {
    // One slow worker behind a 2-deep budget: a flood must trip
    // QueueFull, which the server translates to RETRY_AFTER frames.
    let mut builder =
        NetServer::builder(EngineRegistry::standard).workers(1).queue_depth(2).retry_after_ms(5);
    let ch = builder.channel(ChannelSpec::transform(512, "dft_naive", Direction::Forward));
    let server = builder.serve("127.0.0.1:0").expect("bind");

    let client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let (mut tx, mut rx) = client.split();

    // Writer floods without waiting; reader drains concurrently so the
    // flood can't deadlock on its own unread responses.
    let flood = 24u64;
    let mut payload = vec![Complex::zero(); 512];
    payload[0] = Complex::new(1.0, 0.0);
    let writer = std::thread::spawn(move || {
        for seq in 0..flood {
            tx.submit(ch, seq, &payload).expect("submit");
        }
        tx
    });
    let (mut results, mut retries) = (0u64, 0u64);
    for _ in 0..flood {
        match rx.recv_event().expect("recv") {
            NetEvent::Result { samples, .. } => {
                // The impulse's FFT is flat: cheap proof no accepted
                // frame was corrupted or cross-delivered.
                assert!(samples.iter().all(|s| (s.re - 1.0).abs() < 1e-9 && s.im.abs() < 1e-9));
                results += 1;
            }
            NetEvent::RetryAfter { channel, millis, .. } => {
                assert_eq!((channel, millis), (ch, 5));
                retries += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let mut tx = writer.join().expect("writer thread");
    assert!(retries >= 1, "a 24-frame flood over a 2-deep queue must shed");
    assert_eq!(results + retries, flood, "every frame gets exactly one answer");

    // The server's own ledger agrees with the client's.
    tx.request_stats(999).expect("stats");
    let doc = match rx.recv_event().expect("recv") {
        NetEvent::Stats { json } => json,
        other => panic!("expected Stats, got {other:?}"),
    };
    assert_eq!(json_u64(&doc, "shed"), retries);
    assert_eq!(json_u64(&doc, "submitted"), results, "pipeline accepted = client results");

    drop((tx, rx));
    let stats = server.shutdown();
    assert_eq!(stats.delivered, stats.submitted);
    assert_eq!(stats.delivered, results);
    assert_eq!(stats.rejected, retries, "QueueFull refusals are counted pipeline-side too");
}

#[test]
fn admin_stats_document_is_structurally_valid_json() {
    let (server, [wimax_tx, ..]) = modem_server();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");

    // Put some traffic through first so the counters are non-trivial.
    let subcarriers = vec![Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0); 256];
    for seq in 0..3 {
        client.submit(wimax_tx, seq, &subcarriers).expect("submit");
        expect_result(&mut client, wimax_tx, seq);
    }
    client.request_stats(7).expect("stats");
    let doc = match client.recv_event().expect("recv") {
        NetEvent::Stats { json } => json,
        other => panic!("expected Stats, got {other:?}"),
    };

    // Structural sanity: balanced braces/brackets outside strings, no
    // trailing garbage — the same bar scripts/check_bench_json.py sets
    // for the bench documents that embed this object.
    let (mut depth, mut max_depth, mut in_str, mut esc) = (0i64, 0i64, false, false);
    for c in doc.chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in stats JSON");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced stats JSON");
    assert!(!in_str, "unterminated string in stats JSON");
    assert!(max_depth >= 3, "expected nested pipeline/scheduler objects, got depth {max_depth}");

    // The advertised shape: server counters wrapping the pipeline
    // snapshot with its scheduler and per-channel sections.
    for needle in [
        "\"server\":\"afft_net\"",
        "\"connections\":",
        "\"frames_in\":",
        "\"shed\":",
        "\"protocol_errors\":",
        "\"poisoned\":false",
        "\"pipeline\":{",
        "\"scheduler\":{",
        "\"per_channel\":[",
    ] {
        assert!(doc.contains(needle), "stats JSON missing {needle}: {doc}");
    }
    assert_eq!(json_u64(&doc, "channels"), 4);
    assert_eq!(json_u64(&doc, "connections"), 1);
    assert_eq!(json_u64(&doc, "submitted"), 3);
    // Three submits plus the stats request itself.
    assert_eq!(json_u64(&doc, "frames_in"), 4);

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.delivered, 3);
}
