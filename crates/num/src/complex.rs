//! A minimal complex number over any [`Scalar`].

use crate::scalar::Scalar;
use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};

/// Complex number with element type `T`.
///
/// Fields are public: this is a plain data carrier, and the FFT kernels
/// and the simulator's bus packing code need direct access to both parts.
///
/// # Examples
///
/// ```
/// use afft_num::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// assert_eq!(a + b, Complex::new(4.0, 1.0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T: Scalar> Complex<T> {
    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    /// The complex zero.
    #[inline]
    pub fn zero() -> Self {
        Complex::new(T::ZERO, T::ZERO)
    }

    /// Returns the complex conjugate.
    ///
    /// # Examples
    ///
    /// ```
    /// use afft_num::Complex;
    /// assert_eq!(Complex::new(1.0, 2.0).conj(), Complex::new(1.0, -2.0));
    /// ```
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplies by `i` (rotates by +90 degrees): `(re, im) -> (-im, re)`.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex::new(-self.im, self.re)
    }

    /// Multiplies by `-i` (rotates by -90 degrees): `(re, im) -> (im, -re)`.
    ///
    /// This is the `W_4^1` rotation the octant expansion logic uses.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        Complex::new(self.im, -self.re)
    }

    /// Swaps the real and imaginary parts: `(re, im) -> (im, re)`.
    ///
    /// Together with [`Complex::conj`] and negation this generates all the
    /// octant symmetries used by the inter-epoch coefficient compression.
    #[inline]
    pub fn swap(self) -> Self {
        Complex::new(self.im, self.re)
    }

    /// Component-wise `(self + rhs) / 2` without intermediate overflow;
    /// see [`Scalar::add_half`].
    #[inline]
    pub fn add_half(self, rhs: Self) -> Self {
        Complex::new(self.re.add_half(rhs.re), self.im.add_half(rhs.im))
    }

    /// Component-wise `(self - rhs) / 2` without intermediate overflow;
    /// see [`Scalar::sub_half`].
    #[inline]
    pub fn sub_half(self, rhs: Self) -> Self {
        Complex::new(self.re.sub_half(rhs.re), self.im.sub_half(rhs.im))
    }

    /// Squared magnitude `re^2 + im^2` in the element arithmetic.
    #[inline]
    pub fn norm_sqr(self) -> T {
        Scalar::add(Scalar::mul(self.re, self.re), Scalar::mul(self.im, self.im))
    }

    /// Converts element-wise to `f64`.
    #[inline]
    pub fn to_c64(self) -> Complex<f64> {
        Complex::new(self.re.to_f64(), self.im.to_f64())
    }

    /// Quantises element-wise from an `f64` complex.
    #[inline]
    pub fn from_c64(v: Complex<f64>) -> Self {
        Complex::new(T::from_f64(v.re), T::from_f64(v.im))
    }
}

impl Complex<f64> {
    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The distance `|self - other|`, used by error metrics in tests.
    #[inline]
    pub fn dist(self, other: Self) -> f64 {
        (self - other).abs()
    }
}

impl<T: Scalar> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex::new(Scalar::add(self.re, rhs.re), Scalar::add(self.im, rhs.im))
    }
}

impl<T: Scalar> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex::new(Scalar::sub(self.re, rhs.re), Scalar::sub(self.im, rhs.im))
    }
}

impl<T: Scalar> Mul for Complex<T> {
    type Output = Self;
    /// Schoolbook complex multiply: 4 real multiplies and 2 adds, the
    /// structure the butterfly unit implements (the paper's BU uses four
    /// parallel real multipliers per butterfly).
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let re = Scalar::sub(Scalar::mul(self.re, rhs.re), Scalar::mul(self.im, rhs.im));
        let im = Scalar::add(Scalar::mul(self.re, rhs.im), Scalar::mul(self.im, rhs.re));
        Complex::new(re, im)
    }
}

impl<T: Scalar> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Complex::new(-self.re, -self.im)
    }
}

impl<T: Scalar> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: T) -> Self {
        Complex::new(Scalar::mul(self.re, rhs), Scalar::mul(self.im, rhs))
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?} + {:?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}i)", self.re, self.im)
    }
}

impl<T: Scalar> From<(T, T)> for Complex<T> {
    fn from((re, im): (T, T)) -> Self {
        Complex::new(re, im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Q15;

    #[test]
    fn mul_matches_hand_computation() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 4.0);
        // (2+3i)(-1+4i) = -2 + 8i - 3i + 12 i^2 = -14 + 5i
        assert_eq!(a * b, Complex::new(-14.0, 5.0));
    }

    #[test]
    fn conj_mul_gives_norm() {
        let a = Complex::new(3.0, 4.0);
        let n = a * a.conj();
        assert_eq!(n, Complex::new(25.0, 0.0));
        assert_eq!(a.norm_sqr(), 25.0);
    }

    #[test]
    fn rotations_compose() {
        let a = Complex::new(1.0, 2.0);
        assert_eq!(a.mul_i().mul_neg_i(), a);
        assert_eq!(a.mul_i().mul_i(), -a);
        assert_eq!(a.swap().swap(), a);
    }

    #[test]
    fn q15_complex_multiply_accuracy() {
        let a: Complex<Q15> = Complex::from_c64(Complex::new(0.3, -0.4));
        let b: Complex<Q15> = Complex::from_c64(Complex::new(0.5, 0.25));
        let exact = Complex::new(0.3, -0.4) * Complex::new(0.5, 0.25);
        let got = (a * b).to_c64();
        assert!(got.dist(exact) < 1e-4, "got {got:?}, want {exact:?}");
    }

    #[test]
    fn scalar_scale() {
        let a = Complex::new(2.0, -6.0);
        assert_eq!(a * 0.5, Complex::new(1.0, -3.0));
    }

    #[test]
    fn zero_is_additive_identity() {
        let a = Complex::new(1.25, -0.75);
        assert_eq!(a + Complex::zero(), a);
    }

    #[test]
    fn from_tuple() {
        let c: Complex<f64> = (1.0, 2.0).into();
        assert_eq!(c, Complex::new(1.0, 2.0));
    }

    #[test]
    fn abs_and_dist() {
        assert_eq!(Complex::new(3.0, 4.0).abs(), 5.0);
        assert_eq!(Complex::new(1.0, 1.0).dist(Complex::new(1.0, 2.0)), 1.0);
    }
}
