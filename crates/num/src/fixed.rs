//! Signed fixed-point types modelling the ASIP's 16-bit datapath.
//!
//! [`Q15`] is the Q1.15 format (1 sign bit, 15 fractional bits) used for
//! FFT samples and twiddle coefficients; [`Q31`] is the double-width
//! accumulator format. Arithmetic is *saturating* and multiplication
//! *rounds to nearest* (adding the half-LSB before the shift), which is
//! the conventional behaviour of DSP MAC units and what the VHDL butterfly
//! unit of the paper would synthesise to.

use crate::scalar::Scalar;
use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};

/// Q1.15 signed fixed point: the 16-bit sample format of the ASIP datapath.
///
/// Representable range is `[-1.0, 1.0 - 2^-15]`. All arithmetic saturates
/// at the range ends instead of wrapping, matching a hardware datapath
/// with saturation logic.
///
/// # Examples
///
/// ```
/// use afft_num::Q15;
///
/// let half = Q15::from_f64(0.5);
/// assert_eq!((half + half), Q15::ONE_MINUS_EPS); // saturates just below 1.0
/// assert_eq!((half * half).to_f64(), 0.25);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q15(i16);

/// Q1.31 signed fixed point: the wide accumulator format.
///
/// Used by the golden model of the butterfly unit when checking that no
/// intermediate overflow escapes the 16-bit datapath, and by the
/// pre-rotation multiply-on-store path.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q31(i32);

impl Q15 {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 15;

    /// The value zero.
    pub const ZERO: Self = Q15(0);

    /// The largest representable value, `1.0 - 2^-15`.
    pub const ONE_MINUS_EPS: Self = Q15(i16::MAX);

    /// The smallest representable value, `-1.0`.
    pub const NEG_ONE: Self = Q15(i16::MIN);

    /// Creates a `Q15` from its raw two's-complement bit pattern.
    ///
    /// # Examples
    ///
    /// ```
    /// use afft_num::Q15;
    /// assert_eq!(Q15::from_bits(0x4000).to_f64(), 0.5);
    /// ```
    #[inline]
    pub const fn from_bits(bits: i16) -> Self {
        Q15(bits)
    }

    /// Returns the raw two's-complement bit pattern.
    #[inline]
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Quantises an `f64` with round-to-nearest and saturation.
    ///
    /// Values outside `[-1.0, 1.0)` saturate to the range ends.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        let scaled = (v * f64::from(1i32 << Self::FRAC_BITS)).round();
        if scaled >= f64::from(i16::MAX) {
            Self::ONE_MINUS_EPS
        } else if scaled <= f64::from(i16::MIN) {
            Self::NEG_ONE
        } else {
            Q15(scaled as i16)
        }
    }

    /// Converts exactly to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / f64::from(1i32 << Self::FRAC_BITS)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Q15(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Q15(self.0.saturating_sub(rhs.0))
    }

    /// Fixed-point multiply with round-to-nearest and saturation.
    ///
    /// The only overflow case after the rounding shift is
    /// `-1.0 * -1.0 = +1.0`, which saturates to [`Q15::ONE_MINUS_EPS`].
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = i32::from(self.0) * i32::from(rhs.0);
        // Round to nearest: add half an LSB before the arithmetic shift.
        let rounded = (wide + (1 << (Self::FRAC_BITS - 1))) >> Self::FRAC_BITS;
        Q15(clamp_i16(rounded))
    }

    /// Arithmetic shift right by `n` bits (divide by `2^n` toward minus
    /// infinity), the per-stage scaling operation of the BU datapath.
    ///
    /// (Named like the operator deliberately: it *is* the datapath's
    /// shift, but takes a bit count rather than implementing the trait
    /// to keep the fallible contract explicit.)
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, n: u32) -> Self {
        assert!(n < 16, "Q15::shr: shift of {n} out of range");
        Q15(self.0 >> n)
    }

    /// Widens to the accumulator format without loss.
    #[inline]
    pub fn widen(self) -> Q31 {
        Q31(i32::from(self.0) << 16)
    }
}

impl Q31 {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 31;

    /// The value zero.
    pub const ZERO: Self = Q31(0);

    /// The largest representable value, `1.0 - 2^-31`.
    pub const ONE_MINUS_EPS: Self = Q31(i32::MAX);

    /// The smallest representable value, `-1.0`.
    pub const NEG_ONE: Self = Q31(i32::MIN);

    /// Creates a `Q31` from its raw two's-complement bit pattern.
    #[inline]
    pub const fn from_bits(bits: i32) -> Self {
        Q31(bits)
    }

    /// Returns the raw two's-complement bit pattern.
    #[inline]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Quantises an `f64` with round-to-nearest and saturation.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        let scaled = (v * f64::from(1u32 << 31)).round();
        if scaled >= i32::MAX as f64 {
            Self::ONE_MINUS_EPS
        } else if scaled <= i32::MIN as f64 {
            Self::NEG_ONE
        } else {
            Q31(scaled as i32)
        }
    }

    /// Converts exactly to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / f64::from(1u32 << 31)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Q31(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Q31(self.0.saturating_sub(rhs.0))
    }

    /// Fixed-point multiply with round-to-nearest and saturation.
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = i64::from(self.0) * i64::from(rhs.0);
        let rounded = (wide + (1 << (Self::FRAC_BITS - 1))) >> Self::FRAC_BITS;
        Q31(clamp_i32(rounded))
    }

    /// Narrows to [`Q15`] with round-to-nearest and saturation, the
    /// final truncation at the output of a MAC chain.
    #[inline]
    pub fn narrow(self) -> Q15 {
        let rounded = (i64::from(self.0) + (1 << 15)) >> 16;
        Q15(clamp_i16_from_i64(rounded))
    }
}

#[inline]
fn clamp_i16(v: i32) -> i16 {
    if v > i32::from(i16::MAX) {
        i16::MAX
    } else if v < i32::from(i16::MIN) {
        i16::MIN
    } else {
        v as i16
    }
}

#[inline]
fn clamp_i16_from_i64(v: i64) -> i16 {
    if v > i64::from(i16::MAX) {
        i16::MAX
    } else if v < i64::from(i16::MIN) {
        i16::MIN
    } else {
        v as i16
    }
}

#[inline]
fn clamp_i32(v: i64) -> i32 {
    if v > i64::from(i32::MAX) {
        i32::MAX
    } else if v < i64::from(i32::MIN) {
        i32::MIN
    } else {
        v as i32
    }
}

impl Add for Q15 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl Sub for Q15 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl Mul for Q15 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl Neg for Q15 {
    type Output = Self;
    fn neg(self) -> Self {
        // -(-1.0) saturates to ONE_MINUS_EPS, like the hardware negator.
        Q15(self.0.checked_neg().unwrap_or(i16::MAX))
    }
}

impl Add for Q31 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl Sub for Q31 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl Mul for Q31 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl Neg for Q31 {
    type Output = Self;
    fn neg(self) -> Self {
        Q31(self.0.checked_neg().unwrap_or(i32::MAX))
    }
}

impl Scalar for Q15 {
    const ZERO: Self = Q15::ZERO;

    fn from_f64(v: f64) -> Self {
        Q15::from_f64(v)
    }

    fn to_f64(self) -> f64 {
        Q15::to_f64(self)
    }

    fn add_half(self, rhs: Self) -> Self {
        // Wide add then arithmetic shift: a 17-bit intermediate with one
        // guard bit, as the scaled BU datapath implements it.
        Q15(((i32::from(self.0) + i32::from(rhs.0)) >> 1) as i16)
    }

    fn sub_half(self, rhs: Self) -> Self {
        Q15(((i32::from(self.0) - i32::from(rhs.0)) >> 1) as i16)
    }
}

impl Scalar for Q31 {
    const ZERO: Self = Q31::ZERO;

    fn from_f64(v: f64) -> Self {
        Q31::from_f64(v)
    }

    fn to_f64(self) -> f64 {
        Q31::to_f64(self)
    }
}

impl fmt::Debug for Q15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q15({:+.6} /0x{:04x})", self.to_f64(), self.0 as u16)
    }
}

impl fmt::Display for Q15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}", self.to_f64())
    }
}

impl fmt::Debug for Q31 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q31({:+.9} /0x{:08x})", self.to_f64(), self.0 as u32)
    }
}

impl fmt::Display for Q31 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.9}", self.to_f64())
    }
}

impl From<Q15> for Q31 {
    fn from(v: Q15) -> Self {
        v.widen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q15_roundtrip_exact_values() {
        for v in [-1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75] {
            assert_eq!(Q15::from_f64(v).to_f64(), v, "roundtrip {v}");
        }
    }

    #[test]
    fn q15_from_f64_saturates() {
        assert_eq!(Q15::from_f64(2.0), Q15::ONE_MINUS_EPS);
        assert_eq!(Q15::from_f64(1.0), Q15::ONE_MINUS_EPS);
        assert_eq!(Q15::from_f64(-2.0), Q15::NEG_ONE);
        assert_eq!(Q15::from_f64(-1.0), Q15::NEG_ONE);
    }

    #[test]
    fn q15_add_saturates_both_ends() {
        let big = Q15::from_f64(0.75);
        assert_eq!(big + big, Q15::ONE_MINUS_EPS);
        let small = Q15::from_f64(-0.75);
        assert_eq!(small + small, Q15::NEG_ONE);
    }

    #[test]
    fn q15_mul_rounds_to_nearest() {
        // 3/32768 * 0.5 = 1.5/32768, rounds to 2/32768.
        let a = Q15::from_bits(3);
        let b = Q15::from_f64(0.5);
        assert_eq!((a * b).to_bits(), 2);
        // -3/32768 * 0.5 = -1.5/32768 -> rounds to -1 (ties toward +inf
        // under the add-half-then-shift convention).
        let c = Q15::from_bits(-3);
        assert_eq!((c * b).to_bits(), -1);
    }

    #[test]
    fn q15_mul_neg_one_squared_saturates() {
        assert_eq!(Q15::NEG_ONE * Q15::NEG_ONE, Q15::ONE_MINUS_EPS);
    }

    #[test]
    fn q15_neg_saturates_at_min() {
        assert_eq!(-Q15::NEG_ONE, Q15::ONE_MINUS_EPS);
        assert_eq!(-Q15::from_f64(0.5), Q15::from_f64(-0.5));
    }

    #[test]
    fn q15_shr_is_arithmetic() {
        assert_eq!(Q15::from_f64(0.5).shr(1).to_f64(), 0.25);
        assert_eq!(Q15::from_f64(-0.5).shr(1).to_f64(), -0.25);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn q15_shr_rejects_large_shift() {
        let _ = Q15::ZERO.shr(16);
    }

    #[test]
    fn q31_narrow_round_trips_q15() {
        for bits in [-32768i16, -1, 0, 1, 12345, 32767] {
            let q = Q15::from_bits(bits);
            assert_eq!(q.widen().narrow(), q, "widen/narrow {bits}");
        }
    }

    #[test]
    fn q31_mul_matches_f64_closely() {
        let a = Q31::from_f64(0.123456789);
        let b = Q31::from_f64(-0.987654321);
        let got = (a * b).to_f64();
        let want = 0.123456789 * -0.987654321;
        assert!((got - want).abs() < 1e-8, "got {got}, want {want}");
    }

    #[test]
    fn q31_saturation_ends() {
        assert_eq!(Q31::NEG_ONE * Q31::NEG_ONE, Q31::ONE_MINUS_EPS);
        let big = Q31::from_f64(0.75);
        assert_eq!(big + big, Q31::ONE_MINUS_EPS);
    }

    #[test]
    fn debug_repr_is_nonempty() {
        assert!(!format!("{:?}", Q15::ZERO).is_empty());
        assert!(!format!("{:?}", Q31::ZERO).is_empty());
    }

    #[test]
    fn q15_ordering_matches_value_ordering() {
        let mut vals: Vec<Q15> =
            [-0.5, 0.25, -1.0, 0.75, 0.0].iter().map(|&v| Q15::from_f64(v)).collect();
        vals.sort();
        let f: Vec<f64> = vals.iter().map(|q| q.to_f64()).collect();
        assert_eq!(f, vec![-1.0, -0.5, 0.0, 0.25, 0.75]);
    }
}
