//! Bit-level IEEE-754 single-precision helpers.
//!
//! The *Imple 1* baseline of the paper is the standard software FFT
//! compiled for the base PISA core, whose dominant cost is **software
//! floating point**. Our reproduction implements a soft-float subroutine
//! library in the base ISA ([`afft-asip`]'s `softfloat` module). This
//! module is the *specification* for those subroutines: a pure-integer
//! implementation of float add/sub/mul that the assembly routines mirror
//! instruction-for-instruction, so the ISS-executed library can be tested
//! against it, and it in turn is tested against Rust's native `f32`.
//!
//! Only the behaviour the FFT needs is modelled: round-to-nearest-even,
//! normals, zeros, and flush-to-zero of subnormal results (a common DSP
//! simplification; documented and tested). NaN/inf propagate structurally
//! but the FFT workload never produces them.
//!
//! [`afft-asip`]: https://docs.rs/afft-asip

/// Sign bit mask of an IEEE-754 single.
pub const SIGN_MASK: u32 = 0x8000_0000;
/// Exponent field mask.
pub const EXP_MASK: u32 = 0x7f80_0000;
/// Mantissa (fraction) field mask.
pub const MAN_MASK: u32 = 0x007f_ffff;
/// Implicit leading one of a normal mantissa.
pub const IMPLICIT_ONE: u32 = 0x0080_0000;

/// Unpacked IEEE-754 single: `(sign, biased_exponent, mantissa)`.
///
/// For normal numbers the mantissa includes the implicit leading one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unpacked {
    /// Sign: `0` positive, `1` negative.
    pub sign: u32,
    /// Biased exponent (0..=255).
    pub exp: i32,
    /// 24-bit significand including the implicit one for normals.
    pub man: u32,
}

/// Splits a single-precision bit pattern into sign/exponent/mantissa.
///
/// Subnormal inputs are flushed to zero (exp reads 0, mantissa forced to
/// zero), matching the DSP-style soft-float library.
///
/// # Examples
///
/// ```
/// use afft_num::ieee754::unpack;
/// let u = unpack(1.5f32.to_bits());
/// assert_eq!(u.exp, 127);
/// assert_eq!(u.man, 0x00c0_0000); // 1.5 = 1.1b
/// ```
pub fn unpack(bits: u32) -> Unpacked {
    let sign = bits >> 31;
    let exp = ((bits & EXP_MASK) >> 23) as i32;
    let frac = bits & MAN_MASK;
    let man = if exp == 0 {
        0 // flush subnormals to zero
    } else {
        frac | IMPLICIT_ONE
    };
    Unpacked { sign, exp, man }
}

/// Packs sign/exponent/mantissa back into a bit pattern, normalising and
/// rounding to nearest-even. `man` is interpreted with 3 extra guard bits
/// (guard/round/sticky) below the LSB, i.e. a 27-bit quantity for a
/// normalised value in `[2^26, 2^27)`.
///
/// Overflow saturates to infinity; results with biased exponent <= 0 are
/// flushed to zero.
pub fn pack_round(sign: u32, mut exp: i32, mut man: u32) -> u32 {
    if man == 0 {
        return sign << 31;
    }
    // Normalise so that the leading one sits at bit 26 (24-bit significand
    // + 3 guard bits => value in [2^26, 2^27)).
    while man >= 1 << 27 {
        let sticky = man & 1;
        man = (man >> 1) | sticky;
        exp += 1;
    }
    while man < 1 << 26 {
        man <<= 1;
        exp -= 1;
    }
    // Round to nearest even on the 3 guard bits.
    let lsb = (man >> 3) & 1;
    let guard = (man >> 2) & 1;
    let round_sticky = man & 0b11;
    man >>= 3;
    if guard == 1 && (round_sticky != 0 || lsb == 1) {
        man += 1;
        if man == 1 << 24 {
            man >>= 1;
            exp += 1;
        }
    }
    if exp <= 0 {
        return sign << 31; // flush to zero
    }
    if exp >= 255 {
        return (sign << 31) | EXP_MASK; // infinity
    }
    (sign << 31) | ((exp as u32) << 23) | (man & MAN_MASK)
}

/// Soft-float single-precision addition on raw bit patterns.
///
/// Implements the classic align-add-normalise-round algorithm with a
/// 3-bit guard/round/sticky tail, rounding to nearest even, flushing
/// subnormals. This is the exact algorithm the `__addsf3` subroutine in
/// the baseline program implements.
///
/// # Examples
///
/// ```
/// use afft_num::ieee754::add;
/// let s = add(1.25f32.to_bits(), 2.5f32.to_bits());
/// assert_eq!(f32::from_bits(s), 3.75);
/// ```
pub fn add(a: u32, b: u32) -> u32 {
    let ua = unpack(a);
    let ub = unpack(b);
    if ua.man == 0 && ua.exp != 255 {
        return if ub.man == 0 && ub.exp != 255 { sign_only_zero(ua, ub) } else { b };
    }
    if ub.man == 0 && ub.exp != 255 {
        return a;
    }
    // Order so |a| >= |b| by (exp, man).
    let (hi, lo) = if (ua.exp, ua.man) >= (ub.exp, ub.man) { (ua, ub) } else { (ub, ua) };
    let shift = (hi.exp - lo.exp).min(31);
    // 3 guard bits.
    let man_hi = hi.man << 3;
    let mut man_lo = lo.man << 3;
    // Shift with sticky collection.
    if shift > 0 {
        let sticky = if (man_lo & ((1u32 << shift.min(31)) - 1)) != 0 { 1 } else { 0 };
        man_lo = (man_lo >> shift) | sticky;
    }
    if hi.sign == lo.sign {
        let man = man_hi + man_lo;
        pack_round(hi.sign, hi.exp, man)
    } else {
        let man = man_hi - man_lo;
        if man == 0 {
            // Exact cancellation yields +0 under round-to-nearest.
            return 0;
        }
        pack_round(hi.sign, hi.exp, man)
    }
}

/// Soft-float single-precision subtraction on raw bit patterns.
pub fn sub(a: u32, b: u32) -> u32 {
    add(a, b ^ SIGN_MASK)
}

/// Soft-float single-precision multiplication on raw bit patterns.
///
/// 24x24 -> 48-bit product, normalise, round to nearest even, flush
/// subnormal results. Mirrors the `__mulsf3` subroutine.
///
/// # Examples
///
/// ```
/// use afft_num::ieee754::mul;
/// let p = mul(1.5f32.to_bits(), (-2.0f32).to_bits());
/// assert_eq!(f32::from_bits(p), -3.0);
/// ```
pub fn mul(a: u32, b: u32) -> u32 {
    let ua = unpack(a);
    let ub = unpack(b);
    let sign = ua.sign ^ ub.sign;
    if ua.man == 0 || ub.man == 0 {
        return sign << 31;
    }
    let prod = u64::from(ua.man) * u64::from(ub.man); // in [2^46, 2^48)
    let exp = ua.exp + ub.exp - 127;
    // Reduce the 48-bit product to 27 bits (24 + 3 guard), collecting sticky.
    let dropped = prod & ((1u64 << 20) - 1);
    let mut man = (prod >> 20) as u32; // in [2^26, 2^28)
    if dropped != 0 {
        man |= 1;
    }
    pack_round(sign, exp, man)
}

/// Negates a single-precision bit pattern.
pub fn neg(a: u32) -> u32 {
    a ^ SIGN_MASK
}

fn sign_only_zero(ua: Unpacked, ub: Unpacked) -> u32 {
    // +0 + -0 = +0 under round-to-nearest.
    (ua.sign & ub.sign) << 31
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_add(x: f32, y: f32) {
        let got = f32::from_bits(add(x.to_bits(), y.to_bits()));
        let want = x + y;
        assert_eq!(got.to_bits(), want.to_bits(), "add({x}, {y}) = {got}, want {want}");
    }

    fn check_mul(x: f32, y: f32) {
        let got = f32::from_bits(mul(x.to_bits(), y.to_bits()));
        let want = x * y;
        assert_eq!(got.to_bits(), want.to_bits(), "mul({x}, {y}) = {got}, want {want}");
    }

    #[test]
    fn add_simple_cases() {
        check_add(1.0, 2.0);
        check_add(1.25, 2.5);
        check_add(0.1, 0.2);
        check_add(-1.5, 0.75);
        check_add(1e10, -1e10);
        check_add(3.0, 0.0);
        check_add(0.0, -3.0);
        check_add(0.0, 0.0);
    }

    #[test]
    fn add_cancellation_and_alignment() {
        check_add(1.0, 1e-7);
        check_add(1.0, -0.9999999);
        check_add(16777216.0, 1.0); // 2^24 + 1: rounds
        check_add(16777216.0, 3.0);
        check_add(-16777215.0, 16777216.0);
    }

    #[test]
    fn mul_simple_cases() {
        check_mul(1.5, -2.0);
        check_mul(0.1, 0.2);
        check_mul(3.15625, 2.71875);
        check_mul(0.0, 5.0);
        check_mul(-0.0, 5.0);
        check_mul(1.0, 1.0);
    }

    #[test]
    fn sub_is_add_of_negation() {
        let a = 5.5f32.to_bits();
        let b = 2.25f32.to_bits();
        assert_eq!(f32::from_bits(sub(a, b)), 3.25);
        assert_eq!(neg(a), (-5.5f32).to_bits());
    }

    #[test]
    fn flush_to_zero_of_tiny_results() {
        // Smallest normal is 2^-126; a product of two 2^-100 values is
        // subnormal and must flush to (signed) zero.
        let tiny = 2.0f32.powi(-100);
        let got = f32::from_bits(mul(tiny.to_bits(), tiny.to_bits()));
        assert_eq!(got, 0.0);
        let gotn = f32::from_bits(mul(tiny.to_bits(), (-tiny).to_bits()));
        assert_eq!(gotn.to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let big = f32::MAX;
        let got = f32::from_bits(mul(big.to_bits(), big.to_bits()));
        assert!(got.is_infinite() && got > 0.0);
        let got = f32::from_bits(add(big.to_bits(), big.to_bits()));
        assert!(got.is_infinite() && got > 0.0);
    }

    #[test]
    fn exhaustive_small_grid_matches_hardware_float() {
        // A dense grid of values in the FFT's working range; every result
        // must be bit-exact against the host FPU (all are normal).
        let vals: Vec<f32> = (-24..=24)
            .flat_map(|m| (-3..=3).map(move |e| (m as f32 / 8.0) * 2f32.powi(e)))
            .collect();
        for &x in &vals {
            for &y in &vals {
                if x != 0.0 || y != 0.0 {
                    check_add(x, y);
                    check_mul(x, y);
                }
            }
        }
    }

    #[test]
    fn unpack_pack_roundtrip_normals() {
        for v in [1.0f32, -1.0, 0.5, 1.999999, 123456.78, -0.0078125] {
            let u = unpack(v.to_bits());
            let packed = pack_round(u.sign, u.exp, u.man << 3);
            assert_eq!(packed, v.to_bits(), "roundtrip {v}");
        }
    }
}
