//! Numeric foundations for the array-FFT ASIP reproduction.
//!
//! The ASIP datapath of the paper operates on 16-bit fixed-point complex
//! samples (a 32-bit complex word; two words fill the 64-bit `LDIN`/`STOUT`
//! bus). This crate provides:
//!
//! * [`Complex`] — a minimal, dependency-free complex number over any
//!   [`Scalar`] (used with `f64` for golden models and [`Q15`] for the
//!   hardware-accurate datapath);
//! * [`Q15`] / [`Q31`] — signed fixed-point types with saturating,
//!   rounding arithmetic matching the behaviour of a DSP multiplier;
//! * [`ieee754`] — bit-level IEEE-754 single-precision helpers used to
//!   verify the soft-float subroutine library that the *Imple 1* baseline
//!   program runs on the base core.
//!
//! # Examples
//!
//! ```
//! use afft_num::{Complex, Q15};
//!
//! let w = Complex::new(Q15::from_f64(0.5), Q15::from_f64(-0.5));
//! let x = Complex::new(Q15::ONE_MINUS_EPS, Q15::ZERO);
//! let y = w * x;
//! assert!((y.re.to_f64() - 0.5).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod fixed;
pub mod ieee754;
pub mod scalar;

pub use complex::Complex;
pub use fixed::{Q15, Q31};
pub use scalar::Scalar;

/// Complex number over `f64`, the golden-model element type.
pub type C64 = Complex<f64>;

/// Complex number over [`Q15`], the hardware datapath element type.
pub type CQ15 = Complex<Q15>;

/// Returns the twiddle factor `W_n^k = exp(-2*pi*i*k/n)` as a [`C64`].
///
/// This is the mathematical definition used throughout the FFT crates;
/// fixed-point twiddles are produced by quantising this value.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let w = afft_num::twiddle(8, 2);
/// assert!((w.re - 0.0).abs() < 1e-12);
/// assert!((w.im - (-1.0)).abs() < 1e-12);
/// ```
pub fn twiddle(n: usize, k: usize) -> C64 {
    assert!(n != 0, "twiddle: n must be non-zero");
    let theta = -2.0 * std::f64::consts::PI * (k as f64) / (n as f64);
    Complex::new(theta.cos(), theta.sin())
}

/// Returns the quantised [`Q15`] twiddle `W_n^k`, as stored in the
/// coefficient ROM of the custom hardware.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn twiddle_q15(n: usize, k: usize) -> CQ15 {
    let w = twiddle(n, k);
    Complex::new(Q15::from_f64(w.re), Q15::from_f64(w.im))
}
