//! The [`Scalar`] abstraction shared by golden-model (`f64`) and
//! hardware-model ([`Q15`](crate::Q15)) arithmetic.

use core::fmt::Debug;
use core::ops::{Add, Mul, Neg, Sub};

/// Element type usable inside [`Complex`](crate::Complex) and the FFT
/// kernels.
///
/// The trait is deliberately small: the FFT data path only ever adds,
/// subtracts, multiplies and negates. Implementations define how rounding
/// and overflow behave (`f64` is exact for our sizes; [`Q15`](crate::Q15)
/// saturates and rounds-to-nearest like the modelled 16-bit datapath).
///
/// # Examples
///
/// ```
/// use afft_num::Scalar;
///
/// fn axpy<T: Scalar>(a: T, x: T, y: T) -> T {
///     a * x + y
/// }
/// assert_eq!(axpy(2.0f64, 3.0, 1.0), 7.0);
/// ```
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;

    /// Adds, with the type's native rounding/saturation semantics.
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    /// Subtracts, with the type's native rounding/saturation semantics.
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    /// Multiplies, with the type's native rounding/saturation semantics.
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    /// Converts from an `f64`, quantising if necessary.
    fn from_f64(v: f64) -> Self;

    /// Converts to an `f64` (exact for all supported types).
    fn to_f64(self) -> f64;

    /// Computes `(self + rhs) / 2` without intermediate overflow.
    ///
    /// Scaled fixed-point butterflies use this so that a full-scale sum
    /// is halved *before* it would saturate, the behaviour of a datapath
    /// with one guard bit.
    fn add_half(self, rhs: Self) -> Self {
        Scalar::mul(self + rhs, Self::from_f64(0.5))
    }

    /// Computes `(self - rhs) / 2` without intermediate overflow.
    fn sub_half(self, rhs: Self) -> Self {
        Scalar::mul(self - rhs, Self::from_f64(0.5))
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;

    fn from_f64(v: f64) -> Self {
        v
    }

    fn to_f64(self) -> f64 {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_scalar_roundtrip() {
        let x = <f64 as Scalar>::from_f64(0.125);
        assert_eq!(x.to_f64(), 0.125);
        assert_eq!(<f64 as Scalar>::ZERO, 0.0);
    }

    #[test]
    fn f64_scalar_ops() {
        assert_eq!(Scalar::add(1.5f64, 2.5), 4.0);
        assert_eq!(Scalar::sub(1.5f64, 2.5), -1.0);
        assert_eq!(Scalar::mul(1.5f64, 2.0), 3.0);
    }
}
