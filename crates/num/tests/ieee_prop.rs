//! Property tests: the soft-float specification is bit-exact against
//! the host FPU for all normal values, and the fixed-point types obey
//! their algebraic contracts.

use afft_num::{ieee754, Complex, Q15, Q31};
use proptest::prelude::*;

/// Strategy for finite, normal (or zero) f32 values: the domain the
/// DSP soft-float library defines (subnormals flush).
fn normal_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(|bits| {
        let exp = (bits >> 23) & 0xff;
        let v = f32::from_bits(bits);
        if exp == 0 {
            // Subnormal or zero: snap to a signed zero.
            if bits >> 31 == 1 {
                -0.0
            } else {
                0.0
            }
        } else if exp == 0xff {
            // Inf/NaN: fold into a large normal.
            f32::from_bits((bits & 0x807f_ffff) | (0xfe << 23))
        } else {
            v
        }
    })
}

fn result_is_flushed(host: f32) -> bool {
    // The spec flushes subnormal *results* to zero; the host does not.
    host != 0.0 && host.is_finite() && host.abs() < f32::MIN_POSITIVE
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn add_matches_host_fpu(a in normal_f32(), b in normal_f32()) {
        let host = a + b;
        prop_assume!(!result_is_flushed(host));
        let got = ieee754::add(a.to_bits(), b.to_bits());
        prop_assert_eq!(
            got, host.to_bits(),
            "add({}, {}) = {:#010x}, host {:#010x}", a, b, got, host.to_bits()
        );
    }

    #[test]
    fn mul_matches_host_fpu(a in normal_f32(), b in normal_f32()) {
        let host = a * b;
        prop_assume!(!result_is_flushed(host));
        let got = ieee754::mul(a.to_bits(), b.to_bits());
        prop_assert_eq!(
            got, host.to_bits(),
            "mul({}, {}) = {:#010x}, host {:#010x}", a, b, got, host.to_bits()
        );
    }

    #[test]
    fn sub_is_add_of_negated(a in normal_f32(), b in normal_f32()) {
        let via_sub = ieee754::sub(a.to_bits(), b.to_bits());
        let via_add = ieee754::add(a.to_bits(), ieee754::neg(b.to_bits()));
        prop_assert_eq!(via_sub, via_add);
    }

    #[test]
    fn add_is_commutative(a in normal_f32(), b in normal_f32()) {
        prop_assert_eq!(
            ieee754::add(a.to_bits(), b.to_bits()),
            ieee754::add(b.to_bits(), a.to_bits())
        );
    }

    #[test]
    fn mul_is_commutative(a in normal_f32(), b in normal_f32()) {
        prop_assert_eq!(
            ieee754::mul(a.to_bits(), b.to_bits()),
            ieee754::mul(b.to_bits(), a.to_bits())
        );
    }

    #[test]
    fn q15_roundtrip_through_bits(bits in any::<i16>()) {
        let q = Q15::from_bits(bits);
        prop_assert_eq!(q.to_bits(), bits);
        prop_assert_eq!(Q15::from_f64(q.to_f64()), q);
    }

    #[test]
    fn q15_widen_narrow_is_lossless(bits in any::<i16>()) {
        let q = Q15::from_bits(bits);
        prop_assert_eq!(q.widen().narrow(), q);
    }

    #[test]
    fn q31_add_is_commutative_and_monotone(a in any::<i32>(), b in any::<i32>()) {
        let qa = Q31::from_bits(a);
        let qb = Q31::from_bits(b);
        prop_assert_eq!(qa + qb, qb + qa);
        // Saturating add is monotone in each argument.
        let bigger = Q31::from_bits(b.saturating_add(1).max(b));
        prop_assert!((qa + bigger) >= (qa + qb));
    }

    #[test]
    fn complex_mul_matches_f64_within_rounding(
        ar in -0.7f64..0.7, ai in -0.7f64..0.7,
        br in -0.7f64..0.7, bi in -0.7f64..0.7,
    ) {
        let a = Complex::new(Q15::from_f64(ar), Q15::from_f64(ai));
        let b = Complex::new(Q15::from_f64(br), Q15::from_f64(bi));
        let got = (a * b).to_c64();
        let want = a.to_c64() * b.to_c64();
        // 2 products + 1 add per component: error < 2 LSB.
        prop_assert!(got.dist(want) < 3.0 / 32768.0);
    }

    #[test]
    fn conjugate_is_involutive_and_norm_preserving(
        re in -1.0f64..1.0, im in -1.0f64..1.0
    ) {
        let c = Complex::new(re, im);
        prop_assert_eq!(c.conj().conj(), c);
        prop_assert!((c.conj().abs() - c.abs()).abs() < 1e-15);
    }
}
