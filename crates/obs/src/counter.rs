//! Named monotonic counters with a process-global registry, for the
//! long tail of "how often did this happen" observability (corrupt
//! wisdom lines, backpressure rejections, cache misses) that doesn't
//! warrant a histogram.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic event counter. Cheap to clone (`Arc` inside via
/// [`counter`]); `add`/`incr` are relaxed atomic adds.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zero counter (unregistered — use [`counter`] for the
    /// named global registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Arc<Counter>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arc<Counter>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The process-global counter named `name`, created on first use.
/// Dotted lowercase names by convention (`wisdom.corrupt_lines`).
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = registry().lock().expect("counter registry poisoned");
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// A point-in-time copy of every registered counter, name-sorted.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let map = registry().lock().expect("counter registry poisoned");
    map.iter().map(|(name, c)| (name.clone(), c.get())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_named_shared_and_snapshotted() {
        let a = counter("test.counter_mod.alpha");
        a.incr();
        a.add(4);
        // Same name resolves to the same counter.
        assert_eq!(counter("test.counter_mod.alpha").get(), 5);
        let snap = counters_snapshot();
        let found = snap.iter().find(|(n, _)| n == "test.counter_mod.alpha").expect("registered");
        assert_eq!(found.1, 5);
    }
}
