//! Exporters: the named-series [`Snapshot`] with its human `Display`
//! table, JSON rendering for histograms and snapshots (built on
//! [`json`]), and duration formatting helpers.

use crate::hist::Histogram;
use crate::json;

/// Formats nanoseconds at human scale: `850ns`, `12.3us`, `4.56ms`,
/// `1.20s`.
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Renders one histogram as a JSON summary object:
/// `{"count":..,"mean_ns":..,"p50_ns":..,"p90_ns":..,"p99_ns":..,
/// "p999_ns":..,"min_ns":..,"max_ns":..,"saturated":..}` (percentile
/// fields `null` when empty).
pub fn histogram_json(h: &Histogram) -> String {
    let q = |p: f64| h.percentile(p).map_or("null".to_string(), |v| json::num(v as f64));
    json::Obj::new()
        .num("count", h.count() as f64)
        .num("mean_ns", h.mean())
        .raw("p50_ns", q(50.0))
        .raw("p90_ns", q(90.0))
        .raw("p99_ns", q(99.0))
        .raw("p999_ns", q(99.9))
        .raw("min_ns", h.min().map_or("null".to_string(), |v| json::num(v as f64)))
        .raw("max_ns", h.max().map_or("null".to_string(), |v| json::num(v as f64)))
        .num("saturated", h.saturated() as f64)
        .finish()
}

/// A point-in-time set of named histograms — what
/// [`Recorder::snapshot`](crate::recorder::Recorder::snapshot)
/// returns and what the exporters consume.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    series: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// Wraps named series into a snapshot.
    pub fn from_series(series: Vec<(String, Histogram)>) -> Self {
        Snapshot { series }
    }

    /// The named series, in construction order.
    pub fn series(&self) -> &[(String, Histogram)] {
        &self.series
    }

    /// Whether every series is empty.
    pub fn is_empty(&self) -> bool {
        self.series.iter().all(|(_, h)| h.is_empty())
    }

    /// The series named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Renders the snapshot as a JSON array of
    /// `{"series":name, ...histogram summary}` objects.
    pub fn to_json(&self) -> String {
        json::arr(self.series.iter().map(|(name, h)| {
            // Splice the series name into the summary object.
            let summary = histogram_json(h);
            format!("{{{}:{},{}", json::esc("series"), json::esc(name), &summary[1..])
        }))
    }
}

impl core::fmt::Display for Snapshot {
    /// A fixed-width table: series, count, mean, p50, p90, p99, p99.9,
    /// max (empty series render a dash row).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name_w = self.series.iter().map(|(n, _)| n.len()).max().unwrap_or(6).max(6);
        writeln!(
            f,
            "{:<name_w$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            "series", "count", "mean", "p50", "p90", "p99", "p99.9", "max",
        )?;
        for (name, h) in &self.series {
            if h.is_empty() {
                writeln!(
                    f,
                    "{name:<name_w$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                    0, "-", "-", "-", "-", "-", "-",
                )?;
                continue;
            }
            let q = |p: f64| fmt_ns(h.percentile(p).unwrap_or(0));
            writeln!(
                f,
                "{name:<name_w$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                h.count(),
                fmt_ns(h.mean() as u64),
                q(50.0),
                q(90.0),
                q(99.0),
                q(99.9),
                fmt_ns(h.max().unwrap_or(0)),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(850), "850ns");
        assert_eq!(fmt_ns(12_345), "12.345us");
        assert_eq!(fmt_ns(4_560_000), "4.560ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }

    #[test]
    fn histogram_json_has_the_schema_fields() {
        let mut h = Histogram::new();
        h.record_n(1000, 100);
        let doc = histogram_json(&h);
        for key in ["\"count\"", "\"p50_ns\"", "\"p99_ns\"", "\"max_ns\"", "\"saturated\""] {
            assert!(doc.contains(key), "{doc} missing {key}");
        }
        let empty = histogram_json(&Histogram::new());
        assert!(empty.contains("\"p50_ns\":null"), "{empty}");
    }

    #[test]
    fn snapshot_table_and_json() {
        let mut h = Histogram::new();
        h.record(5_000);
        let snap = Snapshot::from_series(vec![
            ("ch0/deliver".into(), h),
            ("idle".into(), Histogram::new()),
        ]);
        assert!(!snap.is_empty());
        assert!(snap.get("ch0/deliver").is_some());
        assert!(snap.get("missing").is_none());
        let table = snap.to_string();
        assert!(table.contains("ch0/deliver"), "{table}");
        assert!(table.contains("p99"), "{table}");
        let doc = snap.to_json();
        assert!(doc.starts_with('[') && doc.ends_with(']'), "{doc}");
        assert!(doc.contains("\"series\":\"ch0/deliver\""), "{doc}");
        assert!(doc.contains("\"series\":\"idle\""), "{doc}");
    }
}
