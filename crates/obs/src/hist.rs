//! The log-bucketed latency histogram: HdrHistogram's bucketing idea
//! (a linear sub-scale inside every power-of-two octave) rebuilt
//! std-only, sized for nanosecond latencies.
//!
//! # Bucketing
//!
//! Values below [`SUB_BUCKETS`] (32) get one bucket each — exact.
//! Every octave `[2^e, 2^(e+1))` above that is split into 32 linear
//! buckets of width `2^(e-5)`, so a bucket never spans more than 1/32
//! (~3.1%) of its lower edge and the *midpoint* representative a
//! percentile query returns is within ~1.6% (< 2%) of any value the
//! bucket holds. The top octave ends at `2^40` ns (~18 minutes);
//! larger values are clamped into the last bucket and tallied in
//! [`Histogram::saturated`] so the clipping is observable, never
//! silent.
//!
//! `min`/`max` are derived from the occupied bucket edges (exact below
//! 32, bucket-quantised above) rather than tracked per record — the
//! price of keeping the concurrent recording path (see
//! [`AtomicHistogram`](crate::recorder::AtomicHistogram)) at two
//! atomic adds and an index computation.

/// Number of linear sub-buckets per octave (and the exact-value range:
/// values `< SUB_BUCKETS` get a bucket each).
pub const SUB_BUCKETS: u64 = 32;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 5;

/// Exponent of the first value past the top bucket: records at or
/// above `2^SATURATION_BITS` (~18 minutes in nanoseconds) clamp into
/// the last bucket and count as saturated.
pub const SATURATION_BITS: u32 = 40;

/// Total bucket count: 32 exact buckets plus 32 per octave for
/// exponents 5..=39.
pub const BUCKETS: usize =
    (SUB_BUCKETS + (SATURATION_BITS as u64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// Maps a value to its bucket index, flagging saturation.
#[inline]
pub(crate) fn bucket_index(v: u64) -> (usize, bool) {
    if v < SUB_BUCKETS {
        return (v as usize, false);
    }
    if v >= 1 << SATURATION_BITS {
        return (BUCKETS - 1, true);
    }
    let e = 63 - u64::from(v.leading_zeros());
    let idx = (e - u64::from(SUB_BITS) + 1) * SUB_BUCKETS + ((v >> (e - u64::from(SUB_BITS))) & 31);
    (idx as usize, false)
}

/// Lower edge of bucket `i` (the smallest value it can hold).
#[inline]
pub(crate) fn bucket_lo(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let e = i / SUB_BUCKETS + u64::from(SUB_BITS) - 1;
    let s = i % SUB_BUCKETS;
    (SUB_BUCKETS + s) << (e - u64::from(SUB_BITS))
}

/// Exclusive upper edge of bucket `i`.
#[inline]
pub(crate) fn bucket_hi(i: usize) -> u64 {
    if (i as u64) < SUB_BUCKETS {
        return i as u64 + 1;
    }
    let e = i as u64 / SUB_BUCKETS + u64::from(SUB_BITS) - 1;
    bucket_lo(i) + (1 << (e - u64::from(SUB_BITS)))
}

/// The representative value a query reports for bucket `i`: the
/// midpoint, within ~1.6% of anything the bucket holds.
#[inline]
fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_lo(i);
    lo + (bucket_hi(i) - lo - 1) / 2
}

/// A log-bucketed histogram of `u64` samples (conventionally
/// nanoseconds). ~2% relative error, fixed 9 KiB footprint, no
/// allocation after construction. See the [module docs](self) for the
/// bucketing scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    saturated: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], count: 0, sum: 0, saturated: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value in one step.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let (idx, sat) = bucket_index(value);
        self.counts[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        if sat {
            self.saturated += n;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Samples clamped into the top bucket (value >= 2^40).
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Arithmetic mean of the recorded values, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, bucket-quantised (exact below 32, the
    /// occupied bucket's lower edge above). `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.counts.iter().position(|&c| c > 0).map(bucket_lo)
    }

    /// Largest recorded value, bucket-quantised (exact below 32, the
    /// occupied bucket's inclusive upper edge above). `None` when
    /// empty.
    pub fn max(&self) -> Option<u64> {
        self.counts.iter().rposition(|&c| c > 0).map(|i| bucket_hi(i) - 1)
    }

    /// The value at percentile `p` (0..=100, clamped): the midpoint of
    /// the bucket holding the sample of rank `ceil(p/100 * count)`,
    /// clamped into `[min, max]`. Monotone non-decreasing in `p`.
    /// `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = bucket_mid(i);
                return Some(mid.clamp(self.min().unwrap_or(mid), self.max().unwrap_or(mid)));
            }
        }
        self.max()
    }

    /// Median shorthand: `percentile(50.0)`.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Tail shorthand: `percentile(99.0)`.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// Folds another histogram into this one (bucket-wise add), the
    /// aggregation step behind
    /// [`Recorder::snapshot`](crate::recorder::Recorder::snapshot).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.saturated += other.saturated;
    }

    /// Rebuilds a histogram from raw bucket counts (the snapshot path
    /// out of an atomic shard). `saturated` is the clamp tally for the
    /// top bucket; `sum` the exact recorded sum.
    pub(crate) fn from_parts(counts: Vec<u64>, sum: u64, saturated: u64) -> Histogram {
        debug_assert_eq!(counts.len(), BUCKETS);
        let count = counts.iter().sum();
        Histogram { counts, count, sum, saturated }
    }
}

impl core::fmt::Display for Histogram {
    /// One human summary line: count, mean, p50/p90/p99/p99.9, max.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_empty() {
            return write!(f, "count 0");
        }
        let q = |p: f64| crate::export::fmt_ns(self.percentile(p).unwrap_or(0));
        write!(
            f,
            "count {} | mean {} | p50 {} | p90 {} | p99 {} | p99.9 {} | max {}{}",
            self.count,
            crate::export::fmt_ns(self.mean() as u64),
            q(50.0),
            q(90.0),
            q(99.0),
            q(99.9),
            crate::export::fmt_ns(self.max().unwrap_or(0)),
            if self.saturated > 0 {
                format!(" | saturated {}", self.saturated)
            } else {
                String::new()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_exact_below_32_and_within_error_above() {
        for v in 0..SUB_BUCKETS {
            let (i, sat) = bucket_index(v);
            assert!(!sat);
            assert_eq!(bucket_lo(i), v);
            assert_eq!(bucket_hi(i), v + 1);
        }
        // Probe across the full range: each value lands in a bucket
        // whose span contains it and stays within 1/32 of the value.
        let mut v = SUB_BUCKETS;
        while v < 1 << SATURATION_BITS {
            let (i, sat) = bucket_index(v);
            assert!(!sat, "v={v}");
            assert!(bucket_lo(i) <= v && v < bucket_hi(i), "v={v} bucket {i}");
            assert!(bucket_hi(i) - bucket_lo(i) <= v / 16 + 1, "v={v} too wide");
            v = v.saturating_mul(7) / 3 + 1;
        }
    }

    #[test]
    fn bucket_edges_tile_the_range() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_hi(i), bucket_lo(i + 1), "gap or overlap after bucket {i}");
        }
        assert_eq!(bucket_hi(BUCKETS - 1), 1 << SATURATION_BITS);
    }

    #[test]
    fn record_and_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), Some(1));
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.02, "p50={p50}");
        assert!((p99 as f64 - 990.0).abs() / 990.0 < 0.02, "p99={p99}");
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn saturation_is_counted_not_lost() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record_n(1 << SATURATION_BITS, 2);
        h.record(7);
        assert_eq!(h.count(), 4);
        assert_eq!(h.saturated(), 3);
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some((1 << SATURATION_BITS) - 1));
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3u64, 40, 41, 1 << 20, 5] {
            whole.record(v);
        }
        a.record(3);
        a.record(40);
        b.record(41);
        b.record(1 << 20);
        b.record(5);
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn display_summarises() {
        let mut h = Histogram::new();
        assert_eq!(h.to_string(), "count 0");
        h.record_n(1000, 10);
        let line = h.to_string();
        assert!(line.contains("count 10"), "{line}");
        assert!(line.contains("p99"), "{line}");
    }
}
