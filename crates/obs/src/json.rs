//! A minimal JSON writer for machine-readable artifacts
//! (`BENCH_*.json`, metric snapshots). The workspace carries no
//! serialization dependency, and the artifacts are flat records of
//! numbers and short identifier strings, so a two-type builder covers
//! everything the exporters emit. (Formerly `afft_bench::json`, moved
//! down-stack so the observability layer can export without depending
//! on the bench harness; `afft_bench::json` re-exports this module.)

/// Builds one JSON object field-by-field, preserving insertion order.
#[derive(Debug, Default, Clone)]
pub struct Obj {
    fields: Vec<(String, String)>,
}

impl Obj {
    /// An empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pre-rendered JSON value (a nested [`Obj::finish`], an
    /// [`arr`], a literal).
    #[must_use]
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Adds a string field, escaped.
    #[must_use]
    pub fn str(self, key: &str, value: &str) -> Self {
        let escaped = esc(value);
        self.raw(key, escaped)
    }

    /// Adds a numeric field; non-finite values render as `null` (JSON
    /// has no NaN/Inf).
    #[must_use]
    pub fn num(self, key: &str, value: f64) -> Self {
        self.raw(key, num(value))
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&esc(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

/// Renders a JSON array from pre-rendered element values.
pub fn arr(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Renders a number: finite values in shortest round-trip form,
/// non-finite as `null`.
pub fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes a JSON string.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_scalars_render() {
        let inner = Obj::new().str("engine", "radix4_simd").num("tps", 1234.5).finish();
        let doc = Obj::new()
            .str("bench", "throughput")
            .bool("smoke", false)
            .raw("results", arr([inner.clone()]))
            .finish();
        assert_eq!(inner, r#"{"engine":"radix4_simd","tps":1234.5}"#);
        assert_eq!(
            doc,
            r#"{"bench":"throughput","smoke":false,"results":[{"engine":"radix4_simd","tps":1234.5}]}"#
        );
    }

    #[test]
    fn escapes_and_non_finite() {
        assert_eq!(esc("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(2.0), "2");
    }
}
