//! **afft-obs** — the workspace's zero-dependency observability layer:
//! log-bucketed latency histograms, sharded lock-free recorders, stage
//! timers, named counters, and table/JSON exporters. In the spirit of
//! HdrHistogram and `tracing`, rebuilt std-only so the runtime stack
//! (stream pipeline, planner, batch executor, benches) can measure
//! itself without pulling a dependency into the hot path.
//!
//! Four pieces:
//!
//! * [`Histogram`] — a log-bucketed (~2% relative error) `u64`
//!   histogram with `record`/`merge`/`percentile` and saturation
//!   accounting, 9 KiB fixed footprint;
//! * [`Recorder`] / [`AtomicHistogram`] — per-shard concurrent
//!   recording: the hot path is two relaxed atomic adds and an array
//!   index, aggregation happens at [`Recorder::snapshot`];
//! * [`Stage`] / [`StageTimer`] — the queue-wait / transform /
//!   reorder-park / deliver decomposition of a streamed symbol's
//!   latency, and the lap timer that carves it;
//! * exporters — [`Snapshot`] `Display` tables, [`histogram_json`],
//!   and the dependency-free [`json`] writer (shared with the bench
//!   artifacts — `afft_bench::json` re-exports it).
//!
//! # The `AFFT_OBS` switch
//!
//! Instrumented layers read [`enabled`] when they are constructed:
//! metrics default **on**, and `AFFT_OBS=0` (or `false`/`off`/empty)
//! turns them off so the overhead is both measurable and escapable.
//! The `stream` bench gates on the overhead staying under 5%.
//!
//! # Quickstart
//!
//! ```
//! use afft_obs::{Histogram, Recorder};
//!
//! // Direct recording:
//! let mut h = Histogram::new();
//! for v in [120u64, 340, 95_000] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 3);
//! assert!(h.percentile(50.0).unwrap() >= 120);
//!
//! // Sharded concurrent recording, merged on snapshot:
//! let recorder = Recorder::new(2, vec!["latency".into()]);
//! recorder.handle(0).record(0, 1_000);
//! recorder.handle(1).record(0, 2_000);
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.series()[0].1.count(), 2);
//! println!("{snapshot}"); // fixed-width percentile table
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod export;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod stage;

pub use counter::{counter, counters_snapshot, Counter};
pub use export::{fmt_ns, histogram_json, Snapshot};
pub use hist::Histogram;
pub use recorder::{AtomicHistogram, Recorder, RecorderHandle};
pub use stage::{ns_between, Stage, StageTimer};

/// Whether instrumentation is enabled for this process: the `AFFT_OBS`
/// environment variable, default **on**. `0`, `false`, `off` (any
/// case) or an empty value disable it; anything else — including the
/// variable being unset — enables it.
///
/// Instrumented layers read this once at construction (pipeline build,
/// planner/executor creation), not per record, so flipping the
/// variable mid-process affects only components built afterwards.
pub fn enabled() -> bool {
    match std::env::var("AFFT_OBS") {
        Err(_) => true,
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "false" || v == "off")
        }
    }
}

#[cfg(test)]
mod tests {
    // `enabled()` reads process-global env; the dedicated own-process
    // env tests live in the stream crate where the gating is consumed.
    #[test]
    fn enabled_reflects_the_environment_contract() {
        // Whatever the ambient env says, the parse must be total.
        let _ = super::enabled();
    }
}
