//! Concurrent recording: per-shard atomic histograms aggregated into
//! plain [`Histogram`]s on snapshot.
//!
//! The design follows the sharded-counter idiom: every writer (a
//! stream worker, the delivery thread) owns a shard and records with
//! **two relaxed atomic adds and an array index** — no locks, no
//! compare-and-swap loops, no cross-writer cache-line traffic on the
//! hot path. Readers pay instead: [`Recorder::snapshot`] walks every
//! shard and merges the bucket counts into one [`Histogram`] per
//! series. That asymmetry is the point — recording happens per symbol,
//! snapshots happen per stats call.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::export::Snapshot;
use crate::hist::{bucket_index, Histogram, BUCKETS};

/// One concurrent histogram: atomic bucket counters plus a sum and a
/// saturation tally. `record` is wait-free; min/max/percentiles come
/// from [`AtomicHistogram::snapshot`], bucket-quantised exactly like
/// the plain [`Histogram`].
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    saturated: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty concurrent histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            saturated: AtomicU64::new(0),
        }
    }

    /// Records one sample: an index computation plus two relaxed
    /// `fetch_add`s (a third only on the rare saturating sample).
    #[inline]
    pub fn record(&self, value: u64) {
        let (idx, sat) = bucket_index(value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        if sat {
            self.saturated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies the current contents into a plain [`Histogram`].
    /// Concurrent records may straddle the copy (a count landing
    /// without its sum or vice versa); each tally is individually
    /// consistent, which is all a latency summary needs.
    pub fn snapshot(&self) -> Histogram {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        Histogram::from_parts(
            counts,
            self.sum.load(Ordering::Relaxed),
            self.saturated.load(Ordering::Relaxed),
        )
    }
}

/// The inner shard table: `shards[shard][series]`.
#[derive(Debug)]
struct Shards {
    series: Vec<String>,
    table: Vec<Vec<AtomicHistogram>>,
}

/// A sharded, multi-series recorder: `shards` independent writers (one
/// per worker thread, by convention) over `series` named histograms
/// (one per channel×stage, by convention). Writers never contend;
/// [`Recorder::snapshot`] merges shard-wise.
///
/// Cloning a `Recorder` clones the `Arc` — all clones record into the
/// same table.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Shards>,
}

impl Recorder {
    /// A recorder with `shards` independent writer slots over the
    /// given series names (`shards` clamped to at least 1).
    pub fn new(shards: usize, series: Vec<String>) -> Self {
        let shards = shards.max(1);
        let table = (0..shards)
            .map(|_| (0..series.len()).map(|_| AtomicHistogram::new()).collect())
            .collect();
        Recorder { inner: Arc::new(Shards { series, table }) }
    }

    /// Number of writer shards.
    pub fn shards(&self) -> usize {
        self.inner.table.len()
    }

    /// Number of series per shard.
    pub fn series_count(&self) -> usize {
        self.inner.series.len()
    }

    /// Records into `series` on `shard` — the hot path. Out-of-range
    /// indices panic (they are construction bugs, not data).
    #[inline]
    pub fn record(&self, shard: usize, series: usize, value: u64) {
        self.inner.table[shard][series].record(value);
    }

    /// A writer handle pinned to one shard, for loops that record the
    /// same shard many times (workers). Cheap to clone.
    pub fn handle(&self, shard: usize) -> RecorderHandle {
        assert!(shard < self.shards(), "recorder shard {shard} out of range");
        RecorderHandle { recorder: self.clone(), shard }
    }

    /// Merges every shard per series into plain histograms, returned
    /// as a named [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let series = self
            .inner
            .series
            .iter()
            .enumerate()
            .map(|(s, name)| {
                let mut merged = Histogram::new();
                for shard in &self.inner.table {
                    merged.merge(&shard[s].snapshot());
                }
                (name.clone(), merged)
            })
            .collect();
        Snapshot::from_series(series)
    }

    /// Merged histogram for one series index.
    pub fn series_histogram(&self, series: usize) -> Histogram {
        let mut merged = Histogram::new();
        for shard in &self.inner.table {
            merged.merge(&shard[series].snapshot());
        }
        merged
    }
}

/// A [`Recorder`] writer pinned to one shard. See
/// [`Recorder::handle`].
#[derive(Debug, Clone)]
pub struct RecorderHandle {
    recorder: Recorder,
    shard: usize,
}

impl RecorderHandle {
    /// Records into `series` on this handle's shard.
    #[inline]
    pub fn record(&self, series: usize, value: u64) {
        self.recorder.record(self.shard, series, value);
    }

    /// The shard this handle writes to.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_snapshot_matches_plain_recording() {
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for v in [0u64, 1, 31, 32, 1000, 1 << 30, u64::MAX] {
            atomic.record(v);
            plain.record(v);
        }
        let got = atomic.snapshot();
        // Sums saturate differently only past u64::MAX totals; these
        // inputs wrap the atomic sum, so compare the shape fields.
        assert_eq!(got.count(), plain.count());
        assert_eq!(got.saturated(), plain.saturated());
        assert_eq!(got.min(), plain.min());
        assert_eq!(got.max(), plain.max());
        assert_eq!(got.percentile(50.0), plain.percentile(50.0));
    }

    #[test]
    fn recorder_merges_shards_per_series() {
        let rec = Recorder::new(3, vec!["a".into(), "b".into()]);
        rec.handle(0).record(0, 10);
        rec.handle(1).record(0, 20);
        rec.handle(2).record(1, 30);
        rec.record(0, 1, 40);
        let snap = rec.snapshot();
        assert_eq!(snap.series().len(), 2);
        assert_eq!(snap.series()[0].1.count(), 2);
        assert_eq!(snap.series()[1].1.count(), 2);
        assert_eq!(rec.series_histogram(0).min(), Some(10));
        assert_eq!(rec.series_histogram(1).max(), Some(40));
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let rec = Recorder::new(4, vec!["lat".into()]);
        std::thread::scope(|scope| {
            for shard in 0..4 {
                let handle = rec.handle(shard);
                scope.spawn(move || {
                    for v in 0..1000u64 {
                        handle.record(0, v);
                    }
                });
            }
        });
        let hist = rec.series_histogram(0);
        assert_eq!(hist.count(), 4000);
        assert_eq!(hist.sum(), 4 * (999 * 1000 / 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_panics() {
        let rec = Recorder::new(1, vec!["x".into()]);
        let _ = rec.handle(5);
    }
}
