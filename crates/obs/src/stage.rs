//! Stage decomposition: the named segments of a symbol's life inside
//! an execution pipeline, and the tiny timer that carves wall time
//! into them.

use std::time::Instant;

/// The segments a streamed symbol's end-to-end latency decomposes
/// into. The stream pipeline records one histogram per
/// `(channel, stage)`:
///
/// * [`Stage::QueueWait`] — submission accepted → a worker starts the
///   transform (time spent in the bounded queue and in a worker's
///   claimed batch);
/// * [`Stage::Transform`] — the engine's `execute_into` (service
///   time);
/// * [`Stage::ReorderPark`] — transform finished → popped by the
///   caller in order (reorder-ring residence plus the caller's own
///   delay in calling `recv`);
/// * [`Stage::Deliver`] — the end-to-end span, submission → in-order
///   delivery. This is *the* per-channel latency histogram; the first
///   three stages are its decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Queue residence: accepted → transform start.
    QueueWait,
    /// Service time: the transform itself.
    Transform,
    /// Reorder-ring residence: finished → in-order pop.
    ReorderPark,
    /// End-to-end latency: accepted → delivered.
    Deliver,
}

impl Stage {
    /// Every stage, in recording order — `Stage::ALL[s.index()] == s`.
    pub const ALL: [Stage; 4] =
        [Stage::QueueWait, Stage::Transform, Stage::ReorderPark, Stage::Deliver];

    /// Number of stages.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable series-index offset of this stage.
    pub fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::Transform => 1,
            Stage::ReorderPark => 2,
            Stage::Deliver => 3,
        }
    }

    /// Stable lowercase identifier (series names, JSON keys).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Transform => "transform",
            Stage::ReorderPark => "reorder_park",
            Stage::Deliver => "deliver",
        }
    }
}

impl core::fmt::Display for Stage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Nanoseconds between two [`Instant`]s, saturating at zero — stamps
/// taken on different threads must never panic the recorder.
#[inline]
pub fn ns_between(earlier: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(earlier).as_nanos()).unwrap_or(u64::MAX)
}

/// A lap timer for stage spans: `lap()` returns the nanoseconds since
/// the previous lap (or construction) and restarts the span, so
/// consecutive laps tile a timeline with one clock read each.
#[derive(Debug, Clone, Copy)]
pub struct StageTimer {
    mark: Instant,
}

impl StageTimer {
    /// Starts the first span now.
    pub fn start() -> Self {
        StageTimer { mark: Instant::now() }
    }

    /// Starts the first span at a caller-chosen instant (e.g. a stamp
    /// carried in from another thread).
    pub fn from_mark(mark: Instant) -> Self {
        StageTimer { mark }
    }

    /// Ends the current span: returns its length in nanoseconds and
    /// starts the next one.
    pub fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let ns = ns_between(self.mark, now);
        self.mark = now;
        ns
    }

    /// The instant the current span started.
    pub fn mark(&self) -> Instant {
        self.mark
    }

    /// Nanoseconds elapsed in the current span, without ending it.
    pub fn elapsed_ns(&self) -> u64 {
        ns_between(self.mark, Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_index_and_names_are_stable() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(Stage::ALL[stage.index()], *stage);
        }
        assert_eq!(Stage::QueueWait.as_str(), "queue_wait");
        assert_eq!(Stage::Deliver.to_string(), "deliver");
        assert_eq!(Stage::COUNT, 4);
    }

    #[test]
    fn laps_tile_a_timeline() {
        let start = Instant::now();
        let mut timer = StageTimer::from_mark(start);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let a = timer.lap();
        let b = timer.lap();
        assert!(a >= 1_000_000, "first lap covers the sleep, got {a}ns");
        let total = ns_between(start, Instant::now());
        assert!(a + b <= total + 1_000, "laps must not overlap: {a} + {b} > {total}");
    }

    #[test]
    fn ns_between_saturates_backwards() {
        let later = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let earlier = Instant::now();
        assert_eq!(ns_between(earlier, later), 0);
    }
}
