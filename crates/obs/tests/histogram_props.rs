//! Histogram edge cases and properties: empty snapshots, single
//! samples, saturation past the top bucket, merge of disjoint shards,
//! and percentile monotonicity under proptest.

use afft_obs::hist::SATURATION_BITS;
use afft_obs::{AtomicHistogram, Histogram, Recorder};
use proptest::prelude::*;

#[test]
fn empty_snapshot_reports_nothing() {
    let h = Histogram::new();
    assert!(h.is_empty());
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
    assert_eq!(h.percentile(50.0), None);
    assert_eq!(h.mean(), 0.0);
    // The concurrent shard agrees, as does an empty recorder snapshot.
    let atomic = AtomicHistogram::new();
    assert!(atomic.snapshot().is_empty());
    let recorder = Recorder::new(4, vec!["a".into(), "b".into()]);
    let snap = recorder.snapshot();
    assert!(snap.is_empty());
    assert_eq!(snap.series().len(), 2);
}

#[test]
fn single_sample_pins_every_statistic() {
    for v in [0u64, 1, 31, 32, 1_000, 123_456_789] {
        let mut h = Histogram::new();
        h.record(v);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), v);
        assert_eq!(h.mean(), v as f64);
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        assert!(min <= v && v <= max, "value {v} outside [{min}, {max}]");
        // Every percentile of a one-sample histogram is that sample's
        // bucket, within the ~2% quantisation contract.
        for p in [0.0, 50.0, 99.0, 100.0] {
            let got = h.percentile(p).unwrap();
            assert!(min <= got && got <= max, "p{p} of single sample {v} gave {got}");
            assert!((got as f64 - v as f64).abs() <= (v as f64) * 0.02 + 1.0, "p{p}: {got} vs {v}");
        }
    }
}

#[test]
fn saturating_records_clamp_into_the_top_bucket() {
    let mut h = Histogram::new();
    let limit = 1u64 << SATURATION_BITS;
    h.record(limit - 1); // last representable value: not saturated
    assert_eq!(h.saturated(), 0);
    h.record(limit);
    h.record(u64::MAX);
    assert_eq!(h.count(), 3);
    assert_eq!(h.saturated(), 2);
    // The clamped samples are counted at the top, never dropped.
    assert_eq!(h.max(), Some(limit - 1));
    let p100 = h.percentile(100.0).unwrap();
    assert!(h.min().unwrap() <= p100 && p100 < limit, "p100 {p100} escaped the top bucket");
    // The atomic path applies the same clamp.
    let atomic = AtomicHistogram::new();
    atomic.record(u64::MAX);
    let snap = atomic.snapshot();
    assert_eq!(snap.saturated(), 1);
    assert_eq!(snap.count(), 1);
}

#[test]
fn merge_of_disjoint_shards_equals_whole_recording() {
    // Two shards covering disjoint value ranges (low latencies on one
    // worker, tail spikes on another) must merge into exactly the
    // histogram a single recorder would have built.
    let recorder = Recorder::new(2, vec!["latency".into()]);
    let mut whole = Histogram::new();
    let low = recorder.handle(0);
    let high = recorder.handle(1);
    for v in 0..500u64 {
        low.record(0, v);
        whole.record(v);
    }
    for k in 0..64u64 {
        let v = 1_000_000 + k * 10_000;
        high.record(0, v);
        whole.record(v);
    }
    let merged = recorder.series_histogram(0);
    assert_eq!(merged, whole);
    // merge() itself is also an append: folding the two shard
    // snapshots manually gives the same histogram.
    let mut manual = Histogram::new();
    manual.merge(&whole);
    let mut empty = Histogram::new();
    empty.merge(&Histogram::new());
    assert!(empty.is_empty());
    assert_eq!(manual, whole);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = h.percentile(lo).expect("non-empty");
        let b = h.percentile(hi).expect("non-empty");
        prop_assert!(a <= b, "percentile({lo}) = {a} > percentile({hi}) = {b}");
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        prop_assert!(min <= a && b <= max, "percentiles escaped [{min}, {max}]");
    }

    #[test]
    fn merge_commutes_with_recording(
        left in proptest::collection::vec(0u64..1_000_000_000, 0..64),
        right in proptest::collection::vec(0u64..1_000_000_000, 0..64),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &v in &left {
            a.record(v);
            whole.record(v);
        }
        for &v in &right {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    #[test]
    fn recorded_values_stay_within_quantisation_error(v in 0u64..(1 << SATURATION_BITS)) {
        let mut h = Histogram::new();
        h.record(v);
        let p = h.percentile(50.0).unwrap();
        // ~2% relative error contract (exact below 32).
        let tol = if v < 32 { 0 } else { v / 32 + 1 };
        prop_assert!(
            p.abs_diff(v) <= tol,
            "midpoint {p} too far from {v} (tol {tol})"
        );
    }
}
