//! Batched execution: plan once, run whole batches of OFDM symbols
//! through the planned engine — sequentially, or sharded across a
//! [`std::thread::scope`] worker pool for throughput workloads.
//!
//! Workers never share an engine instance: each one constructs its own
//! copy of the planned backend from the registry factory, so interior
//! state (e.g. the ISS adapter's statistics cell) stays thread-local
//! and the threaded path is bit-identical to the sequential one.

use std::time::Instant;

use afft_core::engine::FftEngine;
use afft_core::{Direction, FftError};
use afft_num::C64;

use crate::planner::{Plan, RegistryFactory};

/// Wall-clock timing of one shard of a batch run — one worker's
/// contiguous slice of the symbol batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTiming {
    /// Symbols the shard transformed.
    pub symbols: usize,
    /// Shard wall time, transform loop only (engine construction and
    /// thread spawn excluded).
    pub wall_ns: u64,
}

/// Wall-clock timing of one batch run, kept on the executor when
/// observability is on ([`BatchExecutor::last_run`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTiming {
    /// Engine the run executed on.
    pub engine: String,
    /// Total symbols transformed.
    pub symbols: usize,
    /// Worker threads used (1 for the sequential path).
    pub workers: usize,
    /// End-to-end wall time of the run, including shard spawn/join on
    /// the threaded path.
    pub wall_ns: u64,
    /// Per-shard transform timings, in shard order (one entry on the
    /// sequential path) — the threaded path's load-balance evidence.
    pub shards: Vec<ShardTiming>,
}

impl RunTiming {
    /// Symbols per second over the whole run (zero for an empty or
    /// instantaneous run).
    pub fn throughput(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.symbols as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

/// Executes batches of equal-length symbols on a planned engine.
pub struct BatchExecutor {
    factory: RegistryFactory,
    engine: Box<dyn FftEngine>,
    name: String,
    /// Resolved from `AFFT_OBS` at construction.
    obs_enabled: bool,
    last_run: Option<RunTiming>,
}

impl core::fmt::Debug for BatchExecutor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BatchExecutor")
            .field("engine", &self.name)
            .field("n", &self.engine.len())
            .finish()
    }
}

impl BatchExecutor {
    /// Builds an executor over the plan's winning engine.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::Backend`] if the planned engine is not in
    /// the factory's registry (wisdom from a different backend set).
    pub fn from_plan(plan: &Plan, factory: RegistryFactory) -> Result<Self, FftError> {
        Self::with_engine_name(plan.n, &plan.best().name, factory)
    }

    /// Builds an executor over an explicitly named engine.
    ///
    /// # Errors
    ///
    /// As [`BatchExecutor::from_plan`].
    pub fn with_engine_name(
        n: usize,
        name: &str,
        factory: RegistryFactory,
    ) -> Result<Self, FftError> {
        let engine = crate::planner::take_engine(factory, n, name)?;
        Ok(BatchExecutor {
            factory,
            engine,
            name: name.to_string(),
            obs_enabled: afft_obs::enabled(),
            last_run: None,
        })
    }

    /// Explicitly enables or disables run-timing collection (the
    /// default follows the process-wide `AFFT_OBS` switch,
    /// [`afft_obs::enabled`]).
    #[must_use]
    pub fn with_observability(mut self, on: bool) -> Self {
        self.obs_enabled = on;
        self
    }

    /// Timing of the most recent `execute*` run: total wall time plus
    /// per-shard breakdowns. `None` until a run completes, or with
    /// observability off.
    pub fn last_run(&self) -> Option<&RunTiming> {
        self.last_run.as_ref()
    }

    /// The engine the batch runs on.
    pub fn engine(&self) -> &dyn FftEngine {
        self.engine.as_ref()
    }

    /// Transform size every symbol must have.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Never empty for a planned executor.
    pub fn is_empty(&self) -> bool {
        self.engine.len() == 0
    }

    /// Preallocates an output batch shaped for this executor:
    /// `symbols` zeroed `N`-point buffers, ready for the `_into` paths.
    pub fn alloc_output(&self, symbols: usize) -> Vec<Vec<C64>> {
        vec![vec![C64::zero(); self.engine.len()]; symbols]
    }

    /// Transforms every symbol in order on the calling thread.
    ///
    /// Allocates the returned batch once; the per-symbol transforms
    /// run through the allocation-free
    /// [`BatchExecutor::execute_into`].
    ///
    /// # Errors
    ///
    /// Returns the first [`FftError`] any symbol produces.
    pub fn execute(
        &mut self,
        symbols: &[Vec<C64>],
        dir: Direction,
    ) -> Result<Vec<Vec<C64>>, FftError> {
        let mut out = self.alloc_output(symbols.len());
        self.execute_into(symbols, &mut out, dir)?;
        Ok(out)
    }

    /// Transforms every symbol in order into a caller-visible
    /// preallocated output batch (each slot an `N`-point buffer): the
    /// zero-allocation steady-state path — one engine, one scratch
    /// set, no heap work per symbol.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `out.len() !=
    /// symbols.len()` (reported as symbol counts) or any buffer is not
    /// `N` points, and the first [`FftError`] any symbol produces.
    pub fn execute_into(
        &mut self,
        symbols: &[Vec<C64>],
        out: &mut [Vec<C64>],
        dir: Direction,
    ) -> Result<(), FftError> {
        if out.len() != symbols.len() {
            return Err(FftError::LengthMismatch { expected: symbols.len(), got: out.len() });
        }
        let start = self.obs_enabled.then(Instant::now);
        for (symbol, slot) in symbols.iter().zip(out.iter_mut()) {
            self.engine.execute_into(symbol, slot, dir)?;
        }
        if let Some(start) = start {
            let wall_ns = elapsed_ns(start);
            self.last_run = Some(RunTiming {
                engine: self.name.clone(),
                symbols: symbols.len(),
                workers: 1,
                wall_ns,
                shards: vec![ShardTiming { symbols: symbols.len(), wall_ns }],
            });
        }
        Ok(())
    }

    /// Transforms the batch on `workers` scoped threads, symbols
    /// sharded contiguously. Results are returned in input order and
    /// are bit-identical to [`BatchExecutor::execute`]; `workers <= 1`
    /// (or a batch of one shard) falls back to the sequential path.
    ///
    /// # Errors
    ///
    /// Returns the first [`FftError`] any worker produces.
    ///
    /// # Panics
    ///
    /// Panics only if a worker thread itself panicked.
    pub fn execute_threaded(
        &mut self,
        symbols: &[Vec<C64>],
        dir: Direction,
        workers: usize,
    ) -> Result<Vec<Vec<C64>>, FftError> {
        let mut out = self.alloc_output(symbols.len());
        self.execute_threaded_into(symbols, &mut out, dir, workers)?;
        Ok(out)
    }

    /// The threaded transform into a caller-visible preallocated
    /// output batch: workers write straight into their contiguous
    /// shard of `out` — no placeholder rows, no per-symbol allocation
    /// — and each scoped worker owns one private engine (hence one
    /// scratch set), so results stay bit-identical to
    /// [`BatchExecutor::execute_into`].
    ///
    /// # Errors
    ///
    /// As [`BatchExecutor::execute_into`], from whichever worker hits
    /// it first.
    ///
    /// # Panics
    ///
    /// Panics only if a worker thread itself panicked.
    pub fn execute_threaded_into(
        &mut self,
        symbols: &[Vec<C64>],
        out: &mut [Vec<C64>],
        dir: Direction,
        workers: usize,
    ) -> Result<(), FftError> {
        let workers = workers.min(symbols.len());
        if workers <= 1 {
            return self.execute_into(symbols, out, dir);
        }
        if out.len() != symbols.len() {
            return Err(FftError::LengthMismatch { expected: symbols.len(), got: out.len() });
        }
        let chunk = symbols.len().div_ceil(workers);
        let n = self.engine.len();
        let factory = self.factory;
        let name = self.name.as_str();
        let obs = self.obs_enabled;

        let start = obs.then(Instant::now);
        let shards = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (shard_in, shard_out) in symbols.chunks(chunk).zip(out.chunks_mut(chunk)) {
                let shard_symbols = shard_in.len();
                let handle = scope.spawn(move || -> Result<u64, FftError> {
                    // A private engine (and scratch set) per worker: no
                    // shared interior state, deterministic per-symbol
                    // arithmetic.
                    let mut engine = crate::planner::take_engine(factory, n, name)?;
                    // Time the transform loop only — engine
                    // construction is plan-time cost, not batch cost.
                    let shard_start = obs.then(Instant::now);
                    for (symbol, slot) in shard_in.iter().zip(shard_out.iter_mut()) {
                        engine.execute_into(symbol, slot, dir)?;
                    }
                    Ok(shard_start.map_or(0, elapsed_ns))
                });
                handles.push((shard_symbols, handle));
            }
            handles
                .into_iter()
                .map(|(shard_symbols, handle)| {
                    let wall_ns = handle.join().expect("batch worker panicked")?;
                    Ok(ShardTiming { symbols: shard_symbols, wall_ns })
                })
                .collect::<Result<Vec<ShardTiming>, FftError>>()
        })?;
        if let Some(start) = start {
            self.last_run = Some(RunTiming {
                engine: self.name.clone(),
                symbols: symbols.len(),
                workers: shards.len(),
                wall_ns: elapsed_ns(start),
                shards,
            });
        }
        Ok(())
    }
}

/// Saturating nanoseconds since `start`.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_core::engine::EngineRegistry;

    fn batch(n: usize, symbols: usize) -> Vec<Vec<C64>> {
        (0..symbols)
            .map(|s| {
                let mut v = crate::planner::calibration_signal(n);
                // Vary the batch across symbols deterministically.
                v[s % n] = v[s % n] * (1.0 + s as f64);
                v
            })
            .collect()
    }

    #[test]
    fn threaded_matches_sequential_bit_for_bit() {
        let mut exec = BatchExecutor::with_engine_name(128, "radix2_dit", EngineRegistry::standard)
            .expect("executor");
        let symbols = batch(128, 17);
        let seq = exec.execute(&symbols, Direction::Forward).unwrap();
        for workers in [2usize, 3, 8, 64] {
            let par = exec.execute_threaded(&symbols, Direction::Forward, workers).unwrap();
            assert_eq!(seq, par, "workers={workers}");
        }
    }

    #[test]
    fn worker_counts_beyond_the_batch_are_clamped() {
        let mut exec =
            BatchExecutor::with_engine_name(64, "mcfft", EngineRegistry::standard).unwrap();
        let symbols = batch(64, 2);
        let out = exec.execute_threaded(&symbols, Direction::Inverse, 16).unwrap();
        assert_eq!(out, exec.execute(&symbols, Direction::Inverse).unwrap());
        assert!(exec.execute_threaded(&[], Direction::Forward, 4).unwrap().is_empty());
    }

    #[test]
    fn length_errors_surface_from_workers() {
        let mut exec =
            BatchExecutor::with_engine_name(64, "radix2_dif", EngineRegistry::standard).unwrap();
        let mut symbols = batch(64, 8);
        symbols[5] = vec![C64::new(0.0, 0.0); 32];
        let err = exec.execute_threaded(&symbols, Direction::Forward, 4).unwrap_err();
        assert!(matches!(err, FftError::LengthMismatch { expected: 64, got: 32 }));
    }

    #[test]
    fn run_timings_cover_every_shard() {
        let mut exec = BatchExecutor::with_engine_name(64, "radix2_dit", EngineRegistry::standard)
            .unwrap()
            .with_observability(true);
        assert!(exec.last_run().is_none(), "no run yet");
        let symbols = batch(64, 10);
        exec.execute(&symbols, Direction::Forward).unwrap();
        let run = exec.last_run().unwrap();
        assert_eq!((run.symbols, run.workers), (10, 1));
        assert_eq!(run.shards.len(), 1);
        assert_eq!(run.engine, "radix2_dit");
        exec.execute_threaded(&symbols, Direction::Forward, 3).unwrap();
        let run = exec.last_run().unwrap();
        assert_eq!(run.workers, 3);
        assert_eq!(run.shards.iter().map(|s| s.symbols).sum::<usize>(), 10);
        assert!(run.wall_ns > 0);
        assert!(run.throughput() > 0.0);
        // The end-to-end run covers its longest shard.
        assert!(run.shards.iter().all(|s| s.wall_ns <= run.wall_ns));
    }

    #[test]
    fn observability_off_keeps_no_timings() {
        let mut exec = BatchExecutor::with_engine_name(64, "radix2_dit", EngineRegistry::standard)
            .unwrap()
            .with_observability(false);
        let symbols = batch(64, 6);
        exec.execute(&symbols, Direction::Forward).unwrap();
        exec.execute_threaded(&symbols, Direction::Forward, 2).unwrap();
        assert!(exec.last_run().is_none());
    }

    #[test]
    fn unknown_engine_is_a_backend_error() {
        let err =
            BatchExecutor::with_engine_name(64, "asip_iss", EngineRegistry::standard).unwrap_err();
        assert!(matches!(err, FftError::Backend { .. }));
    }
}
