//! **afft-planner** — the autotuning layer over the
//! [`afft_core::engine::EngineRegistry`]: measure (or estimate) every
//! backend for a transform shape, remember the winner as serializable
//! *wisdom*, and execute whole batches of symbols through the planned
//! engine — the FFTW planner/wisdom idiom rebuilt natively on the
//! workspace's registry.
//!
//! Three pillars:
//!
//! * [`Planner`] — ranks the registry per `(n, direction)` by
//!   [`Strategy::Estimate`] (built-in cost heuristics over engine
//!   `traffic()`/cycle metadata) or [`Strategy::Measure`] (times a
//!   calibration run of every engine; cycle-accurate backends rank by
//!   modeled hardware cycles instead of simulator wall time);
//! * [`Wisdom`] — a plan cache keyed by `(n, direction, strategy,
//!   backend-set hash)` with a dependency-free line-oriented text
//!   serialization ([`Wisdom::load`] / [`Wisdom::store`] /
//!   [`Wisdom::merge`]), so tuning cost is paid once per machine;
//! * [`BatchExecutor`] — plans once, then runs `&[Vec<C64>]` batches
//!   through the planned engine, optionally sharded across a
//!   [`std::thread::scope`] worker pool with bit-identical results.
//!
//! # Quickstart
//!
//! ```
//! use afft_planner::{Planner, Strategy};
//!
//! // Plan over the standard software registry (pass
//! // `afft_asip::engine::registry_with_asip` via
//! // `Planner::with_factory` to let the cycle-accurate ISS compete).
//! let mut planner = Planner::new();
//! let plan = planner.plan(256, Strategy::Estimate)?;
//! assert!(plan.ranking.len() >= 6); // every registered engine, ranked
//! assert_ne!(plan.best().name, "dft_naive"); // O(N^2) never wins
//!
//! // The plan is remembered: the same request replays from wisdom.
//! let replay = planner.plan(256, Strategy::Estimate)?;
//! assert!(replay.from_wisdom);
//!
//! // Batch execution on the winning engine, optionally threaded.
//! let mut executor = planner.executor(&plan)?;
//! let batch = vec![vec![afft_num::Complex::new(1.0, 0.0); 256]; 8];
//! let spectra = executor.execute_threaded(&batch, afft_core::Direction::Forward, 4)?;
//! assert_eq!(spectra.len(), 8);
//! assert!((spectra[0][0].re - 256.0).abs() < 1e-6);
//! # Ok::<(), afft_core::FftError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod planner;
pub mod wisdom;

pub use batch::{BatchExecutor, RunTiming, ShardTiming};
pub use planner::{
    calibration_signal, take_engine, EngineRank, Plan, Planner, RegistryFactory, Strategy,
};
pub use wisdom::{backend_set_hash, Wisdom, WisdomEntry, WisdomKey};
