//! The planner: rank every engine the registry offers for one
//! transform shape, by heuristic model ([`Strategy::Estimate`]) or by
//! timing a calibration run ([`Strategy::Measure`]), and remember the
//! result as [`Wisdom`].

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use afft_core::engine::{EngineRegistry, FftEngine};
use afft_core::{Direction, FftError};
use afft_num::{Complex, C64};
use afft_obs::{Histogram, Snapshot};

use crate::batch::BatchExecutor;
use crate::wisdom::{backend_set_hash, Wisdom, WisdomEntry, WisdomKey};

/// How a registry for size `n` is built — the planner's only coupling
/// to the backend set. [`EngineRegistry::standard`] covers the software
/// models; pass `afft_asip::engine::registry_with_asip` to let the
/// cycle-accurate ISS compete.
pub type RegistryFactory = fn(usize) -> Result<EngineRegistry, FftError>;

/// The simulated ASIP's clock, used to convert modeled cycles into the
/// nanosecond scale the rankings share.
pub const ASIP_CLOCK_GHZ: f64 = 0.3;

/// How a [`Planner`] ranks the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// Rank by built-in cost heuristics (per-engine operation models,
    /// [`FftEngine::traffic`] metadata, size thresholds). Free, but
    /// blind to the host.
    Estimate,
    /// Execute every engine on a calibration signal and rank by what
    /// it actually cost: wall time for host backends, modeled cycles
    /// for cycle-accurate ones.
    Measure,
}

impl Strategy {
    /// Stable lowercase identifier (wisdom format, CLI flags).
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::Estimate => "estimate",
            Strategy::Measure => "measure",
        }
    }

    /// Inverse of [`Strategy::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "estimate" => Some(Strategy::Estimate),
            "measure" => Some(Strategy::Measure),
            _ => None,
        }
    }
}

/// One engine's entry in a ranked plan.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRank {
    /// Engine name ([`FftEngine::name`]).
    pub name: String,
    /// The ranking score in nanoseconds: estimated or measured time
    /// for one transform (modeled hardware time on cycle-accurate
    /// backends).
    pub score_ns: f64,
    /// Best measured wall time of one `execute_into` (allocation-free
    /// path, preallocated output), where the plan was measured (`None`
    /// for estimates and wisdom replays).
    pub wall_ns: Option<f64>,
    /// Modeled cycle count, on cycle-accurate backends.
    pub modeled_cycles: Option<u64>,
    /// Modelled memory traffic in points, where the backend reports it.
    pub traffic_points: Option<usize>,
}

/// A ranked plan for one `(n, direction)` transform shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Transform size.
    pub n: usize,
    /// Transform direction the plan was ranked for.
    pub direction: Direction,
    /// The strategy that produced the ranking.
    pub strategy: Strategy,
    /// [`backend_set_hash`] of the registry the ranking covers.
    pub backends: u64,
    /// Whether the ranking was replayed from wisdom (no new work).
    pub from_wisdom: bool,
    /// Every registry engine, best (lowest score) first.
    pub ranking: Vec<EngineRank>,
}

impl Plan {
    /// The winning engine.
    pub fn best(&self) -> &EngineRank {
        &self.ranking[0]
    }
}

/// The autotuning planner. See the [crate docs](crate) for a worked
/// example.
#[derive(Debug, Clone)]
pub struct Planner {
    factory: RegistryFactory,
    wisdom: Wisdom,
    reps: usize,
    // The factory's backend-set hash per size: a wisdom replay must
    // not pay for building every engine just to key the lookup.
    hash_cache: std::collections::BTreeMap<usize, u64>,
    /// Whether Measure keeps per-rep calibration distributions
    /// (resolved from `AFFT_OBS` at construction).
    obs_enabled: bool,
    /// Every calibration rep ever timed, keyed `n{n}/{dir}/{engine}` —
    /// Measure used to keep only the best rep and discard the rest;
    /// with observability on the whole distribution survives.
    calibration: std::collections::BTreeMap<String, Histogram>,
}

impl Default for Planner {
    fn default() -> Self {
        Self::new()
    }
}

impl Planner {
    /// A planner over [`EngineRegistry::standard`] with empty wisdom.
    pub fn new() -> Self {
        Self::with_factory(EngineRegistry::standard)
    }

    /// A planner over a caller-chosen registry factory (e.g.
    /// `registry_with_asip`, so the ISS participates in rankings).
    pub fn with_factory(factory: RegistryFactory) -> Self {
        Planner {
            factory,
            wisdom: Wisdom::new(),
            reps: 3,
            hash_cache: std::collections::BTreeMap::new(),
            obs_enabled: afft_obs::enabled(),
            calibration: std::collections::BTreeMap::new(),
        }
    }

    /// Explicitly enables or disables calibration-distribution
    /// recording (the default follows the process-wide `AFFT_OBS`
    /// switch, [`afft_obs::enabled`]).
    #[must_use]
    pub fn with_observability(mut self, on: bool) -> Self {
        self.obs_enabled = on;
        self
    }

    /// Seeds the planner with previously stored wisdom.
    #[must_use]
    pub fn with_wisdom(mut self, wisdom: Wisdom) -> Self {
        self.wisdom = wisdom;
        self
    }

    /// Sets how many calibration repetitions [`Strategy::Measure`]
    /// runs per engine (best-of-`reps`; clamped to at least 1).
    #[must_use]
    pub fn with_measure_reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// The accumulated wisdom (every plan this planner produced or was
    /// seeded with) — store it to pay the tuning cost once per machine.
    pub fn wisdom(&self) -> &Wisdom {
        &self.wisdom
    }

    /// Mutable access to the wisdom, e.g. to [`Wisdom::merge`] a file
    /// loaded mid-flight.
    pub fn wisdom_mut(&mut self) -> &mut Wisdom {
        &mut self.wisdom
    }

    /// Plans the forward transform of size `n` — see
    /// [`Planner::plan_directed`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] for unsupported sizes or backend failures
    /// during calibration.
    pub fn plan(&mut self, n: usize, strategy: Strategy) -> Result<Plan, FftError> {
        self.plan_directed(n, Direction::Forward, strategy)
    }

    /// Plans a transform: wisdom hit if available, otherwise rank the
    /// registry by `strategy` and record the result as new wisdom.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] for unsupported sizes or backend failures
    /// during calibration.
    pub fn plan_directed(
        &mut self,
        n: usize,
        direction: Direction,
        strategy: Strategy,
    ) -> Result<Plan, FftError> {
        let mut registry = None;
        let backends = match self.hash_cache.get(&n) {
            Some(&hash) => hash,
            None => {
                let r = (self.factory)(n)?;
                let hash = backend_set_hash(&r.names());
                self.hash_cache.insert(n, hash);
                registry = Some(r);
                hash
            }
        };
        let key = WisdomKey::new(n, direction, strategy, backends);
        if let Some(entry) = self.wisdom.get(&key) {
            let ranking = entry
                .ranking
                .iter()
                .map(|(name, score)| EngineRank {
                    name: name.clone(),
                    score_ns: *score,
                    wall_ns: None,
                    modeled_cycles: None,
                    traffic_points: None,
                })
                .collect();
            return Ok(Plan { n, direction, strategy, backends, from_wisdom: true, ranking });
        }

        let mut registry = match registry {
            Some(r) => r,
            None => (self.factory)(n)?,
        };
        let mut ranking = match strategy {
            Strategy::Estimate => {
                registry.engines().map(estimate_rank).collect::<Vec<EngineRank>>()
            }
            Strategy::Measure => {
                let signal = calibration_signal(n);
                // One calibration output serves every engine, allocated
                // outside the timed loops: the rankings compare the
                // math, not the host allocator.
                let mut output = vec![Complex::zero(); n];
                let dir = if direction == Direction::Forward { "fwd" } else { "inv" };
                let mut ranking = Vec::new();
                for engine in registry.engines_mut() {
                    // With observability on, every calibration rep
                    // lands in a per-engine histogram instead of being
                    // discarded after the best-of reduction.
                    let mut hist = self.obs_enabled.then(Histogram::new);
                    let rank = measure_rank(
                        engine,
                        &signal,
                        &mut output,
                        direction,
                        self.reps,
                        &mut hist,
                    )?;
                    if let Some(hist) = hist {
                        self.calibration
                            .entry(format!("n{n}/{dir}/{}", rank.name))
                            .or_default()
                            .merge(&hist);
                    }
                    ranking.push(rank);
                }
                ranking
            }
        };
        ranking.sort_by(|a, b| {
            a.score_ns.partial_cmp(&b.score_ns).unwrap_or(core::cmp::Ordering::Equal)
        });

        let entry = WisdomEntry {
            stamp: unix_stamp(),
            ranking: ranking.iter().map(|r| (r.name.clone(), r.score_ns)).collect(),
        };
        self.wisdom.insert(key, entry);
        Ok(Plan { n, direction, strategy, backends, from_wisdom: false, ranking })
    }

    /// Instantiates the plan's winning engine, owned, from a fresh
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::Backend`] if the planned engine is no
    /// longer registered (wisdom from a different backend set).
    pub fn engine(&self, plan: &Plan) -> Result<Box<dyn FftEngine>, FftError> {
        take_engine(self.factory, plan.n, &plan.best().name)
    }

    /// Builds a [`BatchExecutor`] over the plan's winning engine.
    ///
    /// # Errors
    ///
    /// As [`Planner::engine`].
    pub fn executor(&self, plan: &Plan) -> Result<BatchExecutor, FftError> {
        BatchExecutor::from_plan(plan, self.factory)
    }

    /// Every calibration rep this planner has timed, as a named
    /// snapshot (`n{n}/{dir}/{engine}` series) — the distribution
    /// behind each [`Strategy::Measure`] ranking, which the best-of
    /// reduction alone would have discarded. Empty with observability
    /// off, and for planners that only ever ran
    /// [`Strategy::Estimate`] or wisdom replays.
    pub fn calibration_snapshot(&self) -> Snapshot {
        Snapshot::from_series(
            self.calibration.iter().map(|(name, h)| (name.clone(), h.clone())).collect(),
        )
    }
}

fn unix_stamp() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs())
}

/// Builds the factory's registry for size `n` and takes `name` out of
/// it, owned — the one plan→engine resolution path shared by
/// [`Planner::engine`], the batch executor's per-worker engines, and
/// the `afft_stream` pipeline's long-lived workers. Public so any
/// layer that holds a [`RegistryFactory`] and a planned engine name
/// can construct private engine instances (one per worker — the
/// threading idiom that needs no `Sync` bound on [`FftEngine`]).
///
/// # Errors
///
/// Returns [`FftError::Backend`] if `name` is not in the factory's
/// registry for `n` (e.g. wisdom from a different backend set), or any
/// error the factory itself reports.
pub fn take_engine(
    factory: RegistryFactory,
    n: usize,
    name: &str,
) -> Result<Box<dyn FftEngine>, FftError> {
    factory(n)?.take(name).ok_or_else(|| FftError::Backend {
        engine: name.to_string(),
        reason: "planned engine is not in the registry".into(),
    })
}

/// A deterministic QPSK-like calibration signal (xorshift-driven, no
/// RNG dependency): constant magnitude per point, sign-random phases.
pub fn calibration_signal(n: usize) -> Vec<C64> {
    let mut state: u64 = 0x243f_6a88_85a3_08d3 ^ n as u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let bits = next();
            let re = if bits & 1 == 0 { 1.0 } else { -1.0 };
            let im = if bits & 2 == 0 { 1.0 } else { -1.0 };
            Complex::new(re, im) * std::f64::consts::FRAC_1_SQRT_2
        })
        .collect()
}

fn measure_rank(
    engine: &mut dyn FftEngine,
    signal: &[C64],
    output: &mut [C64],
    direction: Direction,
    reps: usize,
    hist: &mut Option<Histogram>,
) -> Result<EngineRank, FftError> {
    // Warm the engine-owned scratch outside the timed region, so the
    // first timed rep doesn't pay one-time buffer growth.
    engine.execute_into(signal, output, direction)?;
    let mut wall_ns = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        engine.execute_into(signal, output, direction)?;
        let rep_ns = start.elapsed().as_nanos();
        if let Some(hist) = hist {
            hist.record(u64::try_from(rep_ns).unwrap_or(u64::MAX));
        }
        wall_ns = wall_ns.min(rep_ns as f64);
    }
    // Cycle-accurate backends rank by modeled hardware time, not by
    // how long the simulator took on the host.
    let modeled_cycles = engine.cycles();
    let score_ns = modeled_cycles.map_or(wall_ns, |c| c as f64 / ASIP_CLOCK_GHZ);
    Ok(EngineRank {
        name: engine.name().to_string(),
        score_ns,
        wall_ns: Some(wall_ns),
        modeled_cycles,
        traffic_points: engine.traffic().map(|t| t.total()),
    })
}

/// Per-point operation count of one mixed-radix transform: the sum of
/// per-stage butterfly costs over `n`'s {4, 2, 3, 5} factor stages
/// (radix-4 spends ~1.7 ops/point/stage with only `±i` rotations,
/// radix-3 and radix-5 pay their constant rotations). Falls back to a
/// generic `log2 n` for sizes the factoriser rejects, so the model
/// never panics on a foreign registry.
fn mixed_radix_stage_cost(n: usize) -> f64 {
    match afft_core::mixed::factorize(n) {
        Some(radices) => radices
            .iter()
            .map(|r| match r {
                2 => 1.0,
                3 => 1.9,
                4 => 1.7,
                _ => 3.2,
            })
            .sum(),
        None => (usize::BITS - n.leading_zeros()).saturating_sub(1) as f64,
    }
}

/// Total op count of one Bluestein chirp-Z transform of size `n`: two
/// `m`-point split-radix runs (the kernel spectrum is plan-time) around
/// the pointwise multiply, plus the O(n) chirp passes, with
/// `m = next_pow2(2n - 1)`. This is 4–8x the cost of a direct kernel
/// at the same size — the model must price that honestly so
/// `mixed_radix` keeps winning every 5-smooth size and `bluestein`
/// only ranks first where nothing structured exists.
fn bluestein_ops(n: usize) -> f64 {
    let m = (2 * n - 1).next_power_of_two();
    let mf = m as f64;
    let log2m = m.trailing_zeros() as f64;
    2.0 * 0.67 * mf * log2m + mf + 2.0 * n as f64
}

/// Total op count of one Rader prime-length transform: two
/// `(p-1)`-point inner passes priced by whichever family serves that
/// length (split-radix on powers of two, mixed-radix on 5-smooth,
/// Bluestein otherwise — mirroring the engine's own inner dispatch),
/// plus the generator permutations and the pointwise kernel multiply.
/// When `p - 1` is smooth this beats Bluestein's `>= 2p - 1` padded
/// convolution, which is exactly why both engines register at primes.
fn rader_ops(p: usize) -> f64 {
    let m = p - 1;
    let mf = m as f64;
    let inner = if m.is_power_of_two() {
        0.67 * mf * m.trailing_zeros() as f64
    } else if afft_core::mixed::factorize(m).is_some() {
        mf * mixed_radix_stage_cost(m)
    } else {
        bluestein_ops(m)
    };
    2.0 * inner + 4.0 * mf + p as f64
}

/// Rough per-point-operation cost of the f64 software backends, ns.
const HOST_OP_NS: f64 = 2.0;
/// Rough cost of moving one complex point through main memory, ns.
const HOST_MEM_NS: f64 = 0.5;

fn estimate_rank(engine: &dyn FftEngine) -> EngineRank {
    let n = engine.len();
    let nf = n as f64;
    let log2n = (usize::BITS - n.leading_zeros()).saturating_sub(1) as f64;
    let traffic = engine.traffic().map(|t| t.total());
    let (score_ns, modeled_cycles) = if engine.name() == "asip_iss" {
        // Closed-form cycle model of the array ASIP: N log2 N / 8
        // butterfly issues, 2N streaming beats, fixed startup.
        let cycles = nf * log2n / 8.0 + 2.0 * nf + 64.0;
        (cycles / ASIP_CLOCK_GHZ, Some(cycles as u64))
    } else {
        // Operation models per backend; the constants encode the size
        // thresholds (the naive DFT's N^2 overtakes every N log N
        // structure beyond trivially small N).
        let ops = match engine.name() {
            "dft_naive" => nf * nf,
            "radix2_dit" => nf * log2n,
            "radix2_dif" => 1.1 * nf * log2n, // + bit-reverse pass
            // The mixed-radix family: split-radix holds the lowest
            // known power-of-two op count (~4/5 of radix-2 multiplies
            // with plan-time twiddles beating the per-butterfly
            // cos/sin of the radix-2 reference); radix-4 saves ~25% of
            // the complex multiplies over radix-2.
            "split_radix" => 0.67 * nf * log2n,
            "radix4_dit" => 0.75 * nf * log2n,
            // The iterative SIMD engine runs the same op count as its
            // scalar sibling — the win is issue width, modeled by the
            // throughput class below, not a smaller op count.
            "radix4_simd" => 0.75 * nf * log2n,
            // The recursive SIMD split-radix *measures slower* than its
            // scalar sibling (ROADMAP item 1 follow-up): per-level call
            // and split-plane re-layout overhead dominates the vector
            // combines, so it earns no issue-width discount (excluded
            // below) and pays an O(N) recursion-overhead term on top of
            // the scalar op count. Until the iterative restructure
            // lands, Estimate must price the engine as the loser it is.
            "split_radix_simd" => 0.67 * nf * log2n + 2.0 * nf,
            // General mixed radix: per-point cost of one stage grows
            // with its radix (hardcoded {2,3,4,5} butterflies).
            "mixed_radix" => nf * mixed_radix_stage_cost(n),
            // The convolution engines close the size domain; their
            // models price the padded/inner transforms they actually
            // run, so they only win where no structured kernel exists.
            "bluestein" => bluestein_ops(n),
            "rader" => rader_ops(n),
            "array_fft" => 1.15 * nf * log2n, // group bookkeeping
            "cached_fft" => 1.2 * nf * log2n,
            "mcfft" => 1.25 * nf * log2n, // per-epoch twiddle passes
            // The complex contract costs real_fft its packed-real
            // saving: two half-size packed transforms (re + im) plus
            // O(N) split/expand/recombine with per-bin twiddles.
            "real_fft" => 2.2 * nf * log2n,
            _ => nf * log2n,
        };
        // Throughput class: vectorized engines retire ~`lanes` point
        // operations per issue; the 0.75 derate covers the layout
        // passes and narrow recursion levels the wide path can't cover.
        // Memory traffic is not divided — the vector unit does not
        // widen the memory bus. `split_radix_simd` is carved out: its
        // recursive walker never sustains wide issue (see its op model
        // above), and granting it the discount made Estimate pick a
        // known loser over scalar `split_radix`.
        let issue_width = if engine.name().ends_with("_simd") && engine.name() != "split_radix_simd"
        {
            (afft_core::simd::active_level().lanes() as f64 * 0.75).max(1.0)
        } else {
            1.0
        };
        (HOST_OP_NS * ops / issue_width + HOST_MEM_NS * traffic.unwrap_or(0) as f64, None)
    };
    EngineRank {
        name: engine.name().to_string(),
        score_ns,
        wall_ns: None,
        modeled_cycles,
        traffic_points: traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_ranks_every_registry_engine() {
        let mut planner = Planner::new();
        let plan = planner.plan(256, Strategy::Estimate).unwrap();
        assert_eq!(plan.ranking.len(), EngineRegistry::standard(256).unwrap().len());
        assert!(!plan.from_wisdom);
        // Scores are sorted ascending and the O(N^2) reference loses.
        for pair in plan.ranking.windows(2) {
            assert!(pair[0].score_ns <= pair[1].score_ns);
        }
        assert_eq!(plan.ranking.last().unwrap().name, "dft_naive");
        assert_ne!(plan.best().name, "dft_naive");
    }

    #[test]
    fn estimate_prefers_simd_over_scalar_siblings_when_detected() {
        if !afft_core::simd::active_level().is_simd() {
            // No vector unit (or AFFT_NO_SIMD): the SIMD tier is not
            // registered and there is nothing to rank.
            return;
        }
        let mut planner = Planner::new();
        let plan = planner.plan(1024, Strategy::Estimate).unwrap();
        let pos = |name: &str| {
            plan.ranking
                .iter()
                .position(|r| r.name == name)
                .unwrap_or_else(|| panic!("{name} missing from estimate ranking"))
        };
        // Same op model, wider issue: the iterative SIMD engine must
        // outrank its scalar sibling under Estimate.
        assert!(pos("radix4_simd") < pos("radix4_dit"));
    }

    #[test]
    fn estimate_ranks_split_radix_simd_behind_its_scalar_sibling() {
        if !afft_core::simd::active_level().is_simd() {
            return;
        }
        // `split_radix_simd` measures *slower* than scalar
        // `split_radix` (recursion overhead dominates the vector
        // combines — ROADMAP item 1); the op model must never let
        // Estimate pick the known loser. Pin the ordering across the
        // practical power-of-two range.
        let mut planner = Planner::new();
        for n in [64usize, 256, 1024, 4096] {
            let plan = planner.plan(n, Strategy::Estimate).unwrap();
            let pos = |name: &str| {
                plan.ranking
                    .iter()
                    .position(|r| r.name == name)
                    .unwrap_or_else(|| panic!("{name} missing from estimate ranking at n={n}"))
            };
            assert!(
                pos("split_radix") < pos("split_radix_simd"),
                "Estimate re-promoted the losing split_radix_simd at n={n}"
            );
            // The carve-out must not leak onto the SIMD engine that
            // genuinely wins.
            assert!(pos("radix4_simd") < pos("radix4_dit"), "radix4_simd demoted at n={n}");
        }
    }

    #[test]
    fn measure_ranks_and_caches_into_wisdom() {
        let mut planner = Planner::new().with_measure_reps(1);
        let plan = planner.plan(64, Strategy::Measure).unwrap();
        assert!(!plan.from_wisdom);
        assert_eq!(plan.ranking.len(), EngineRegistry::standard(64).unwrap().len());
        assert!(plan.ranking.iter().all(|r| r.wall_ns.is_some()));
        assert_eq!(planner.wisdom().len(), 1);
        // Second call replays the wisdom without re-measuring.
        let replay = planner.plan(64, Strategy::Measure).unwrap();
        assert!(replay.from_wisdom);
        assert_eq!(replay.best().name, plan.best().name);
        assert_eq!(replay.ranking.len(), plan.ranking.len());
    }

    #[test]
    fn composite_sizes_plan_through_the_same_path() {
        let mut planner = Planner::new().with_measure_reps(1);
        // Estimate at an LTE-like composite size: the mixed-radix
        // engine must beat the O(N^2) reference.
        let plan = planner.plan(1200, Strategy::Estimate).unwrap();
        assert_eq!(plan.ranking.len(), EngineRegistry::standard(1200).unwrap().len());
        assert_eq!(plan.best().name, "mixed_radix");
        assert_eq!(plan.ranking.last().unwrap().name, "dft_naive");
        // Measure at a small composite size ranks and caches wisdom.
        let measured = planner.plan(60, Strategy::Measure).unwrap();
        assert!(measured.ranking.iter().all(|r| r.wall_ns.is_some()));
        let engine = planner.engine(&measured).unwrap();
        assert_eq!(engine.len(), 60);
        // Rough composites (1022 = 2·7·73) plan through the chirp-Z
        // fallback now — no size beyond {0, 1} errors out.
        let rough = planner.plan(1022, Strategy::Estimate).unwrap();
        assert_eq!(rough.best().name, "bluestein");
        assert!(planner.plan(0, Strategy::Estimate).is_err());
        assert!(planner.plan(1, Strategy::Estimate).is_err());
    }

    #[test]
    fn prime_sizes_rank_the_convolution_engines_honestly() {
        let mut planner = Planner::new();
        // At 97 the 96-point (2^5·3, smooth) inner convolution makes
        // Rader cheaper than Bluestein's 256-point padded convolution.
        let plan = planner.plan(97, Strategy::Estimate).unwrap();
        assert_eq!(plan.best().name, "rader");
        assert_eq!(plan.ranking.last().unwrap().name, "dft_naive");
        // At 1009 the inner length 1008 = 2^4·3^2·7 is itself rough,
        // so Rader recurses into Bluestein and pays twice the chirp-Z
        // cost — the model must rank plain Bluestein first there.
        let plan = planner.plan(1009, Strategy::Estimate).unwrap();
        assert_eq!(plan.best().name, "bluestein");
        // Tiny primes: the direct radix-3 butterfly is genuinely
        // cheapest — the convolution engines must not outrank it.
        let plan = planner.plan(3, Strategy::Estimate).unwrap();
        assert_eq!(plan.best().name, "mixed_radix");
    }

    #[test]
    fn planned_engine_is_instantiable_and_correct_size() {
        let mut planner = Planner::new();
        let plan = planner.plan(128, Strategy::Estimate).unwrap();
        let engine = planner.engine(&plan).unwrap();
        assert_eq!(engine.name(), plan.best().name);
        assert_eq!(engine.len(), 128);
    }

    #[test]
    fn estimate_and_measure_wisdom_are_keyed_apart() {
        let mut planner = Planner::new().with_measure_reps(1);
        planner.plan(64, Strategy::Estimate).unwrap();
        planner.plan(64, Strategy::Measure).unwrap();
        planner.plan_directed(64, Direction::Inverse, Strategy::Estimate).unwrap();
        assert_eq!(planner.wisdom().len(), 3);
    }

    #[test]
    fn calibration_signal_is_deterministic_qpsk() {
        let a = calibration_signal(64);
        assert_eq!(a, calibration_signal(64));
        assert_ne!(a, calibration_signal(128)[..64].to_vec());
        for c in &a {
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn measure_keeps_calibration_distributions() {
        let reps = 4;
        let mut planner = Planner::new().with_observability(true).with_measure_reps(reps);
        planner.plan(64, Strategy::Measure).unwrap();
        let snap = planner.calibration_snapshot();
        assert_eq!(snap.series().len(), EngineRegistry::standard(64).unwrap().len());
        for (name, hist) in snap.series() {
            assert!(name.starts_with("n64/fwd/"), "{name}");
            assert_eq!(hist.count(), reps as u64, "{name} kept every rep");
            assert!(hist.max().unwrap() >= hist.min().unwrap());
        }
        // A wisdom replay re-runs nothing and records nothing new.
        planner.plan(64, Strategy::Measure).unwrap();
        assert_eq!(planner.calibration_snapshot().get("n64/fwd/dft_naive").unwrap().count(), 4);
    }

    #[test]
    fn observability_off_discards_calibration() {
        let mut planner = Planner::new().with_observability(false).with_measure_reps(2);
        planner.plan(64, Strategy::Measure).unwrap();
        assert!(planner.calibration_snapshot().series().is_empty());
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [Strategy::Estimate, Strategy::Measure] {
            assert_eq!(Strategy::parse(s.as_str()), Some(s));
        }
        assert_eq!(Strategy::parse("guess"), None);
    }
}
