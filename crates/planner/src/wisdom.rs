//! Serializable planning wisdom: measured rankings remembered across
//! processes, so the autotuning cost is paid once per machine.
//!
//! The cache is keyed by [`WisdomKey`] — `(n, direction, strategy,
//! backend-set hash)` — and stores the full best-first ranking plus a
//! freshness stamp.
//!
//! # The `afft wisdom v1` line format
//!
//! The on-disk format is line-oriented text with no dependencies. A
//! file starts with the [`WISDOM_HEADER`] magic line (`# afft wisdom
//! v1`) and carries one plan per line; `#` comment lines and blank
//! lines are ignored:
//!
//! ```text
//! # afft wisdom v1
//! plan n=256 dir=fwd strategy=measure backends=00f09a3d5c77b121 stamp=17 rank=radix2_dit:8123.000,array_fft:9960.500
//! ```
//!
//! Each line is whitespace-separated `key=value` fields after the
//! `plan` keyword, in any order:
//!
//! * `n` — transform size (decimal);
//! * `dir` — `fwd` or `inv`;
//! * `strategy` — `estimate` or `measure` ([`Strategy::as_str`]);
//! * `backends` — the 16-digit lowercase-hex [`backend_set_hash`] of
//!   the registry the ranking covers;
//! * `stamp` — freshness in seconds since the Unix epoch (higher wins
//!   on [`Wisdom::merge`]);
//! * `rank` — comma-separated `engine:score_ns` pairs, best first.
//!   Engine names must be snake_case identifiers and scores finite,
//!   non-negative decimals;
//! * any *other* key is forward-compatible noise and is ignored.
//!
//! Unparsable lines (missing fields, malformed numbers, invalid engine
//! names, empty rankings) are *skipped and counted*, never fatal: a
//! corrupt wisdom file degrades toward an empty cache, and entries
//! recorded against a different backend set simply never match their
//! key, so changing the registry invalidates stale wisdom by
//! construction.
//!
//! ```
//! use afft_planner::Wisdom;
//!
//! // (A line beginning with `# ` inside a doctest would be taken for
//! // a rustdoc hidden-code marker, so the header is spelled `\x23`.)
//! let text = "\x23 afft wisdom v1\n\
//!     plan n=256 dir=fwd strategy=measure backends=00f09a3d5c77b121 stamp=17 rank=radix2_dit:8123.000,array_fft:9960.500\n\
//!     plan n=128 dir=fwd strategy=measure rank=radix2_dit:nonsense\n";
//! let wisdom = Wisdom::parse(text);
//! assert_eq!(wisdom.len(), 1);           // the valid plan line
//! assert_eq!(wisdom.rejected_lines(), 1); // the corrupt one, skipped
//! // Round trip: serialize renders the same line format back.
//! assert!(wisdom.serialize().starts_with("# afft wisdom v1\n"));
//! let replayed = Wisdom::parse(&wisdom.serialize());
//! assert_eq!(replayed.len(), 1);
//! assert_eq!(replayed.rejected_lines(), 0);
//! ```
//!
//! # Where wisdom lives: `$AFFT_WISDOM`
//!
//! [`Wisdom::default_path`] resolves the conventional location:
//!
//! 1. `$AFFT_WISDOM`, if set **and non-empty** — an empty value is
//!    treated as unset (the conventional `PATH`-style reading:
//!    `AFFT_WISDOM= cmd` must not resolve to the current directory);
//! 2. else the per-user `$HOME/.afft-wisdom.txt` (the `~/.fftw-wisdom`
//!    idiom);
//! 3. else (no usable `HOME`) `afft-wisdom.txt` in the system temp
//!    directory.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::planner::Strategy;
use afft_core::Direction;

/// Magic header written at the top of every wisdom file.
pub const WISDOM_HEADER: &str = "# afft wisdom v1";

/// FNV-1a hash of the sorted backend-name set: two registries with the
/// same engines (in any order) share wisdom; adding or removing a
/// backend invalidates prior entries by construction.
pub fn backend_set_hash<S: AsRef<str>>(names: &[S]) -> u64 {
    let mut sorted: Vec<&str> = names.iter().map(AsRef::as_ref).collect();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for name in sorted {
        for b in name.bytes().chain([b',']) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The lookup key of one wisdom entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WisdomKey {
    /// Transform size.
    pub n: usize,
    /// `true` for [`Direction::Forward`].
    pub forward: bool,
    /// The strategy that produced the ranking.
    pub strategy: Strategy,
    /// [`backend_set_hash`] of the registry the ranking covers.
    pub backends: u64,
}

impl WisdomKey {
    /// Builds a key from the planner's vocabulary.
    pub fn new(n: usize, direction: Direction, strategy: Strategy, backends: u64) -> Self {
        WisdomKey { n, forward: direction == Direction::Forward, strategy, backends }
    }

    /// The direction this key encodes.
    pub fn direction(&self) -> Direction {
        if self.forward {
            Direction::Forward
        } else {
            Direction::Inverse
        }
    }
}

/// One remembered ranking: best-first `(engine name, score in ns)`
/// pairs plus a freshness stamp (seconds since the Unix epoch, or any
/// caller-chosen monotonic counter).
#[derive(Debug, Clone, PartialEq)]
pub struct WisdomEntry {
    /// Freshness: higher wins on [`Wisdom::merge`].
    pub stamp: u64,
    /// Best-first `(engine, score_ns)` ranking.
    pub ranking: Vec<(String, f64)>,
}

impl WisdomEntry {
    /// The winning engine's name.
    pub fn best(&self) -> &str {
        &self.ranking[0].0
    }
}

/// The plan cache. See the [module docs](self) for the text format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Wisdom {
    entries: BTreeMap<WisdomKey, WisdomEntry>,
    rejected: usize,
}

impl Wisdom {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many lines the last [`Wisdom::parse`] skipped as corrupt.
    pub fn rejected_lines(&self) -> usize {
        self.rejected
    }

    /// Looks a cached ranking up.
    pub fn get(&self, key: &WisdomKey) -> Option<&WisdomEntry> {
        self.entries.get(key)
    }

    /// Records a ranking, replacing any previous entry for the key.
    /// Entries with an empty ranking are ignored (nothing to replay).
    pub fn insert(&mut self, key: WisdomKey, entry: WisdomEntry) {
        if !entry.ranking.is_empty() {
            self.entries.insert(key, entry);
        }
    }

    /// Folds `other` into `self`, keeping whichever entry is fresher
    /// (higher stamp; `other` wins ties, as the incoming measurement).
    pub fn merge(&mut self, other: &Wisdom) {
        for (key, entry) in &other.entries {
            match self.entries.get(key) {
                Some(mine) if mine.stamp > entry.stamp => {}
                _ => {
                    self.entries.insert(*key, entry.clone());
                }
            }
        }
    }

    /// Parses wisdom text. Malformed lines are counted in
    /// [`Wisdom::rejected_lines`] and skipped — a corrupt file never
    /// panics and never aborts the parse.
    pub fn parse(text: &str) -> Wisdom {
        let mut wisdom = Wisdom::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_line(line) {
                Some((key, entry)) => wisdom.insert(key, entry),
                None => wisdom.rejected += 1,
            }
        }
        wisdom
    }

    /// Renders the cache in the line-oriented text format.
    pub fn serialize(&self) -> String {
        let mut out = String::from(WISDOM_HEADER);
        out.push('\n');
        for (key, entry) in &self.entries {
            let dir = if key.forward { "fwd" } else { "inv" };
            let _ = write!(
                out,
                "plan n={} dir={} strategy={} backends={:016x} stamp={} rank=",
                key.n,
                dir,
                key.strategy.as_str(),
                key.backends,
                entry.stamp
            );
            for (i, (name, score)) in entry.ranking.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{name}:{score:.3}");
            }
            out.push('\n');
        }
        out
    }

    /// Loads wisdom from `path`. A missing file yields an empty cache
    /// (first run on a new machine); other I/O errors are returned.
    ///
    /// Corrupt lines are skipped as in [`Wisdom::parse`]; when any are
    /// present, their number is added to the process-wide
    /// `wisdom.corrupt_lines` counter ([`fn@afft_obs::counter`]) and one
    /// warning line is printed to stderr — silent wisdom decay is how
    /// a machine quietly loses its tuning.
    ///
    /// # Errors
    ///
    /// Propagates any [`io::Error`] except [`io::ErrorKind::NotFound`].
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Wisdom> {
        let path = path.as_ref();
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let wisdom = Wisdom::parse(&text);
                if wisdom.rejected > 0 {
                    afft_obs::counter("wisdom.corrupt_lines").add(wisdom.rejected as u64);
                    eprintln!(
                        "warning: skipped {} corrupt wisdom line(s) in {} ({} plan(s) kept)",
                        wisdom.rejected,
                        path.display(),
                        wisdom.len(),
                    );
                }
                Ok(wisdom)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Wisdom::new()),
            Err(e) => Err(e),
        }
    }

    /// Writes the cache to `path`, replacing the file.
    ///
    /// # Errors
    ///
    /// Propagates any [`io::Error`] from the write.
    pub fn store<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.serialize())
    }

    /// The conventional wisdom location: `$AFFT_WISDOM` if set and
    /// non-empty (an empty value is treated as unset, the conventional
    /// `PATH`-style reading — `AFFT_WISDOM= cmd` must not resolve to
    /// the current directory), else the per-user `$HOME/.afft-wisdom.txt`
    /// (the `~/.fftw-wisdom` idiom — a world-shared temp path would
    /// collide across users), falling back to the system temp directory
    /// when `HOME` is unset.
    pub fn default_path() -> std::path::PathBuf {
        match std::env::var_os("AFFT_WISDOM") {
            Some(p) if !p.is_empty() => return std::path::PathBuf::from(p),
            _ => {}
        }
        match std::env::var_os("HOME") {
            Some(home) if !home.is_empty() => std::path::Path::new(&home).join(".afft-wisdom.txt"),
            _ => std::env::temp_dir().join("afft-wisdom.txt"),
        }
    }
}

/// Engine names are snake_case identifiers; anything else on a rank
/// line marks the line as corrupt.
fn valid_engine_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

fn parse_line(line: &str) -> Option<(WisdomKey, WisdomEntry)> {
    let mut fields = line.split_ascii_whitespace();
    if fields.next() != Some("plan") {
        return None;
    }
    let (mut n, mut dir, mut strategy, mut backends, mut stamp, mut rank) =
        (None, None, None, None, None, None);
    for field in fields {
        let (k, v) = field.split_once('=')?;
        match k {
            "n" => n = Some(v.parse::<usize>().ok()?),
            "dir" => {
                dir = Some(match v {
                    "fwd" => true,
                    "inv" => false,
                    _ => return None,
                })
            }
            "strategy" => strategy = Some(Strategy::parse(v)?),
            "backends" => backends = Some(u64::from_str_radix(v, 16).ok()?),
            "stamp" => stamp = Some(v.parse::<u64>().ok()?),
            "rank" => {
                let mut ranking = Vec::new();
                for pair in v.split(',') {
                    let (name, score) = pair.split_once(':')?;
                    let score = score.parse::<f64>().ok()?;
                    if !valid_engine_name(name) || !score.is_finite() || score < 0.0 {
                        return None;
                    }
                    ranking.push((name.to_string(), score));
                }
                rank = Some(ranking);
            }
            // Unknown keys are forward-compatible noise, not corruption.
            _ => {}
        }
    }
    let key = WisdomKey { n: n?, forward: dir?, strategy: strategy?, backends: backends? };
    let entry = WisdomEntry { stamp: stamp?, ranking: rank? };
    if entry.ranking.is_empty() {
        return None;
    }
    Some((key, entry))
}
