//! Acceptance: the threaded batch executor produces *bit-identical*
//! spectra to sequential execution on a 64-symbol OFDM batch, through
//! a plan that came out of the planner (and back out of wisdom).

use afft_core::engine::EngineRegistry;
use afft_core::ofdm::{qpsk_map, Ofdm};
use afft_core::Direction;
use afft_num::C64;
use afft_planner::{BatchExecutor, Planner, Strategy, Wisdom};

const N: usize = 128;
const CP: usize = 32;
const SYMBOLS: usize = 64;

/// 64 modulated OFDM symbols (CP stripped: receiver FFT input).
fn ofdm_batch() -> Vec<Vec<C64>> {
    let mut ofdm = Ofdm::new(N, CP).expect("ofdm");
    (0..SYMBOLS)
        .map(|s| {
            let bits: Vec<(bool, bool)> =
                (0..N).map(|k| ((s + k) % 3 == 0, (s * 7 + k) % 5 < 2)).collect();
            let tx = ofdm.modulate(&qpsk_map(&bits)).expect("modulate");
            tx[CP..].to_vec()
        })
        .collect()
}

#[test]
fn threaded_pool_is_bit_identical_on_a_64_symbol_ofdm_batch() {
    let mut planner = Planner::new().with_measure_reps(1);
    let plan = planner.plan(N, Strategy::Measure).expect("measure plan");
    assert_eq!(plan.ranking.len(), EngineRegistry::standard(N).expect("registry").len());

    let mut executor = planner.executor(&plan).expect("executor");
    let batch = ofdm_batch();
    let sequential = executor.execute(&batch, Direction::Forward).expect("sequential");
    for workers in [2usize, 4, 7, 64] {
        let threaded =
            executor.execute_threaded(&batch, Direction::Forward, workers).expect("threaded");
        assert_eq!(sequential, threaded, "workers={workers} must be bit-identical");
    }

    // And the demodulated constellations are the transmitted ones.
    let bits0: Vec<(bool, bool)> = (0..N).map(|k| (k % 3 == 0, k % 5 < 2)).collect();
    let decided: Vec<(bool, bool)> =
        sequential[0].iter().map(|c| (c.re >= 0.0, c.im >= 0.0)).collect();
    assert_eq!(decided, bits0);
}

#[test]
fn wisdom_replayed_plan_drives_the_same_executor() {
    // Plan, serialize the wisdom, revive a fresh planner from the
    // text, and check the replayed plan builds an equivalent executor.
    let mut planner = Planner::new();
    let plan = planner.plan(N, Strategy::Estimate).expect("plan");
    let text = planner.wisdom().serialize();

    let mut revived = Planner::new().with_wisdom(Wisdom::parse(&text));
    let replay = revived.plan(N, Strategy::Estimate).expect("replay");
    assert!(replay.from_wisdom);
    assert_eq!(replay.best().name, plan.best().name);

    let mut a = BatchExecutor::from_plan(&plan, EngineRegistry::standard).expect("exec");
    let mut b = revived.executor(&replay).expect("exec from wisdom");
    let batch = ofdm_batch();
    assert_eq!(
        a.execute(&batch, Direction::Forward).expect("a"),
        b.execute_threaded(&batch, Direction::Forward, 4).expect("b"),
    );
}
