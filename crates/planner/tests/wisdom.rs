//! Satellite: wisdom durability — `store -> load` round-trips exactly,
//! `merge` prefers fresher measurements, and corrupt or stale lines are
//! rejected gracefully (skipped and counted, never a panic).

use afft_core::Direction;
use afft_planner::{backend_set_hash, Planner, Strategy, Wisdom, WisdomEntry, WisdomKey};

fn key(n: usize, stamp_salt: u64) -> WisdomKey {
    WisdomKey::new(n, Direction::Forward, Strategy::Measure, 0xdead_beef ^ stamp_salt)
}

fn entry(stamp: u64, best: &str) -> WisdomEntry {
    WisdomEntry {
        stamp,
        ranking: vec![(best.to_string(), 100.5), ("dft_naive".to_string(), 90000.0)],
    }
}

#[test]
fn store_then_load_round_trips_exactly() {
    let mut wisdom = Wisdom::new();
    wisdom.insert(key(64, 0), entry(10, "radix2_dit"));
    wisdom.insert(key(256, 1), entry(11, "array_fft"));
    wisdom.insert(
        WisdomKey::new(128, Direction::Inverse, Strategy::Estimate, 7),
        entry(12, "real_fft"),
    );

    let path = std::env::temp_dir().join("afft-wisdom-roundtrip-test.txt");
    wisdom.store(&path).expect("store");
    let loaded = Wisdom::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded, wisdom);
    assert_eq!(loaded.rejected_lines(), 0);
    // Text-level round trip too: serialize(parse(s)) == s.
    let text = wisdom.serialize();
    assert_eq!(Wisdom::parse(&text).serialize(), text);
}

/// Satellite regression: an **empty** `AFFT_WISDOM` must behave like an
/// unset one — `AFFT_WISDOM= cmd` must not resolve the wisdom file to
/// `""` (the current directory). The variable is process-global and
/// sibling tests read the environment concurrently, so each case
/// re-executes this test binary as a child with the environment
/// configured at spawn time; the parent never mutates its own env.
#[test]
fn empty_afft_wisdom_env_var_is_treated_as_unset() {
    // Child mode: report the resolved default path and exit.
    if std::env::var_os("AFFT_WISDOM_PRINT_DEFAULT_PATH").is_some() {
        println!("DEFAULT_PATH={}", Wisdom::default_path().display());
        return;
    }

    let default_path_with = |env_val: Option<&str>| -> String {
        let mut cmd = std::process::Command::new(std::env::current_exe().expect("test exe"));
        cmd.args([
            "--exact",
            "empty_afft_wisdom_env_var_is_treated_as_unset",
            "--nocapture",
            "--test-threads=1",
        ]);
        cmd.env("AFFT_WISDOM_PRINT_DEFAULT_PATH", "1");
        match env_val {
            Some(v) => cmd.env("AFFT_WISDOM", v),
            None => cmd.env_remove("AFFT_WISDOM"),
        };
        let out = cmd.output().expect("spawn child test process");
        assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
        // With --nocapture the harness prints "test <name> ... " on
        // the same line, so search within lines rather than at starts.
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find_map(|l| l.split_once("DEFAULT_PATH=").map(|(_, p)| p.trim().to_string()))
            .expect("child printed the default path")
    };

    let explicit = default_path_with(Some("/tmp/explicit-wisdom.txt"));
    assert_eq!(explicit, "/tmp/explicit-wisdom.txt");

    let empty_var = default_path_with(Some(""));
    let unset = default_path_with(None);
    assert!(!empty_var.is_empty(), "empty var must not yield an empty path");
    assert_eq!(empty_var, unset, "empty AFFT_WISDOM must fall back like an unset one");
    assert!(unset.contains("afft-wisdom"), "fallback should be the conventional file: {unset}");
}

#[test]
fn loading_a_missing_file_yields_empty_wisdom() {
    let w = Wisdom::load("/nonexistent/afft/wisdom.txt").expect("missing file is not an error");
    assert!(w.is_empty());
}

#[test]
fn merge_prefers_fresher_measurements() {
    let mut old = Wisdom::new();
    old.insert(key(64, 0), entry(10, "mcfft"));
    old.insert(key(256, 1), entry(50, "array_fft"));

    let mut new = Wisdom::new();
    new.insert(key(64, 0), entry(20, "radix2_dit")); // fresher: wins
    new.insert(key(256, 1), entry(40, "cached_fft")); // staler: loses
    new.insert(key(1024, 2), entry(30, "real_fft")); // novel: added

    old.merge(&new);
    assert_eq!(old.len(), 3);
    assert_eq!(old.get(&key(64, 0)).unwrap().best(), "radix2_dit");
    assert_eq!(old.get(&key(256, 1)).unwrap().best(), "array_fft");
    assert_eq!(old.get(&key(1024, 2)).unwrap().best(), "real_fft");

    // Equal stamps: the incoming measurement wins.
    let mut tie = Wisdom::new();
    tie.insert(key(64, 0), entry(20, "array_fft"));
    old.merge(&tie);
    assert_eq!(old.get(&key(64, 0)).unwrap().best(), "array_fft");
}

#[test]
fn corrupt_lines_are_skipped_not_fatal() {
    let good = "plan n=64 dir=fwd strategy=measure backends=00000000deadbeef stamp=10 \
                rank=radix2_dit:100.500,dft_naive:90000.000";
    let text = format!(
        "# afft wisdom v1\n\
         \n\
         {good}\n\
         plan n=banana dir=fwd strategy=measure backends=1 stamp=1 rank=a:1.0\n\
         plan n=64 dir=sideways strategy=measure backends=1 stamp=1 rank=a:1.0\n\
         plan n=64 dir=fwd strategy=vibes backends=1 stamp=1 rank=a:1.0\n\
         plan n=64 dir=fwd strategy=measure backends=zz stamp=1 rank=a:1.0\n\
         plan n=64 dir=fwd strategy=measure backends=1 stamp=1 rank=名前:1.0\n\
         plan n=64 dir=fwd strategy=measure backends=1 stamp=1 rank=a:NaN\n\
         plan n=64 dir=fwd strategy=measure backends=1 stamp=1\n\
         not even a record\n\
         plan\n"
    );
    let wisdom = Wisdom::parse(&text);
    assert_eq!(wisdom.len(), 1, "only the good line survives");
    assert_eq!(wisdom.rejected_lines(), 9);
    let key = WisdomKey::new(64, Direction::Forward, Strategy::Measure, 0xdead_beef);
    assert_eq!(wisdom.get(&key).unwrap().best(), "radix2_dit");
}

#[test]
fn stale_wisdom_from_another_backend_set_never_matches() {
    // A plan recorded against yesterday's registry (different engine
    // set => different hash) is dead weight, not a wrong answer: the
    // planner misses the cache and re-plans.
    let stale_hash = backend_set_hash(&["dft_naive", "radix2_dit"]);
    let mut wisdom = Wisdom::new();
    wisdom.insert(
        WisdomKey::new(64, Direction::Forward, Strategy::Estimate, stale_hash),
        entry(99, "radix2_dit"),
    );
    let mut planner = Planner::new().with_wisdom(wisdom);
    let plan = planner.plan(64, Strategy::Estimate).expect("plan");
    assert!(!plan.from_wisdom, "stale entry must not satisfy the lookup");
    assert_ne!(plan.backends, stale_hash);
    // The fresh plan was recorded next to (not over) the stale entry.
    assert_eq!(planner.wisdom().len(), 2);
}

#[test]
fn planner_wisdom_survives_a_disk_round_trip() {
    let mut planner = Planner::new().with_measure_reps(1);
    let first = planner.plan(64, Strategy::Measure).expect("measure");

    let path = std::env::temp_dir().join("afft-wisdom-planner-cycle-test.txt");
    planner.wisdom().store(&path).expect("store");
    let mut revived = Planner::new().with_wisdom(Wisdom::load(&path).expect("load"));
    std::fs::remove_file(&path).ok();

    let replay = revived.plan(64, Strategy::Measure).expect("replay");
    assert!(replay.from_wisdom, "the stored measurement must satisfy the new planner");
    assert_eq!(replay.best().name, first.best().name);
    let names: Vec<&str> = replay.ranking.iter().map(|r| r.name.as_str()).collect();
    let first_names: Vec<&str> = first.ranking.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, first_names, "the whole ranking replays, not just the winner");
}

#[test]
fn loading_a_corrupt_file_bumps_the_observability_counter() {
    let before = afft_obs::counter("wisdom.corrupt_lines").get();
    let path = std::env::temp_dir().join("afft-wisdom-corrupt-counter-test.txt");
    std::fs::write(
        &path,
        "# afft wisdom v1\n\
         plan n=64 dir=fwd strategy=measure backends=00000000deadbeef stamp=10 rank=radix2_dit:100.500\n\
         plan n=oops dir=fwd strategy=measure backends=1 stamp=1 rank=a:1.0\n\
         garbage line\n",
    )
    .expect("write");
    let wisdom = Wisdom::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(wisdom.len(), 1);
    assert_eq!(wisdom.rejected_lines(), 2);
    assert_eq!(
        afft_obs::counter("wisdom.corrupt_lines").get(),
        before + 2,
        "corrupt lines must surface on the process-wide counter"
    );
}
