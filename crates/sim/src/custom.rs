//! The custom hardware extension of Fig. 4: butterfly unit (BU), custom
//! register file (CRF), coefficient ROM and address-changing (AC) logic,
//! as one architecturally-visible unit driven by the custom
//! instructions.
//!
//! The unit is deliberately *mechanical*: every `BUT4` recomputes its 8
//! CRF addresses and 4 ROM addresses from `(stage, module)` through the
//! same closed forms the AC decoder hardware implements
//! ([`afft_core::address`]); nothing is cached between instructions.

use crate::error::SimError;
use afft_core::address::module_butterflies;
use afft_core::rom::{resolve_prerot, CoefRom, OctantOp};
use afft_core::stage::{butterfly_dif, Scaling};
use afft_core::{bits::bit_reverse, Direction};
use afft_isa::FftCfg;
use afft_num::{Complex, Q15};

/// One pre-rotation coefficient fetch the store path must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoefFetch {
    /// Byte offset of the `(a, b)` entry inside the compressed table.
    pub table_byte_offset: u32,
    /// Octant reconstruction to apply to the fetched entry.
    pub op: OctantOp,
}

/// One `STOUT` beat prepared by the AC unit: the two (bit-reverse-read)
/// CRF values and, when pre-rotation is enabled, the coefficient
/// fetches the hardware issues before the multiply-on-store.
///
/// A point whose exponent is zero (`W_N^0 = 1`) carries no fetch: the
/// coefficient logic skips trivial rotations entirely, so group 0 and
/// bin 0 cost nothing extra — the `(P-1)(Q-1)` non-trivial rotations
/// are the ones that pay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoutBeat {
    /// Raw CRF values for output bins `s` and `s+1`.
    pub values: [Complex<Q15>; 2],
    /// Per-point coefficient fetch (`None` when pre-rotation is off or
    /// the exponent is trivially zero).
    pub coef: [Option<CoefFetch>; 2],
}

/// The custom FFT unit state.
#[derive(Debug, Clone)]
pub struct FftUnit {
    crf: Vec<Complex<Q15>>,
    rom: CoefRom<Q15>,
    scaling: Scaling,
    // Configuration registers (MTFFT targets).
    gsize_log2: u32,
    n_log2: u32,
    group: u32,
    prerot_enable: bool,
    prerot_base: u32,
    inverse: bool,
    load_stride: u32,
    // Auto-increment pointers.
    ldptr: usize,
    stptr: usize,
}

impl FftUnit {
    /// Builds a unit with a CRF (and ROM) sized for groups up to
    /// `max_p` points.
    ///
    /// # Panics
    ///
    /// Panics unless `max_p` is a power of two `>= 8`.
    pub fn new(max_p: usize, scaling: Scaling) -> Self {
        assert!(max_p.is_power_of_two() && max_p >= 8, "FftUnit: invalid CRF size {max_p}");
        FftUnit {
            crf: vec![Complex::zero(); max_p],
            rom: CoefRom::new(max_p).expect("validated size"),
            scaling,
            gsize_log2: 3,
            n_log2: 6,
            group: 0,
            prerot_enable: false,
            prerot_base: 0,
            inverse: false,
            load_stride: 1,
            ldptr: 0,
            stptr: 0,
        }
    }

    /// Current `LDIN` gather stride in points.
    pub fn load_stride(&self) -> u32 {
        self.load_stride
    }

    /// CRF capacity in points.
    pub fn capacity(&self) -> usize {
        self.crf.len()
    }

    /// Current group size (`2^gsize_log2`).
    pub fn group_size(&self) -> usize {
        1usize << self.gsize_log2
    }

    /// Direct CRF inspection (testing / tracing).
    pub fn crf(&self) -> &[Complex<Q15>] {
        &self.crf
    }

    /// Transform direction implied by the `inverse` config bit.
    pub fn direction(&self) -> Direction {
        if self.inverse {
            Direction::Inverse
        } else {
            Direction::Forward
        }
    }

    /// Executes an `MTFFT` configuration write.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FftUnit`] for values outside hardware limits
    /// (group larger than the CRF, pointers out of range, ...).
    pub fn mtfft(&mut self, sel: FftCfg, value: u32) -> Result<(), SimError> {
        let err = |reason: String| SimError::FftUnit { reason };
        match sel {
            FftCfg::GroupSizeLog2 => {
                let max = self.crf.len().trailing_zeros();
                if !(3..=max).contains(&value) {
                    return Err(err(format!(
                        "group size 2^{value} outside 8..=CRF {}",
                        self.crf.len()
                    )));
                }
                self.gsize_log2 = value;
                self.ldptr = 0;
                self.stptr = 0;
            }
            FftCfg::NLog2 => {
                if !(3..=26).contains(&value) {
                    return Err(err(format!("n_log2 {value} out of range")));
                }
                self.n_log2 = value;
            }
            FftCfg::GroupId => self.group = value,
            FftCfg::PrerotEnable => self.prerot_enable = value != 0,
            FftCfg::PrerotBase => {
                if !value.is_multiple_of(4) {
                    return Err(err(format!("prerot base {value:#x} must be 4-byte aligned")));
                }
                self.prerot_base = value;
            }
            FftCfg::LoadPtr => {
                if value as usize >= self.group_size() {
                    return Err(err(format!("load pointer {value} outside group")));
                }
                self.ldptr = value as usize;
            }
            FftCfg::StorePtr => {
                if value as usize >= self.group_size() {
                    return Err(err(format!("store pointer {value} outside group")));
                }
                self.stptr = value as usize;
            }
            FftCfg::InverseEnable => self.inverse = value != 0,
            FftCfg::LoadStride => {
                if value == 0 || value > (1 << 20) {
                    return Err(err(format!("load stride {value} out of range")));
                }
                self.load_stride = value;
            }
        }
        Ok(())
    }

    /// Executes one `BUT4`: module `module` of stage `stage` (both
    /// 1-based, straight from the GPR operands) on the current group.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FftUnit`] if stage or module are out of range
    /// for the configured group size.
    pub fn but4(&mut self, stage: u32, module: u32) -> Result<(), SimError> {
        let g = self.group_size();
        let p = self.gsize_log2;
        if stage == 0 || stage > p {
            return Err(SimError::FftUnit { reason: format!("BUT4 stage {stage} out of 1..={p}") });
        }
        let modules = g / 8;
        if module == 0 || module as usize > modules {
            return Err(SimError::FftUnit {
                reason: format!("BUT4 module {module} out of 1..={modules}"),
            });
        }
        let dir = self.direction();
        for bf in module_butterflies(p, stage, module as usize) {
            let w = self.rom.group_twiddle(g, bf.rom_addr, dir);
            butterfly_dif(&mut self.crf, bf, w, self.scaling);
        }
        Ok(())
    }

    /// Executes one `LDIN` beat: writes two points at the auto-
    /// incrementing load pointer (wrapping at the group size).
    pub fn ldin(&mut self, points: [Complex<Q15>; 2]) {
        let g = self.group_size();
        self.crf[self.ldptr] = points[0];
        self.crf[(self.ldptr + 1) % g] = points[1];
        self.ldptr = (self.ldptr + 2) % g;
    }

    /// Prepares one `STOUT` beat: reads output bins `s`, `s+1` through
    /// the bit-reversal (`R`) wiring and advances the store pointer.
    /// When pre-rotation is enabled the beat carries the coefficient
    /// fetches the memory system must service before calling
    /// [`FftUnit::rotate`].
    pub fn stout(&mut self) -> StoutBeat {
        let g = self.group_size();
        let p = self.gsize_log2;
        let s0 = self.stptr;
        let s1 = (self.stptr + 1) % g;
        self.stptr = (self.stptr + 2) % g;
        let values = [self.crf[bit_reverse(s0, p)], self.crf[bit_reverse(s1, p)]];
        let n = 1usize << self.n_log2;
        let fetch = |s: usize| -> Option<CoefFetch> {
            if !self.prerot_enable {
                return None;
            }
            let e = (s * self.group as usize) % n;
            if e == 0 {
                return None; // trivial rotation: W^0 = 1, no fetch
            }
            let r = resolve_prerot(n, e);
            Some(CoefFetch { table_byte_offset: self.prerot_base + 4 * r.index as u32, op: r.op })
        };
        StoutBeat { values, coef: [fetch(s0), fetch(s1)] }
    }

    /// Applies a fetched pre-rotation coefficient to a raw `STOUT`
    /// value: octant reconstruction, optional conjugation for the
    /// inverse transform, then the complex multiply.
    pub fn rotate(&self, value: Complex<Q15>, entry: Complex<Q15>, op: OctantOp) -> Complex<Q15> {
        let mut w = op.apply(entry);
        if self.inverse {
            w = w.conj();
        }
        value * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_core::reference::{dft_naive, max_error};
    use afft_core::rom::PrerotTable;
    use afft_num::C64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(max_p: usize) -> FftUnit {
        FftUnit::new(max_p, Scaling::None)
    }

    fn random_points(n: usize, seed: u64) -> Vec<Complex<Q15>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Complex::new(
                    Q15::from_f64(rng.gen_range(-0.4..0.4)),
                    Q15::from_f64(rng.gen_range(-0.4..0.4)),
                )
            })
            .collect()
    }

    #[test]
    fn ldin_but4_stout_computes_a_group_dft() {
        // Use the realistic scaled datapath: output is DFT / 16.
        let mut u = FftUnit::new(16, Scaling::HalfPerStage);
        u.mtfft(FftCfg::GroupSizeLog2, 4).unwrap();
        let x = random_points(16, 1);
        for k in (0..16).step_by(2) {
            u.ldin([x[k], x[k + 1]]);
        }
        for j in 1..=4 {
            for i in 1..=2 {
                u.but4(j, i).unwrap();
            }
        }
        let mut out = Vec::new();
        for _ in (0..16).step_by(2) {
            let beat = u.stout();
            assert!(beat.coef.iter().all(Option::is_none));
            out.extend_from_slice(&beat.values);
        }
        let xf: Vec<C64> = x.iter().map(|c| c.to_c64()).collect();
        let want = dft_naive(&xf, Direction::Forward).unwrap();
        let got: Vec<C64> = out.iter().map(|c| c.to_c64() * 16.0).collect();
        assert!(max_error(&got, &want) < 0.05, "unit DFT deviates");
    }

    #[test]
    fn pointers_wrap_at_group_size() {
        let mut u = unit(16);
        u.mtfft(FftCfg::GroupSizeLog2, 3).unwrap(); // group of 8 in a 16-CRF
        let p = Complex::new(Q15::from_f64(0.25), Q15::ZERO);
        for _ in 0..5 {
            u.ldin([p, p]); // 10 points into an 8-group: wraps
        }
        // ldptr wrapped to 2.
        u.mtfft(FftCfg::LoadPtr, 0).unwrap(); // and is writable
        let _ = u.stout();
        let _ = u.stout();
        let _ = u.stout();
        let _ = u.stout();
        let beat = u.stout(); // wrapped back to bins 0,1
        assert_eq!(beat.values[0], u.crf()[0]);
    }

    #[test]
    fn prerot_beat_carries_table_fetches() {
        let mut u = unit(8);
        u.mtfft(FftCfg::GroupSizeLog2, 3).unwrap();
        u.mtfft(FftCfg::NLog2, 6).unwrap();
        u.mtfft(FftCfg::GroupId, 3).unwrap();
        u.mtfft(FftCfg::PrerotEnable, 1).unwrap();
        u.mtfft(FftCfg::PrerotBase, 0x100).unwrap();
        let beat = u.stout();
        // Bin 0: exponent 0 -> trivial rotation, no fetch issued.
        assert!(beat.coef[0].is_none());
        // Bin 1: exponent 3 -> index 3, identity octant (3 < 8 = N/8).
        let f = beat.coef[1].expect("non-trivial exponent fetches");
        assert_eq!(f.table_byte_offset, 0x100 + 12);
        assert_eq!(f.op, OctantOp::Identity);
    }

    #[test]
    fn rotate_matches_table_coefficient() {
        let n = 64;
        let table: PrerotTable<Q15> = PrerotTable::new(n).unwrap();
        let mut u = unit(8);
        u.mtfft(FftCfg::NLog2, 6).unwrap();
        let v = Complex::new(Q15::from_f64(0.5), Q15::from_f64(-0.25));
        for e in [0usize, 5, 13, 40, 63] {
            let r = resolve_prerot(n, e);
            let entry = table_entry(&table, r.index);
            let got = u.rotate(v, entry, r.op).to_c64();
            let want = (v * table.coefficient(e)).to_c64();
            assert!(got.dist(want) < 1e-9, "e={e}");
        }
    }

    fn table_entry(t: &PrerotTable<Q15>, index: usize) -> Complex<Q15> {
        // Emulate the raw memory fetch: entry k is W_N^k itself.
        let n = t.n();
        afft_num::twiddle_q15(n, index)
    }

    #[test]
    fn inverse_bit_conjugates() {
        let mut u = unit(8);
        u.mtfft(FftCfg::NLog2, 6).unwrap();
        u.mtfft(FftCfg::InverseEnable, 1).unwrap();
        assert_eq!(u.direction(), Direction::Inverse);
        let v = Complex::new(Q15::from_f64(0.5), Q15::ZERO);
        let entry = afft_num::twiddle_q15(64, 8);
        let got = u.rotate(v, entry, OctantOp::Identity).to_c64();
        let want = (v.to_c64()) * afft_num::twiddle(64, 8).conj();
        assert!(got.dist(want) < 1e-3);
    }

    #[test]
    fn config_validation() {
        let mut u = unit(16);
        assert!(u.mtfft(FftCfg::GroupSizeLog2, 5).is_err()); // 32 > CRF 16
        assert!(u.mtfft(FftCfg::GroupSizeLog2, 2).is_err()); // below BU min
        assert!(u.mtfft(FftCfg::PrerotBase, 2).is_err()); // misaligned
        assert!(u.mtfft(FftCfg::LoadPtr, 99).is_err());
        assert!(u.mtfft(FftCfg::NLog2, 30).is_err());
    }

    #[test]
    fn but4_range_checks() {
        let mut u = unit(16);
        u.mtfft(FftCfg::GroupSizeLog2, 4).unwrap();
        assert!(u.but4(0, 1).is_err());
        assert!(u.but4(5, 1).is_err());
        assert!(u.but4(1, 0).is_err());
        assert!(u.but4(1, 3).is_err());
        assert!(u.but4(4, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid CRF size")]
    fn rejects_tiny_crf() {
        let _ = FftUnit::new(4, Scaling::None);
    }
}
