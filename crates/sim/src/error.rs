//! Simulator trap/error types.

use afft_isa::DecodeError;
use core::fmt;

/// A condition that stops simulation abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Memory access outside the configured address space.
    BadAddress {
        /// The faulting byte address.
        addr: u32,
        /// Access width in bytes.
        bytes: u32,
    },
    /// Misaligned memory access.
    Misaligned {
        /// The faulting byte address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
    /// The program counter left the program image or the word failed to
    /// decode.
    BadInstruction {
        /// Word-index program counter.
        pc: usize,
        /// Decoder diagnosis.
        source: DecodeError,
    },
    /// The cycle budget was exhausted before `HALT`.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// A custom FFT instruction was executed with an invalid AC-unit
    /// configuration (e.g. `BUT4` with a stage out of range).
    FftUnit {
        /// Description of the violation.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadAddress { addr, bytes } => {
                write!(f, "memory access of {bytes} bytes at {addr:#010x} out of range")
            }
            SimError::Misaligned { addr, align } => {
                write!(f, "misaligned access at {addr:#010x} (requires {align}-byte alignment)")
            }
            SimError::BadInstruction { pc, source } => {
                write!(f, "bad instruction at pc {pc}: {source}")
            }
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit of {limit} exceeded without HALT")
            }
            SimError::FftUnit { reason } => write!(f, "fft unit: {reason}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::BadInstruction { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let cases: Vec<SimError> = vec![
            SimError::BadAddress { addr: 0x100, bytes: 4 },
            SimError::Misaligned { addr: 0x101, align: 4 },
            SimError::BadInstruction { pc: 7, source: DecodeError { word: 0xffff_ffff } },
            SimError::CycleLimit { limit: 1000 },
            SimError::FftUnit { reason: "stage 9 out of range".into() },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn error_traits() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
