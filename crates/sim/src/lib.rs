//! Instruction-set simulator for the array-FFT ASIP: the reproduction's
//! stand-in for the paper's modified SimpleScalar/PISA.
//!
//! The machine is an in-order single-issue core with:
//!
//! * a flat little-endian [`mem::Memory`];
//! * a set-associative write-back [`cache::Cache`] producing the
//!   load/store/miss counts of Table II;
//! * the custom FFT unit ([`custom::FftUnit`]) — CRF, 4-butterfly BU,
//!   AC address generation and coefficient ROM — wired into the EX
//!   stage exactly as Fig. 4 describes;
//! * a deterministic latency model ([`timing::Timing`]).
//!
//! # Examples
//!
//! ```
//! use afft_sim::{Machine, MachineConfig};
//! use afft_isa::{Instr, Program, Reg};
//!
//! let mut m = Machine::new(MachineConfig::default());
//! m.load_program(Program::from_instrs(&[
//!     Instr::Addi { rt: Reg::V0, rs: Reg::ZERO, imm: 7 },
//!     Instr::Halt,
//! ]));
//! let stats = m.run(100)?;
//! assert_eq!(stats.instrs, 2);
//! # Ok::<(), afft_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod custom;
pub mod error;
pub mod machine;
pub mod mem;
pub mod profile;
pub mod stats;
pub mod timing;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use error::SimError;
pub use machine::{stage_input, Machine, MachineConfig};
pub use stats::{throughput_mbps, Stats};
pub use timing::Timing;
