//! The instruction-set simulator: an in-order, single-issue PISA-like
//! core with a data cache and the custom FFT unit in its EX stage.
//!
//! The simulator is execution-driven and deterministic: the cycle count
//! is the sum of per-instruction latencies from [`Timing`] plus cache
//! stalls — the same observables the paper extracts from its modified
//! SimpleScalar.

use crate::cache::{Cache, CacheConfig};
use crate::custom::FftUnit;
use crate::error::SimError;
use crate::mem::{unpack_complex, Memory};
use crate::stats::Stats;
use crate::timing::Timing;
use afft_core::Scaling;
use afft_isa::{Instr, Program, Reg};
use afft_num::{Complex, Q15};

/// Construction parameters for a [`Machine`].
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Data-memory size in bytes.
    pub mem_bytes: usize,
    /// Data-cache geometry.
    pub cache: CacheConfig,
    /// Latency model.
    pub timing: Timing,
    /// CRF capacity in points (sized for the largest epoch-0 group).
    pub crf_capacity: usize,
    /// Datapath scaling of the butterfly unit.
    pub scaling: Scaling,
    /// Whether `LDIN`/`STOUT` beats go through the D-cache. The real
    /// extension uses a decoupled 64-bit streaming port that does not
    /// allocate (the default, `false`); `true` routes them through the
    /// cache for the ablation experiment.
    pub custom_ops_cached: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mem_bytes: 1 << 20,
            cache: CacheConfig::pisa_32k(),
            timing: Timing::default(),
            crf_capacity: 64,
            scaling: Scaling::HalfPerStage,
            custom_ops_cached: false,
        }
    }
}

/// The simulated machine: core + memory + cache + FFT unit.
///
/// # Examples
///
/// ```
/// use afft_sim::{Machine, MachineConfig};
/// use afft_isa::{Instr, Program, Reg};
///
/// let mut m = Machine::new(MachineConfig::default());
/// m.load_program(Program::from_instrs(&[
///     Instr::Addi { rt: Reg::V0, rs: Reg::ZERO, imm: 21 },
///     Instr::Add { rd: Reg::V0, rs: Reg::V0, rt: Reg::V0 },
///     Instr::Halt,
/// ]));
/// let stats = m.run(1_000)?;
/// assert_eq!(m.reg(Reg::V0), 42);
/// assert_eq!(stats.instrs, 3);
/// # Ok::<(), afft_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    timing: Timing,
    program: Program,
    regs: [u32; 32],
    pc: usize,
    halted: bool,
    mem: Memory,
    cache: Cache,
    fft: FftUnit,
    stats: Stats,
    custom_ops_cached: bool,
}

impl Machine {
    /// Builds a machine with zeroed registers and memory.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            timing: cfg.timing,
            program: Program::from_words(Vec::new()),
            regs: [0; 32],
            pc: 0,
            halted: false,
            mem: Memory::new(cfg.mem_bytes),
            cache: Cache::new(cfg.cache),
            fft: FftUnit::new(cfg.crf_capacity, cfg.scaling),
            stats: Stats::default(),
            custom_ops_cached: cfg.custom_ops_cached,
        }
    }

    /// Installs a program and resets pc/halt state (registers, memory,
    /// cache and statistics are preserved so inputs can be staged
    /// first; call [`Machine::reset_stats`] for a clean measurement).
    pub fn load_program(&mut self, program: Program) {
        self.program = program;
        self.pc = 0;
        self.halted = false;
    }

    /// Reads a GPR.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes a GPR (writes to `zero` are ignored, as in hardware).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.index() as usize] = v;
        }
    }

    /// Data memory (for staging inputs and reading results).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable data memory.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The custom FFT unit (for inspection in tests).
    pub fn fft(&self) -> &FftUnit {
        &self.fft
    }

    /// Statistics accumulated so far (cache counters folded in).
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.cache = self.cache.stats();
        s
    }

    /// Clears statistics and cache counters (cache *contents* persist).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
        self.cache.reset_stats();
    }

    /// Whether the core has executed `HALT`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Current program counter (word index).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Runs until `HALT` or the cycle limit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the budget is exhausted, or
    /// any trap raised by execution.
    pub fn run(&mut self, max_cycles: u64) -> Result<Stats, SimError> {
        while !self.halted {
            self.step()?;
            if self.stats.cycles > max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
        }
        Ok(self.stats())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] trap on bad fetches, bad memory accesses
    /// or invalid custom-unit operations.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        let instr = self
            .program
            .instr_at(self.pc)
            .map_err(|source| SimError::BadInstruction { pc: self.pc, source })?;
        self.stats.instrs += 1;
        let t = self.timing;
        let mut next = self.pc + 1;
        use Instr::*;
        match instr {
            Add { rd, rs, rt } => self.alu3(rd, rs, rt, u32::wrapping_add),
            Sub { rd, rs, rt } => self.alu3(rd, rs, rt, u32::wrapping_sub),
            And { rd, rs, rt } => self.alu3(rd, rs, rt, |a, b| a & b),
            Or { rd, rs, rt } => self.alu3(rd, rs, rt, |a, b| a | b),
            Xor { rd, rs, rt } => self.alu3(rd, rs, rt, |a, b| a ^ b),
            Nor { rd, rs, rt } => self.alu3(rd, rs, rt, |a, b| !(a | b)),
            Slt { rd, rs, rt } => self.alu3(rd, rs, rt, |a, b| u32::from((a as i32) < (b as i32))),
            Sltu { rd, rs, rt } => self.alu3(rd, rs, rt, |a, b| u32::from(a < b)),
            Sll { rd, rt, shamt } => {
                let v = self.reg(rt) << shamt;
                self.set_reg(rd, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Srl { rd, rt, shamt } => {
                let v = self.reg(rt) >> shamt;
                self.set_reg(rd, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Sra { rd, rt, shamt } => {
                let v = ((self.reg(rt) as i32) >> shamt) as u32;
                self.set_reg(rd, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Sllv { rd, rt, rs } => {
                let v = self.reg(rt) << (self.reg(rs) & 31);
                self.set_reg(rd, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Srlv { rd, rt, rs } => {
                let v = self.reg(rt) >> (self.reg(rs) & 31);
                self.set_reg(rd, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Srav { rd, rt, rs } => {
                let v = ((self.reg(rt) as i32) >> (self.reg(rs) & 31)) as u32;
                self.set_reg(rd, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Mul { rd, rs, rt } => {
                let v = (self.reg(rs) as i32).wrapping_mul(self.reg(rt) as i32) as u32;
                self.set_reg(rd, v);
                self.stats.mul += 1;
                self.stats.cycles += t.mul;
            }
            Mulh { rd, rs, rt } => {
                let v = ((i64::from(self.reg(rs) as i32) * i64::from(self.reg(rt) as i32)) >> 32)
                    as u32;
                self.set_reg(rd, v);
                self.stats.mul += 1;
                self.stats.cycles += t.mul;
            }
            Mulhu { rd, rs, rt } => {
                let v = ((u64::from(self.reg(rs)) * u64::from(self.reg(rt))) >> 32) as u32;
                self.set_reg(rd, v);
                self.stats.mul += 1;
                self.stats.cycles += t.mul;
            }
            Jr { rs } => {
                next = (self.reg(rs) / 4) as usize;
                self.stats.jumps += 1;
                self.stats.cycles += t.jump + t.taken_extra;
            }
            Jalr { rd, rs } => {
                self.set_reg(rd, (self.pc as u32 + 1) * 4);
                next = (self.reg(rs) / 4) as usize;
                self.stats.jumps += 1;
                self.stats.cycles += t.jump + t.taken_extra;
            }
            Halt => {
                self.halted = true;
                self.stats.cycles += t.alu;
            }
            Addi { rt, rs, imm } => {
                let v = self.reg(rs).wrapping_add(imm as i32 as u32);
                self.set_reg(rt, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Slti { rt, rs, imm } => {
                let v = u32::from((self.reg(rs) as i32) < i32::from(imm));
                self.set_reg(rt, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Andi { rt, rs, imm } => {
                let v = self.reg(rs) & u32::from(imm);
                self.set_reg(rt, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Ori { rt, rs, imm } => {
                let v = self.reg(rs) | u32::from(imm);
                self.set_reg(rt, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Xori { rt, rs, imm } => {
                let v = self.reg(rs) ^ u32::from(imm);
                self.set_reg(rt, v);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Lui { rt, imm } => {
                self.set_reg(rt, u32::from(imm) << 16);
                self.stats.alu += 1;
                self.stats.cycles += t.alu;
            }
            Lw { rt, base, offset } => {
                let addr = self.ea(base, offset);
                let v = self.mem.read_u32(addr)?;
                self.set_reg(rt, v);
                self.finish_mem(addr, false);
            }
            Lh { rt, base, offset } => {
                let addr = self.ea(base, offset);
                let v = self.mem.read_u16(addr)? as i16 as i32 as u32;
                self.set_reg(rt, v);
                self.finish_mem(addr, false);
            }
            Lhu { rt, base, offset } => {
                let addr = self.ea(base, offset);
                let v = u32::from(self.mem.read_u16(addr)?);
                self.set_reg(rt, v);
                self.finish_mem(addr, false);
            }
            Sw { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.mem.write_u32(addr, self.reg(rt))?;
                self.finish_mem_store(addr);
            }
            Sh { rt, base, offset } => {
                let addr = self.ea(base, offset);
                self.mem.write_u16(addr, self.reg(rt) as u16)?;
                self.finish_mem_store(addr);
            }
            Beq { rs, rt, offset } => {
                next = self.branch(self.reg(rs) == self.reg(rt), offset, next);
            }
            Bne { rs, rt, offset } => {
                next = self.branch(self.reg(rs) != self.reg(rt), offset, next);
            }
            Blez { rs, offset } => {
                next = self.branch(self.reg(rs) as i32 <= 0, offset, next);
            }
            Bgtz { rs, offset } => {
                next = self.branch(self.reg(rs) as i32 > 0, offset, next);
            }
            Bltz { rs, offset } => {
                next = self.branch((self.reg(rs) as i32) < 0, offset, next);
            }
            Bgez { rs, offset } => {
                next = self.branch(self.reg(rs) as i32 >= 0, offset, next);
            }
            J { target } => {
                next = target as usize;
                self.stats.jumps += 1;
                self.stats.cycles += t.jump + t.taken_extra;
            }
            Jal { target } => {
                self.set_reg(Reg::RA, (self.pc as u32 + 1) * 4);
                next = target as usize;
                self.stats.jumps += 1;
                self.stats.cycles += t.jump + t.taken_extra;
            }
            But4 { stage, module } => {
                self.fft.but4(self.reg(stage), self.reg(module))?;
                self.stats.but4 += 1;
                self.stats.cycles += t.but4;
            }
            Ldin { base, offset } => {
                let addr = self.ea(base, offset);
                let stride = self.fft.load_stride();
                if stride == 1 {
                    // One 64-bit beat of two adjacent points.
                    let beat = self.mem.read_u64(addr)?;
                    self.fft
                        .ldin([unpack_complex(beat as u32), unpack_complex((beat >> 32) as u32)]);
                    self.charge_custom_access(addr, false, t.custom_mem);
                } else {
                    // Corner-turn gather: two 32-bit fetches `stride`
                    // points apart (two port beats; the paper counts
                    // this as one LDIN instruction).
                    let addr2 = addr.wrapping_add(4 * stride);
                    let p0 = self.mem.read_complex(addr)?;
                    let p1 = self.mem.read_complex(addr2)?;
                    self.fft.ldin([p0, p1]);
                    self.charge_custom_access(addr, false, t.custom_mem);
                    self.charge_custom_access(addr2, false, 0);
                }
                self.stats.ldin += 1;
            }
            Stout { base, offset } => {
                let addr = self.ea(base, offset);
                let beat = self.fft.stout();
                let mut vals = beat.values;
                for (v, f) in vals.iter_mut().zip(beat.coef) {
                    let Some(f) = f else { continue };
                    let entry = self.mem.read_complex(f.table_byte_offset)?;
                    self.charge_access(f.table_byte_offset, false, t.coef_fetch);
                    self.stats.coef_fetches += 1;
                    *v = self.fft.rotate(*v, entry, f.op);
                }
                let word = u64::from(crate::mem::pack_complex(vals[0]))
                    | (u64::from(crate::mem::pack_complex(vals[1])) << 32);
                self.mem.write_u64(addr, word)?;
                self.stats.stout += 1;
                self.charge_custom_access(addr, true, t.custom_mem);
            }
            Mtfft { rs, sel } => {
                self.fft.mtfft(sel, self.reg(rs))?;
                self.stats.mtfft += 1;
                self.stats.cycles += t.mtfft;
            }
        }
        self.pc = next;
        Ok(())
    }

    fn alu3(&mut self, rd: Reg, rs: Reg, rt: Reg, f: impl Fn(u32, u32) -> u32) {
        let v = f(self.reg(rs), self.reg(rt));
        self.set_reg(rd, v);
        self.stats.alu += 1;
        self.stats.cycles += self.timing.alu;
    }

    fn ea(&self, base: Reg, offset: i16) -> u32 {
        self.reg(base).wrapping_add(offset as i32 as u32)
    }

    fn branch(&mut self, taken: bool, offset: i16, fallthrough: usize) -> usize {
        self.stats.branches += 1;
        self.stats.cycles += self.timing.branch;
        if taken {
            self.stats.branches_taken += 1;
            self.stats.cycles += self.timing.taken_extra;
            (fallthrough as i64 + i64::from(offset)) as usize
        } else {
            fallthrough
        }
    }

    /// Charges an `LDIN`/`STOUT` beat: by default the streaming port
    /// (flat latency, no cache interaction); through the D-cache when
    /// the ablation flag is set.
    fn charge_custom_access(&mut self, addr: u32, write: bool, base_cycles: u64) {
        if self.custom_ops_cached {
            self.charge_access(addr, write, base_cycles);
        } else {
            self.stats.cycles += base_cycles;
        }
    }

    fn charge_access(&mut self, addr: u32, write: bool, base_cycles: u64) {
        let outcome = self.cache.access(addr, write);
        let mut cycles = base_cycles;
        if !outcome.hit {
            cycles += self.timing.miss_penalty;
        }
        if outcome.evicted_dirty {
            cycles += self.timing.writeback_penalty;
        }
        self.stats.cycles += cycles;
    }

    fn finish_mem(&mut self, addr: u32, _write: bool) {
        self.stats.loads += 1;
        self.charge_access(addr, false, self.timing.mem_hit);
    }

    fn finish_mem_store(&mut self, addr: u32) {
        self.stats.stores += 1;
        self.charge_access(addr, true, self.timing.mem_hit);
    }
}

/// Stages a complex vector into memory at `addr` (4 bytes per point),
/// without touching the cache — models DMA-style input placement.
///
/// # Errors
///
/// Propagates memory bound errors.
pub fn stage_input(m: &mut Machine, addr: u32, data: &[Complex<Q15>]) -> Result<(), SimError> {
    m.mem_mut().write_complex_slice(addr, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_isa::Asm;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn arithmetic_loop_runs() {
        // sum = 1 + 2 + ... + 10
        let mut a = Asm::new();
        a.li(Reg::T0, 10);
        a.li(Reg::V0, 0);
        a.label("loop");
        a.emit(Instr::Add { rd: Reg::V0, rs: Reg::V0, rt: Reg::T0 });
        a.emit(Instr::Addi { rt: Reg::T0, rs: Reg::T0, imm: -1 });
        a.bgtz_to(Reg::T0, "loop");
        a.emit(Instr::Halt);
        let mut m = machine();
        m.load_program(a.assemble().unwrap());
        let s = m.run(10_000).unwrap();
        assert_eq!(m.reg(Reg::V0), 55);
        assert_eq!(s.branches, 10);
        assert_eq!(s.branches_taken, 9);
    }

    #[test]
    fn memory_and_cache_counters() {
        let mut a = Asm::new();
        a.li(Reg::T0, 0x1234);
        a.emit(Instr::Sw { rt: Reg::T0, base: Reg::ZERO, offset: 64 });
        a.emit(Instr::Lw { rt: Reg::V0, base: Reg::ZERO, offset: 64 });
        a.emit(Instr::Lw { rt: Reg::V1, base: Reg::ZERO, offset: 68 });
        a.emit(Instr::Halt);
        let mut m = machine();
        m.load_program(a.assemble().unwrap());
        let s = m.run(1000).unwrap();
        assert_eq!(m.reg(Reg::V0), 0x1234);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.cache.misses, 1); // one cold line, then hits
    }

    #[test]
    fn signed_ops_and_shifts() {
        let mut a = Asm::new();
        a.li(Reg::T0, -8);
        a.emit(Instr::Sra { rd: Reg::T1, rt: Reg::T0, shamt: 1 }); // -4
        a.emit(Instr::Srl { rd: Reg::T2, rt: Reg::T0, shamt: 28 }); // 0xf
        a.emit(Instr::Slt { rd: Reg::T3, rs: Reg::T0, rt: Reg::ZERO }); // 1
        a.emit(Instr::Sltu { rd: Reg::T4, rs: Reg::T0, rt: Reg::ZERO }); // 0
        a.emit(Instr::Halt);
        let mut m = machine();
        m.load_program(a.assemble().unwrap());
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::T1) as i32, -4);
        assert_eq!(m.reg(Reg::T2), 0xf);
        assert_eq!(m.reg(Reg::T3), 1);
        assert_eq!(m.reg(Reg::T4), 0);
    }

    #[test]
    fn mul_family() {
        let mut a = Asm::new();
        a.li(Reg::T0, -3);
        a.li(Reg::T1, 100_000);
        a.emit(Instr::Mul { rd: Reg::T2, rs: Reg::T0, rt: Reg::T1 });
        a.emit(Instr::Mulh { rd: Reg::T3, rs: Reg::T0, rt: Reg::T1 });
        a.emit(Instr::Mulhu { rd: Reg::T4, rs: Reg::T0, rt: Reg::T1 });
        a.emit(Instr::Halt);
        let mut m = machine();
        m.load_program(a.assemble().unwrap());
        let s = m.run(100).unwrap();
        assert_eq!(m.reg(Reg::T2) as i32, -300_000);
        assert_eq!(m.reg(Reg::T3) as i32, -1);
        let wide = u64::from(-3i32 as u32) * 100_000u64;
        assert_eq!(m.reg(Reg::T4), (wide >> 32) as u32);
        assert_eq!(s.mul, 3);
        // Multiplies cost Timing::default().mul cycles each.
        assert!(s.cycles >= 3 * Timing::default().mul);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        a.jal_to("f");
        a.emit(Instr::Halt);
        a.label("f");
        a.li(Reg::V0, 99);
        a.emit(Instr::Jr { rs: Reg::RA });
        let mut m = machine();
        m.load_program(a.assemble().unwrap());
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::V0), 99);
        assert!(m.is_halted());
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut a = Asm::new();
        a.emit(Instr::Addi { rt: Reg::ZERO, rs: Reg::ZERO, imm: 5 });
        a.emit(Instr::Halt);
        let mut m = machine();
        m.load_program(a.assemble().unwrap());
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn cycle_limit_trap() {
        let mut a = Asm::new();
        a.label("spin");
        a.j_to("spin");
        let mut m = machine();
        m.load_program(a.assemble().unwrap());
        assert!(matches!(m.run(50), Err(SimError::CycleLimit { limit: 50 })));
    }

    #[test]
    fn pc_off_the_end_traps() {
        let mut m = machine();
        m.load_program(Program::from_instrs(&[Instr::NOP]));
        m.step().unwrap();
        assert!(matches!(m.step(), Err(SimError::BadInstruction { pc: 1, .. })));
    }

    #[test]
    fn custom_instructions_count_and_work() {
        use afft_isa::FftCfg;
        let mut m = machine();
        // Stage 8 points at address 0, run a full 8-point FFT group via
        // custom instructions, store to address 256.
        let x: Vec<Complex<Q15>> =
            (0..8).map(|i| Complex::new(Q15::from_f64(f64::from(i) / 32.0), Q15::ZERO)).collect();
        stage_input(&mut m, 0, &x).unwrap();

        let mut a = Asm::new();
        a.li(Reg::T0, 3);
        a.emit(Instr::Mtfft { rs: Reg::T0, sel: FftCfg::GroupSizeLog2 });
        a.li(Reg::S0, 0);
        for k in 0..4 {
            a.emit(Instr::Ldin { base: Reg::S0, offset: (8 * k) as i16 });
        }
        a.li(Reg::T1, 1); // module register
        for j in 1..=3 {
            a.li(Reg::T2, j);
            a.emit(Instr::But4 { stage: Reg::T2, module: Reg::T1 });
        }
        a.li(Reg::S1, 256);
        for k in 0..4 {
            a.emit(Instr::Stout { base: Reg::S1, offset: (8 * k) as i16 });
        }
        a.emit(Instr::Halt);
        m.load_program(a.assemble().unwrap());
        let s = m.run(10_000).unwrap();
        assert_eq!(s.ldin, 4);
        assert_eq!(s.stout, 4);
        assert_eq!(s.but4, 3);
        assert_eq!(s.table_loads(), 4);

        // Compare against the golden 8-point DFT (scaled by 1/8 by the
        // HalfPerStage datapath).
        let got = m.mem().read_complex_slice(256, 8).unwrap();
        let xf: Vec<afft_num::C64> = x.iter().map(|c| c.to_c64()).collect();
        let want = afft_core::reference::dft_naive(&xf, afft_core::Direction::Forward).unwrap();
        for (bin, (g, w)) in got.iter().zip(&want).enumerate() {
            let gf = g.to_c64() * 8.0;
            assert!(gf.dist(*w) < 0.02, "bin {bin}: {gf:?} vs {w:?}");
        }
    }
}
