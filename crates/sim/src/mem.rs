//! Flat little-endian byte-addressable data memory.
//!
//! Complex samples use the ASIP's wire format: 4 bytes per point
//! (`re: i16`, `im: i16`, little-endian), so one 64-bit `LDIN`/`STOUT`
//! beat moves two points.

use crate::error::SimError;
use afft_num::{Complex, Q15};

/// Data memory of a fixed byte size.
///
/// # Examples
///
/// ```
/// use afft_sim::mem::Memory;
///
/// let mut m = Memory::new(1024);
/// m.write_u32(16, 0xdead_beef)?;
/// assert_eq!(m.read_u32(16)?, 0xdead_beef);
/// assert_eq!(m.read_u16(16)?, 0xbeef); // little endian
/// # Ok::<(), afft_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        Memory { bytes: vec![0; size] }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn check(&self, addr: u32, bytes: u32, align: u32) -> Result<usize, SimError> {
        if !addr.is_multiple_of(align) {
            return Err(SimError::Misaligned { addr, align });
        }
        let end = addr as usize + bytes as usize;
        if end > self.bytes.len() {
            return Err(SimError::BadAddress { addr, bytes });
        }
        Ok(addr as usize)
    }

    /// Reads an aligned `u16`.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn read_u16(&self, addr: u32) -> Result<u16, SimError> {
        let i = self.check(addr, 2, 2)?;
        Ok(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Writes an aligned `u16`.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), SimError> {
        let i = self.check(addr, 2, 2)?;
        self.bytes[i..i + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Reads an aligned `u32`.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn read_u32(&self, addr: u32) -> Result<u32, SimError> {
        let i = self.check(addr, 4, 4)?;
        Ok(u32::from_le_bytes(self.bytes[i..i + 4].try_into().expect("length checked")))
    }

    /// Writes an aligned `u32`.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), SimError> {
        let i = self.check(addr, 4, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Reads an aligned `u64` (one 64-bit bus beat).
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn read_u64(&self, addr: u32) -> Result<u64, SimError> {
        let i = self.check(addr, 8, 8)?;
        Ok(u64::from_le_bytes(self.bytes[i..i + 8].try_into().expect("length checked")))
    }

    /// Writes an aligned `u64`.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn write_u64(&mut self, addr: u32, v: u64) -> Result<(), SimError> {
        let i = self.check(addr, 8, 8)?;
        self.bytes[i..i + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Reads one complex point in wire format (4 bytes).
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn read_complex(&self, addr: u32) -> Result<Complex<Q15>, SimError> {
        let w = self.read_u32(addr)?;
        Ok(unpack_complex(w))
    }

    /// Writes one complex point in wire format (4 bytes).
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn write_complex(&mut self, addr: u32, v: Complex<Q15>) -> Result<(), SimError> {
        self.write_u32(addr, pack_complex(v))
    }

    /// Bulk-writes a complex vector starting at `addr` (4 bytes/point).
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn write_complex_slice(
        &mut self,
        addr: u32,
        data: &[Complex<Q15>],
    ) -> Result<(), SimError> {
        for (k, &v) in data.iter().enumerate() {
            self.write_complex(addr + 4 * k as u32, v)?;
        }
        Ok(())
    }

    /// Bulk-reads `n` complex points starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::BadAddress`].
    pub fn read_complex_slice(&self, addr: u32, n: usize) -> Result<Vec<Complex<Q15>>, SimError> {
        (0..n).map(|k| self.read_complex(addr + 4 * k as u32)).collect()
    }
}

/// Packs a complex point into its 32-bit wire format.
pub fn pack_complex(v: Complex<Q15>) -> u32 {
    (u32::from(v.re.to_bits() as u16)) | (u32::from(v.im.to_bits() as u16) << 16)
}

/// Unpacks a complex point from its 32-bit wire format.
pub fn unpack_complex(w: u32) -> Complex<Q15> {
    Complex::new(Q15::from_bits(w as u16 as i16), Q15::from_bits((w >> 16) as u16 as i16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrips() {
        let mut m = Memory::new(64);
        m.write_u16(0, 0x1234).unwrap();
        m.write_u32(4, 0x8765_4321).unwrap();
        m.write_u64(8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_u16(0).unwrap(), 0x1234);
        assert_eq!(m.read_u32(4).unwrap(), 0x8765_4321);
        assert_eq!(m.read_u64(8).unwrap(), 0x1122_3344_5566_7788);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(16);
        m.write_u32(0, 0x0403_0201).unwrap();
        assert_eq!(m.read_u16(0).unwrap(), 0x0201);
        assert_eq!(m.read_u16(2).unwrap(), 0x0403);
    }

    #[test]
    fn alignment_and_bounds_enforced() {
        let mut m = Memory::new(16);
        assert!(matches!(m.read_u32(2), Err(SimError::Misaligned { .. })));
        assert!(matches!(m.read_u64(4), Err(SimError::Misaligned { .. })));
        assert!(matches!(m.read_u32(16), Err(SimError::BadAddress { .. })));
        assert!(matches!(m.write_u32(16, 0), Err(SimError::BadAddress { .. })));
        assert!(matches!(m.write_u32(14, 0), Err(SimError::Misaligned { .. })));
    }

    #[test]
    fn complex_wire_format() {
        let v = Complex::new(Q15::from_f64(0.5), Q15::from_f64(-0.25));
        assert_eq!(unpack_complex(pack_complex(v)), v);
        let mut m = Memory::new(64);
        m.write_complex(8, v).unwrap();
        assert_eq!(m.read_complex(8).unwrap(), v);
        // Two consecutive points fit one u64 beat.
        let v2 = Complex::new(Q15::from_f64(-1.0), Q15::from_f64(0.75));
        m.write_complex(12, v2).unwrap();
        let beat = m.read_u64(8).unwrap();
        assert_eq!(unpack_complex(beat as u32), v);
        assert_eq!(unpack_complex((beat >> 32) as u32), v2);
    }

    #[test]
    fn slice_helpers() {
        let mut m = Memory::new(64);
        let data: Vec<Complex<Q15>> =
            (0..8).map(|i| Complex::new(Q15::from_f64(i as f64 / 16.0), Q15::ZERO)).collect();
        m.write_complex_slice(0, &data).unwrap();
        assert_eq!(m.read_complex_slice(0, 8).unwrap(), data);
    }
}
