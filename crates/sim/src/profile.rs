//! Execution profiling: per-PC cycle attribution over a run.
//!
//! The experiment harnesses use this to answer "where do the cycles
//! go" questions (e.g. the pre-rotation share of Table I rows) without
//! instrumenting the generated programs.

use crate::error::SimError;
use crate::machine::Machine;
use crate::stats::Stats;
use afft_isa::Program;

/// One line of a profile report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpot {
    /// Word-index program counter.
    pub pc: usize,
    /// Total cycles attributed to this pc.
    pub cycles: u64,
    /// Times the instruction retired.
    pub count: u64,
    /// Disassembly of the instruction.
    pub text: String,
}

/// A per-PC cycle/count histogram.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    cycles: Vec<u64>,
    counts: Vec<u64>,
    total_cycles: u64,
}

impl Profile {
    /// Cycles attributed to `pc` (0 for never-executed).
    pub fn cycles_at(&self, pc: usize) -> u64 {
        self.cycles.get(pc).copied().unwrap_or(0)
    }

    /// Retire count of `pc`.
    pub fn count_at(&self, pc: usize) -> u64 {
        self.counts.get(pc).copied().unwrap_or(0)
    }

    /// Total profiled cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// The `k` hottest program locations, descending by cycles.
    pub fn hottest(&self, program: &Program, k: usize) -> Vec<HotSpot> {
        let mut pcs: Vec<usize> =
            (0..self.cycles.len()).filter(|&pc| self.counts[pc] > 0).collect();
        pcs.sort_by_key(|&pc| core::cmp::Reverse(self.cycles[pc]));
        pcs.truncate(k);
        pcs.into_iter()
            .map(|pc| HotSpot {
                pc,
                cycles: self.cycles[pc],
                count: self.counts[pc],
                text: program
                    .instr_at(pc)
                    .map_or_else(|_| "<invalid>".to_string(), |i| i.to_string()),
            })
            .collect()
    }

    /// Formats the top-`k` report.
    pub fn report(&self, program: &Program, k: usize) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{:>8} {:>12} {:>10}  instruction", "pc", "cycles", "count")
            .expect("write to string");
        for h in self.hottest(program, k) {
            let share = 100.0 * h.cycles as f64 / self.total_cycles.max(1) as f64;
            writeln!(
                out,
                "{:>8} {:>12} {:>10}  {}  ({share:.1}%)",
                h.pc, h.cycles, h.count, h.text
            )
            .expect("write to string");
        }
        out
    }
}

/// Runs `machine` to `HALT` while building a per-PC profile.
///
/// # Errors
///
/// Propagates simulator traps; returns [`SimError::CycleLimit`] if the
/// budget is exhausted.
pub fn profile_run(machine: &mut Machine, max_cycles: u64) -> Result<(Stats, Profile), SimError> {
    let mut profile = Profile::default();
    while !machine.is_halted() {
        let pc = machine.pc();
        let before = machine.stats().cycles;
        machine.step()?;
        let spent = machine.stats().cycles - before;
        if profile.cycles.len() <= pc {
            profile.cycles.resize(pc + 1, 0);
            profile.counts.resize(pc + 1, 0);
        }
        profile.cycles[pc] += spent;
        profile.counts[pc] += 1;
        profile.total_cycles += spent;
        if profile.total_cycles > max_cycles {
            return Err(SimError::CycleLimit { limit: max_cycles });
        }
    }
    Ok((machine.stats(), profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use afft_isa::{Asm, Instr, Reg};

    #[test]
    fn profile_attributes_loop_cycles() {
        let mut a = Asm::new();
        a.li(Reg::T0, 10);
        a.label("loop");
        a.emit(Instr::Addi { rt: Reg::T0, rs: Reg::T0, imm: -1 });
        a.bgtz_to(Reg::T0, "loop");
        a.emit(Instr::Halt);
        let program = a.assemble().unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load_program(program.clone());
        let (stats, profile) = profile_run(&mut m, 10_000).unwrap();

        assert_eq!(profile.total_cycles(), stats.cycles);
        // The addi at pc 1 retires 10 times.
        assert_eq!(profile.count_at(1), 10);
        assert_eq!(profile.cycles_at(1), 10);
        // The branch dominates (taken costs 2).
        let hot = profile.hottest(&program, 2);
        assert_eq!(hot[0].pc, 2);
        assert!(hot[0].text.contains("bgtz"));
        // Report renders.
        let r = profile.report(&program, 3);
        assert!(r.contains("bgtz"));
        assert!(r.contains('%'));
    }

    #[test]
    fn profile_respects_cycle_limit() {
        let mut a = Asm::new();
        a.label("spin");
        a.j_to("spin");
        let mut m = Machine::new(MachineConfig::default());
        m.load_program(a.assemble().unwrap());
        assert!(matches!(profile_run(&mut m, 100), Err(SimError::CycleLimit { .. })));
    }

    #[test]
    fn never_executed_pcs_read_zero() {
        let p = Profile::default();
        assert_eq!(p.cycles_at(99), 0);
        assert_eq!(p.count_at(99), 0);
    }
}
