//! Execution statistics: the observables Tables I and II report.

use crate::cache::CacheStats;

/// Instruction-class and timing counters accumulated by a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Elapsed clock cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instrs: u64,
    /// Base-ISA ALU/shift/compare instructions.
    pub alu: u64,
    /// Multiplies.
    pub mul: u64,
    /// Base-ISA load instructions (`lw`/`lh`/`lhu`).
    pub loads: u64,
    /// Base-ISA store instructions (`sw`/`sh`).
    pub stores: u64,
    /// Branch instructions executed.
    pub branches: u64,
    /// Branches taken.
    pub branches_taken: u64,
    /// Jumps (`j`/`jal`/`jr`/`jalr`).
    pub jumps: u64,
    /// `BUT4` operations.
    pub but4: u64,
    /// `LDIN` operations (each moves two points).
    pub ldin: u64,
    /// `STOUT` operations (each moves two points).
    pub stout: u64,
    /// `MTFFT` configuration writes.
    pub mtfft: u64,
    /// Hardware pre-rotation coefficient fetches issued by `STOUT`.
    pub coef_fetches: u64,
    /// Data-cache counters.
    pub cache: CacheStats,
}

impl Stats {
    /// Load *instructions* as the paper counts them for Table II:
    /// base-ISA loads plus `LDIN`s.
    pub fn table_loads(&self) -> u64 {
        self.loads + self.ldin
    }

    /// Store instructions as the paper counts them: base stores plus
    /// `STOUT`s.
    pub fn table_stores(&self) -> u64 {
        self.stores + self.stout
    }

    /// Data-cache miss count (the paper's fourth Table II row).
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses
    }

    /// Cycles per retired instruction.
    pub fn cpi(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instrs as f64
        }
    }

    /// The paper's throughput metric in Mbps.
    ///
    /// Back-derived from Table I, the paper's figures correspond to 6
    /// bits per sample at a 300 MHz clock:
    /// `throughput = 6 * N * f / cycles` (see EXPERIMENTS.md).
    pub fn throughput_mbps(&self, n: usize, clock_mhz: f64) -> f64 {
        throughput_mbps(n, self.cycles, clock_mhz)
    }
}

/// The paper's throughput metric from a bare cycle count (6 bits per
/// sample; see [`Stats::throughput_mbps`]). Used by harnesses that
/// only hold the cycle observable of an
/// `FftEngine`.
pub fn throughput_mbps(n: usize, cycles: u64, clock_mhz: f64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        6.0 * n as f64 * clock_mhz / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_accessors_combine_custom_ops() {
        let s = Stats { loads: 30, ldin: 1024, stores: 10, stout: 1024, ..Stats::default() };
        assert_eq!(s.table_loads(), 1054);
        assert_eq!(s.table_stores(), 1034);
    }

    #[test]
    fn throughput_matches_paper_rows() {
        // Table I: 64-point, 197 cycles -> 584.7 Mbps at 300 MHz.
        let s = Stats { cycles: 197, ..Stats::default() };
        let t = s.throughput_mbps(64, 300.0);
        assert!((t - 584.77).abs() < 0.1, "got {t}");
        // 1024-point, 4168 cycles -> 442.2 Mbps (paper rounds 440.6).
        let s = Stats { cycles: 4168, ..Stats::default() };
        let t = s.throughput_mbps(1024, 300.0);
        assert!((t - 442.3).abs() < 0.5, "got {t}");
    }

    #[test]
    fn cpi_guards_divide_by_zero() {
        assert_eq!(Stats::default().cpi(), 0.0);
        assert_eq!(Stats::default().throughput_mbps(64, 300.0), 0.0);
        let s = Stats { cycles: 10, instrs: 5, ..Stats::default() };
        assert_eq!(s.cpi(), 2.0);
    }
}
