//! The fixed-latency cycle model of the in-order base core.
//!
//! All numbers are architectural parameters of the reproduction, chosen
//! to sit in the regime the paper describes (single-issue in-order core,
//! single-cycle custom units, multi-cycle multiplier, cache miss stall)
//! and documented in EXPERIMENTS.md. There are no branch delay slots;
//! instead a taken branch pays a refill penalty.

/// Per-operation latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// ALU / shift / compare / immediate ops.
    pub alu: u64,
    /// Multiply (`mul`/`mulh`/`mulhu`).
    pub mul: u64,
    /// Base load/store on a cache hit (address gen + access).
    pub mem_hit: u64,
    /// Additional stall on a data-cache miss.
    pub miss_penalty: u64,
    /// Additional stall when a miss evicts a dirty line (write-back).
    pub writeback_penalty: u64,
    /// Not-taken branch.
    pub branch: u64,
    /// Extra cycles when a branch is taken (front-end refill).
    pub taken_extra: u64,
    /// Unconditional jumps and `jr`/`jalr`.
    pub jump: u64,
    /// One `BUT4` (4 parallel butterflies + AC address generation).
    pub but4: u64,
    /// `LDIN`/`STOUT` issue cost on a cache hit (the 64-bit beat).
    pub custom_mem: u64,
    /// `MTFFT` configuration write.
    pub mtfft: u64,
    /// Extra cycles per non-trivial pre-rotation coefficient fetch on
    /// the `STOUT` path (table read + octant expand + multiply).
    pub coef_fetch: u64,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            alu: 1,
            mul: 4,
            mem_hit: 1,
            miss_penalty: 2,
            writeback_penalty: 2,
            branch: 1,
            taken_extra: 1,
            jump: 1,
            but4: 1,
            custom_mem: 1,
            mtfft: 1,
            coef_fetch: 4,
        }
    }
}

impl Timing {
    /// An idealised memory system (no miss penalties): used by tests
    /// that check instruction counts independently of the cache.
    pub fn perfect_memory() -> Self {
        Timing { miss_penalty: 0, writeback_penalty: 0, ..Timing::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_cycle_core() {
        let t = Timing::default();
        assert_eq!(t.alu, 1);
        assert_eq!(t.but4, 1);
        assert!(t.mul > t.alu);
        assert!(t.miss_penalty > t.mem_hit);
    }

    #[test]
    fn perfect_memory_zeroes_penalties() {
        let t = Timing::perfect_memory();
        assert_eq!(t.miss_penalty, 0);
        assert_eq!(t.writeback_penalty, 0);
        assert_eq!(t.alu, Timing::default().alu);
    }
}
