//! Property tests of the custom FFT unit: for random configurations
//! and random CRF contents, a full LDIN/BUT4/STOUT sequence through
//! the unit equals the `afft-core` golden group transform bit-exactly.

use afft_core::bits::bit_reverse;
use afft_core::rom::CoefRom;
use afft_core::stage::{run_group, Scaling};
use afft_core::Direction;
use afft_isa::FftCfg;
use afft_num::{Complex, Q15};
use afft_sim::custom::FftUnit;
use proptest::prelude::*;

fn q15() -> impl Strategy<Value = Q15> {
    any::<i16>().prop_map(Q15::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unit_group_equals_golden_group(
        log_g in 3u32..7,
        points in prop::collection::vec((q15(), q15()), 64),
        inverse in any::<bool>(),
    ) {
        let g = 1usize << log_g;
        let dir = if inverse { Direction::Inverse } else { Direction::Forward };

        // Drive the unit.
        let mut unit = FftUnit::new(64, Scaling::HalfPerStage);
        unit.mtfft(FftCfg::GroupSizeLog2, log_g).expect("gsize");
        if inverse {
            unit.mtfft(FftCfg::InverseEnable, 1).expect("inverse");
        }
        let x: Vec<Complex<Q15>> =
            points[..g].iter().map(|&(re, im)| Complex::new(re, im)).collect();
        for k in (0..g).step_by(2) {
            unit.ldin([x[k], x[k + 1]]);
        }
        for j in 1..=log_g {
            for i in 1..=(g / 8) {
                unit.but4(j, i as u32).expect("but4");
            }
        }
        let mut got = Vec::with_capacity(g);
        for _ in (0..g).step_by(2) {
            let beat = unit.stout();
            prop_assert!(beat.coef.iter().all(Option::is_none));
            got.extend_from_slice(&beat.values);
        }

        // Golden model of the same group.
        let rom: CoefRom<Q15> = CoefRom::new(64).expect("rom");
        let mut crf = vec![Complex::zero(); 64];
        crf[..g].copy_from_slice(&x);
        run_group(&mut crf, &rom, g, dir, Scaling::HalfPerStage);
        let want: Vec<Complex<Q15>> =
            (0..g).map(|s| crf[bit_reverse(s, log_g)]).collect();

        prop_assert_eq!(got, want);
    }

    #[test]
    fn load_pointer_wraps_consistently(
        log_g in 3u32..7,
        extra_beats in 0usize..16,
    ) {
        let g = 1usize << log_g;
        let mut unit = FftUnit::new(64, Scaling::HalfPerStage);
        unit.mtfft(FftCfg::GroupSizeLog2, log_g).expect("gsize");
        let marker = Complex::new(Q15::from_bits(0x1234), Q15::from_bits(-0x1234));
        // Fill the group once, then wrap by `extra_beats`: the last
        // write wins at each address.
        let total = g / 2 + extra_beats;
        for k in 0..total {
            let tag = Complex::new(Q15::from_bits(k as i16), Q15::ZERO);
            unit.ldin([tag, marker]);
        }
        // Position of the final beat's first point.
        let last_addr = ((total - 1) * 2) % g;
        prop_assert_eq!(unit.crf()[last_addr], Complex::new(Q15::from_bits((total - 1) as i16), Q15::ZERO));
        prop_assert_eq!(unit.crf()[(last_addr + 1) % g], marker);
    }
}
