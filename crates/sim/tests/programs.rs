//! Integration tests running non-trivial programs on the simulator:
//! classic kernels exercising every base-ISA corner the FFT programs
//! rely on (calls, stacks, memory, shifts, signed compares).

use afft_isa::{Asm, Instr, Reg};
use afft_sim::{Machine, MachineConfig};

fn machine() -> Machine {
    Machine::new(MachineConfig::default())
}

#[test]
fn fibonacci_iterative() {
    // v0 = fib(20) = 6765
    let mut a = Asm::new();
    a.li(Reg::T0, 0); // fib(0)
    a.li(Reg::T1, 1); // fib(1)
    a.li(Reg::T2, 20);
    a.label("loop");
    a.emit(Instr::Add { rd: Reg::T3, rs: Reg::T0, rt: Reg::T1 });
    a.mv(Reg::T0, Reg::T1);
    a.mv(Reg::T1, Reg::T3);
    a.emit(Instr::Addi { rt: Reg::T2, rs: Reg::T2, imm: -1 });
    a.bgtz_to(Reg::T2, "loop");
    a.mv(Reg::V0, Reg::T0);
    a.emit(Instr::Halt);
    let mut m = machine();
    m.load_program(a.assemble().unwrap());
    m.run(10_000).unwrap();
    assert_eq!(m.reg(Reg::V0), 6765);
}

#[test]
fn memcpy_loop_and_verify() {
    let mut m = machine();
    for i in 0..32u32 {
        m.mem_mut().write_u32(0x100 + 4 * i, 0xa500_0000 | i).unwrap();
    }
    let mut a = Asm::new();
    a.li(Reg::S0, 0x100); // src
    a.li(Reg::S1, 0x400); // dst
    a.li(Reg::T0, 32);
    a.label("copy");
    a.emit(Instr::Lw { rt: Reg::T1, base: Reg::S0, offset: 0 });
    a.emit(Instr::Sw { rt: Reg::T1, base: Reg::S1, offset: 0 });
    a.emit(Instr::Addi { rt: Reg::S0, rs: Reg::S0, imm: 4 });
    a.emit(Instr::Addi { rt: Reg::S1, rs: Reg::S1, imm: 4 });
    a.emit(Instr::Addi { rt: Reg::T0, rs: Reg::T0, imm: -1 });
    a.bgtz_to(Reg::T0, "copy");
    a.emit(Instr::Halt);
    m.load_program(a.assemble().unwrap());
    let stats = m.run(10_000).unwrap();
    for i in 0..32u32 {
        assert_eq!(m.mem().read_u32(0x400 + 4 * i).unwrap(), 0xa500_0000 | i);
    }
    assert_eq!(stats.loads, 32);
    assert_eq!(stats.stores, 32);
}

#[test]
fn recursive_factorial_with_stack() {
    // fact(10) via real recursion: exercises jal/jr, sp, lw/sw.
    let mut a = Asm::new();
    a.li(Reg::SP, 0x1000);
    a.li(Reg::A0, 10);
    a.jal_to("fact");
    a.mv(Reg::V1, Reg::V0);
    a.emit(Instr::Halt);
    a.label("fact");
    // if a0 <= 1 return 1
    a.li(Reg::V0, 1);
    a.emit(Instr::Slti { rt: Reg::T0, rs: Reg::A0, imm: 2 });
    a.bne_to(Reg::T0, Reg::ZERO, "base");
    // push ra, a0
    a.emit(Instr::Addi { rt: Reg::SP, rs: Reg::SP, imm: -8 });
    a.emit(Instr::Sw { rt: Reg::RA, base: Reg::SP, offset: 0 });
    a.emit(Instr::Sw { rt: Reg::A0, base: Reg::SP, offset: 4 });
    a.emit(Instr::Addi { rt: Reg::A0, rs: Reg::A0, imm: -1 });
    a.jal_to("fact");
    // pop and multiply
    a.emit(Instr::Lw { rt: Reg::RA, base: Reg::SP, offset: 0 });
    a.emit(Instr::Lw { rt: Reg::A0, base: Reg::SP, offset: 4 });
    a.emit(Instr::Addi { rt: Reg::SP, rs: Reg::SP, imm: 8 });
    a.emit(Instr::Mul { rd: Reg::V0, rs: Reg::V0, rt: Reg::A0 });
    a.label("base");
    a.emit(Instr::Jr { rs: Reg::RA });
    let mut m = machine();
    m.load_program(a.assemble().unwrap());
    m.run(100_000).unwrap();
    assert_eq!(m.reg(Reg::V1), 3_628_800);
}

#[test]
fn halfword_memory_ops_sign_extend() {
    let mut a = Asm::new();
    a.li(Reg::T0, -2); // 0xfffffffe
    a.emit(Instr::Sh { rt: Reg::T0, base: Reg::ZERO, offset: 0x40 });
    a.emit(Instr::Lh { rt: Reg::T1, base: Reg::ZERO, offset: 0x40 });
    a.emit(Instr::Lhu { rt: Reg::T2, base: Reg::ZERO, offset: 0x40 });
    a.emit(Instr::Halt);
    let mut m = machine();
    m.load_program(a.assemble().unwrap());
    m.run(100).unwrap();
    assert_eq!(m.reg(Reg::T1) as i32, -2);
    assert_eq!(m.reg(Reg::T2), 0xfffe);
}

#[test]
fn variable_shifts_and_bit_ops() {
    let mut a = Asm::new();
    a.li(Reg::T0, 1);
    a.li(Reg::T1, 12);
    a.emit(Instr::Sllv { rd: Reg::T2, rt: Reg::T0, rs: Reg::T1 }); // 0x1000
    a.li(Reg::T3, -4096);
    a.emit(Instr::Srav { rd: Reg::T4, rt: Reg::T3, rs: Reg::T1 }); // -1
    a.emit(Instr::Srlv { rd: Reg::T5, rt: Reg::T3, rs: Reg::T1 }); // 0xfffff
    a.emit(Instr::Nor { rd: Reg::T6, rs: Reg::ZERO, rt: Reg::ZERO }); // -1
    a.emit(Instr::Halt);
    let mut m = machine();
    m.load_program(a.assemble().unwrap());
    m.run(100).unwrap();
    assert_eq!(m.reg(Reg::T2), 0x1000);
    assert_eq!(m.reg(Reg::T4) as i32, -1);
    assert_eq!(m.reg(Reg::T5), 0x000f_ffff);
    assert_eq!(m.reg(Reg::T6), 0xffff_ffff);
}

#[test]
fn branch_taken_costs_more_than_not_taken() {
    let run = |taken: bool| {
        let mut a = Asm::new();
        a.li(Reg::T0, u32::from(taken) as i32);
        a.bne_to(Reg::T0, Reg::ZERO, "skip");
        a.emit(Instr::NOP);
        a.label("skip");
        a.emit(Instr::Halt);
        let mut m = machine();
        m.load_program(a.assemble().unwrap());
        m.run(100).unwrap()
    };
    let t = run(true);
    let nt = run(false);
    // Taken: skips a NOP (saves 1) but pays the refill (costs 1): both
    // runs retire different instruction counts; compare branch charges.
    assert_eq!(t.branches_taken, 1);
    assert_eq!(nt.branches_taken, 0);
    assert_eq!(nt.instrs, t.instrs + 1);
    assert_eq!(t.cycles, nt.cycles); // +1 refill, -1 skipped NOP
}

#[test]
fn strided_access_defeats_then_refills_cache() {
    // Touch 64 lines with 64-byte stride (all misses), then re-touch
    // (all hits): verifies the cache model end to end on the machine.
    let mut a = Asm::new();
    for pass in 0..2 {
        a.li(Reg::S0, 0);
        a.li(Reg::T0, 64);
        a.label(&format!("pass{pass}"));
        a.emit(Instr::Lw { rt: Reg::T1, base: Reg::S0, offset: 0 });
        a.emit(Instr::Addi { rt: Reg::S0, rs: Reg::S0, imm: 64 });
        a.emit(Instr::Addi { rt: Reg::T0, rs: Reg::T0, imm: -1 });
        a.bgtz_to(Reg::T0, &format!("pass{pass}"));
    }
    a.emit(Instr::Halt);
    let mut m = machine();
    m.load_program(a.assemble().unwrap());
    let stats = m.run(10_000).unwrap();
    assert_eq!(stats.loads, 128);
    assert_eq!(stats.cache.misses, 64);
    assert_eq!(stats.cache.read_misses, 64);
}
