//! The sharded completion path: workers park finished symbols in their
//! own completion buffer (one mutex per worker, shared with nobody but
//! the draining caller), and the delivery side drains every buffer
//! into the per-channel seq-keyed reorder rings under a single
//! delivery lock that **no worker ever takes**. Submission, transform,
//! and delivery therefore serialize on three disjoint lock sets.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use afft_obs::{ns_between, Stage};

use crate::pipeline::{Completion, Shared};

/// A finished symbol in a completion buffer or reorder ring, carrying
/// the stamps the delivery path turns into reorder-park and
/// end-to-end latencies.
pub(crate) struct Parked {
    pub(crate) done: Completion,
    pub(crate) submitted_at: Instant,
    pub(crate) finished_at: Instant,
    pub(crate) sampled: bool,
}

/// One worker's completion outbox. The worker appends batches; the
/// delivering caller drains. Only those two threads ever touch the
/// mutex, so parking a completion never contends with another worker.
pub(crate) struct CompletionBuf {
    pub(crate) buf: Mutex<Vec<Parked>>,
    /// Lock-free occupancy hint so the drain loop skips empty buffers
    /// without locking them (`recv` polls every buffer; most are empty
    /// most of the time).
    pub(crate) len_hint: AtomicUsize,
}

impl CompletionBuf {
    pub(crate) fn new() -> CompletionBuf {
        CompletionBuf { buf: Mutex::new(Vec::new()), len_hint: AtomicUsize::new(0) }
    }

    /// Worker side: parks a batch of finished symbols.
    pub(crate) fn push_batch(&self, batch: &mut Vec<Parked>) {
        let n = batch.len();
        self.buf.lock().expect("stream completion buffer poisoned").append(batch);
        self.len_hint.fetch_add(n, Ordering::SeqCst);
    }
}

/// Per-channel in-order delivery state, all under the one delivery
/// lock ([`Shared::delivery`]).
#[derive(Default)]
pub(crate) struct ChanRing {
    /// Next sequence number to deliver; everything below has been
    /// handed to the caller.
    pub(crate) delivered: u64,
    /// Symbols finished by workers and drained into this ring
    /// (delivered or parked awaiting their turn).
    pub(crate) completed: u64,
    /// Reorder ring: slot `i` holds the completion for sequence number
    /// `delivered + i`, or `None` while that symbol is still queued or
    /// in flight. A ring (rather than a map) keeps its capacity across
    /// park/deliver cycles, so steady-state parking allocates nothing.
    pub(crate) parked: VecDeque<Option<Parked>>,
}

impl ChanRing {
    /// Parks a finished symbol at its in-order slot.
    pub(crate) fn park(&mut self, done: Parked) {
        let offset = usize::try_from(done.done.seq - self.delivered).expect("reorder window fits");
        while self.parked.len() <= offset {
            self.parked.push_back(None);
        }
        self.parked[offset] = Some(done);
    }

    /// Takes the next in-order completion, if it has been parked.
    pub(crate) fn pop_next(&mut self) -> Option<Parked> {
        match self.parked.front_mut() {
            Some(slot @ Some(_)) => {
                let done = slot.take();
                self.parked.pop_front();
                self.delivered += 1;
                done
            }
            _ => None,
        }
    }
}

/// Everything the delivery lock guards: one reorder ring per channel.
pub(crate) struct DeliveryState {
    pub(crate) rings: Vec<ChanRing>,
}

impl Shared {
    /// Drains every worker's completion buffer into the reorder rings,
    /// returning how many completions moved. Caller holds the delivery
    /// lock; each buffer mutex is held just long enough to move its
    /// contents (and skipped entirely when its occupancy hint reads
    /// empty). The per-channel `completed` mirror is bumped *before*
    /// the occupancy hint is cleared, so a parked receiver's lock-free
    /// re-check (hints first, then the mirror) always sees one or the
    /// other.
    pub(crate) fn drain_completions(&self, ds: &mut DeliveryState) -> usize {
        let mut moved = 0;
        for cbuf in &self.cbufs {
            if cbuf.len_hint.load(Ordering::SeqCst) == 0 {
                continue;
            }
            let mut buf = cbuf.buf.lock().expect("stream completion buffer poisoned");
            let taken = buf.len();
            for parked in buf.drain(..) {
                let idx = parked.done.channel.index;
                let ring = &mut ds.rings[idx];
                ring.completed += 1;
                self.chans[idx].completed.store(ring.completed, Ordering::SeqCst);
                ring.park(parked);
            }
            drop(buf);
            cbuf.len_hint.fetch_sub(taken, Ordering::SeqCst);
            moved += taken;
        }
        moved
    }

    /// Pops the channel's next in-order completion (after a drain),
    /// recording the delivery-side stage latencies for sampled
    /// symbols. Caller holds the delivery lock — the recorder's caller
    /// shard is therefore single-writer, like every worker shard.
    pub(crate) fn pop_delivery(&self, ds: &mut DeliveryState, idx: usize) -> Option<Completion> {
        let parked = ds.rings[idx].pop_next()?;
        self.chans[idx].delivered.store(ds.rings[idx].delivered, Ordering::SeqCst);
        if !parked.sampled {
            return Some(parked.done);
        }
        if let Some(obs) = &self.obs {
            let now = Instant::now();
            let base = idx * Stage::COUNT;
            let rec = &obs.recorder;
            rec.record(
                obs.caller_shard,
                base + Stage::ReorderPark.index(),
                ns_between(parked.finished_at, now),
            );
            rec.record(
                obs.caller_shard,
                base + Stage::Deliver.index(),
                ns_between(parked.submitted_at, now),
            );
        }
        Some(parked.done)
    }
}
