//! **afft-stream** — the persistent streaming execution layer: a
//! long-lived worker pool that runs continuous OFDM traffic through
//! planned [`FftEngine`](afft_core::engine::FftEngine) backends with
//! zero heap allocation per symbol in steady state.
//!
//! The batch layer ([`afft_planner::BatchExecutor`]) spawns scoped
//! threads *per call* — the right shape for one frame, the wrong shape
//! for millions of symbols arriving continuously. A [`StreamPipeline`]
//! is the "plan once, execute forever" counterpart: it is built once
//! from a [`RegistryFactory`](afft_planner::RegistryFactory) and a set
//! of [`ChannelSpec`]s (typically the winners of wisdom-ranked plans),
//! spawns `N` long-lived workers that each own a private engine and
//! pre-warmed scratch per channel, and feeds them through a **sharded
//! work-stealing scheduler**: each worker owns a bounded local queue,
//! each channel is homed on one worker (round-robin at registration,
//! [`StreamPipeline::home_worker`]) so its engine scratch stays
//! cache-hot, and a worker whose queue runs dry steals from a loaded
//! sibling, so one flooded channel cannot idle the pool. Backpressure
//! is a pipeline-wide budget of
//! [`queue_depth`](StreamBuilder::queue_depth) queued symbols:
//!
//! * [`StreamPipeline::try_submit`] refuses with
//!   [`SubmitError::QueueFull`] (handing the payload buffers back)
//!   instead of blocking;
//! * [`StreamPipeline::submit`] blocks until queue space frees up;
//! * completions are delivered **strictly in per-channel submission
//!   order** ([`StreamPipeline::recv`] / [`StreamPipeline::try_recv`]),
//!   regardless of which worker finished first — with
//!   [`StreamPipeline::recv_timeout`] bounding the wait and the checked
//!   forms ([`StreamPipeline::recv_checked`] /
//!   [`StreamPipeline::submit_checked`]) reporting a poisoned pipeline
//!   as [`RecvError::Poisoned`] / [`SubmitError::Poisoned`] instead of
//!   panicking;
//! * [`StreamPipeline::shutdown`] drains every in-flight symbol before
//!   joining the pool, returning the final [`StreamStats`] and any
//!   undelivered completions — accepted work is never lost.
//!
//! Payload buffers travel *with* the job and come back in the
//! [`Completion`], so a caller that recycles them closes the loop: after
//! warmup neither the caller, the queue, nor the workers allocate per
//! symbol (the engines reuse their plan-owned scratch, the PR-3
//! `execute_into` idiom).
//!
//! # Quickstart
//!
//! ```
//! use afft_core::engine::EngineRegistry;
//! use afft_core::Direction;
//! use afft_num::Complex;
//! use afft_stream::{ChannelSpec, StreamPipeline};
//!
//! let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(2).queue_depth(8);
//! let ch = builder.channel(ChannelSpec::transform(256, "radix2_dit", Direction::Forward));
//! let pipeline = builder.build()?;
//!
//! // The caller brings both buffers; they come back in the completion.
//! let input = vec![Complex::new(1.0, 0.0); 256];
//! let output = vec![Complex::zero(); 256];
//! let seq = pipeline.submit(ch, input, output).expect("accepted");
//! let done = pipeline.recv(ch).expect("one symbol outstanding");
//! assert_eq!(done.seq, seq);
//! assert!((done.output[0].re - 256.0).abs() < 1e-9);
//!
//! let (stats, leftover) = pipeline.shutdown();
//! assert_eq!(stats.completed, 1);
//! assert!(leftover.is_empty());
//! # Ok::<(), afft_core::FftError>(())
//! ```
//!
//! Multi-channel sessions register one channel per planned
//! `(n, direction)` — including OFDM modulate/demodulate front-ends
//! ([`ChannelOp::Modulate`] / [`ChannelOp::Demodulate`], running
//! [`Ofdm::modulate_into`](afft_core::ofdm::Ofdm::modulate_into) and
//! [`Ofdm::demodulate_into`](afft_core::ofdm::Ofdm::demodulate_into)
//! worker-side) — and every worker serves every channel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delivery;
pub mod pipeline;
mod shard;
pub mod stats;
mod worker;

pub use pipeline::{
    ChannelId, ChannelOp, ChannelSpec, Completion, RecvError, StreamBuilder, StreamPipeline,
    SubmitError, DEFAULT_SAMPLE_EVERY,
};
pub use stats::{ChannelObs, ChannelStats, StreamObs, StreamStats};
