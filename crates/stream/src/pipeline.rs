//! The streaming pipeline: channels, the bounded submission queue, the
//! long-lived worker pool, and strict per-channel in-order completion
//! delivery.
//!
//! One mutex guards the whole queue state (submission queue, per-channel
//! reorder buffers, counters); workers hold it only to pop jobs or park
//! completions — in batches of up to [`WORKER_BATCH`], so steady-state
//! traffic pays a fraction of a lock round-trip per symbol — never while
//! transforming, and condition variables are signalled only when a
//! waiter is registered. Engines are **never** shared:
//! each worker constructs its own backend per channel from the registry
//! factory (the same idiom as
//! [`BatchExecutor::execute_threaded_into`](afft_planner::BatchExecutor::execute_threaded_into)),
//! then warms its scratch once, so steady-state traffic does zero heap
//! work per symbol.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use afft_core::engine::FftEngine;
use afft_core::ofdm::Ofdm;
use afft_core::{Direction, FftError};
use afft_num::{Complex, C64};
use afft_obs::{ns_between, Recorder, Stage};
use afft_planner::planner::take_engine;
use afft_planner::{Plan, RegistryFactory};

use crate::stats::{ChannelObs, ChannelStats, StreamObs, StreamStats};

/// How many jobs a worker claims (and how many completions it parks)
/// per lock acquisition. Bounds added latency under low load — a worker
/// only takes what is already queued — while amortising the mutex and
/// condvar traffic under sustained load, where per-symbol transform
/// time is small enough for lock contention to dominate.
pub const WORKER_BATCH: usize = 8;

/// What a channel does to each submitted payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelOp {
    /// The raw transform:
    /// [`execute_into`](afft_core::engine::FftEngine::execute_into) in
    /// the given direction. Input and output are both `N` points.
    Transform(Direction),
    /// OFDM modulation
    /// ([`Ofdm::modulate_into`](afft_core::ofdm::Ofdm::modulate_into)):
    /// `N` subcarriers in, `N + cp` time-domain samples out (IFFT,
    /// `1/N` normalised, cyclic prefix prepended).
    Modulate {
        /// Cyclic-prefix length in samples (must be `< N`).
        cp: usize,
    },
    /// OFDM demodulation
    /// ([`Ofdm::demodulate_into`](afft_core::ofdm::Ofdm::demodulate_into)):
    /// `N + cp` received samples in, `N` subcarrier bins out (prefix
    /// stripped, forward FFT).
    Demodulate {
        /// Cyclic-prefix length in samples (must be `< N`).
        cp: usize,
    },
}

/// One streaming channel: a planned `(n, engine, operation)` triple.
///
/// Channels are registered on the [`StreamBuilder`]; every worker builds
/// a private backend (and, for the OFDM ops, a private
/// [`Ofdm`] front-end) per channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Transform size (number of subcarriers for the OFDM ops).
    pub n: usize,
    /// Engine name to take from the registry
    /// ([`FftEngine::name`]).
    pub engine: String,
    /// What each submitted payload goes through.
    pub op: ChannelOp,
}

impl ChannelSpec {
    /// A raw-transform channel on a named engine.
    pub fn transform(n: usize, engine: &str, dir: Direction) -> Self {
        ChannelSpec { n, engine: engine.to_string(), op: ChannelOp::Transform(dir) }
    }

    /// A channel on the winner of a ranked [`Plan`] — how wisdom reaches
    /// the streaming layer.
    pub fn from_plan(plan: &Plan, op: ChannelOp) -> Self {
        ChannelSpec { n: plan.n, engine: plan.best().name.clone(), op }
    }

    /// Required payload (input buffer) length for this channel.
    pub fn input_len(&self) -> usize {
        match self.op {
            ChannelOp::Transform(_) | ChannelOp::Modulate { .. } => self.n,
            ChannelOp::Demodulate { cp } => self.n + cp,
        }
    }

    /// Required result (output buffer) length for this channel.
    pub fn output_len(&self) -> usize {
        match self.op {
            ChannelOp::Transform(_) | ChannelOp::Demodulate { .. } => self.n,
            ChannelOp::Modulate { cp } => self.n + cp,
        }
    }
}

/// Distinguishes pipelines so a [`ChannelId`] can prove which one it
/// belongs to — an id from pipeline A used on pipeline B must fail
/// loudly, not silently address B's same-index channel.
static NEXT_PIPELINE_STAMP: AtomicU64 = AtomicU64::new(0);

/// Opaque handle to a channel registered on a [`StreamBuilder`].
///
/// The handle remembers which pipeline it was issued by; using it on
/// any other pipeline panics instead of silently selecting whatever
/// channel shares its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId {
    stamp: u64,
    index: usize,
}

impl ChannelId {
    /// The channel's index in registration order (stable for the
    /// pipeline's lifetime; also the index into
    /// [`StreamStats::per_channel`]).
    pub fn index(self) -> usize {
        self.index
    }
}

/// One finished symbol, delivered in per-channel submission order.
///
/// Both payload buffers come back to the caller, so a steady-state loop
/// recycles them into the next [`StreamPipeline::submit`] and allocates
/// nothing per symbol.
#[derive(Debug)]
pub struct Completion {
    /// The channel the symbol was submitted on.
    pub channel: ChannelId,
    /// The sequence number [`StreamPipeline::submit`] returned.
    pub seq: u64,
    /// The submitted input buffer, unchanged.
    pub input: Vec<C64>,
    /// The result buffer. On error its contents are unspecified.
    pub output: Vec<C64>,
    /// Cycle count of this transform, on cycle-accurate backends.
    pub cycles: Option<u64>,
    /// The backend error, if the transform failed. Errors are delivered
    /// in order like successes — a failed symbol never reorders the
    /// stream.
    pub error: Option<FftError>,
}

/// Why a submission was refused. Every variant hands the payload
/// buffers back — refusing a symbol never costs the caller its
/// allocations.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded submission queue is at capacity (only
    /// [`StreamPipeline::try_submit`] returns this; `submit` blocks
    /// instead).
    QueueFull {
        /// The refused input buffer, returned to the caller.
        input: Vec<C64>,
        /// The refused output buffer, returned to the caller.
        output: Vec<C64>,
    },
    /// The pipeline no longer accepts work
    /// ([`StreamPipeline::close`] / [`StreamPipeline::shutdown`]).
    Closed {
        /// The refused input buffer, returned to the caller.
        input: Vec<C64>,
        /// The refused output buffer, returned to the caller.
        output: Vec<C64>,
    },
    /// A buffer does not match the channel's shape
    /// ([`ChannelSpec::input_len`] / [`ChannelSpec::output_len`]).
    Shape {
        /// The underlying length mismatch.
        error: FftError,
        /// The refused input buffer, returned to the caller.
        input: Vec<C64>,
        /// The refused output buffer, returned to the caller.
        output: Vec<C64>,
    },
}

impl SubmitError {
    /// Recovers the payload buffers from any refusal, `(input, output)`.
    pub fn into_buffers(self) -> (Vec<C64>, Vec<C64>) {
        match self {
            SubmitError::QueueFull { input, output }
            | SubmitError::Closed { input, output }
            | SubmitError::Shape { input, output, .. } => (input, output),
        }
    }
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::QueueFull { .. } => write!(f, "submission queue is full"),
            SubmitError::Closed { .. } => write!(f, "pipeline is closed to new submissions"),
            SubmitError::Shape { error, .. } => write!(f, "payload rejected: {error}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Configures and spawns a [`StreamPipeline`]. Obtained from
/// [`StreamPipeline::builder`].
#[derive(Debug)]
pub struct StreamBuilder {
    factory: RegistryFactory,
    specs: Vec<ChannelSpec>,
    workers: usize,
    queue_depth: usize,
    observability: Option<bool>,
    sample_every: u64,
    stamp: u64,
}

/// Default stage-timing sample rate: one symbol in 8 per channel. At
/// sub-microsecond symbol costs the clock reads are the dominant
/// metrics cost (three ~30 ns reads per symbol would be ~10% of a
/// 256-point transform), so timing every symbol is priced out of the
/// default; 1-in-8 keeps thousands of samples per second at streaming
/// rates for well under 1% overhead.
pub const DEFAULT_SAMPLE_EVERY: u64 = 8;

impl StreamBuilder {
    /// Sets the worker-pool size (clamped to at least 1; default 4).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Explicitly enables or disables metrics collection (per-channel
    /// latency histograms with stage breakdowns, surfaced on
    /// [`StreamStats::obs`]). The default — when this is never called —
    /// follows the process-wide `AFFT_OBS` switch
    /// ([`afft_obs::enabled`]), which itself defaults to **on**.
    #[must_use]
    pub fn observability(mut self, on: bool) -> Self {
        self.observability = Some(on);
        self
    }

    /// Sets the stage-timing sample rate: one symbol in `every` (per
    /// channel, by sequence number, so sampling is deterministic) gets
    /// the full queue-wait / transform / reorder-park / deliver clock
    /// stamps. Clamped to at least 1; `1` times every symbol. The
    /// default is [`DEFAULT_SAMPLE_EVERY`] — clock reads, not the
    /// lock-free histogram writes, are the dominant metrics cost, and
    /// sampling is what keeps it under the stream bench's 5% budget.
    #[must_use]
    pub fn sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Sets the bounded submission-queue capacity (clamped to at least
    /// 1; default 64). A full queue is the backpressure signal:
    /// [`StreamPipeline::try_submit`] refuses,
    /// [`StreamPipeline::submit`] blocks.
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Registers a channel and returns its handle.
    pub fn channel(&mut self, spec: ChannelSpec) -> ChannelId {
        self.specs.push(spec);
        ChannelId { stamp: self.stamp, index: self.specs.len() - 1 }
    }

    /// Validates every channel (engine present in the factory's
    /// registry, supported size, cyclic prefix shorter than the symbol)
    /// and spawns the worker pool. Each worker builds its private
    /// engines and warms their scratch before serving traffic.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidDecomposition`] for a pipeline with no
    /// channels, [`FftError::Backend`] for an engine name the registry
    /// does not offer, and any construction error the backends report.
    pub fn build(self) -> Result<StreamPipeline, FftError> {
        if self.specs.is_empty() {
            return Err(FftError::InvalidDecomposition {
                reason: "a stream pipeline needs at least one channel".into(),
            });
        }
        // Fail on the builder thread, not inside a worker: construct
        // (and drop) one front-end per channel now.
        for spec in &self.specs {
            Front::build(spec, self.factory)?;
        }

        // Metrics: one series per (channel, stage), one recorder shard
        // per worker plus one for the delivering caller. Resolved here
        // — not per record — so flipping `AFFT_OBS` mid-process never
        // tears a pipeline's instrumentation.
        let observability = self.observability.unwrap_or_else(afft_obs::enabled);
        let obs = observability.then(|| {
            let series = (0..self.specs.len())
                .flat_map(|i| Stage::ALL.iter().map(move |stage| format!("ch{i}/{stage}")))
                .collect();
            PipelineObs {
                recorder: Recorder::new(self.workers + 1, series),
                caller_shard: self.workers,
                sample_every: self.sample_every,
            }
        });

        let specs = Arc::new(self.specs);
        let shared = Arc::new(Shared {
            obs,
            epoch: Instant::now(),
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(self.queue_depth),
                depth: self.queue_depth,
                closed: false,
                worker_panicked: false,
                high_water: 0,
                rejected: 0,
                in_flight: 0,
                idle_workers: 0,
                space_waiting: 0,
                recv_waiting: 0,
                worker_transforms: vec![0; self.workers],
                channels: specs.iter().map(|_| ChanState::default()).collect(),
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            done: Condvar::new(),
        });

        let mut handles = Vec::with_capacity(self.workers);
        for idx in 0..self.workers {
            let shared = Arc::clone(&shared);
            let specs = Arc::clone(&specs);
            let factory = self.factory;
            handles.push(std::thread::spawn(move || worker_loop(idx, &shared, &specs, factory)));
        }

        Ok(StreamPipeline {
            shared,
            specs,
            handles,
            queue_depth: self.queue_depth,
            stamp: self.stamp,
            started: Instant::now(),
        })
    }
}

/// The persistent streaming executor. See the [crate docs](crate) for
/// the lifecycle and a worked example.
#[derive(Debug)]
pub struct StreamPipeline {
    shared: Arc<Shared>,
    specs: Arc<Vec<ChannelSpec>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    queue_depth: usize,
    stamp: u64,
    started: Instant,
}

impl StreamPipeline {
    /// Starts configuring a pipeline over a registry factory
    /// ([`EngineRegistry::standard`](afft_core::engine::EngineRegistry::standard)
    /// for the software backends, `registry_with_asip` to let the
    /// cycle-accurate ISS serve channels).
    pub fn builder(factory: RegistryFactory) -> StreamBuilder {
        StreamBuilder {
            factory,
            specs: Vec::new(),
            workers: 4,
            queue_depth: 64,
            observability: None,
            sample_every: DEFAULT_SAMPLE_EVERY,
            stamp: NEXT_PIPELINE_STAMP.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Whether this pipeline collects latency metrics (see
    /// [`StreamBuilder::observability`]).
    pub fn observability_enabled(&self) -> bool {
        self.shared.obs.is_some()
    }

    /// The spec a channel was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn spec(&self, channel: ChannelId) -> &ChannelSpec {
        &self.specs[self.chan(channel)]
    }

    /// Resolves a [`ChannelId`] to its index, enforcing provenance: an
    /// id minted by a different pipeline must fail loudly even when its
    /// index happens to be in range here.
    fn chan(&self, channel: ChannelId) -> usize {
        assert_eq!(channel.stamp, self.stamp, "ChannelId was issued by a different StreamPipeline");
        channel.index
    }

    /// Number of registered channels.
    pub fn channel_count(&self) -> usize {
        self.specs.len()
    }

    /// Number of pool workers.
    pub fn worker_count(&self) -> usize {
        self.handles.len().max(1)
    }

    /// Capacity of the bounded submission queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue_depth
    }

    /// Non-blocking submission: enqueues the payload or refuses with
    /// [`SubmitError::QueueFull`] — the backpressure signal for callers
    /// that would rather shed or buffer load than stall. Refusal hands
    /// both buffers back and loses no previously accepted work.
    ///
    /// Returns the symbol's per-channel sequence number; its
    /// [`Completion`] is delivered in exactly this order.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`], [`SubmitError::Closed`], or
    /// [`SubmitError::Shape`] — all returning the payload buffers.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn try_submit(
        &self,
        channel: ChannelId,
        input: Vec<C64>,
        output: Vec<C64>,
    ) -> Result<u64, SubmitError> {
        if let Err(error) = self.validate(channel, &input, &output) {
            return Err(SubmitError::Shape { error, input, output });
        }
        let mut st = self.lock();
        if st.closed {
            return Err(SubmitError::Closed { input, output });
        }
        if st.queue.len() >= self.queue_depth {
            st.rejected += 1;
            return Err(SubmitError::QueueFull { input, output });
        }
        Ok(self.enqueue(&mut st, channel, input, output))
    }

    /// Blocking submission: waits for queue space instead of refusing.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] (also while waiting, if the pipeline
    /// closes under the caller) or [`SubmitError::Shape`] — both
    /// returning the payload buffers. Never [`SubmitError::QueueFull`].
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder,
    /// or if a pipeline worker has panicked (the pipeline is dead; a
    /// blocked submitter must fail, not wait forever).
    pub fn submit(
        &self,
        channel: ChannelId,
        input: Vec<C64>,
        output: Vec<C64>,
    ) -> Result<u64, SubmitError> {
        if let Err(error) = self.validate(channel, &input, &output) {
            return Err(SubmitError::Shape { error, input, output });
        }
        let mut st = self.lock();
        loop {
            if st.worker_panicked {
                // Drop the guard first: this panic reports a dead
                // pipeline, it must not also poison the state mutex.
                drop(st);
                panic!("a stream worker panicked; the pipeline is dead");
            }
            if st.closed {
                return Err(SubmitError::Closed { input, output });
            }
            if st.queue.len() < self.queue_depth {
                return Ok(self.enqueue(&mut st, channel, input, output));
            }
            st.space_waiting += 1;
            st = self.shared.space.wait(st).expect("stream state poisoned");
            st.space_waiting -= 1;
        }
    }

    /// Non-blocking delivery: the channel's next in-order completion,
    /// if it has finished.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn try_recv(&self, channel: ChannelId) -> Option<Completion> {
        let idx = self.chan(channel);
        let mut st = self.lock();
        self.pop_delivery(&mut st, idx)
    }

    /// Blocking delivery: waits for the channel's next in-order
    /// completion. Returns `None` only when the channel has nothing
    /// outstanding (every accepted symbol already delivered) — so a
    /// drain loop is simply `while let Some(c) = pipeline.recv(ch)`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder,
    /// or if a pipeline worker has panicked — symbols the worker had
    /// claimed are lost, so waiting for them would hang forever.
    /// Completions that were already parked are still delivered before
    /// the panic is raised.
    pub fn recv(&self, channel: ChannelId) -> Option<Completion> {
        let idx = self.chan(channel);
        let mut st = self.lock();
        loop {
            if let Some(done) = self.pop_delivery(&mut st, idx) {
                return Some(done);
            }
            if st.worker_panicked {
                // Drop the guard first: this panic reports a dead
                // pipeline, it must not also poison the state mutex.
                drop(st);
                panic!(
                    "a stream worker panicked; its claimed symbols are lost and the pipeline \
                     is dead"
                );
            }
            if st.channels[idx].delivered == st.channels[idx].next_seq {
                return None;
            }
            st.recv_waiting += 1;
            st = self.shared.done.wait(st).expect("stream state poisoned");
            st.recv_waiting -= 1;
        }
    }

    /// Symbols accepted on `channel` but not yet delivered (queued, in
    /// flight, or parked awaiting their turn).
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn outstanding(&self, channel: ChannelId) -> u64 {
        let idx = self.chan(channel);
        let st = self.lock();
        st.channels[idx].next_seq - st.channels[idx].delivered
    }

    /// Stops accepting new submissions. Already-accepted work keeps
    /// flowing: workers drain the queue and completions stay
    /// retrievable. Blocked [`StreamPipeline::submit`] callers return
    /// [`SubmitError::Closed`].
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.shared.space.notify_all();
        self.shared.work.notify_all();
        self.shared.done.notify_all();
    }

    /// Whether [`StreamPipeline::close`] (or shutdown) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// A snapshot of the pipeline's counters. Cheap: one lock, no
    /// queue traversal.
    pub fn stats(&self) -> StreamStats {
        let st = self.lock();
        StreamStats {
            submitted: st.channels.iter().map(|c| c.next_seq).sum(),
            completed: st.channels.iter().map(|c| c.completed).sum(),
            delivered: st.channels.iter().map(|c| c.delivered).sum(),
            rejected: st.rejected,
            in_queue: st.queue.len(),
            in_flight: st.in_flight,
            queue_capacity: self.queue_depth,
            queue_high_water: st.high_water,
            worker_transforms: st.worker_transforms.clone(),
            per_channel: st
                .channels
                .iter()
                .map(|c| ChannelStats {
                    submitted: c.next_seq,
                    completed: c.completed,
                    delivered: c.delivered,
                })
                .collect(),
            obs: self.shared.obs.as_ref().map(|obs| StreamObs {
                per_channel: (0..self.specs.len())
                    .map(|i| {
                        let base = i * Stage::COUNT;
                        let hist =
                            |stage: Stage| obs.recorder.series_histogram(base + stage.index());
                        ChannelObs {
                            queue_wait: hist(Stage::QueueWait),
                            transform: hist(Stage::Transform),
                            reorder_park: hist(Stage::ReorderPark),
                            latency: hist(Stage::Deliver),
                        }
                    })
                    .collect(),
            }),
            elapsed: self.started.elapsed(),
        }
    }

    /// Graceful shutdown: closes the intake, lets the workers drain
    /// every accepted symbol, joins the pool, and returns the final
    /// stats plus every undelivered [`Completion`] (per-channel
    /// submission order, channels in registration order) — accepted
    /// work is never lost, even if the caller stopped receiving.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked.
    pub fn shutdown(mut self) -> (StreamStats, Vec<Completion>) {
        self.close();
        for handle in self.handles.drain(..) {
            handle.join().expect("stream worker panicked");
        }
        let leftover = {
            let mut st = self.lock();
            let mut leftover = Vec::new();
            for idx in 0..self.specs.len() {
                while let Some(done) = self.pop_delivery(&mut st, idx) {
                    leftover.push(done);
                }
                let chan = &st.channels[idx];
                debug_assert!(
                    chan.parked.iter().all(Option::is_none) && chan.delivered == chan.next_seq,
                    "channel {idx} lost work at shutdown"
                );
            }
            leftover
        };
        (self.stats(), leftover)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.shared.state.lock().expect("stream state poisoned")
    }

    fn validate(&self, channel: ChannelId, input: &[C64], output: &[C64]) -> Result<(), FftError> {
        let spec = &self.specs[self.chan(channel)];
        if input.len() != spec.input_len() {
            return Err(FftError::LengthMismatch { expected: spec.input_len(), got: input.len() });
        }
        if output.len() != spec.output_len() {
            return Err(FftError::LengthMismatch {
                expected: spec.output_len(),
                got: output.len(),
            });
        }
        Ok(())
    }

    /// Assigns the next per-channel sequence number and enqueues the
    /// job. Caller holds the lock and has already checked capacity.
    fn enqueue(
        &self,
        st: &mut State,
        channel: ChannelId,
        input: Vec<C64>,
        output: Vec<C64>,
    ) -> u64 {
        let idx = self.chan(channel);
        let seq = st.channels[idx].next_seq;
        st.channels[idx].next_seq += 1;
        let sampled = self.shared.obs.as_ref().is_some_and(|o| seq.is_multiple_of(o.sample_every));
        let submitted_at = if sampled { Instant::now() } else { self.shared.epoch };
        st.queue.push_back(Job { channel, seq, input, output, submitted_at, sampled });
        st.high_water = st.high_water.max(st.queue.len());
        if st.idle_workers > 0 {
            self.shared.work.notify_one();
        }
        seq
    }

    fn pop_delivery(&self, st: &mut State, idx: usize) -> Option<Completion> {
        let parked = st.channels[idx].pop_next()?;
        if !parked.sampled {
            return Some(parked.done);
        }
        if let Some(obs) = &self.shared.obs {
            let now = Instant::now();
            let base = idx * Stage::COUNT;
            let rec = &obs.recorder;
            rec.record(
                obs.caller_shard,
                base + Stage::ReorderPark.index(),
                ns_between(parked.finished_at, now),
            );
            rec.record(
                obs.caller_shard,
                base + Stage::Deliver.index(),
                ns_between(parked.submitted_at, now),
            );
        }
        Some(parked.done)
    }
}

impl Drop for StreamPipeline {
    /// Dropping without [`StreamPipeline::shutdown`] still drains and
    /// joins the pool (undelivered completions are discarded with the
    /// pipeline).
    fn drop(&mut self) {
        self.close();
        for handle in self.handles.drain(..) {
            // Don't double-panic while unwinding.
            let _ = handle.join();
        }
    }
}

struct Shared {
    state: Mutex<State>,
    /// Submitters waiting for queue space.
    space: Condvar,
    /// Workers waiting for jobs.
    work: Condvar,
    /// Receivers waiting for completions.
    done: Condvar,
    /// Metrics recorder, when the pipeline was built with
    /// observability on. Recording is lock-free; `None` removes every
    /// clock read from the hot path.
    obs: Option<PipelineObs>,
    /// Stand-in stamp for the metrics-off path: `Instant` fields still
    /// need a value, but nothing may read the clock for them.
    epoch: Instant,
}

/// The pipeline's metric store: `(channel, stage)` series over
/// per-worker shards plus one caller shard for the delivery-side
/// stages.
struct PipelineObs {
    recorder: Recorder,
    /// The shard delivery-path records go to (`pop_delivery` runs under
    /// the state lock, so one shard serves every delivering thread).
    caller_shard: usize,
    /// Stage-timing sample rate: symbols whose per-channel sequence
    /// number is a multiple of this get clock stamps; the rest skip
    /// every clock read (see [`StreamBuilder::sample_every`]).
    sample_every: u64,
}

impl core::fmt::Debug for Shared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

struct State {
    queue: VecDeque<Job>,
    /// Submission-queue capacity, mirrored here so workers can apply
    /// the low-watermark wakeup rule without reaching the pipeline.
    depth: usize,
    closed: bool,
    /// Set by a worker's unwind guard: jobs it had claimed are gone,
    /// so blocking callers must fail loudly instead of waiting forever.
    worker_panicked: bool,
    high_water: usize,
    rejected: u64,
    in_flight: usize,
    /// Workers currently parked on the `work` condvar; submitters only
    /// signal it when somebody is listening.
    idle_workers: usize,
    /// Submitters blocked on the `space` condvar.
    space_waiting: usize,
    /// Receivers blocked on the `done` condvar.
    recv_waiting: usize,
    worker_transforms: Vec<u64>,
    channels: Vec<ChanState>,
}

#[derive(Default)]
struct ChanState {
    /// Next sequence number to assign on submission.
    next_seq: u64,
    /// Next sequence number to deliver; everything below has been
    /// handed to the caller.
    delivered: u64,
    /// Symbols finished by workers (delivered or parked).
    completed: u64,
    /// Reorder ring: slot `i` holds the completion for sequence number
    /// `delivered + i`, or `None` while that symbol is still queued or
    /// in flight. A ring (rather than a map) keeps its capacity across
    /// park/deliver cycles, so steady-state parking allocates nothing.
    parked: VecDeque<Option<Parked>>,
}

impl ChanState {
    /// Parks a finished symbol at its in-order slot.
    fn park(&mut self, done: Parked) {
        let offset = usize::try_from(done.done.seq - self.delivered).expect("reorder window fits");
        while self.parked.len() <= offset {
            self.parked.push_back(None);
        }
        self.parked[offset] = Some(done);
    }

    /// Takes the next in-order completion, if it has been parked.
    fn pop_next(&mut self) -> Option<Parked> {
        match self.parked.front_mut() {
            Some(slot @ Some(_)) => {
                let done = slot.take();
                self.parked.pop_front();
                self.delivered += 1;
                done
            }
            _ => None,
        }
    }
}

struct Job {
    channel: ChannelId,
    seq: u64,
    input: Vec<C64>,
    output: Vec<C64>,
    /// When the submission was accepted (the `epoch` stand-in for
    /// unsampled symbols and with metrics off).
    submitted_at: Instant,
    /// Whether this symbol carries stage-timing stamps (metrics on and
    /// its sequence number hit the sample rate).
    sampled: bool,
}

/// A finished symbol in the reorder ring, carrying the stamps the
/// delivery path turns into reorder-park and end-to-end latencies.
struct Parked {
    done: Completion,
    submitted_at: Instant,
    finished_at: Instant,
    sampled: bool,
}

/// A worker's private per-channel execution front: the raw engine, or
/// an [`Ofdm`] modem wrapping it.
enum Front {
    Raw { engine: Box<dyn FftEngine>, dir: Direction },
    Modem { ofdm: Ofdm, modulate: bool },
}

impl Front {
    fn build(spec: &ChannelSpec, factory: RegistryFactory) -> Result<Front, FftError> {
        let engine = take_engine(factory, spec.n, &spec.engine)?;
        Ok(match spec.op {
            ChannelOp::Transform(dir) => Front::Raw { engine, dir },
            ChannelOp::Modulate { cp } => {
                Front::Modem { ofdm: Ofdm::with_engine(engine, cp)?, modulate: true }
            }
            ChannelOp::Demodulate { cp } => {
                Front::Modem { ofdm: Ofdm::with_engine(engine, cp)?, modulate: false }
            }
        })
    }

    fn run(&mut self, input: &[C64], output: &mut [C64]) -> Result<(), FftError> {
        match self {
            Front::Raw { engine, dir } => engine.execute_into(input, output, *dir),
            Front::Modem { ofdm, modulate: true } => ofdm.modulate_into(input, output),
            Front::Modem { ofdm, modulate: false } => ofdm.demodulate_into(input, output),
        }
    }

    fn cycles(&self) -> Option<u64> {
        match self {
            Front::Raw { engine, .. } => engine.cycles(),
            Front::Modem { ofdm, .. } => ofdm.engine().cycles(),
        }
    }
}

/// Marks the pipeline dead if its worker unwinds — a panicking backend
/// must wake (and fail) blocked `submit`/`recv` callers, not strand
/// them on a condvar waiting for jobs that will never be parked.
struct PanicGuard<'a>(&'a Shared);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Ignore a poisoned mutex here: every other accessor treats
            // poison as fatal anyway, which surfaces the failure too.
            if let Ok(mut st) = self.0.state.lock() {
                st.worker_panicked = true;
                st.closed = true;
            }
            self.0.space.notify_all();
            self.0.work.notify_all();
            self.0.done.notify_all();
        }
    }
}

fn worker_loop(idx: usize, shared: &Shared, specs: &[ChannelSpec], factory: RegistryFactory) {
    let _guard = PanicGuard(shared);
    // This worker's metrics shard — recording is two relaxed atomic
    // adds, never a lock.
    let obs = shared.obs.as_ref().map(|o| o.recorder.handle(idx));
    // Private engines + scratch, warmed on a zero symbol per channel so
    // the first real symbol already runs the allocation-free path.
    let mut fronts: Vec<Front> = specs
        .iter()
        .map(|spec| {
            let mut front = Front::build(spec, factory)
                .expect("channel validated at build time but not constructible in worker");
            let input = vec![Complex::zero(); spec.input_len()];
            let mut output = vec![Complex::zero(); spec.output_len()];
            front.run(&input, &mut output).expect("warmup transform failed");
            front
        })
        .collect();

    // Job and completion staging reused across iterations: the worker
    // loop itself allocates nothing per symbol in steady state.
    let mut jobs: Vec<Job> = Vec::with_capacity(WORKER_BATCH);
    let mut finished: Vec<Parked> = Vec::with_capacity(WORKER_BATCH);
    loop {
        // Claim up to WORKER_BATCH already-queued jobs in one lock
        // acquisition — never waiting for a batch to fill.
        let wake_submitters = {
            let mut st = shared.state.lock().expect("stream state poisoned");
            loop {
                while jobs.len() < WORKER_BATCH {
                    match st.queue.pop_front() {
                        Some(job) => jobs.push(job),
                        None => break,
                    }
                }
                if !jobs.is_empty() {
                    st.in_flight += jobs.len();
                    // Low-watermark backpressure release: don't wake a
                    // blocked submitter for every freed slot — let the
                    // queue drain to half capacity first, so each
                    // wakeup is amortised over ~depth/2 submissions
                    // instead of costing a block/wake cycle per batch.
                    break st.space_waiting > 0 && st.queue.len() <= st.depth / 2;
                }
                if st.closed {
                    return;
                }
                st.idle_workers += 1;
                st = shared.work.wait(st).expect("stream state poisoned");
                st.idle_workers -= 1;
            }
        };
        if wake_submitters {
            shared.space.notify_all();
        }

        // Only sampled jobs read the clock: two stamps bracketing the
        // transform. Queue-wait charges a job up to the moment its own
        // transform begins — including time spent claimed-but-behind
        // earlier jobs in this batch, since it was not transformable
        // anywhere else during that window.
        for mut job in jobs.drain(..) {
            let front = &mut fronts[job.channel.index];
            let begin = if job.sampled { Instant::now() } else { shared.epoch };
            let error = front.run(&job.input, &mut job.output).err();
            let finished_at = match &obs {
                Some(rec) if job.sampled => {
                    let end = Instant::now();
                    let base = job.channel.index * Stage::COUNT;
                    rec.record(
                        base + Stage::QueueWait.index(),
                        ns_between(job.submitted_at, begin),
                    );
                    rec.record(base + Stage::Transform.index(), ns_between(begin, end));
                    end
                }
                _ => shared.epoch,
            };
            finished.push(Parked {
                done: Completion {
                    channel: job.channel,
                    seq: job.seq,
                    input: job.input,
                    output: job.output,
                    cycles: front.cycles(),
                    error,
                },
                submitted_at: job.submitted_at,
                finished_at,
                sampled: job.sampled,
            });
        }

        let wake_receivers = {
            let mut st = shared.state.lock().expect("stream state poisoned");
            st.in_flight -= finished.len();
            st.worker_transforms[idx] += finished.len() as u64;
            for done in finished.drain(..) {
                let chan = &mut st.channels[done.done.channel.index];
                chan.completed += 1;
                chan.park(done);
            }
            st.recv_waiting > 0
        };
        if wake_receivers {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_core::engine::EngineRegistry;
    use afft_core::ofdm::{qpsk_demap, qpsk_map};

    fn tagged(n: usize, tag: f64) -> Vec<C64> {
        (0..n).map(|i| Complex::new(tag, i as f64 / n as f64)).collect()
    }

    #[test]
    fn single_channel_round_trip_delivers_in_order() {
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(3).queue_depth(4);
        let ch = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let pipeline = builder.build().unwrap();

        let mut engine = EngineRegistry::standard(64).unwrap().take("radix2_dit").unwrap();
        let mut expected = Vec::new();
        for s in 0..16u64 {
            let x = tagged(64, s as f64);
            expected.push(engine.execute(&x, Direction::Forward).unwrap());
            let seq = pipeline.submit(ch, x, vec![Complex::zero(); 64]).unwrap();
            assert_eq!(seq, s);
        }
        for s in 0..16u64 {
            let done = pipeline.recv(ch).expect("outstanding symbol");
            assert_eq!(done.seq, s);
            assert!(done.error.is_none());
            assert_eq!(done.output, expected[s as usize], "bit-identical to direct execution");
            assert_eq!(done.input, tagged(64, s as f64), "input handed back unchanged");
        }
        assert!(pipeline.recv(ch).is_none(), "drained channel yields None");
        let (stats, leftover) = pipeline.shutdown();
        assert!(leftover.is_empty());
        assert_eq!(stats.submitted, 16);
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.delivered, 16);
        assert_eq!(stats.worker_transforms.iter().sum::<u64>(), 16);
    }

    #[test]
    fn modem_channels_modulate_and_demodulate() {
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(2).queue_depth(8);
        let tx = builder.channel(ChannelSpec {
            n: 128,
            engine: "array_fft".into(),
            op: ChannelOp::Modulate { cp: 32 },
        });
        let rx = builder.channel(ChannelSpec {
            n: 128,
            engine: "array_fft".into(),
            op: ChannelOp::Demodulate { cp: 32 },
        });
        let pipeline = builder.build().unwrap();
        assert_eq!(pipeline.spec(tx).input_len(), 128);
        assert_eq!(pipeline.spec(tx).output_len(), 160);
        assert_eq!(pipeline.spec(rx).input_len(), 160);
        assert_eq!(pipeline.spec(rx).output_len(), 128);

        let bits: Vec<(bool, bool)> = (0..128).map(|i| (i % 2 == 0, i % 5 == 0)).collect();
        pipeline.submit(tx, qpsk_map(&bits), vec![Complex::zero(); 160]).unwrap();
        let sym = pipeline.recv(tx).unwrap();
        assert!(sym.error.is_none());
        pipeline.submit(rx, sym.output, vec![Complex::zero(); 128]).unwrap();
        let bins = pipeline.recv(rx).unwrap();
        assert!(bins.error.is_none());
        assert_eq!(qpsk_demap(&bins.output), bits, "stream modem round trip");
    }

    #[test]
    fn shape_and_closed_refusals_hand_buffers_back() {
        let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(1);
        let ch = builder.channel(ChannelSpec::transform(64, "mcfft", Direction::Inverse));
        let pipeline = builder.build().unwrap();

        let err = pipeline.submit(ch, vec![Complex::zero(); 32], vec![Complex::zero(); 64]);
        match err.unwrap_err() {
            SubmitError::Shape { error, input, output } => {
                assert_eq!(error, FftError::LengthMismatch { expected: 64, got: 32 });
                assert_eq!((input.len(), output.len()), (32, 64));
            }
            other => panic!("expected Shape, got {other}"),
        }
        let err = pipeline.try_submit(ch, vec![Complex::zero(); 64], vec![Complex::zero(); 32]);
        assert!(matches!(err.unwrap_err(), SubmitError::Shape { .. }));

        pipeline.close();
        assert!(pipeline.is_closed());
        let err = pipeline.submit(ch, vec![Complex::zero(); 64], vec![Complex::zero(); 64]);
        let (input, output) = match err.unwrap_err() {
            e @ SubmitError::Closed { .. } => e.into_buffers(),
            other => panic!("expected Closed, got {other}"),
        };
        assert_eq!((input.len(), output.len()), (64, 64));
    }

    #[test]
    fn shutdown_returns_undelivered_completions_in_order() {
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(2).queue_depth(16);
        let ch = builder.channel(ChannelSpec::transform(64, "radix2_dif", Direction::Forward));
        let pipeline = builder.build().unwrap();
        for s in 0..10u64 {
            pipeline.submit(ch, tagged(64, s as f64), vec![Complex::zero(); 64]).unwrap();
        }
        // Deliver only the first three; shutdown must hand back the rest.
        for s in 0..3u64 {
            assert_eq!(pipeline.recv(ch).unwrap().seq, s);
        }
        let (stats, leftover) = pipeline.shutdown();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10, "shutdown drains in-flight work");
        assert_eq!(leftover.len(), 7);
        let seqs: Vec<u64> = leftover.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, (3..10).collect::<Vec<u64>>(), "leftover stays in submission order");
    }

    #[test]
    fn builder_rejects_bad_channels_and_empty_pipelines() {
        let err = StreamPipeline::builder(EngineRegistry::standard).build().unwrap_err();
        assert!(matches!(err, FftError::InvalidDecomposition { .. }));

        let mut builder = StreamPipeline::builder(EngineRegistry::standard);
        builder.channel(ChannelSpec::transform(64, "asip_iss", Direction::Forward));
        assert!(matches!(builder.build().unwrap_err(), FftError::Backend { .. }));

        let mut builder = StreamPipeline::builder(EngineRegistry::standard);
        builder.channel(ChannelSpec {
            n: 64,
            engine: "radix2_dit".into(),
            op: ChannelOp::Modulate { cp: 64 },
        });
        assert!(matches!(builder.build().unwrap_err(), FftError::InvalidDecomposition { .. }));
    }

    #[test]
    fn stats_track_queue_pressure() {
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(1).queue_depth(2);
        let ch = builder.channel(ChannelSpec::transform(64, "dft_naive", Direction::Forward));
        let pipeline = builder.build().unwrap();
        assert_eq!(pipeline.queue_capacity(), 2);
        assert_eq!(pipeline.worker_count(), 1);
        assert_eq!(pipeline.channel_count(), 1);
        assert_eq!(ch.index(), 0);
        for s in 0..6u64 {
            pipeline.submit(ch, tagged(64, s as f64), vec![Complex::zero(); 64]).unwrap();
        }
        while pipeline.recv(ch).is_some() {}
        let stats = pipeline.stats();
        assert_eq!(stats.delivered, 6);
        assert!(stats.queue_high_water >= 1 && stats.queue_high_water <= 2);
        assert_eq!(stats.per_channel.len(), 1);
        assert_eq!(stats.per_channel[0].delivered, 6);
        assert!(stats.throughput() > 0.0);
    }

    /// A backend that panics on any non-zero symbol — the warmup's
    /// zero symbol passes, then real traffic detonates the worker.
    struct FragileEngine {
        n: usize,
    }

    impl FftEngine for FragileEngine {
        fn name(&self) -> &str {
            "fragile"
        }

        fn len(&self) -> usize {
            self.n
        }

        fn execute_into(
            &mut self,
            input: &[C64],
            output: &mut [C64],
            _dir: Direction,
        ) -> Result<(), FftError> {
            assert!(input.iter().all(|c| c.re == 0.0 && c.im == 0.0), "fragile engine exploded");
            for slot in output.iter_mut() {
                *slot = Complex::zero();
            }
            Ok(())
        }

        fn traffic(&self) -> Option<afft_core::cached::MemTraffic> {
            None
        }
    }

    fn fragile_registry(n: usize) -> Result<EngineRegistry, FftError> {
        let mut registry = EngineRegistry::new();
        registry.register(Box::new(FragileEngine { n }));
        Ok(registry)
    }

    #[test]
    fn worker_panic_fails_blocked_callers_instead_of_hanging() {
        let mut builder = StreamPipeline::builder(fragile_registry).workers(1).queue_depth(4);
        let ch = builder.channel(ChannelSpec::transform(64, "fragile", Direction::Forward));
        let pipeline = builder.build().unwrap();

        // The zero symbol passes; the worker is alive and parking.
        pipeline.submit(ch, vec![Complex::zero(); 64], vec![Complex::zero(); 64]).unwrap();
        assert!(pipeline.recv(ch).unwrap().error.is_none());

        // A non-zero symbol panics inside the worker. recv must
        // propagate that as a panic, not block forever on a completion
        // that will never be parked.
        pipeline.submit(ch, vec![Complex::new(1.0, 0.0); 64], vec![Complex::zero(); 64]).unwrap();
        let recv = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pipeline.recv(ch)));
        assert!(recv.is_err(), "recv must fail loudly after a worker panic");
        // Blocking submit fails loudly too, and the intake is closed.
        let blocked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.submit(ch, vec![Complex::zero(); 64], vec![Complex::zero(); 64])
        }));
        assert!(blocked.is_err(), "submit must fail loudly after a worker panic");
        assert!(pipeline.is_closed());
        // Drop (not shutdown) so the test itself doesn't re-panic on join.
        drop(pipeline);
    }

    #[test]
    #[should_panic(expected = "different StreamPipeline")]
    fn foreign_channel_ids_are_rejected_even_with_in_range_indices() {
        let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(1);
        let foreign = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let _other = builder.build().unwrap();

        let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(1);
        let _local = builder.channel(ChannelSpec {
            n: 64,
            engine: "radix2_dit".into(),
            op: ChannelOp::Modulate { cp: 16 },
        });
        let pipeline = builder.build().unwrap();
        // Index 0 is in range here but the id belongs to `_other`:
        // silently resolving it would submit against the wrong op.
        let _ = pipeline.spec(foreign);
    }

    #[test]
    fn observability_off_records_nothing() {
        // Explicit override, so the test is deterministic regardless of
        // the ambient AFFT_OBS (CI runs the suite under both values).
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(2).observability(false);
        let ch = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let pipeline = builder.build().unwrap();
        assert!(!pipeline.observability_enabled());
        pipeline.submit(ch, tagged(64, 1.0), vec![Complex::zero(); 64]).unwrap();
        assert!(pipeline.recv(ch).is_some());
        let (stats, _) = pipeline.shutdown();
        assert!(stats.obs.is_none(), "metrics off must leave no histograms");
    }

    #[test]
    fn observability_histograms_count_every_symbol() {
        // sample_every(1) stamps every symbol, so counts are exact.
        let mut builder = StreamPipeline::builder(EngineRegistry::standard)
            .workers(3)
            .queue_depth(8)
            .observability(true)
            .sample_every(1);
        let a = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let b = builder.channel(ChannelSpec {
            n: 64,
            engine: "radix2_dit".into(),
            op: ChannelOp::Modulate { cp: 16 },
        });
        let pipeline = builder.build().unwrap();
        assert!(pipeline.observability_enabled());
        for s in 0..20u64 {
            pipeline.submit(a, tagged(64, s as f64), vec![Complex::zero(); 64]).unwrap();
        }
        pipeline.submit(b, tagged(64, 0.5), vec![Complex::zero(); 80]).unwrap();
        while pipeline.recv(a).is_some() {}
        while pipeline.recv(b).is_some() {}
        let (stats, _) = pipeline.shutdown();
        let obs = stats.obs.expect("metrics on");
        assert_eq!(obs.per_channel.len(), 2);
        let ch_a = &obs.per_channel[0];
        // Every delivered symbol shows up in every stage histogram.
        assert_eq!(ch_a.latency.count(), 20);
        assert_eq!(ch_a.queue_wait.count(), 20);
        assert_eq!(ch_a.transform.count(), 20);
        assert_eq!(ch_a.reorder_park.count(), 20);
        assert_eq!(obs.per_channel[1].latency.count(), 1);
        // End-to-end latency dominates its components at the median.
        let p50 = ch_a.latency.p50().unwrap();
        assert!(p50 >= ch_a.transform.p50().unwrap() / 2, "latency {p50}ns vs transform");
        assert!(ch_a.latency.p99().unwrap() >= p50);
        // The named snapshot and JSON exports carry the same series.
        let snap = obs.snapshot();
        assert_eq!(snap.get("ch0/deliver").unwrap().count(), 20);
        assert!(obs.to_json().contains("\"channel\":1"));
    }

    #[test]
    fn default_sampling_stamps_one_symbol_in_eight() {
        // Sampling is by per-channel sequence number, so the sampled
        // subset is deterministic: seqs 0 and 8 out of 0..12.
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(2).observability(true);
        let ch = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let pipeline = builder.build().unwrap();
        for s in 0..12u64 {
            pipeline.submit(ch, tagged(64, s as f64), vec![Complex::zero(); 64]).unwrap();
        }
        while pipeline.recv(ch).is_some() {}
        let (stats, _) = pipeline.shutdown();
        assert_eq!(stats.delivered, 12);
        let obs = stats.obs.expect("metrics on");
        for (_, hist) in obs.per_channel[0].stages() {
            assert_eq!(hist.count(), 2, "12 symbols at 1-in-{DEFAULT_SAMPLE_EVERY}");
        }
    }

    #[test]
    fn channel_spec_shapes_and_plan_constructor() {
        let spec = ChannelSpec::transform(256, "array_fft", Direction::Inverse);
        assert_eq!((spec.input_len(), spec.output_len()), (256, 256));
        let spec = ChannelSpec { n: 256, engine: "x".into(), op: ChannelOp::Modulate { cp: 64 } };
        assert_eq!((spec.input_len(), spec.output_len()), (256, 320));
        let spec = ChannelSpec { n: 256, engine: "x".into(), op: ChannelOp::Demodulate { cp: 64 } };
        assert_eq!((spec.input_len(), spec.output_len()), (320, 256));

        let mut planner = afft_planner::Planner::new();
        let plan = planner.plan(128, afft_planner::Strategy::Estimate).unwrap();
        let spec = ChannelSpec::from_plan(&plan, ChannelOp::Demodulate { cp: 32 });
        assert_eq!(spec.n, 128);
        assert_eq!(spec.engine, plan.best().name);
    }
}
